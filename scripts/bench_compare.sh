#!/usr/bin/env bash
# Perf regression gate: re-run the engine micro-benchmark, the capacity
# counting benchmark, and the serve load generator, comparing each
# against its committed baseline (BENCH_engine.json, BENCH_capacity.json
# and BENCH_serve.json).
#
#   ./scripts/bench_compare.sh [--threads N] [--tolerance PCT]
#
# Rebuilds the bench binaries in release mode, runs them into a scratch
# dir, and flags any engine sample whose eval_ms / build_ms / detect_ms
# regressed — or any serving metric (throughput down, p50/p99 latency
# up) — by more than the tolerance (default 10%) relative to the
# committed baseline. Exits non-zero on regression so CI can gate on it.
set -euo pipefail
cd "$(dirname "$0")/.."

THREADS=""
TOLERANCE=10
while [[ $# -gt 0 ]]; do
  case "$1" in
    --threads) THREADS="$2"; shift 2 ;;
    --tolerance) TOLERANCE="$2"; shift 2 ;;
    *) echo "unknown flag: $1" >&2; exit 2 ;;
  esac
done

BASELINE=BENCH_engine.json
[[ -f "$BASELINE" ]] || { echo "missing $BASELINE (run bench_engine once and commit it)" >&2; exit 2; }

cargo build --release -p qpwm-bench --bin bench_engine

# bench_engine writes BENCH_engine.json in the working directory; run it
# from a scratch dir so the committed baseline stays untouched. Shared
# boxes spike individual runs by 2x and more, so take the best of three
# runs per metric — a regression must reproduce in all three to fail.
SCRATCH="$(mktemp -d)"
trap 'rm -rf "$SCRATCH"' EXIT
BIN="$PWD/target/release/bench_engine"
for RUN in 1 2 3; do
  mkdir -p "$SCRATCH/run$RUN"
  if [[ -n "$THREADS" ]]; then
    (cd "$SCRATCH/run$RUN" && "$BIN" --threads "$THREADS" >/dev/null)
  else
    (cd "$SCRATCH/run$RUN" && "$BIN" >/dev/null)
  fi
done

python3 - "$BASELINE" "$SCRATCH" "$TOLERANCE" <<'PY'
import json
import sys

baseline_path, scratch, tolerance = sys.argv[1], sys.argv[2], float(sys.argv[3])
with open(baseline_path) as f:
    baseline = {s["cycles"]: s for s in json.load(f)["samples"]}
fresh = {}
for run in (1, 2, 3):
    with open(f"{scratch}/run{run}/BENCH_engine.json") as f:
        for s in json.load(f)["samples"]:
            best = fresh.setdefault(s["cycles"], dict(s))
            for k, v in s.items():
                if isinstance(v, float):
                    best[k] = min(best[k], v)

METRICS = ("eval_ms", "build_ms", "detect_ms")
# Sub-millisecond rows swing tens of microseconds with scheduler noise
# alone; a relative tolerance is meaningless there. A row only fails
# when it regresses by BOTH the relative tolerance and this absolute
# slack (0.3% of the largest row, ~500x the observed jitter floor).
ABS_SLACK_MS = 0.25
failures = []
print(f"{'cycles':>7} {'metric':>10} {'baseline':>10} {'fresh':>10} {'delta':>8}")
for cycles, base in sorted(baseline.items()):
    now = fresh.get(cycles)
    if now is None:
        failures.append(f"cycles={cycles}: missing from fresh run")
        continue
    for metric in METRICS:
        old, new = base[metric], now[metric]
        delta = (new - old) / old * 100 if old > 0 else 0.0
        flag = ""
        if old > 0 and delta > tolerance and new - old > ABS_SLACK_MS:
            failures.append(f"cycles={cycles} {metric}: {old:.3f} -> {new:.3f} ms (+{delta:.1f}%)")
            flag = "  << REGRESSION"
        print(f"{cycles:>7} {metric:>10} {old:>10.3f} {new:>10.3f} {delta:>+7.1f}%{flag}")

if failures:
    print(f"\n{len(failures)} regression(s) beyond {tolerance:.0f}%:", file=sys.stderr)
    for f in failures:
        print(f"  {f}", file=sys.stderr)
    sys.exit(1)
print(f"\nOK: no metric regressed by more than {tolerance:.0f}%")
PY

# -- capacity gate: v2 counting engine — speedup floor, byte-identical
#    counts, and count-time regression vs the committed baseline
CAP_BASELINE=BENCH_capacity.json
[[ -f "$CAP_BASELINE" ]] || { echo "missing $CAP_BASELINE (run bench_capacity once and commit it)" >&2; exit 2; }

cargo build --release -p qpwm-bench --bin bench_capacity
CAP_BIN="$PWD/target/release/bench_capacity"
if [[ -n "$THREADS" ]]; then
  (cd "$SCRATCH" && "$CAP_BIN" --threads "$THREADS" >/dev/null)
else
  (cd "$SCRATCH" && "$CAP_BIN" >/dev/null)
fi

python3 - "$CAP_BASELINE" "$SCRATCH/BENCH_capacity.json" "$TOLERANCE" <<'PY'
import json
import sys

baseline_path, fresh_path, tolerance = sys.argv[1], sys.argv[2], float(sys.argv[3])
with open(baseline_path) as f:
    base = json.load(f)
with open(fresh_path) as f:
    now = json.load(f)

failures = []

# 1. the v2-vs-v1 speedup floor must hold on the X-T1 workload
best = max(s["speedup"] for s in now["speedup_samples"])
print(f"\nbest v2-vs-v1 speedup: {best:.0f}x (floor: 10x)")
if best < 10.0:
    failures.append(f"v2 speedup fell to {best:.1f}x (< 10x) on the X-T1 workload")

# 2. counts are exact integers: any drift vs the committed baseline is a
#    correctness bug, not a perf regression
base_counts = {s["cycles"]: s["count"] for s in base["speedup_samples"]}
for s in now["speedup_samples"]:
    want = base_counts.get(s["cycles"])
    if want is not None and want != s["count"]:
        failures.append(f"cycles={s['cycles']}: count changed {want} -> {s['count']}")
if base["headline"]["count"] != now["headline"]["count"]:
    failures.append(
        f"headline count changed {base['headline']['count']} -> {now['headline']['count']}"
    )

# 3. count-time regression: compare the best-across-threads time per
#    scaling case (hard kernels with stable, >10ms runtimes; the tiny
#    X-T1 rows are microseconds and pure noise at any tolerance)
def best_ms(doc, case):
    times = [s["ms"] for s in doc["scaling"] if s["case"] == case]
    return min(times) if times else None

print(f"{'case':>16} {'baseline':>10} {'fresh':>10} {'delta':>8}")
for case in sorted({s["case"] for s in base["scaling"]}):
    old, new = best_ms(base, case), best_ms(now, case)
    if new is None:
        failures.append(f"{case}: missing from fresh run")
        continue
    delta = (new - old) / old * 100 if old > 0 else 0.0
    flag = ""
    if old > 0 and delta > tolerance:
        failures.append(f"{case}: count time {old:.1f} -> {new:.1f} ms (+{delta:.1f}%)")
        flag = "  << REGRESSION"
    print(f"{case:>16} {old:>10.1f} {new:>10.1f} {delta:>+7.1f}%{flag}")
    base_scale_counts = {s["threads"]: s["count"] for s in base["scaling"] if s["case"] == case}
    for s in now["scaling"]:
        if s["case"] == case and base_scale_counts.get(s["threads"], s["count"]) != s["count"]:
            failures.append(f"{case} threads={s['threads']}: count drifted vs baseline")

if failures:
    print(f"\n{len(failures)} capacity gate failure(s):", file=sys.stderr)
    for f in failures:
        print(f"  {f}", file=sys.stderr)
    sys.exit(1)
print(f"\nOK: capacity counts identical, speedup floor holds, no count-time regression beyond {tolerance:.0f}%")
PY

# -- battleground gate: the X-B1 Pareto table must be byte-stable and
#    per-scheme mark/detect throughput within tolerance of the baseline
BG_RESULTS=RESULTS_battleground.json
BG_BASELINE=BENCH_battleground.json
[[ -f "$BG_RESULTS" && -f "$BG_BASELINE" ]] \
  || { echo "missing $BG_RESULTS / $BG_BASELINE (run 'qpwm battleground' once and commit both)" >&2; exit 2; }

cargo build --release -p qpwm-bench --bin battleground
BG_BIN="$PWD/target/release/battleground"
if [[ -n "$THREADS" ]]; then
  (cd "$SCRATCH" && "$BG_BIN" --threads "$THREADS" >/dev/null)
else
  (cd "$SCRATCH" && "$BG_BIN" >/dev/null)
fi

# The RESULTS table is deterministic (seeded cells, thread-invariant
# fork-join), so any byte of drift is a correctness bug.
if cmp -s "$BG_RESULTS" "$SCRATCH/RESULTS_battleground.json"; then
  echo "battleground RESULTS: byte-identical to the committed Pareto table"
else
  echo "battleground RESULTS drifted from the committed baseline:" >&2
  cmp "$BG_RESULTS" "$SCRATCH/RESULTS_battleground.json" >&2 || true
  exit 1
fi

python3 - "$BG_BASELINE" "$SCRATCH/BENCH_battleground.json" "$TOLERANCE" <<'PY'
import json
import sys

baseline_path, fresh_path, tolerance = sys.argv[1], sys.argv[2], float(sys.argv[3])
with open(baseline_path) as f:
    base = {s["scheme"]: s for s in json.load(f)["per_scheme"]}
with open(fresh_path) as f:
    now = {s["scheme"]: s for s in json.load(f)["per_scheme"]}

failures = []
print(f"\n{'scheme':>10} {'metric':>10} {'baseline':>10} {'fresh':>10} {'delta':>8}")
for scheme, ref in sorted(base.items()):
    cur = now.get(scheme)
    if cur is None:
        failures.append(f"{scheme}: missing from fresh run")
        continue
    for metric in ("mark_ms", "detect_ms"):
        old, new = ref[metric], cur[metric]
        delta = (new - old) / old * 100 if old > 0 else 0.0
        flag = ""
        if old > 0 and delta > tolerance:
            failures.append(f"{scheme} {metric}: {old:.4f} -> {new:.4f} ms (+{delta:.1f}%)")
            flag = "  << REGRESSION"
        print(f"{scheme:>10} {metric:>10} {old:>10.4f} {new:>10.4f} {delta:>+7.1f}%{flag}")

if failures:
    print(f"\n{len(failures)} battleground regression(s) beyond {tolerance:.0f}%:", file=sys.stderr)
    for f in failures:
        print(f"  {f}", file=sys.stderr)
    sys.exit(1)
print(f"\nOK: battleground throughput within {tolerance:.0f}% of the committed baseline")
PY

# -- serving gate: throughput and latency of the qpwm-serve load run
SERVE_BASELINE=BENCH_serve.json
if [[ ! -f "$SERVE_BASELINE" ]]; then
  echo "note: missing $SERVE_BASELINE — run bench_serve once and commit it to enable the serving gate"
  exit 0
fi

cargo build --release -p qpwm-bench --bin bench_serve
SERVE_BIN="$PWD/target/release/bench_serve"
if [[ -n "$THREADS" ]]; then
  (cd "$SCRATCH" && "$SERVE_BIN" --threads "$THREADS" >/dev/null)
else
  (cd "$SCRATCH" && "$SERVE_BIN" >/dev/null)
fi

python3 - "$SERVE_BASELINE" "$SCRATCH/BENCH_serve.json" "$TOLERANCE" <<'PY'
import json
import sys

baseline_path, fresh_path, tolerance = sys.argv[1], sys.argv[2], float(sys.argv[3])
with open(baseline_path) as f:
    base = json.load(f)
with open(fresh_path) as f:
    now = json.load(f)

# (metric, higher_is_better)
METRICS = (("throughput_rps", True), ("p50_us", False), ("p99_us", False))
failures = []
print(f"\n{'metric':>16} {'baseline':>12} {'fresh':>12} {'delta':>8}")
for metric, higher_is_better in METRICS:
    old, new = float(base[metric]), float(now[metric])
    delta = (new - old) / old * 100 if old > 0 else 0.0
    regressed = delta < -tolerance if higher_is_better else delta > tolerance
    flag = "  << REGRESSION" if regressed else ""
    if regressed:
        direction = "dropped" if higher_is_better else "rose"
        failures.append(f"{metric} {direction}: {old:.1f} -> {new:.1f} ({delta:+.1f}%)")
    print(f"{metric:>16} {old:>12.1f} {new:>12.1f} {delta:>+7.1f}%{flag}")

if now.get("errors", 0) != 0:
    failures.append(f"load run returned {now['errors']} error response(s)")

# shard sweep: throughput/latency per shard count vs baseline, zero
# errors, and no shard starved of its share of the connection hash.
# Percentiles under a 1024-connection fan-in jitter well beyond the
# headline tolerance on a shared single-core CI box, so the sweep's
# timing comparison runs at double the configured tolerance; the
# correctness gates (errors, shard balance) stay strict.
sweep_tolerance = tolerance * 2
base_sweep = {s["shards"]: s for s in base.get("sweep", [])}
fresh_sweep = {s["shards"]: s for s in now.get("sweep", [])}
if base_sweep:
    print(f"\n{'shards':>7} {'metric':>16} {'baseline':>12} {'fresh':>12} {'delta':>8}")
for shards, ref in sorted(base_sweep.items()):
    cur = fresh_sweep.get(shards)
    if cur is None:
        failures.append(f"sweep shards={shards}: missing from fresh run")
        continue
    if cur.get("errors", 0) != 0:
        failures.append(f"sweep shards={shards}: {cur['errors']} error response(s)")
    if shards > 1 and cur.get("min_shard_share", 0.0) < 0.05:
        failures.append(
            f"sweep shards={shards}: a shard got only "
            f"{cur['min_shard_share']:.1%} of requests (floor 5%)"
        )
    for metric, higher_is_better in METRICS:
        old, new = float(ref[metric]), float(cur[metric])
        delta = (new - old) / old * 100 if old > 0 else 0.0
        regressed = delta < -sweep_tolerance if higher_is_better else delta > sweep_tolerance
        flag = "  << REGRESSION" if regressed else ""
        if regressed:
            direction = "dropped" if higher_is_better else "rose"
            failures.append(
                f"sweep shards={shards} {metric} {direction}: "
                f"{old:.1f} -> {new:.1f} ({delta:+.1f}%)"
            )
        print(f"{shards:>7} {metric:>16} {old:>12.1f} {new:>12.1f} {delta:>+7.1f}%{flag}")

if failures:
    print(f"\n{len(failures)} serving regression(s) beyond {tolerance:.0f}%:", file=sys.stderr)
    for f in failures:
        print(f"  {f}", file=sys.stderr)
    sys.exit(1)
print(f"\nOK: serving metrics within {tolerance:.0f}% of the committed baseline")
PY

# -- chaos gate: resilience of remote detection under injected faults
CHAOS_BASELINE=BENCH_chaos.json
if [[ ! -f "$CHAOS_BASELINE" ]]; then
  echo "note: missing $CHAOS_BASELINE — run bench_chaos once and commit it to enable the chaos gate"
  exit 0
fi

cargo build --release -p qpwm-bench --bin bench_chaos
CHAOS_BIN="$PWD/target/release/bench_chaos"
if [[ -n "$THREADS" ]]; then
  (cd "$SCRATCH" && "$CHAOS_BIN" --threads "$THREADS" >/dev/null)
else
  (cd "$SCRATCH" && "$CHAOS_BIN" >/dev/null)
fi

python3 - "$CHAOS_BASELINE" "$SCRATCH/BENCH_chaos.json" <<'PY'
import json
import sys

baseline_path, fresh_path = sys.argv[1], sys.argv[2]
with open(baseline_path) as f:
    base = json.load(f)
with open(fresh_path) as f:
    now = json.load(f)

failures = []
if now.get("user_errors_with_retries", 1) != 0:
    failures.append(
        f"user-visible errors with retries: {now['user_errors_with_retries']} (must be 0)"
    )

key = lambda s: (s["spec"], s["retries"])
base_sweeps = {key(s): s for s in base["sweeps"]}
print(f"\n{'rate':>5} {'retries':>8} {'user errs':>10} {'lost reads':>11} {'verdict':>13}")
for sweep in now["sweeps"]:
    print(
        f"{sweep['fault_rate_pct']:>4.0f}% {str(sweep['retries']):>8} "
        f"{sweep['user_errors']:>10} {sweep['failed_reads']:>11} {sweep['verdict']:>13}"
    )
    if sweep["retries"]:
        if sweep["user_errors"] != 0:
            failures.append(f"{sweep['spec']}: {sweep['user_errors']} user error(s) with retries on")
        if not sweep["matches_offline"]:
            failures.append(f"{sweep['spec']}: verdict diverged from offline with retries on")
    elif sweep["verdict"] not in ("mark-present", "abstain"):
        failures.append(f"{sweep['spec']} (no retries): verdict flipped to {sweep['verdict']}")
    if sweep["fault_rate_pct"] > 0 and sweep["faults_injected"] == 0:
        failures.append(f"{sweep['spec']}: chaos layer injected nothing")
    ref = base_sweeps.get(key(sweep))
    if ref is not None and ref["verdict"] != sweep["verdict"]:
        failures.append(
            f"{sweep['spec']} (retries={sweep['retries']}): verdict changed "
            f"{ref['verdict']} -> {sweep['verdict']} vs committed baseline"
        )

if failures:
    print(f"\n{len(failures)} chaos gate failure(s):", file=sys.stderr)
    for f in failures:
        print(f"  {f}", file=sys.stderr)
    sys.exit(1)
print("\nOK: chaos sweep is fault-free with retries and never flips a verdict")
PY

# -- fingerprint gate: key derivation / stamping throughput and
#    accusation latency vs registry size must hold, and every leaked
#    copy must still be accused correctly
FP_BASELINE=BENCH_fingerprint.json
if [[ ! -f "$FP_BASELINE" ]]; then
  echo "note: missing $FP_BASELINE — run bench_fingerprint once and commit it to enable the fingerprint gate"
  exit 0
fi

cargo build --release -p qpwm-bench --bin bench_fingerprint
FP_BIN="$PWD/target/release/bench_fingerprint"
if [[ -n "$THREADS" ]]; then
  (cd "$SCRATCH" && "$FP_BIN" --threads "$THREADS" >/dev/null)
else
  (cd "$SCRATCH" && "$FP_BIN" >/dev/null)
fi

python3 - "$FP_BASELINE" "$SCRATCH/BENCH_fingerprint.json" "$TOLERANCE" <<'PY'
import json
import sys

baseline_path, fresh_path, tolerance = sys.argv[1], sys.argv[2], float(sys.argv[3])
with open(baseline_path) as f:
    base = json.load(f)
with open(fresh_path) as f:
    now = json.load(f)

failures = []

# 1. correctness: capacity is exact, and every accusation point must
#    still finger the planted culprit
if base["capacity_bits"] != now["capacity_bits"]:
    failures.append(
        f"carrier capacity changed {base['capacity_bits']} -> {now['capacity_bits']} bits"
    )
for point in now["accuse"]:
    if not point["accused_ok"]:
        failures.append(
            f"recipients={point['recipients']}: leaked copy no longer accused correctly"
        )

# 2. throughput: derivation keys/s may not drop, stamp/plan ms may not
#    rise, beyond tolerance
print(f"\n{'metric':>14} {'baseline':>14} {'fresh':>14} {'delta':>8}")
for metric, higher_is_better in (("derive_per_s", True), ("stamp_ms", False), ("plan_ms", False)):
    old, new = float(base[metric]), float(now[metric])
    delta = (new - old) / old * 100 if old > 0 else 0.0
    regressed = delta < -tolerance if higher_is_better else delta > tolerance
    flag = "  << REGRESSION" if regressed else ""
    if regressed:
        direction = "dropped" if higher_is_better else "rose"
        failures.append(f"{metric} {direction}: {old:.4g} -> {new:.4g} ({delta:+.1f}%)")
    print(f"{metric:>14} {old:>14.4f} {new:>14.4f} {delta:>+7.1f}%{flag}")

# 3. accusation latency vs registry size
base_points = {p["recipients"]: p for p in base["accuse"]}
print(f"\n{'recipients':>10} {'accuse_ms':>10} {'fresh':>10} {'delta':>8}")
for point in now["accuse"]:
    ref = base_points.get(point["recipients"])
    if ref is None:
        continue
    old, new = ref["accuse_ms"], point["accuse_ms"]
    delta = (new - old) / old * 100 if old > 0 else 0.0
    flag = ""
    if old > 0 and delta > tolerance:
        failures.append(
            f"recipients={point['recipients']} accuse_ms: {old:.2f} -> {new:.2f} (+{delta:.1f}%)"
        )
        flag = "  << REGRESSION"
    print(f"{point['recipients']:>10} {old:>10.2f} {new:>10.2f} {delta:>+7.1f}%{flag}")
for recipients in base_points:
    if recipients not in {p["recipients"] for p in now["accuse"]}:
        failures.append(f"recipients={recipients}: missing from fresh run")

if failures:
    print(f"\n{len(failures)} fingerprint gate failure(s):", file=sys.stderr)
    for f in failures:
        print(f"  {f}", file=sys.stderr)
    sys.exit(1)
print(f"\nOK: fingerprinting accuses correctly and stays within {tolerance:.0f}% of the committed baseline")
PY

# -- store gate: out-of-core marking/serving, group-commit throughput,
#    crash-recovery time, and the Theorem 7 incremental re-marking
#    advantage. Hard floors: the 10^7-tuple out-of-core pass must stay
#    under 256 MiB peak RSS with evidence identical to the in-RAM path,
#    group commit must beat per-txn fsyncs by ≥3x on a 64-txn batch, and
#    the 1%-update re-mark must keep its ≥10x edge over a full re-mark.
ST_BASELINE=BENCH_store.json
if [[ ! -f "$ST_BASELINE" ]]; then
  echo "note: missing $ST_BASELINE — run bench_store once and commit it to enable the store gate"
  exit 0
fi

cargo build --release -p qpwm-bench --bin bench_store
ST_BIN="$PWD/target/release/bench_store"
if [[ -n "$THREADS" ]]; then
  (cd "$SCRATCH" && "$ST_BIN" --threads "$THREADS" >/dev/null)
else
  (cd "$SCRATCH" && "$ST_BIN" >/dev/null)
fi

python3 - "$ST_BASELINE" "$SCRATCH/BENCH_store.json" "$TOLERANCE" <<'PY'
import json
import sys

baseline_path, fresh_path, tolerance = sys.argv[1], sys.argv[2], float(sys.argv[3])
with open(baseline_path) as f:
    base = json.load(f)
with open(fresh_path) as f:
    now = json.load(f)

failures = []

# 1. correctness: exact capacity, every committed txn rolled forward,
#    and the mark intact after recovery plus incremental re-marking
if base["capacity_bits"] != now["capacity_bits"]:
    failures.append(
        f"carrier capacity changed {base['capacity_bits']} -> {now['capacity_bits']} bits"
    )
if not now["mark_intact"]:
    failures.append("mark no longer survives recovery + incremental re-marking")
if base["remarked_tuples"] != now["remarked_tuples"]:
    failures.append(
        f"incremental plan size changed {base['remarked_tuples']} -> {now['remarked_tuples']}"
    )

# 2. out-of-core hard gates: the 10^7-tuple streamed pass is bounded by
#    the pool, not the family — 256 MiB peak RSS is an absolute ceiling,
#    not a baseline-relative one — and the paged read path must have
#    produced detection evidence bit-identical to the in-RAM decode.
rss = float(now["oo_peak_rss_mib"])
print(f"\nout-of-core: n={now['oo_n_tuples']}, peak RSS {rss:.1f} MiB (ceiling: 256 MiB)")
if now["oo_n_tuples"] < 10_000_000:
    failures.append(f"out-of-core phase shrank to {now['oo_n_tuples']} tuples (< 10^7)")
if rss <= 0.0 or rss >= 256.0:
    failures.append(f"out-of-core peak RSS {rss:.1f} MiB breaches the 256 MiB ceiling")
if not now["oo_evidence_identical"]:
    failures.append("paged detection evidence diverged from the in-RAM path")

# 3. group-commit floor: one fsync must cover the whole 64-txn batch and
#    buy at least 3x over one-fsync-per-transaction
gc = float(now["gc_speedup"])
print(f"group commit: {gc:.1f}x over per-txn fsyncs (floor: 3x), "
      f"{now['gc_fsyncs_grouped']} fsync(s) for {now['gc_batch']} txns")
if gc < 3.0:
    failures.append(f"group-commit speedup fell to {gc:.1f}x (< 3x) on a {now['gc_batch']}-txn batch")
if now["gc_fsyncs_grouped"] != 1:
    failures.append(f"group commit took {now['gc_fsyncs_grouped']} fsyncs (must be 1)")
if now["gc_fsyncs_per_txn"] != now["gc_batch"]:
    failures.append(
        f"per-txn path took {now['gc_fsyncs_per_txn']} fsyncs for {now['gc_batch']} txns"
    )

# 4. the Theorem 7 floor: re-marking after a 1% update must beat a full
#    re-mark by at least 10x
speedup = float(now["remark_speedup"])
print(f"\nincremental re-mark speedup: {speedup:.1f}x (floor: 10x)")
if speedup < 10.0:
    failures.append(f"incremental re-mark speedup fell to {speedup:.1f}x (< 10x)")

# 5. timing vs the committed baseline. Every store op ends in fsync, so
#    these jitter well beyond CPU-bound noise on a shared box — compare
#    at double the configured tolerance. (The out-of-core and group
#    commit rows joined the baseline with this PR; .get() keeps the gate
#    runnable against a pre-upgrade baseline.)
store_tolerance = tolerance * 2
print(f"\n{'metric':>16} {'baseline':>10} {'fresh':>10} {'delta':>8}")
for metric in ("oo_create_ms", "oo_verify_ms", "gc_per_txn_ms", "gc_grouped_ms",
               "create_ms", "recover_ms", "full_remark_ms", "delta_remark_ms"):
    if metric not in base:
        print(f"{metric:>16} {'--':>10} {float(now[metric]):>10.2f}   (no baseline row)")
        continue
    old, new = float(base[metric]), float(now[metric])
    delta = (new - old) / old * 100 if old > 0 else 0.0
    flag = ""
    if old > 0 and delta > store_tolerance:
        failures.append(f"{metric}: {old:.2f} -> {new:.2f} ms (+{delta:.1f}%)")
        flag = "  << REGRESSION"
    print(f"{metric:>16} {old:>10.2f} {new:>10.2f} {delta:>+7.1f}%{flag}")

if failures:
    print(f"\n{len(failures)} store gate failure(s):", file=sys.stderr)
    for f in failures:
        print(f"  {f}", file=sys.stderr)
    sys.exit(1)
print(f"\nOK: out-of-core stays under 256 MiB with identical evidence, group commit keeps "
      f"its 3x edge, the store recovers in time, and the incremental re-mark keeps its 10x edge")
PY
