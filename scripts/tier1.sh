#!/usr/bin/env bash
# Tier-1 verification: build, test, lint — all offline.
#
# This is the gate every PR must keep green (see ROADMAP.md). Run from
# the repository root:
#
#   ./scripts/tier1.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

# The parallel runtime backs every hot path; exercise it explicitly so a
# workspace-level filter can never silently skip it.
echo "== tier-1: qpwm-par (build + test + clippy) =="
cargo build -p qpwm-par
cargo test -q -p qpwm-par
cargo clippy -p qpwm-par -- -D warnings

echo "== tier-1: cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace -- -D warnings

# The v2 capacity engine must agree with the v1 enumerator it replaced;
# --check runs the differential on a tiny instance in milliseconds.
echo "== tier-1: capacity engine v1-vs-v2 differential smoke =="
./target/release/bench_capacity --check

# Cross-scheme battleground: the X-B1 grid at smoke size — every
# scheme × workload × attack cell must build and produce a verdict.
echo "== tier-1: battleground --check smoke =="
./target/release/qpwm battleground --check

# End-to-end smoke test of the data server: serve a tiny marked XML
# document, hit it over real HTTP, and require a clean shutdown.
echo "== tier-1: qpwm serve smoke test =="
SMOKE="$(mktemp -d)"
trap 'rm -rf "$SMOKE"' EXIT
cat > "$SMOKE/school.xml" <<'XML'
<school>
  <student><firstname>Robert</firstname><exam>14</exam></student>
  <student><firstname>Ana</firstname><exam>7</exam></student>
  <student><firstname>Robert</firstname><exam>21</exam></student>
</school>
XML
./target/release/qpwm serve --xml "$SMOKE/school.xml" \
  --pattern 'school/student[firstname=$a]/exam' --port 0 > "$SMOKE/serve.log" &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 50); do
  ADDR="$(sed -n 's|^listening on http://||p' "$SMOKE/serve.log" | head -n 1)"
  [[ -n "$ADDR" ]] && break
  sleep 0.1
done
[[ -n "$ADDR" ]] || { echo "serve did not start:" >&2; cat "$SMOKE/serve.log" >&2; kill "$SERVE_PID" 2>/dev/null; exit 1; }

HEALTH="$(curl -sf -w '\n%{http_code}' "http://$ADDR/healthz")"
[[ "$HEALTH" == *'"status":"ok"'* && "$HEALTH" == *$'\n200' ]] \
  || { echo "unexpected /healthz response: $HEALTH" >&2; kill "$SERVE_PID" 2>/dev/null; exit 1; }
ANSWER="$(curl -sf -w '\n%{http_code}' "http://$ADDR/answer?param=Robert")"
[[ "$ANSWER" == *'"w":14'* && "$ANSWER" == *'"w":21'* && "$ANSWER" == *$'\n200' ]] \
  || { echo "unexpected /answer response: $ANSWER" >&2; kill "$SERVE_PID" 2>/dev/null; exit 1; }
curl -sf -X POST "http://$ADDR/shutdown" >/dev/null
wait "$SERVE_PID"   # a clean shutdown exits 0; set -e fails the gate otherwise
echo "serve smoke test OK ($ADDR)"

# Chaos smoke test: mark a relational instance, serve it with 10%
# injected transport faults, and require remote detection to retry its
# way to the correct ownership verdict over the faulty channel.
echo "== tier-1: chaos detection smoke test =="
for i in $(seq 0 255); do
  echo "n$i,n$(( (i + 1) % 256 ))"
done > "$SMOKE/ring.csv"
for i in $(seq 0 255); do
  echo "n$i,$(( 100 + i ))"
done > "$SMOKE/weights.csv"
MESSAGE=110100111010011101001101
./target/release/qpwm mark-db \
  --schema 'R(a,b)' --table "R=$SMOKE/ring.csv" \
  --weights "$SMOKE/weights.csv" --rule 'q($u; v) :- R($u, v)' \
  --message "$MESSAGE" \
  --out-weights "$SMOKE/marked.csv" --key-out "$SMOKE/secret.key" > /dev/null

./target/release/qpwm serve \
  --schema 'R(a,b)' --table "R=$SMOKE/ring.csv" \
  --weights "$SMOKE/marked.csv" --rule 'q($u; v) :- R($u, v)' \
  --port 0 --chaos 'drop=3%,error=5%,trunc=2%,seed=9' > "$SMOKE/chaos-serve.log" &
CHAOS_PID=$!
CHAOS_ADDR=""
for _ in $(seq 1 50); do
  CHAOS_ADDR="$(sed -n 's|^listening on http://||p' "$SMOKE/chaos-serve.log" | head -n 1)"
  [[ -n "$CHAOS_ADDR" ]] && break
  sleep 0.1
done
[[ -n "$CHAOS_ADDR" ]] || { echo "chaos serve did not start:" >&2; cat "$SMOKE/chaos-serve.log" >&2; kill "$CHAOS_PID" 2>/dev/null; exit 1; }

DETECT="$(./target/release/qpwm detect-db \
  --schema 'R(a,b)' --table "R=$SMOKE/ring.csv" \
  --weights "$SMOKE/weights.csv" --server "$CHAOS_ADDR" \
  --rule 'q($u; v) :- R($u, v)' --key "$SMOKE/secret.key" \
  --claim "$MESSAGE" --timeout-ms 2000)"
echo "$DETECT" | grep -q 'MARK PRESENT' \
  || { echo "chaos detection failed to prove the mark:" >&2; echo "$DETECT" >&2; kill "$CHAOS_PID" 2>/dev/null; exit 1; }

curl -sf -X POST "http://$CHAOS_ADDR/shutdown" >/dev/null
wait "$CHAOS_PID"
echo "chaos smoke test OK ($CHAOS_ADDR)"

# Sharded smoke test: two SO_REUSEPORT reactor shards on one port. The
# kernel hashes connections across both listeners, so repeated
# one-shot curls must eventually land on each shard; then a remote
# detection audit (batched POST /answers) must prove the mark through
# whichever shards its connections hash to.
echo "== tier-1: sharded serve smoke test =="
./target/release/qpwm serve \
  --schema 'R(a,b)' --table "R=$SMOKE/ring.csv" \
  --weights "$SMOKE/marked.csv" --rule 'q($u; v) :- R($u, v)' \
  --port 0 --shards 2 > "$SMOKE/shard-serve.log" &
SHARD_PID=$!
SHARD_ADDR=""
for _ in $(seq 1 50); do
  SHARD_ADDR="$(sed -n 's|^listening on http://||p' "$SMOKE/shard-serve.log" | head -n 1)"
  [[ -n "$SHARD_ADDR" ]] && break
  sleep 0.1
done
[[ -n "$SHARD_ADDR" ]] || { echo "sharded serve did not start:" >&2; cat "$SMOKE/shard-serve.log" >&2; kill "$SHARD_PID" 2>/dev/null; exit 1; }

BOTH_SHARDS=""
for _ in $(seq 1 100); do
  curl -sf "http://$SHARD_ADDR/healthz" >/dev/null
  curl -sf "http://$SHARD_ADDR/answer?i=0" >/dev/null
  METRICS="$(curl -sf "http://$SHARD_ADDR/metrics")"
  S0="$(echo "$METRICS" | sed -n 's/^qpwm_shard_connections_total{shard="0"} //p')"
  S1="$(echo "$METRICS" | sed -n 's/^qpwm_shard_connections_total{shard="1"} //p')"
  if [[ -n "$S0" && -n "$S1" && "$S0" -gt 0 && "$S1" -gt 0 ]]; then
    BOTH_SHARDS="yes"
    break
  fi
done
[[ -n "$BOTH_SHARDS" ]] || { echo "connections never reached both shards:" >&2; echo "$METRICS" >&2; kill "$SHARD_PID" 2>/dev/null; exit 1; }

SHARD_DETECT="$(./target/release/qpwm detect-db \
  --schema 'R(a,b)' --table "R=$SMOKE/ring.csv" \
  --weights "$SMOKE/weights.csv" --server "$SHARD_ADDR" \
  --rule 'q($u; v) :- R($u, v)' --key "$SMOKE/secret.key" \
  --claim "$MESSAGE" --timeout-ms 2000)"
echo "$SHARD_DETECT" | grep -q 'MARK PRESENT' \
  || { echo "sharded detection failed to prove the mark:" >&2; echo "$SHARD_DETECT" >&2; kill "$SHARD_PID" 2>/dev/null; exit 1; }

curl -sf -X POST "http://$SHARD_ADDR/shutdown" >/dev/null
wait "$SHARD_PID"
echo "sharded smoke test OK ($SHARD_ADDR, shard0=$S0 shard1=$S1 connections)"

# Fingerprint smoke test: issue three recipients into an append-only
# ledger, serve the ORIGINAL weights with per-recipient stamping, check
# the attribution header, then leak bob's full copy back through the
# forensic HTTP path and require the accusation to name bob.
echo "== tier-1: fingerprint traitor-tracing smoke test =="
FP_MASTER=0xfeedf00d
for NAME in alice bob carol; do
  ./target/release/qpwm issue --recipient "$NAME" \
    --master "$FP_MASTER" --ledger "$SMOKE/ledger.jsonl" > /dev/null
done
[[ "$(wc -l < "$SMOKE/ledger.jsonl")" -eq 3 ]] \
  || { echo "ledger should hold 3 issuance records:" >&2; cat "$SMOKE/ledger.jsonl" >&2; exit 1; }

./target/release/qpwm serve \
  --schema 'R(a,b)' --table "R=$SMOKE/ring.csv" \
  --weights "$SMOKE/weights.csv" --rule 'q($u; v) :- R($u, v)' \
  --master "$FP_MASTER" --ledger "$SMOKE/ledger.jsonl" \
  --key "$SMOKE/secret.key" --port 0 > "$SMOKE/fp-serve.log" &
FP_PID=$!
FP_ADDR=""
for _ in $(seq 1 50); do
  FP_ADDR="$(sed -n 's|^listening on http://||p' "$SMOKE/fp-serve.log" | head -n 1)"
  [[ -n "$FP_ADDR" ]] && break
  sleep 0.1
done
[[ -n "$FP_ADDR" ]] || { echo "fingerprint serve did not start:" >&2; cat "$SMOKE/fp-serve.log" >&2; kill "$FP_PID" 2>/dev/null; exit 1; }

curl -si "http://$FP_ADDR/answer?i=0&recipient=alice" | grep -q 'X-Fingerprint-Recipient: alice' \
  || { echo "stamped answer missing attribution header" >&2; kill "$FP_PID" 2>/dev/null; exit 1; }

ACCUSE="$(./target/release/qpwm accuse --server "$FP_ADDR" --fetch-as bob)"
echo "$ACCUSE" | grep -q '"accused":{"recipient":"bob"' \
  || { echo "leaked copy was not traced to bob:" >&2; echo "$ACCUSE" >&2; kill "$FP_PID" 2>/dev/null; exit 1; }

curl -sf -X POST "http://$FP_ADDR/shutdown" >/dev/null
wait "$FP_PID"
echo "fingerprint smoke test OK ($FP_ADDR, bob accused)"

# Crash-recovery smoke test: initialize a persistent store over the
# ring instance, embed the mark, then kill a re-marking update at a
# seeded WAL/page-file write (with a torn half-write) and require
# recovery to hand the detector the exact committed state — the claimed
# mark must still verify. A clean retry of the update must then commit
# and keep the mark.
echo "== tier-1: store crash-recovery smoke test =="
./target/release/qpwm store init \
  --store "$SMOKE/db.qps" --schema 'R(a,b)' --table "R=$SMOKE/ring.csv" \
  --weights "$SMOKE/weights.csv" --rule 'q($u; v) :- R($u, v)' > /dev/null
./target/release/qpwm store mark \
  --store "$SMOKE/db.qps" --schema 'R(a,b)' --table "R=$SMOKE/ring.csv" \
  --weights "$SMOKE/weights.csv" --rule 'q($u; v) :- R($u, v)' \
  --message "$MESSAGE" --key-out "$SMOKE/store.key" > /dev/null
printf 'n3,500\nn7,501\n' > "$SMOKE/upd.csv"

set +e
QPWM_STORE_CRASH_OP=5 QPWM_STORE_CRASH_TORN=1 ./target/release/qpwm store update \
  --store "$SMOKE/db.qps" --updates "$SMOKE/upd.csv" --key "$SMOKE/store.key" \
  > "$SMOKE/crash-update.log" 2>&1
CRASH_RC=$?
set -e
[[ "$CRASH_RC" -eq 86 ]] \
  || { echo "seeded crash did not fire (exit $CRASH_RC):" >&2; cat "$SMOKE/crash-update.log" >&2; exit 1; }

VERIFY="$(./target/release/qpwm store verify \
  --store "$SMOKE/db.qps" --key "$SMOKE/store.key" --claim "$MESSAGE")"
echo "$VERIFY" | grep -q 'MARK PRESENT' \
  || { echo "mark lost after crashed update:" >&2; echo "$VERIFY" >&2; exit 1; }

./target/release/qpwm store update \
  --store "$SMOKE/db.qps" --updates "$SMOKE/upd.csv" --key "$SMOKE/store.key" > /dev/null
VERIFY="$(./target/release/qpwm store verify \
  --store "$SMOKE/db.qps" --key "$SMOKE/store.key" --claim "$MESSAGE")"
echo "$VERIFY" | grep -q 'MARK PRESENT' \
  || { echo "mark lost after committed update:" >&2; echo "$VERIFY" >&2; exit 1; }
echo "store crash-recovery smoke test OK (crashed at op 5 with a torn write, recovered, re-marked)"

# Out-of-core smoke test: mark and verify a store through the minimum
# 4-frame buffer pool, require the paged detection evidence to match
# the resident pass bit for bit, check `store stat`, and serve the
# store through the paged plane (pool counters must appear in
# /metrics and answers must match the store's weights).
echo "== tier-1: out-of-core store smoke test =="
./target/release/qpwm store init \
  --store "$SMOKE/oo.qps" --schema 'R(a,b)' --table "R=$SMOKE/ring.csv" \
  --weights "$SMOKE/weights.csv" --rule 'q($u; v) :- R($u, v)' \
  --pool-frames 4 > /dev/null
./target/release/qpwm store mark \
  --store "$SMOKE/oo.qps" --schema 'R(a,b)' --table "R=$SMOKE/ring.csv" \
  --weights "$SMOKE/weights.csv" --rule 'q($u; v) :- R($u, v)' \
  --message "$MESSAGE" --key-out "$SMOKE/oo.key" --pool-frames 4 > /dev/null

RESIDENT_VERIFY="$(./target/release/qpwm store verify \
  --store "$SMOKE/oo.qps" --key "$SMOKE/oo.key" --claim "$MESSAGE")"
PAGED_VERIFY="$(./target/release/qpwm store verify \
  --store "$SMOKE/oo.qps" --key "$SMOKE/oo.key" --claim "$MESSAGE" \
  --paged --pool-frames 4)"
echo "$PAGED_VERIFY" | grep -q 'MARK PRESENT' \
  || { echo "paged verify lost the mark:" >&2; echo "$PAGED_VERIFY" >&2; exit 1; }
echo "$PAGED_VERIFY" | grep -q 'paged detection:' \
  || { echo "paged verify did not go through the pool:" >&2; echo "$PAGED_VERIFY" >&2; exit 1; }
RESIDENT_BITS="$(echo "$RESIDENT_VERIFY" | grep '^extracted bits:')"
PAGED_BITS="$(echo "$PAGED_VERIFY" | grep '^extracted bits:')"
[[ "$RESIDENT_BITS" == "$PAGED_BITS" && -n "$RESIDENT_BITS" ]] \
  || { echo "paged evidence diverged from resident:" >&2; \
       echo "resident: $RESIDENT_BITS" >&2; echo "paged: $PAGED_BITS" >&2; exit 1; }

./target/release/qpwm store stat --store "$SMOKE/oo.qps" | grep -q 'pool traffic' \
  || { echo "store stat lost its pool counters" >&2; exit 1; }

./target/release/qpwm serve --store "$SMOKE/oo.qps" --pool-frames 4 \
  --port 0 > "$SMOKE/oo-serve.log" &
OO_PID=$!
OO_ADDR=""
for _ in $(seq 1 50); do
  OO_ADDR="$(sed -n 's|^listening on http://||p' "$SMOKE/oo-serve.log" | head -n 1)"
  [[ -n "$OO_ADDR" ]] && break
  sleep 0.1
done
[[ -n "$OO_ADDR" ]] || { echo "paged serve did not start:" >&2; cat "$SMOKE/oo-serve.log" >&2; kill "$OO_PID" 2>/dev/null; exit 1; }
grep -q 'serving out-of-core' "$SMOKE/oo-serve.log" \
  || { echo "serve --store did not pick the paged plane:" >&2; cat "$SMOKE/oo-serve.log" >&2; kill "$OO_PID" 2>/dev/null; exit 1; }

OO_ANSWER="$(curl -sf "http://$OO_ADDR/answer?i=0")"
[[ "$OO_ANSWER" == *'"count":1'* ]] \
  || { echo "unexpected paged /answer response: $OO_ANSWER" >&2; kill "$OO_PID" 2>/dev/null; exit 1; }
OO_METRICS="$(curl -sf "http://$OO_ADDR/metrics")"
echo "$OO_METRICS" | grep -q '^qpwm_store_pool_misses [1-9]' \
  || { echo "paged serve never read a page through the pool:" >&2; echo "$OO_METRICS" | grep qpwm_store >&2; kill "$OO_PID" 2>/dev/null; exit 1; }
curl -sf -X POST "http://$OO_ADDR/shutdown" >/dev/null
wait "$OO_PID"
echo "out-of-core smoke test OK ($OO_ADDR, 4-frame pool, paged evidence == resident)"

echo "== tier-1: OK =="
