#!/usr/bin/env bash
# Tier-1 verification: build, test, lint — all offline.
#
# This is the gate every PR must keep green (see ROADMAP.md). Run from
# the repository root:
#
#   ./scripts/tier1.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== tier-1: cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace -- -D warnings

echo "== tier-1: OK =="
