#!/usr/bin/env bash
# Tier-1 verification: build, test, lint — all offline.
#
# This is the gate every PR must keep green (see ROADMAP.md). Run from
# the repository root:
#
#   ./scripts/tier1.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

# The parallel runtime backs every hot path; exercise it explicitly so a
# workspace-level filter can never silently skip it.
echo "== tier-1: qpwm-par (build + test + clippy) =="
cargo build -p qpwm-par
cargo test -q -p qpwm-par
cargo clippy -p qpwm-par -- -D warnings

echo "== tier-1: cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace -- -D warnings

echo "== tier-1: OK =="
