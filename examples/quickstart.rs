//! Quickstart: watermark a small database while preserving a registered
//! parametric query, then recover the mark by querying the server.
//!
//! Run with `cargo run --example quickstart`.

use qpwm::core::detect::HonestServer;
use qpwm::core::local_scheme::SelectionStrategy;
use qpwm::core::{LocalScheme, LocalSchemeConfig};
use qpwm::workloads::graphs::{cycle_union, unary_domain, with_random_weights};
use qpwm_logic::{Formula, ParametricQuery};

fn main() {
    // 1. A bounded-degree instance: eight 6-cycles, random weights.
    let structure = cycle_union(8, 6, 0);
    let instance = with_random_weights(structure, 100, 1_000, 42);
    println!(
        "instance: {} elements, {} tuples",
        instance.structure().universe_size(),
        instance.structure().total_tuples()
    );

    // 2. The registered query: ψ(u, v) ≡ E(u, v) — "the weighted
    //    neighbors of u" (locality rank 1).
    let query = ParametricQuery::new(Formula::atom(0, &[0, 1]), vec![0], vec![1]);
    let domain = unary_domain(instance.structure());

    // 3. Build the Theorem 3 scheme: distortion budget d = 1.
    let config = LocalSchemeConfig {
        rho: 1,
        d: 1,
        strategy: SelectionStrategy::Greedy,
        seed: 7,
    };
    let scheme = LocalScheme::build_over(&instance, &query, domain, &config)
        .expect("regular instances always pair");
    let stats = scheme.stats();
    println!(
        "scheme: |W| = {}, ntp = {}, capacity = {} bits (candidates {})",
        stats.active_elements, stats.num_types, scheme.capacity(), stats.candidate_pairs
    );

    // 4. Mark a message.
    let message: Vec<bool> = (0..scheme.capacity()).map(|i| i % 3 != 1).collect();
    let marked = scheme.mark(instance.weights(), &message);
    let audit = scheme.audit(instance.weights(), &marked);
    println!(
        "marked: local distortion {} (≤ 1), global distortion {} (≤ {})",
        audit.max_local, audit.max_global, scheme.d()
    );
    assert!(audit.is_c_local(1) && audit.is_d_global(scheme.d() as i64));

    // 5. A data server redistributes the marked instance; the owner
    //    detects by querying it like any final user.
    let server = HonestServer::new(scheme.answers().clone(), marked);
    let report = scheme.detect(instance.weights(), &server);
    assert_eq!(report.bits, message);
    println!(
        "detected {} bits, {} clean, message recovered exactly",
        report.bits.len(),
        (report.clean_fraction() * 100.0) as u32
    );
}
