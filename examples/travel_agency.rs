//! The paper's running example (Examples 1–3): the travel-agency
//! database, the `Route` query, distortion audits of the two candidate
//! `Timetable` distortions, and a real watermarking round on a scaled-up
//! version of the database.
//!
//! Run with `cargo run --example travel_agency`.

use qpwm::core::detect::HonestServer;
use qpwm::core::local_scheme::SelectionStrategy;
use qpwm::core::{LocalScheme, LocalSchemeConfig};
use qpwm::workloads::travel::{
    example1_instance, example2_f_values, random_travel, route_query, travel_domain,
};
use qpwm_structures::Weights;

fn minutes(h: i64, m: i64) -> i64 {
    h * 60 + m
}

fn main() {
    // ---- Example 1 & 2: the instance and its f values -----------------
    let travel = example1_instance();
    println!("Example 1 — travel agency instance:");
    print!("{}", travel.instance.structure());
    println!("\nExample 2 — f values (minutes):");
    for (name, f) in example2_f_values() {
        println!("  f({name}) = {f} ({}h{:02})", f / 60, f % 60);
    }

    // ---- Example 3: the two candidate distortions ----------------------
    let query = route_query();
    let answers = query.answers_over(travel.instance.structure(), travel_domain(&travel));
    let original = travel.instance.weights();

    let mut prime = Weights::new(1);
    for (tr, w) in [
        (3u32, minutes(10, 45)),
        (4, minutes(6, 30)),
        (5, minutes(6, 25)),
        (6, minutes(3, 20)),
        (7, minutes(3, 0)),
        (8, minutes(10, 0)),
    ] {
        prime.set(&[tr], w);
    }
    let report = answers.global_distortion(original, &prime);
    println!("\nExample 3 — Timetable': c-local({}) = {}, d-global({}) = {}",
        minutes(0, 10), report.is_c_local(minutes(0, 10)),
        minutes(0, 10), report.is_d_global(minutes(0, 10)));

    let mut second = Weights::new(1);
    for (tr, w) in [
        (3u32, minutes(10, 25)),
        (4, minutes(6, 30)),
        (5, minutes(6, 5)),
        (6, minutes(3, 40)),
        (7, minutes(2, 40)),
        (8, minutes(10, 0)),
    ] {
        second.set(&[tr], w);
    }
    let report2 = answers.global_distortion(original, &second);
    println!("            Timetable'': c-local({}) = {}, d-global({}) = {}",
        minutes(0, 10), report2.is_c_local(minutes(0, 10)),
        minutes(0, 10), report2.is_d_global(minutes(0, 10)));

    // ---- Watermarking a realistic catalogue ----------------------------
    println!("\nWatermarking a scaled-up travel catalogue:");
    let big = random_travel(400, 900, 3, 4, 11);
    let config = LocalSchemeConfig {
        rho: 1,
        d: 2,
        strategy: SelectionStrategy::Greedy,
        seed: 3,
    };
    let scheme = LocalScheme::build_over(&big.instance, &query, travel_domain(&big), &config)
        .expect("catalogue instances pair");
    let stats = scheme.stats();
    println!(
        "  travels = {}, transports = {}, |W| = {}, ntp(1) = {}, capacity = {} bits",
        big.travels.len(),
        big.transports.len(),
        stats.active_elements,
        stats.num_types,
        scheme.capacity()
    );
    let message: Vec<bool> = (0..scheme.capacity()).map(|i| (i * 7) % 3 == 0).collect();
    let marked = scheme.mark(big.instance.weights(), &message);
    let audit = scheme.audit(big.instance.weights(), &marked);
    println!(
        "  marked with {} bits: max duration change ±{} min, max f change {} min (budget {})",
        message.len(),
        audit.max_local,
        audit.max_global,
        scheme.d()
    );
    let server = HonestServer::new(scheme.answers().clone(), marked);
    let detected = scheme.detect(big.instance.weights(), &server);
    assert_eq!(detected.bits, message);
    println!("  detector recovered the full mark by replaying Route queries only");
}
