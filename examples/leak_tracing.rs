//! The paper's 3-tier scenario end to end: an owner sells differently
//! marked copies of a travel catalogue to several data servers; one of
//! them leaks (and even adds noise); the owner, posing as a final user,
//! queries the leak and attributes it.
//!
//! Run with `cargo run --release --example leak_tracing`.

use qpwm::core::adversary::Attack;
use qpwm::core::detect::HonestServer;
use qpwm::core::local_scheme::{LocalSchemeConfig, SelectionStrategy};
use qpwm::core::owner::Owner;
use qpwm::core::LocalScheme;
use qpwm::workloads::travel::{random_travel, route_query, travel_domain};

fn main() {
    // The owner's catalogue and registered query.
    let catalogue = random_travel(500, 1_200, 3, 4, 21);
    let query = route_query();
    let scheme = LocalScheme::build_over(
        &catalogue.instance,
        &query,
        travel_domain(&catalogue),
        &LocalSchemeConfig { rho: 1, d: 2, strategy: SelectionStrategy::Greedy, seed: 11 },
    )
    .expect("catalogues pair");
    println!(
        "catalogue: {} travels / {} transports; scheme capacity {} bits",
        catalogue.travels.len(),
        catalogue.transports.len(),
        scheme.capacity()
    );

    // Issue per-server copies.
    let mut owner = Owner::new(
        scheme.marking().clone(),
        0x0B5E55ED ^ 0xBADC0DE, // any u64 secret
        catalogue.instance.weights().clone(),
    );
    let servers = ["flights-r-us.example", "cheap-trips.example", "sky-search.example"];
    let mut copies = Vec::new();
    for s in servers {
        copies.push((s, owner.issue(s)));
    }
    println!("issued {} marked copies", copies.len());

    // cheap-trips leaks its copy, adding light noise to cover its tracks.
    let leaked = &copies[1].1;
    let attack = Attack::UniformNoise { amplitude: 1, fraction: 0.15 };
    let tampered = attack.apply(leaked, scheme.answers(), 99);

    // The owner discovers a suspicious site and queries it like a user.
    let suspect = HonestServer::new(scheme.answers().clone(), tampered);
    let attribution = owner.identify(&suspect).expect("copies issued");
    println!(
        "attribution: {} ({} of {} bits, significance {:.2e})",
        attribution.server, attribution.matches, attribution.bits, attribution.significance
    );
    if let Some((runner, matches)) = &attribution.runner_up {
        println!("runner-up:   {runner} ({matches} bits)");
    }
    assert_eq!(attribution.server, "cheap-trips.example");
    assert!(attribution.significance < 1e-9);
    println!("verdict: cheap-trips.example leaked the catalogue");
}
