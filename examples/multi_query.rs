//! Preserving *several* registered queries at once — the situation the
//! paper's introduction describes (a server registers ψ₁, ..., ψ_k and
//! the owner must bound the distortion on all of them).
//!
//! Here a travel server registers both "the transports of travel u"
//! (written in the text formula syntax) and "the two-hop connections of
//! station u" over the same weighted instance.
//!
//! Run with `cargo run --release --example multi_query`.

use qpwm::core::detect::HonestServer;
use qpwm::core::local_scheme::{LocalSchemeConfig, SelectionStrategy};
use qpwm::core::MultiQueryScheme;
use qpwm::logic::parse_formula;
use qpwm::workloads::graphs::{cycle_union, unary_domain, with_random_weights};

fn main() {
    // Instance: 40 disjoint 6-cycles with random weights.
    let instance = with_random_weights(cycle_union(40, 6, 0), 1_000, 9_000, 2);
    let schema = instance.structure().schema();

    // Two registered queries, written in the FO text syntax.
    let edge = parse_formula("E(u, v)", schema).expect("parses");
    let two_hop = parse_formula("exists z (E(u, z) & E(z, v))", schema).expect("parses");
    let edge_query = edge.query(&["u"], &["v"]);
    let two_hop_query = two_hop.query(&["u"], &["v"]);
    println!("registered: ψ1(u; v) = E(u,v)");
    println!("            ψ2(u; v) = ∃z (E(u,z) ∧ E(z,v))");

    let domain = unary_domain(instance.structure());
    let config = LocalSchemeConfig {
        rho: 2, // covers the two-hop query's locality
        d: 2,
        strategy: SelectionStrategy::Greedy,
        seed: 4,
    };
    let scheme = MultiQueryScheme::build(
        &instance,
        &[(&edge_query, domain.clone()), (&two_hop_query, domain)],
        &config,
    )
    .expect("regular instances pair");
    println!(
        "scheme: capacity = {} bits, worst separation = {} (budget {})",
        scheme.capacity(),
        scheme.max_separation(),
        scheme.d()
    );

    let message: Vec<bool> = (0..scheme.capacity()).map(|i| (i / 3) % 2 == 0).collect();
    let marked = scheme.mark(instance.weights(), &message);
    let audits = scheme.audit(instance.weights(), &marked);
    println!(
        "audit: ψ1 distortion ≤ {}, ψ2 distortion ≤ {} (both within d = {})",
        audits[0],
        audits[1],
        scheme.d()
    );
    assert!(audits.iter().all(|&d| d <= scheme.d() as i64));

    // detection through the *first* query's answers alone
    let server = HonestServer::new(scheme.answers(0).clone(), marked);
    let report = scheme.detect(instance.weights(), &server);
    assert_eq!(report.bits, message);
    println!(
        "detector recovered {} bits via ψ1 answers only (significance {:.1e})",
        report.bits.len(),
        report.match_significance(&message)
    );
}
