//! Example 4: watermarking an XML document while preserving the pattern
//! query `school/student[firstname=$a]/exam`.
//!
//! Reproduces the paper's numbers (`f(Robert) = 28`, distortion 1 after
//! marking) on the exact document, then runs the Theorem 5 tree scheme on
//! a large random school.
//!
//! Run with `cargo run --example xml_school`.

use qpwm::core::detect::HonestServer;
use qpwm::core::TreeScheme;
use qpwm::trees::automaton::BottomUpAutomaton;
use qpwm::trees::pattern::PatternQuery;
use qpwm::trees::xml::{example4_school, XmlDocument};
use qpwm::workloads::xml_gen::{random_school, school_weights};

/// One canonical parameter node per distinct firstname value — all other
/// parameters provably yield empty or duplicate answers, so restricting
/// the domain loses nothing and keeps evaluation linear.
fn canonical_parameters(doc: &XmlDocument) -> Vec<Vec<u32>> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for f in doc.nodes_with_tag("firstname") {
        if let Some(&t) = doc.tree.children(f).first() {
            if seen.insert(doc.tree.label(t)) {
                out.push(vec![t]);
            }
        }
    }
    out
}

fn main() {
    // ---- The paper's document ------------------------------------------
    let doc = example4_school();
    let query = PatternQuery::parse("school/student[firstname=$a]/exam").expect("parses");
    let weights = school_weights(&doc);

    // f(Robert): sum of exam scores of students named Robert.
    let robert = doc.text_symbol("Robert").expect("Robert occurs");
    let a = doc
        .tree
        .preorder()
        .into_iter()
        .find(|&n| doc.tree.label(n) == robert)
        .expect("robert node");
    let answers = query.answer_set_unranked(&doc, a);
    let f_robert: i64 = answers.iter().map(|&t| weights.get(&[t])).sum();
    println!("Example 4 — f(Robert, ψ) = {f_robert} (paper: 28)");
    assert_eq!(f_robert, 28);

    // ---- Compile the pattern to a tree automaton and build the scheme --
    let compiled = query.compile(&doc);
    println!(
        "compiled automaton: m = {} semantic states over {} tracked names",
        compiled.automaton().num_states(),
        compiled.automaton().num_values()
    );
    let binary = doc.tree.to_binary();
    let scheme = TreeScheme::build_over(&binary, &compiled, 2, canonical_parameters(&doc));
    println!(
        "tiny document: |W| = {} active exam nodes -> capacity {} bits (needs ≥ 2m actives per block)",
        scheme.stats().active_nodes,
        scheme.capacity()
    );

    // ---- A large school where the scheme has room -----------------------
    let names = ["Robert", "John", "Ana", "Wei"];
    let students = 5_000u32;
    let big = random_school(students, &names, 9);
    let big_query = PatternQuery::parse("school/student[firstname=$a]/exam").expect("parses");
    let big_compiled = big_query.compile(&big);
    let big_binary = big.tree.to_binary();
    let big_weights = school_weights(&big);
    let scheme = TreeScheme::build_over(&big_binary, &big_compiled, 2, canonical_parameters(&big));
    let stats = scheme.stats();
    println!(
        "\nlarge school: {students} students, |W| = {}, m = {}, blocks = {}, capacity = {} bits",
        stats.active_nodes, stats.num_states, stats.blocks, scheme.capacity()
    );

    let message: Vec<bool> = (0..scheme.capacity()).map(|i| i % 2 == 0).collect();
    let marked = scheme.mark(&big_weights, &message);
    let audit = scheme.audit(&big_weights, &marked);
    println!(
        "marked: per-exam change ≤ {}, per-query (any firstname) change ≤ {} (Theorem 5 bound: 1)",
        audit.max_local, audit.max_global
    );
    assert!(audit.is_d_global(1));

    let server = HonestServer::new(scheme.family().clone(), marked);
    let report = scheme.detect(&big_weights, &server);
    assert_eq!(report.bits, message);
    println!("detector recovered all {} bits from pattern-query answers", message.len());
}
