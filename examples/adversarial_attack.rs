//! The adversarial model in action: a malicious server distorts the
//! marked database to erase the mark, within the bounded-distortion
//! assumption; the robust (repetition) scheme survives.
//!
//! Run with `cargo run --example adversarial_attack`.

use qpwm::core::adversary::{simulate_attack, Attack, RobustScheme};
use qpwm::core::local_scheme::SelectionStrategy;
use qpwm::core::{LocalScheme, LocalSchemeConfig};
use qpwm::workloads::graphs::{cycle_union, unary_domain, with_random_weights};
use qpwm_logic::{Formula, ParametricQuery};

fn main() {
    // A large regular instance so the base scheme has many pairs.
    let structure = cycle_union(60, 6, 0);
    let instance = with_random_weights(structure, 1_000, 5_000, 5);
    let query = ParametricQuery::new(Formula::atom(0, &[0, 1]), vec![0], vec![1]);
    let config = LocalSchemeConfig {
        rho: 1,
        d: 3,
        strategy: SelectionStrategy::Greedy,
        seed: 1,
    };
    let base = LocalScheme::build_over(
        &instance,
        &query,
        unary_domain(instance.structure()),
        &config,
    )
    .expect("builds");
    println!(
        "base scheme: {} pairs over |W| = {}",
        base.capacity(),
        base.stats().active_elements
    );

    // Fact 1: repetition turns the non-adversarial scheme adversarial.
    let repetition = 5;
    let robust = RobustScheme::new(base.marking().clone(), repetition);
    let message: Vec<bool> = (0..robust.capacity()).map(|i| i % 2 == 0).collect();
    println!(
        "robust scheme: R = {repetition}, capacity = {} bits",
        robust.capacity()
    );

    let answers = base.answers().clone();
    println!("\n{:<44} {:>8} {:>10}", "attack", "bit err", "atk d'");
    for (name, attack) in [
        ("none (honest redistribution)", Attack::ConstantShift { delta: 0 }),
        ("constant +25 shift", Attack::ConstantShift { delta: 25 }),
        ("uniform ±1 noise on 10% of weights", Attack::UniformNoise { amplitude: 1, fraction: 0.1 }),
        ("uniform ±2 noise on 30% of weights", Attack::UniformNoise { amplitude: 2, fraction: 0.3 }),
        ("uniform ±3 noise on 60% of weights", Attack::UniformNoise { amplitude: 3, fraction: 0.6 }),
        ("round to multiples of 50 (breaks data!)", Attack::Rounding { granularity: 50 }),
    ] {
        let outcome = simulate_attack(&robust, instance.weights(), &answers, &message, &attack, 77);
        println!(
            "{:<44} {:>3}/{:<4} {:>10}",
            name,
            outcome.bit_errors,
            outcome.message_bits,
            outcome.attacker_distortion
        );
    }
    println!(
        "\nreading: light attacks leave the majority decoding intact; only\n\
         attacks whose own distortion d' wrecks the data (rounding) erase\n\
         the mark — exactly Assumption 1's trade-off."
    );
}
