//! Theorem 4 end-to-end: watermarking a graph of bounded clique-width
//! while preserving the edge query `ψ(u, v) ≡ E(u, v)`, by marking the
//! leaves of its k-expression parse tree.
//!
//! The paper reduces MSO queries on bounded clique-width structures to
//! MSO (hence automaton) queries on parse trees; here the edge query
//! becomes a `2(k+1)²`-state automaton and the Theorem 5 tree scheme
//! does the rest.
//!
//! Run with `cargo run --release --example cliquewidth_graph`.

use qpwm::core::cliquewidth::{clique_chain, edge_query_automaton, ParseTree};
use qpwm::core::detect::HonestServer;
use qpwm::core::TreeScheme;
use qpwm::structures::Weights;

fn main() {
    let n = 600u32;
    let k = 3u32;
    let expr = clique_chain(n);
    let graph = expr.eval();
    println!(
        "clique-width ≤ {k} graph: {} vertices, {} edges",
        graph.universe_size(),
        graph.tuples(0).len() / 2
    );

    let parse = ParseTree::of(&expr, k);
    println!("parse tree: {} nodes, {} vertex leaves", parse.tree.len(), parse.leaf_of_vertex.len());

    let query = edge_query_automaton(k);
    println!("edge-query automaton: m = {} states", query.automaton().num_states());

    // Weights on graph vertices, carried by their creating leaves.
    let mut weights = Weights::new(1);
    for (v, &leaf) in parse.leaf_of_vertex.iter().enumerate() {
        weights.set(&[leaf], 1_000 + v as i64 * 3);
    }

    // Parameter domain: every vertex leaf (the only parameters with
    // non-empty answers).
    let domain: Vec<Vec<u32>> = parse.leaf_of_vertex.iter().map(|&l| vec![l]).collect();
    let scheme = TreeScheme::build_over(&parse.tree, &query, 2, domain);
    let stats = scheme.stats();
    println!(
        "scheme: |W| = {} active leaves, {} blocks, capacity = {} bits",
        stats.active_nodes, stats.blocks, scheme.capacity()
    );

    let message: Vec<bool> = (0..scheme.capacity()).map(|i| i % 2 == 1).collect();
    let marked = scheme.mark(&weights, &message);
    let audit = scheme.audit(&weights, &marked);
    println!(
        "marked: vertex-weight change ≤ {}, per-neighborhood aggregate change ≤ {} (bound 1)",
        audit.max_local, audit.max_global
    );
    assert!(audit.is_c_local(1) && audit.is_d_global(1));

    let server = HonestServer::new(scheme.family().clone(), marked);
    let report = scheme.detect(&weights, &server);
    assert_eq!(report.bits, message);
    println!(
        "detector recovered all {} bits by asking edge queries about the graph",
        message.len()
    );
}
