//! Criterion: marker throughput (Theorem 3 scheme construction and
//! marking) versus instance size and strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qpwm_core::local_scheme::{LocalScheme, LocalSchemeConfig, SelectionStrategy};
use qpwm_logic::{Formula, ParametricQuery};
use qpwm_workloads::graphs::{cycle_union, unary_domain, with_random_weights};
use std::hint::black_box;

fn edge_query() -> ParametricQuery {
    ParametricQuery::new(Formula::atom(0, &[0, 1]), vec![0], vec![1])
}

fn bench_scheme_build(c: &mut Criterion) {
    let query = edge_query();
    let mut group = c.benchmark_group("local_scheme_build");
    group.sample_size(10);
    for cycles in [8u32, 32, 128] {
        let instance = with_random_weights(cycle_union(cycles, 6, 0), 100, 1_000, 1);
        let domain = unary_domain(instance.structure());
        group.bench_with_input(BenchmarkId::new("greedy", cycles * 6), &cycles, |b, _| {
            b.iter(|| {
                let config = LocalSchemeConfig {
                    rho: 1,
                    d: 1,
                    strategy: SelectionStrategy::Greedy,
                    seed: 7,
                };
                black_box(
                    LocalScheme::build_over(&instance, &query, domain.clone(), &config)
                        .expect("builds"),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("sampling", cycles * 6), &cycles, |b, _| {
            b.iter(|| {
                let config = LocalSchemeConfig {
                    rho: 1,
                    d: 2,
                    strategy: SelectionStrategy::Sampling { max_retries: 100 },
                    seed: 7,
                };
                black_box(LocalScheme::build_over(&instance, &query, domain.clone(), &config).ok())
            })
        });
    }
    group.finish();
}

fn bench_marking(c: &mut Criterion) {
    let query = edge_query();
    let instance = with_random_weights(cycle_union(128, 6, 0), 100, 1_000, 1);
    let domain = unary_domain(instance.structure());
    let scheme = LocalScheme::build_over(
        &instance,
        &query,
        domain,
        &LocalSchemeConfig { rho: 1, d: 1, strategy: SelectionStrategy::Greedy, seed: 7 },
    )
    .expect("builds");
    let message: Vec<bool> = (0..scheme.capacity()).map(|i| i % 2 == 0).collect();
    c.bench_function("local_scheme_mark_768_elements", |b| {
        b.iter(|| black_box(scheme.mark(instance.weights(), &message)))
    });
}

criterion_group!(benches, bench_scheme_build, bench_marking);
criterion_main!(benches);
