//! Criterion: tree-automaton machinery — runs, pebbled answer sets, the
//! overlay trick, pattern compilation and the Theorem 5 scheme build.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qpwm_core::TreeScheme;
use qpwm_trees::automaton::{TreeAutomaton, STAR};
use qpwm_trees::pattern::PatternQuery;
use qpwm_trees::pebble::{pebbled_symbol, PebbledQuery};
use qpwm_workloads::xml_gen::{random_binary_tree, random_school};
use std::hint::black_box;

fn label_one_query() -> PebbledQuery {
    let mut a = TreeAutomaton::new(2, 0);
    for base in [0u32, 1] {
        for bits in 0..4u32 {
            let sym = pebbled_symbol(base, bits, 2);
            let hit = base == 1 && bits & 0b10 != 0;
            for ql in [STAR, 0, 1] {
                for qr in [STAR, 0, 1] {
                    let seen = hit || ql == 1 || qr == 1;
                    a.add_transition(ql, qr, sym, u32::from(seen));
                }
            }
        }
    }
    a.set_accepting(1, true);
    PebbledQuery::new(a, 1)
}

fn bench_answer_set(c: &mut Criterion) {
    let q = label_one_query();
    let mut group = c.benchmark_group("pebbled_answer_set");
    for n in [500u32, 2_000, 8_000] {
        let tree = random_binary_tree(n, 2, 5);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(q.answer_set(&tree, &[0])))
        });
    }
    group.finish();
}

fn bench_tree_scheme_build(c: &mut Criterion) {
    let q = label_one_query();
    let mut group = c.benchmark_group("tree_scheme_build");
    group.sample_size(10);
    for n in [500u32, 2_000] {
        let tree = random_binary_tree(n, 2, 5);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(TreeScheme::build(&tree, &q, 2)).capacity())
        });
    }
    group.finish();
}

fn bench_pattern_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("pattern_compile_and_eval");
    group.sample_size(10);
    let query = PatternQuery::parse("school/student[firstname=$a]/exam").expect("parses");
    for students in [100u32, 400] {
        let doc = random_school(students, &["A", "B", "C"], 1);
        group.bench_with_input(BenchmarkId::new("compile", students), &students, |b, _| {
            b.iter(|| black_box(query.compile(&doc)))
        });
        let compiled = query.compile(&doc);
        let binary = doc.tree.to_binary();
        // a canonical parameter: the first firstname text node
        let a = doc
            .nodes_with_tag("firstname")
            .first()
            .and_then(|&f| doc.tree.children(f).first().copied())
            .expect("firstname text");
        group.bench_with_input(BenchmarkId::new("answer_set", students), &students, |b, _| {
            b.iter(|| black_box(compiled.answer_set(&binary, &[a])))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_answer_set, bench_tree_scheme_build, bench_pattern_compile);
criterion_main!(benches);
