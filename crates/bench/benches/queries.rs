//! Criterion: query evaluation — the conjunctive-query join planner
//! versus the generic enumerate-and-check evaluator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qpwm_logic::{Formula, ParametricQuery};
use qpwm_workloads::graphs::random_bounded_degree;
use std::hint::black_box;

fn edge_formula() -> Formula {
    Formula::atom(0, &[0, 1])
}

fn two_hop_formula() -> Formula {
    Formula::exists(2, Formula::atom(0, &[0, 2]).and(Formula::atom(0, &[2, 1])))
}

fn bench_answer_sets(c: &mut Criterion) {
    let mut group = c.benchmark_group("answer_set");
    for n in [200u32, 1_000, 4_000] {
        let s = random_bounded_degree(n, 4, n * 3 / 2, 3);
        for (name, formula) in [("edge", edge_formula()), ("two_hop", two_hop_formula())] {
            // the planner path (ParametricQuery compiles CQs automatically)
            let fast = ParametricQuery::new(formula.clone(), vec![0], vec![1]);
            assert!(fast.has_cq_plan());
            group.bench_with_input(
                BenchmarkId::new(format!("{name}_join"), n),
                &n,
                |b, _| b.iter(|| black_box(fast.answer_set(&s, &[0]))),
            );
            // the generic path (wrap in a redundant Or to disable the plan)
            if n <= 1_000 {
                let slow =
                    ParametricQuery::new(formula.clone().or(formula.clone()), vec![0], vec![1]);
                assert!(!slow.has_cq_plan());
                group.bench_with_input(
                    BenchmarkId::new(format!("{name}_generic"), n),
                    &n,
                    |b, _| b.iter(|| black_box(slow.answer_set(&s, &[0]))),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_answer_sets);
criterion_main!(benches);
