//! Criterion: baseline schemes — Agrawal–Kiernan marking/detection and
//! Khanna–Zane construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qpwm_baselines::agrawal_kiernan::{AkConfig, AkScheme};
use qpwm_baselines::khanna_zane::{KzGraph, KzScheme};
use qpwm_structures::Weights;
use std::hint::black_box;

fn bench_ak(c: &mut Criterion) {
    let mut group = c.benchmark_group("agrawal_kiernan");
    for n in [1_000u32, 10_000] {
        let universe: Vec<Vec<u32>> = (0..n).map(|e| vec![e]).collect();
        let mut w = Weights::new(1);
        for e in 0..n {
            w.set(&[e], 1_000 + e as i64 % 500);
        }
        let s = AkScheme::new(AkConfig::default());
        group.bench_with_input(BenchmarkId::new("mark", n), &n, |b, _| {
            b.iter(|| black_box(s.mark(&w, &universe)))
        });
        let marked = s.mark(&w, &universe);
        group.bench_with_input(BenchmarkId::new("detect", n), &n, |b, _| {
            b.iter(|| black_box(s.detect(&marked, &universe)))
        });
    }
    group.finish();
}

fn bench_kz(c: &mut Criterion) {
    let mut group = c.benchmark_group("khanna_zane_build");
    group.sample_size(10);
    for n in [12u32, 24] {
        let mut edges = Vec::new();
        for i in 0..n {
            edges.push((i, (i + 1) % n, 10));
        }
        for i in 0..n / 2 {
            edges.push((i, i + n / 2, 25));
        }
        let g = KzGraph::new(n as usize, edges);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(KzScheme::build(&g, 2, 3)).capacity())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ak, bench_kz);
criterion_main!(benches);
