//! Criterion: detector throughput — collecting answers from a server and
//! extracting the mark.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qpwm_core::detect::HonestServer;
use qpwm_core::local_scheme::{LocalScheme, LocalSchemeConfig, SelectionStrategy};
use qpwm_logic::{Formula, ParametricQuery};
use qpwm_workloads::graphs::{cycle_union, unary_domain, with_random_weights};
use std::hint::black_box;

fn bench_detect(c: &mut Criterion) {
    let query = ParametricQuery::new(Formula::atom(0, &[0, 1]), vec![0], vec![1]);
    let mut group = c.benchmark_group("local_scheme_detect");
    for cycles in [16u32, 64, 256] {
        let instance = with_random_weights(cycle_union(cycles, 6, 0), 100, 1_000, 1);
        let domain = unary_domain(instance.structure());
        let scheme = LocalScheme::build_over(
            &instance,
            &query,
            domain,
            &LocalSchemeConfig { rho: 1, d: 1, strategy: SelectionStrategy::Greedy, seed: 7 },
        )
        .expect("builds");
        let message: Vec<bool> = (0..scheme.capacity()).map(|i| i % 2 == 0).collect();
        let marked = scheme.mark(instance.weights(), &message);
        let server = HonestServer::new(scheme.answers().clone(), marked);
        group.bench_with_input(BenchmarkId::from_parameter(cycles * 6), &cycles, |b, _| {
            b.iter(|| black_box(scheme.detect(instance.weights(), &server)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_detect);
criterion_main!(benches);
