//! Criterion: VC-dimension search and exact capacity counting (both
//! intentionally exponential — Theorem 1 — measured at tractable sizes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qpwm_core::capacity::{Bipartite, CapacityProblem};
use qpwm_core::impossibility::powerset_active_sets;
use qpwm_logic::{vc_dimension, SetSystem};
use qpwm_workloads::graphs::random_bipartite;
use std::hint::black_box;

fn bench_vc(c: &mut Criterion) {
    let mut group = c.benchmark_group("vc_dimension");
    for n in [4u32, 6, 8] {
        let sets = powerset_active_sets(n);
        let system = SetSystem::from_family(&sets);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(vc_dimension(&system)))
        });
    }
    group.finish();
}

fn bench_capacity(c: &mut Criterion) {
    let mut group = c.benchmark_group("count_markings");
    group.sample_size(10);
    for n in [4u32, 6] {
        let sets = powerset_active_sets(n);
        let p = CapacityProblem::new(&sets);
        group.bench_with_input(BenchmarkId::new("at_most_1", n), &n, |b, _| {
            b.iter(|| black_box(p.count_at_most(1)))
        });
    }
    group.finish();
}

fn bench_permanent(c: &mut Criterion) {
    let mut group = c.benchmark_group("permanent");
    group.sample_size(10);
    for n in [5usize, 7] {
        let g = Bipartite::new(random_bipartite(n, 0.6, 2));
        group.bench_with_input(BenchmarkId::new("ryser", n), &n, |b, _| {
            b.iter(|| black_box(g.permanent()))
        });
        group.bench_with_input(BenchmarkId::new("via_marking", n), &n, |b, _| {
            b.iter(|| black_box(g.matchings_via_marking()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vc, bench_capacity, bench_permanent);
criterion_main!(benches);
