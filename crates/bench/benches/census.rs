//! Criterion: Gaifman graph construction and ρ-neighborhood type
//! censuses — the combinatorial heart of the Theorem 3 marker.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qpwm_structures::{types::classify_elements, GaifmanGraph};
use qpwm_workloads::graphs::random_bounded_degree;
use std::hint::black_box;

fn bench_gaifman(c: &mut Criterion) {
    let mut group = c.benchmark_group("gaifman_graph");
    for n in [500u32, 2_000, 8_000] {
        let s = random_bounded_degree(n, 4, n * 3 / 2, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(GaifmanGraph::of(&s)))
        });
    }
    group.finish();
}

fn bench_census(c: &mut Criterion) {
    let mut group = c.benchmark_group("type_census");
    group.sample_size(10);
    for n in [500u32, 2_000] {
        let s = random_bounded_degree(n, 4, n * 3 / 2, 3);
        let g = GaifmanGraph::of(&s);
        for rho in [1u32, 2] {
            group.bench_with_input(
                BenchmarkId::new(format!("rho{rho}"), n),
                &n,
                |b, _| b.iter(|| black_box(classify_elements(&s, &g, rho)).num_types()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_gaifman, bench_census);
criterion_main!(benches);
