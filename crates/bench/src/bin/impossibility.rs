//! Experiments X-T2, X-R1, X-T6: the impossibility side of the paper.
//!
//! * X-T2 — Theorem 2: on the fully shattered family `G_n`, capacity at
//!   any fixed distortion budget grows only logarithmically in `|W|`
//!   (no watermarking *scheme* = no `|W|^(1−qε)` growth).
//! * X-R1 — Remark 1: the half-shattered family still supports `|W|/4`
//!   bits at distortion 0.
//! * X-T6 — Theorem 6's grid family: same collapse as X-T2 through an
//!   MSO-definable (combinatorially instantiated) shattering.
//!
//! Run with `cargo run --release -p qpwm-bench --bin impossibility`.

use qpwm_bench::Table;
use qpwm_core::capacity::CapacityProblem;
use qpwm_core::impossibility::{
    grid_shattered_system, half_shattered_active_sets, half_shattered_scheme,
    powerset_active_sets, powerset_structure,
};
use qpwm_logic::{vc_of_answers, Formula, ParametricQuery};

fn main() {
    // ---- X-T2: the shattered family --------------------------------------
    let mut t2 = Table::new(vec![
        "|W|",
        "VC(psi,G)",
        "bits(d=0)",
        "bits(d=1)",
        "bits(d=2)",
        "unconstrained",
    ]);
    for n in [3u32, 4, 5, 6, 8] {
        let sets = powerset_active_sets(n);
        let p = CapacityProblem::new(&sets);
        // VC via actual FO evaluation for small n; by construction for
        // larger ones (the test suite verifies they agree).
        let vc = if n <= 5 {
            let s = powerset_structure(n);
            let q = ParametricQuery::new(Formula::atom(0, &[0, 1]), vec![0], vec![1]);
            vc_of_answers(&q.answers(&s))
        } else {
            n as usize
        };
        t2.row(vec![
            n.to_string(),
            vc.to_string(),
            format!("{:.1}", p.bits_at(0)),
            format!("{:.1}", p.bits_at(1)),
            format!("{:.1}", p.bits_at(2)),
            format!("{:.1}", n as f64 * 3f64.log2()),
        ]);
    }
    t2.print("X-T2 — Theorem 2: fully shattered G_n (capacity stays O(d log|W|))");

    // ---- X-R1: the half-shattered family ----------------------------------
    let mut r1 = Table::new(vec![
        "n (=|W|)",
        "shattered half",
        "scheme bits (|W|/4)",
        "bits(d=0) exact",
        "max separation",
    ]);
    for n in [4u32, 8, 12, 16] {
        let sets = half_shattered_active_sets(n);
        let scheme = half_shattered_scheme(n);
        let p = CapacityProblem::new(&sets);
        let params: Vec<Vec<u32>> = (0..sets.len()).map(|i| vec![i as u32]).collect();
        let family = qpwm_structures::AnswerFamily::from_nested(params, &sets);
        r1.row(vec![
            n.to_string(),
            (n / 2).to_string(),
            scheme.capacity().to_string(),
            format!("{:.1}", p.bits_at(0)),
            scheme.max_separation(&family).to_string(),
        ]);
    }
    r1.print("X-R1 — Remark 1: half-shattered family carries |W|/4 bits at d = 0");

    // ---- X-T6: grids --------------------------------------------------------
    let mut t6 = Table::new(vec!["row n", "VC", "bits(d=0)", "bits(d=1)"]);
    for n in [3u32, 4, 5, 6] {
        let sets = grid_shattered_system(n);
        let system = qpwm_logic::SetSystem::from_family(&sets);
        let p = CapacityProblem::new(&sets);
        t6.row(vec![
            n.to_string(),
            qpwm_logic::vc_dimension(&system).to_string(),
            format!("{:.1}", p.bits_at(0)),
            format!("{:.1}", p.bits_at(1)),
        ]);
    }
    t6.print("X-T6 — Theorem 6: MSO-shattered grid rows collapse identically");
}
