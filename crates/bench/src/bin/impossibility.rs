//! Experiments X-T2, X-R1, X-T6: the impossibility side of the paper.
//!
//! * X-T2 — Theorem 2: on the fully shattered family `G_n`, capacity at
//!   any fixed distortion budget grows only logarithmically in `|W|`
//!   (no watermarking *scheme* = no `|W|^(1−qε)` growth). The v2
//!   counting engine pushes the exact sweep from `n = 8` to `n = 10`
//!   (1024 constraints).
//! * X-R1 — Remark 1: the half-shattered family still supports `|W|/4`
//!   bits at distortion 0; the free half is a closed-form `3^(n/2)`
//!   factor for the engine, so `n = 24` is exact and instant.
//! * X-T6 — Theorem 6's grid family: same collapse as X-T2 through an
//!   MSO-definable (combinatorially instantiated) shattering.
//!
//! Run with `cargo run --release -p qpwm-bench --bin impossibility`.
//! Pass `--threads <n>` to pin the worker count. Alongside the text
//! tables the run writes `RESULTS_impossibility.json` with one
//! machine-readable row per printed row.

use qpwm_bench::Table;
use qpwm_core::capacity::CapacityProblem;
use qpwm_core::impossibility::{
    grid_shattered_system, half_shattered_active_sets, half_shattered_scheme,
    powerset_active_sets, powerset_structure,
};
use qpwm_logic::{vc_of_answers, Formula, ParametricQuery};

fn main() {
    let threads = qpwm_bench::parse_threads_flag();
    let mut json_rows: Vec<String> = Vec::new();

    // ---- X-T2: the shattered family --------------------------------------
    let mut t2 = Table::new(vec![
        "|W|",
        "VC(psi,G)",
        "bits(d=0)",
        "bits(d=1)",
        "bits(d=2)",
        "unconstrained",
    ]);
    for n in [3u32, 4, 5, 6, 8, 10] {
        let sets = powerset_active_sets(n);
        let p = CapacityProblem::new(&sets);
        // VC via actual FO evaluation for small n; by construction for
        // larger ones (the test suite verifies they agree).
        let vc = if n <= 5 {
            let s = powerset_structure(n);
            let q = ParametricQuery::new(Formula::atom(0, &[0, 1]), vec![0], vec![1]);
            vc_of_answers(&q.answers(&s))
        } else {
            n as usize
        };
        let bits: Vec<f64> = (0..3).map(|d| p.bits_at(d)).collect();
        t2.row(vec![
            n.to_string(),
            vc.to_string(),
            format!("{:.1}", bits[0]),
            format!("{:.1}", bits[1]),
            format!("{:.1}", bits[2]),
            format!("{:.1}", n as f64 * 3f64.log2()),
        ]);
        json_rows.push(format!(
            "{{\"experiment\": \"X-T2\", \"w\": {n}, \"vc\": {vc}, \"bits_d0\": {:.3}, \
             \"bits_d1\": {:.3}, \"bits_d2\": {:.3}}}",
            bits[0], bits[1], bits[2]
        ));
    }
    t2.print("X-T2 — Theorem 2: fully shattered G_n (capacity stays O(d log|W|))");

    // ---- X-R1: the half-shattered family ----------------------------------
    let mut r1 = Table::new(vec![
        "n (=|W|)",
        "shattered half",
        "scheme bits (|W|/4)",
        "bits(d=0) exact",
        "max separation",
    ]);
    for n in [4u32, 8, 12, 16, 24] {
        let sets = half_shattered_active_sets(n);
        let scheme = half_shattered_scheme(n);
        let p = CapacityProblem::new(&sets);
        let params: Vec<Vec<u32>> = (0..sets.len()).map(|i| vec![i as u32]).collect();
        let family = qpwm_structures::AnswerFamily::from_nested(params, &sets);
        let bits0 = p.bits_at(0);
        let sep = scheme.max_separation(&family);
        r1.row(vec![
            n.to_string(),
            (n / 2).to_string(),
            scheme.capacity().to_string(),
            format!("{bits0:.1}"),
            sep.to_string(),
        ]);
        json_rows.push(format!(
            "{{\"experiment\": \"X-R1\", \"w\": {n}, \"scheme_bits\": {}, \
             \"bits_d0\": {bits0:.3}, \"max_separation\": {sep}}}",
            scheme.capacity()
        ));
    }
    r1.print("X-R1 — Remark 1: half-shattered family carries |W|/4 bits at d = 0");

    // ---- X-T6: grids --------------------------------------------------------
    let mut t6 = Table::new(vec!["row n", "VC", "bits(d=0)", "bits(d=1)"]);
    for n in [3u32, 4, 5, 6] {
        let sets = grid_shattered_system(n);
        let system = qpwm_logic::SetSystem::from_family(&sets);
        let p = CapacityProblem::new(&sets);
        let vc = qpwm_logic::vc_dimension(&system);
        let (b0, b1) = (p.bits_at(0), p.bits_at(1));
        t6.row(vec![
            n.to_string(),
            vc.to_string(),
            format!("{b0:.1}"),
            format!("{b1:.1}"),
        ]);
        json_rows.push(format!(
            "{{\"experiment\": \"X-T6\", \"n\": {n}, \"vc\": {vc}, \"bits_d0\": {b0:.3}, \
             \"bits_d1\": {b1:.3}}}"
        ));
    }
    t6.print("X-T6 — Theorem 6: MSO-shattered grid rows collapse identically");

    let json = format!(
        "{{\n  \"threads\": {threads},\n  \"rows\": [\n    {}\n  ]\n}}\n",
        json_rows.join(",\n    ")
    );
    std::fs::write("RESULTS_impossibility.json", &json)
        .expect("write RESULTS_impossibility.json");
    println!("\nwrote RESULTS_impossibility.json ({} rows)", json_rows.len());
}
