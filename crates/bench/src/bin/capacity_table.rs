//! Experiments X-R2 and X-T1.
//!
//! X-R2 — Remark 2's capacity arithmetic: `|W|^(1−q·ε)` hidden bits for
//! the theoretical scheme, side by side with what the implemented greedy
//! and sampling markers actually achieve on bounded-degree instances.
//!
//! X-T1 — Theorem 1: `#Mark(=d)` counting is #P-complete; we cross-check
//! the marking-capacity counter against Ryser's permanent on random
//! bipartite graphs and show `#Mark(≤d)` growth.
//!
//! Run with `cargo run --release -p qpwm-bench --bin capacity_table`.

use qpwm_bench::Table;
use qpwm_core::capacity::{Bipartite, CapacityProblem};
use qpwm_core::local_scheme::{LocalScheme, LocalSchemeConfig, SelectionStrategy};
use qpwm_logic::{Formula, ParametricQuery};
use qpwm_workloads::graphs::{cycle_union, random_bipartite, unary_domain, with_random_weights};

fn main() {
    // ---- X-R2: Remark 2 arithmetic --------------------------------------
    // "if q = 30 and 1/ε = 40, hidden bits = |W|^(1/4): for |W| = 5000
    //  that is 8 bits, 2^8 = 256 watermarked copies" (the paper says 64 —
    //  see EXPERIMENTS.md for the 2^8 = 256 note).
    let mut r2 = Table::new(vec!["|W|", "q", "1/eps", "bits |W|^(1-q/d)", "copies"]);
    for w in [100u64, 1_000, 5_000, 50_000] {
        for (q, d) in [(30u32, 40u64), (30, 60), (10, 40)] {
            let exponent = 1.0 - q as f64 / d as f64;
            let bits = (w as f64).powf(exponent);
            r2.row(vec![
                w.to_string(),
                q.to_string(),
                d.to_string(),
                format!("{bits:.1}"),
                format!("2^{:.0}", bits.floor()),
            ]);
        }
    }
    r2.print("X-R2 — Remark 2: theoretical capacity |W|^(1-q·eps)");

    // Implemented capacity on real instances (greedy vs sampling).
    let query = ParametricQuery::new(Formula::atom(0, &[0, 1]), vec![0], vec![1]);
    let mut imp = Table::new(vec!["|W|", "d", "greedy bits", "sampling bits", "p"]);
    for cycles in [8u32, 32, 128] {
        let instance = with_random_weights(cycle_union(cycles, 6, 0), 100, 1_000, 1);
        let domain = unary_domain(instance.structure());
        for d in [1u64, 2, 4] {
            let greedy = LocalScheme::build_over(
                &instance,
                &query,
                domain.clone(),
                &LocalSchemeConfig { rho: 1, d, strategy: SelectionStrategy::Greedy, seed: 7 },
            )
            .map(|s| s.capacity())
            .unwrap_or(0);
            let sampling = LocalScheme::build_over(
                &instance,
                &query,
                domain.clone(),
                &LocalSchemeConfig {
                    rho: 1,
                    d,
                    strategy: SelectionStrategy::Sampling { max_retries: 200 },
                    seed: 7,
                },
            );
            let (s_bits, p) = match &sampling {
                Ok(s) => (s.capacity(), s.stats().sampling_p),
                Err(_) => (0, 0.0),
            };
            imp.row(vec![
                (cycles * 6).to_string(),
                d.to_string(),
                greedy.to_string(),
                s_bits.to_string(),
                format!("{p:.4}"),
            ]);
        }
    }
    imp.print("X-R2b — implemented capacity (greedy vs paper's sampling marker)");

    // ---- X-T1: the permanent reduction -----------------------------------
    let mut t1 = Table::new(vec!["n", "density", "permanent (Ryser)", "#Mark reduction", "agree"]);
    for n in [3usize, 4, 5, 6] {
        for p in [0.4, 0.7, 1.0] {
            let adj = random_bipartite(n, p, (n as u64) * 31 + (p * 10.0) as u64);
            let g = Bipartite::new(adj);
            let perm = g.permanent();
            let via = g.matchings_via_marking();
            t1.row(vec![
                n.to_string(),
                format!("{p:.1}"),
                perm.to_string(),
                via.to_string(),
                (perm == via).to_string(),
            ]);
        }
    }
    t1.print("X-T1 — Theorem 1: #Mark(=1,{0,1}) equals the PERMANENT");

    // #Mark growth with the distortion budget on a small instance.
    let instance = cycle_union(2, 4, 0);
    let answers = query.answers_over(&instance, unary_domain(&instance));
    let problem = CapacityProblem::from_family(&answers);
    let mut growth = Table::new(vec!["d", "#Mark(<=d)", "#Mark(=d)", "bits"]);
    for d in 0..=3i64 {
        growth.row(vec![
            d.to_string(),
            problem.count_at_most(d).to_string(),
            problem.count_exactly(d).to_string(),
            format!("{:.1}", problem.bits_at(d)),
        ]);
    }
    growth.print("X-T1b — exact #Mark counts on two 4-cycles (8 active weights)");
}
