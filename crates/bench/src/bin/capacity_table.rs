//! Experiments X-R2 and X-T1.
//!
//! X-R2 — Remark 2's capacity arithmetic: `|W|^(1−q·ε)` hidden bits for
//! the theoretical scheme, side by side with what the implemented greedy
//! and sampling markers actually achieve on bounded-degree instances.
//!
//! X-T1 — Theorem 1: `#Mark(=d)` counting is #P-complete; we cross-check
//! the marking-capacity counter against Ryser's permanent on random
//! bipartite graphs and show `#Mark(≤d)` growth — now through the v2
//! counting engine, whose component decomposition carries the growth
//! table to `|W| = 24` (the v1 enumerator saturated at 8).
//!
//! Run with `cargo run --release -p qpwm-bench --bin capacity_table`.
//! Pass `--threads <n>` to pin the worker count. Alongside the text
//! tables the run writes `RESULTS_capacity_table.json` with one
//! machine-readable row per printed row.

use qpwm_bench::Table;
use qpwm_core::capacity::{Bipartite, CapacityProblem};
use qpwm_core::local_scheme::{LocalScheme, LocalSchemeConfig, SelectionStrategy};
use qpwm_logic::{Formula, ParametricQuery};
use qpwm_workloads::graphs::{cycle_union, random_bipartite, unary_domain, with_random_weights};

fn main() {
    let threads = qpwm_bench::parse_threads_flag();
    let mut json_rows: Vec<String> = Vec::new();

    // ---- X-R2: Remark 2 arithmetic --------------------------------------
    // "if q = 30 and 1/ε = 40, hidden bits = |W|^(1/4): for |W| = 5000
    //  that is 8 bits, 2^8 = 256 watermarked copies" (the paper says 64 —
    //  see EXPERIMENTS.md for the 2^8 = 256 note).
    let mut r2 = Table::new(vec!["|W|", "q", "1/eps", "bits |W|^(1-q/d)", "copies"]);
    for w in [100u64, 1_000, 5_000, 50_000] {
        for (q, d) in [(30u32, 40u64), (30, 60), (10, 40)] {
            let exponent = 1.0 - q as f64 / d as f64;
            let bits = (w as f64).powf(exponent);
            r2.row(vec![
                w.to_string(),
                q.to_string(),
                d.to_string(),
                format!("{bits:.1}"),
                format!("2^{:.0}", bits.floor()),
            ]);
            json_rows.push(format!(
                "{{\"experiment\": \"X-R2\", \"w\": {w}, \"q\": {q}, \"inv_eps\": {d}, \
                 \"bits\": {bits:.3}}}"
            ));
        }
    }
    r2.print("X-R2 — Remark 2: theoretical capacity |W|^(1-q·eps)");

    // Implemented capacity on real instances (greedy vs sampling).
    let query = ParametricQuery::new(Formula::atom(0, &[0, 1]), vec![0], vec![1]);
    let mut imp = Table::new(vec!["|W|", "d", "greedy bits", "sampling bits", "p"]);
    for cycles in [8u32, 32, 128] {
        let instance = with_random_weights(cycle_union(cycles, 6, 0), 100, 1_000, 1);
        let domain = unary_domain(instance.structure());
        for d in [1u64, 2, 4] {
            let greedy = LocalScheme::build_over(
                &instance,
                &query,
                domain.clone(),
                &LocalSchemeConfig { rho: 1, d, strategy: SelectionStrategy::Greedy, seed: 7 },
            )
            .map(|s| s.capacity())
            .unwrap_or(0);
            let sampling = LocalScheme::build_over(
                &instance,
                &query,
                domain.clone(),
                &LocalSchemeConfig {
                    rho: 1,
                    d,
                    strategy: SelectionStrategy::Sampling { max_retries: 200 },
                    seed: 7,
                },
            );
            let (s_bits, p) = match &sampling {
                Ok(s) => (s.capacity(), s.stats().sampling_p),
                Err(_) => (0, 0.0),
            };
            imp.row(vec![
                (cycles * 6).to_string(),
                d.to_string(),
                greedy.to_string(),
                s_bits.to_string(),
                format!("{p:.4}"),
            ]);
            json_rows.push(format!(
                "{{\"experiment\": \"X-R2b\", \"w\": {}, \"d\": {d}, \"greedy_bits\": {greedy}, \
                 \"sampling_bits\": {s_bits}, \"sampling_p\": {p:.6}}}",
                cycles * 6
            ));
        }
    }
    imp.print("X-R2b — implemented capacity (greedy vs paper's sampling marker)");

    // ---- X-T1: the permanent reduction -----------------------------------
    let mut t1 = Table::new(vec!["n", "density", "permanent (Ryser)", "#Mark reduction", "agree"]);
    for n in [3usize, 4, 5, 6] {
        for p in [0.4, 0.7, 1.0] {
            let adj = random_bipartite(n, p, (n as u64) * 31 + (p * 10.0) as u64);
            let g = Bipartite::new(adj);
            let perm = g.permanent();
            let via = g.matchings_via_marking();
            t1.row(vec![
                n.to_string(),
                format!("{p:.1}"),
                perm.to_string(),
                via.to_string(),
                (perm == via).to_string(),
            ]);
            json_rows.push(format!(
                "{{\"experiment\": \"X-T1\", \"n\": {n}, \"density\": {p:.1}, \
                 \"permanent\": {perm}, \"mark_reduction\": {via}, \"agree\": {}}}",
                perm == via
            ));
        }
    }
    t1.print("X-T1 — Theorem 1: #Mark(=1,{0,1}) equals the PERMANENT");

    // #Mark growth with the distortion budget: the original toy instance
    // (two 4-cycles, 8 active weights) and the extended range the v2
    // engine opens up (four 6-cycles, 24 active weights — component
    // decomposition makes the union cost four times one cycle).
    for (cycles, len, d_max, title) in [
        (2u32, 4u32, 3i64, "X-T1b — exact #Mark counts on two 4-cycles (8 active weights)"),
        (4, 6, 4, "X-T1c — exact #Mark counts on four 6-cycles (24 active weights, v2 engine)"),
    ] {
        let instance = cycle_union(cycles, len, 0);
        let answers = query.answers_over(&instance, unary_domain(&instance));
        let problem = CapacityProblem::from_family(&answers);
        let mut growth = Table::new(vec!["d", "#Mark(<=d)", "#Mark(=d)", "bits"]);
        for d in 0..=d_max {
            let at_most = problem.count_at_most(d);
            let exactly = problem.count_exactly(d);
            growth.row(vec![
                d.to_string(),
                at_most.to_string(),
                exactly.to_string(),
                format!("{:.1}", problem.bits_at(d)),
            ]);
            json_rows.push(format!(
                "{{\"experiment\": \"X-T1-growth\", \"w\": {}, \"d\": {d}, \
                 \"at_most\": {at_most}, \"exactly\": {exactly}, \"threads\": {threads}}}",
                problem.num_elements()
            ));
        }
        growth.print(title);
    }

    let json = format!(
        "{{\n  \"threads\": {threads},\n  \"rows\": [\n    {}\n  ]\n}}\n",
        json_rows.join(",\n    ")
    );
    std::fs::write("RESULTS_capacity_table.json", &json)
        .expect("write RESULTS_capacity_table.json");
    println!("\nwrote RESULTS_capacity_table.json ({} rows)", json_rows.len());
}
