//! Experiments X-T7/X-T8: incremental watermarking (section 5).
//!
//! * Theorem 7: weights-only updates — re-applying the stored deltas
//!   keeps detection perfect across arbitrary weight republications.
//! * Theorem 8: type-preserving structure updates — the old mark's
//!   distortion on the *new* instance stays bounded; type-changing
//!   updates are flagged for re-marking.
//! * Auto-collusion: averaging successive re-marked versions erases the
//!   mark — the cost of the brute-force method.
//!
//! Run with `cargo run --release -p qpwm-bench --bin incremental`.

use qpwm_bench::Table;
use qpwm_core::detect::{HonestServer, ObservedWeights};
use qpwm_core::incremental::{classify_update, maintain_marking, MarkDeltas};
use qpwm_core::local_scheme::{LocalScheme, LocalSchemeConfig, SelectionStrategy};
use qpwm_logic::{Formula, ParametricQuery};
use qpwm_rng::Rng;
use qpwm_structures::{Schema, StructureBuilder, Weights};
use qpwm_workloads::graphs::{cycle_union, unary_domain, with_random_weights};
use std::sync::Arc;

fn main() {
    let query = ParametricQuery::new(Formula::atom(0, &[0, 1]), vec![0], vec![1]);
    let instance = with_random_weights(cycle_union(40, 6, 0), 1_000, 5_000, 1);
    let scheme = LocalScheme::build_over(
        &instance,
        &query,
        unary_domain(instance.structure()),
        &LocalSchemeConfig { rho: 1, d: 2, strategy: SelectionStrategy::Greedy, seed: 4 },
    )
    .expect("builds");
    let message: Vec<bool> = (0..scheme.capacity()).map(|i| i % 2 == 0).collect();
    let marked = scheme.mark(instance.weights(), &message);
    let deltas = MarkDeltas::from_marked(instance.weights(), &marked);

    // ---- Theorem 7: weights-only updates ------------------------------------
    let mut t7 = Table::new(vec!["update", "bits recovered", "of", "local distortion"]);
    let mut rng = Rng::seed_from_u64(99);
    for round in 1..=4 {
        let mut new_weights = Weights::new(1);
        for e in instance.structure().universe() {
            new_weights.set(&[e], rng.gen_range(1_000i64..50_000));
        }
        let republished = deltas.reapply(&new_weights);
        let server = HonestServer::new(scheme.answers().clone(), republished.clone());
        let report = scheme
            .marking()
            .extract(&new_weights, &ObservedWeights::collect(&server));
        let recovered = message.len() - report.errors_against(&message);
        t7.row(vec![
            format!("republication #{round}"),
            recovered.to_string(),
            message.len().to_string(),
            new_weights.max_pointwise_diff(&republished).to_string(),
        ]);
    }
    t7.print("X-T7 — Theorem 7: weights-only updates keep the mark detectable");

    // ---- Theorem 8: structure updates -----------------------------------------
    // Type-preserving: move one whole 6-cycle's worth of edges (relabel a
    // cycle onto fresh vertices is not possible in-place; instead rotate a
    // cycle's edge set — same types). Type-changing: delete one edge,
    // creating path-endpoint types.
    let schema = Arc::new(Schema::graph());
    let build_cycles = |skip_edge: bool| {
        let mut b = StructureBuilder::new(Arc::clone(&schema), 240);
        for c in 0..40u32 {
            let base = c * 6;
            for i in 0..6u32 {
                if skip_edge && c == 0 && i == 0 {
                    continue;
                }
                let u = base + i;
                let v = base + (i + 1) % 6;
                b.add(0, &[u, v]);
                b.add(0, &[v, u]);
            }
        }
        b.build()
    };
    let original_structure = build_cycles(false);
    let preserved = build_cycles(false); // identical: weights-only class
    let changed = build_cycles(true); // one edge missing: new types
    let mut t8 = Table::new(vec!["update", "classified", "surviving pairs", "new distortion"]);
    for (name, new_structure) in [("identity", &preserved), ("edge deletion", &changed)] {
        let class = classify_update(&original_structure, new_structure, 1);
        let new_answers = query.answers_over(new_structure, unary_domain(new_structure));
        let report = maintain_marking(
            scheme.marking(),
            class.clone(),
            instance.weights(),
            &new_answers,
            &message,
        );
        t8.row(vec![
            name.to_owned(),
            format!("{:?}", report.class),
            format!("{}/{}", report.surviving_pairs, report.total_pairs),
            report.new_distortion.to_string(),
        ]);
    }
    // a genuinely type-preserving rewiring: re-chord cycle 0 into a
    // different 6-cycle on the same vertices (0-2-4-1-3-5-0) — every
    // vertex keeps degree 2 and an isomorphic radius-1 neighborhood.
    let mut b = StructureBuilder::new(Arc::clone(&schema), 240);
    for &(u, v) in &[(0u32, 2u32), (2, 4), (4, 1), (1, 3), (3, 5), (5, 0)] {
        b.add(0, &[u, v]);
        b.add(0, &[v, u]);
    }
    for c in 1..40u32 {
        let base = c * 6;
        for i in 0..6u32 {
            let u = base + i;
            let v = base + (i + 1) % 6;
            b.add(0, &[u, v]);
            b.add(0, &[v, u]);
        }
    }
    let rewired = b.build();
    let class = classify_update(&original_structure, &rewired, 1);
    let new_answers = query.answers_over(&rewired, unary_domain(&rewired));
    let report = maintain_marking(
        scheme.marking(),
        class,
        instance.weights(),
        &new_answers,
        &message,
    );
    t8.row(vec![
        "re-chord cycle".to_owned(),
        format!("{:?}", report.class),
        format!("{}/{}", report.surviving_pairs, report.total_pairs),
        report.new_distortion.to_string(),
    ]);
    t8.print("X-T8 — Theorem 8: update classification and mark maintenance");

    // ---- auto-collusion across re-marked versions --------------------------------
    let mut coll = Table::new(vec!["versions averaged", "bits recovered", "of"]);
    for versions in [1usize, 2, 3, 5] {
        let copies: Vec<Weights> = (1..versions)
            .map(|v| {
                let msg: Vec<bool> = (0..scheme.capacity()).map(|i| (i + v) % 2 == 0).collect();
                scheme.mark(instance.weights(), &msg)
            })
            .collect();
        let attack = qpwm_core::adversary::Attack::Averaging { copies };
        let averaged = attack.apply(&marked, scheme.answers(), 1);
        let server = HonestServer::new(scheme.answers().clone(), averaged);
        let report = scheme.detect(instance.weights(), &server);
        let recovered = message.len() - report.errors_against(&message);
        coll.row(vec![
            versions.to_string(),
            recovered.to_string(),
            message.len().to_string(),
        ]);
    }
    coll.print("X-T8b — auto-collusion: averaging re-marked versions erases the mark");
}
