//! Engine micro-benchmark: times the interned answer-set layer on the
//! `local_sweep` workload (regular cycle unions, edge query) and writes
//! the numbers to `BENCH_engine.json` so later PRs have a perf
//! trajectory.
//!
//! Three phases are timed per instance size:
//!
//! * **eval** — building the interned [`qpwm_structures::AnswerFamily`]
//!   via `ParametricQuery::answers_over` (FO evaluation streaming into
//!   the tuple arena);
//! * **build** — the full Theorem 3 marker
//!   (`LocalScheme::build_over`: census, pairing, separation audit);
//! * **detect** — mark + replay detection through an [`HonestServer`].
//!
//! Run with `cargo run --release -p qpwm-bench --bin bench_engine`.
//! Pass `--threads <n>` to pin the worker-thread count (otherwise the
//! `QPWM_THREADS` / available-parallelism resolution of `qpwm-par`
//! applies); the resolved count lands in every JSON sample.

use qpwm_bench::Table;
use qpwm_core::detect::HonestServer;
use qpwm_core::local_scheme::{LocalScheme, LocalSchemeConfig, SelectionStrategy};
use qpwm_logic::{Formula, ParametricQuery};
use qpwm_workloads::graphs::{cycle_union, unary_domain, with_random_weights};
use std::time::Instant;

fn edge_query() -> ParametricQuery {
    ParametricQuery::new(Formula::atom(0, &[0, 1]), vec![0], vec![1])
}

struct Sample {
    cycles: u32,
    universe: usize,
    active: usize,
    capacity: usize,
    eval_ms: f64,
    build_ms: f64,
    detect_ms: f64,
}

/// PR-1 committed numbers (pre-optimization `BENCH_engine.json`), kept
/// in-binary so every run prints its speedup against the same baseline.
const BASELINE: [(u32, f64, f64, f64); 5] = [
    (8, 0.059, 0.447, 0.130),
    (32, 0.490, 2.932, 0.136),
    (128, 5.165, 32.106, 0.336),
    (512, 56.648, 389.066, 1.438),
    (2048, 1225.896, 6353.284, 6.467),
];

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1_000.0
}

fn main() {
    let threads = qpwm_bench::parse_threads_flag();
    let query = edge_query();
    let mut samples: Vec<Sample> = Vec::new();

    for cycles in [8u32, 32, 128, 512, 2048] {
        let instance = with_random_weights(cycle_union(cycles, 6, 0), 100, 1_000, 1);
        let domain = unary_domain(instance.structure());

        let start = Instant::now();
        let answers = query.answers_over(instance.structure(), domain.clone());
        let eval_ms = ms(start);

        let start = Instant::now();
        let scheme = LocalScheme::build_over(
            &instance,
            &query,
            domain,
            &LocalSchemeConfig { rho: 1, d: 1, strategy: SelectionStrategy::Greedy, seed: 7 },
        )
        .expect("regular instances pair");
        let build_ms = ms(start);

        let message: Vec<bool> = (0..scheme.capacity()).map(|i| i % 2 == 0).collect();
        let start = Instant::now();
        let marked = scheme.mark(instance.weights(), &message);
        let server = HonestServer::new(scheme.answers().clone(), marked);
        let report = scheme.detect(instance.weights(), &server);
        let detect_ms = ms(start);
        assert_eq!(report.bits, message, "cycles {cycles}: detection must round-trip");

        samples.push(Sample {
            cycles,
            universe: answers.arena().len(),
            active: answers.active_universe().len(),
            capacity: scheme.capacity(),
            eval_ms,
            build_ms,
            detect_ms,
        });
    }

    let mut table = Table::new(vec![
        "cycles", "arena", "|W|", "bits", "eval ms", "build ms", "detect ms", "eval x", "build x",
    ]);
    for s in &samples {
        let speedup = |base: f64, now: f64| {
            if now > 0.0 { format!("{:.1}x", base / now) } else { "-".to_string() }
        };
        let base = BASELINE.iter().find(|(c, ..)| *c == s.cycles);
        table.row(vec![
            s.cycles.to_string(),
            s.universe.to_string(),
            s.active.to_string(),
            s.capacity.to_string(),
            format!("{:.2}", s.eval_ms),
            format!("{:.2}", s.build_ms),
            format!("{:.2}", s.detect_ms),
            base.map_or("-".into(), |(_, e, _, _)| speedup(*e, s.eval_ms)),
            base.map_or("-".into(), |(_, _, b, _)| speedup(*b, s.build_ms)),
        ]);
    }
    table.print(&format!(
        "Engine timings (edge query over cycle unions, rho = 1, d = 1, threads = {threads}; \
         speedups vs PR-1 baseline)"
    ));

    // Hand-rolled JSON — the workspace carries no serde dependency.
    let mut json = String::from("{\n  \"workload\": \"cycle_union(c, 6) edge query, rho=1, d=1, greedy, seed 7\",\n  \"samples\": [\n");
    for (i, s) in samples.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"cycles\": {}, \"arena_tuples\": {}, \"active_elements\": {}, \
             \"capacity_bits\": {}, \"threads\": {}, \"eval_ms\": {:.3}, \
             \"build_ms\": {:.3}, \"detect_ms\": {:.3}}}{}\n",
            s.cycles,
            s.universe,
            s.active,
            s.capacity,
            threads,
            s.eval_ms,
            s.build_ms,
            s.detect_ms,
            if i + 1 < samples.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_engine.json", &json).expect("write BENCH_engine.json");
    println!("\nwrote BENCH_engine.json");
}
