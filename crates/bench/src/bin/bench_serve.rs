//! Closed-loop load generator for the `qpwm-serve` data server.
//!
//! Spins the server in-process on an ephemeral port over a marked
//! `cycle_union` instance (edge query — the same workload family as
//! `bench_engine`), then drives it with multi-threaded keep-alive
//! clients issuing a Zipf-skewed parameter mix (90% `GET /answer`, 10%
//! `GET /aggregate`). Afterwards it verifies the acceptance property:
//! `POST /detect` over HTTP recovers the embedded message with exactly
//! the significance the offline detector reports on the same marked
//! data. A second phase sweeps the reactor across shard counts with a
//! large keep-alive connection fan-in (default 1024 concurrent
//! connections) and records per-shard load balance. Results land in
//! `BENCH_serve.json`: throughput, p50/p99 latency, cache hit rate,
//! error count, and the shard sweep.
//!
//! Run with `cargo run --release -p qpwm-bench --bin bench_serve`
//! (flags: `--threads <server shards>`, `--clients <n>`,
//! `--requests <total>`, `--cycles <workload size>`,
//! `--sweep-connections <n>`, `--sweep-requests <n>`).

use qpwm_bench::Table;
use qpwm_core::detect::{HonestServer, DEFAULT_DELTA};
use qpwm_core::keyfile::SchemeKey;
use qpwm_core::local_scheme::{LocalScheme, LocalSchemeConfig, SelectionStrategy};
use qpwm_logic::{Formula, ParametricQuery};
use qpwm_rng::Rng;
use qpwm_serve::client::HttpClient;
use qpwm_serve::{detect_request_body, ServeData, Server, ServerConfig};
use qpwm_workloads::graphs::{cycle_union, unary_domain, with_random_weights};
use std::time::Instant;

/// Zipf exponent of the parameter mix: hot parameters dominate, as in
/// any real lookup workload, which is what makes the answer cache earn
/// its keep.
const ZIPF_S: f64 = 1.1;

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    args.windows(2)
        .find(|w| w[0] == name)
        .map(|w| w[1].clone())
}

fn parse_flag(name: &str, default: usize) -> usize {
    match flag_value(name) {
        None => default,
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("error: {name} needs a positive integer, got '{raw}'");
            std::process::exit(2);
        }),
    }
}

/// Cumulative Zipf distribution over `n` ranks.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Self {
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(total);
        }
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.gen_f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[rank]
}

/// One row of the shard sweep: a fixed keep-alive connection fan-in
/// driven against a server with `shards` reactor shards.
struct SweepRow {
    shards: usize,
    connections: usize,
    served: usize,
    errors: u64,
    throughput: f64,
    p50: u64,
    p99: u64,
    /// smallest per-shard fraction of total requests (kernel
    /// `SO_REUSEPORT` hashing decides the split)
    min_shard_share: f64,
}

/// Drives `connections` keep-alive connections (spread over
/// `client_threads` OS threads, round-robin within each thread so every
/// connection stays registered with its reactor for the whole run)
/// against a fresh server with `shards` shards.
#[allow(clippy::too_many_arguments)]
fn sweep_point(
    scheme: &LocalScheme,
    marked: &qpwm_structures::Weights,
    shards: usize,
    connections: usize,
    client_threads: usize,
    total_requests: usize,
    zipf: &Zipf,
) -> SweepRow {
    let data = ServeData::new(
        scheme.answers().clone(),
        marked.clone(),
        Vec::new(),
        None,
        "bench-edge".into(),
    );
    let server = Server::start(
        data,
        ServerConfig {
            shards,
            // the fan-in is the point of this phase: keep every
            // connection on the healthy path, not the degraded lane
            backlog: connections + 64,
            ..Default::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.addr().to_string();

    let threads = client_threads.max(1);
    let per_thread = total_requests / threads;
    let conns_per_thread = (connections / threads).max(1);
    let start = Instant::now();
    let results: Vec<(Vec<u64>, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|c| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut rng = Rng::seed_from_u64(0x5eed + c as u64);
                    let mut conns = Vec::with_capacity(conns_per_thread);
                    for _ in 0..conns_per_thread {
                        match HttpClient::connect(&addr) {
                            Ok(conn) => conns.push(conn),
                            Err(_) => return (Vec::new(), per_thread as u64),
                        }
                    }
                    let mut latencies = Vec::with_capacity(per_thread);
                    let mut errors = 0u64;
                    for r in 0..per_thread {
                        let i = zipf.sample(&mut rng);
                        let target = format!("/answer?i={i}");
                        let t = Instant::now();
                        match conns[r % conns_per_thread].get(&target) {
                            Ok((200, _)) => {
                                latencies.push(t.elapsed().as_micros() as u64);
                            }
                            _ => errors += 1,
                        }
                    }
                    (latencies, errors)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep client panicked"))
            .collect()
    });
    let elapsed = start.elapsed().as_secs_f64();

    let mut latencies: Vec<u64> = Vec::with_capacity(total_requests);
    let mut errors = 0u64;
    for (mut l, e) in results {
        latencies.append(&mut l);
        errors += e;
    }
    latencies.sort_unstable();
    let served = latencies.len();
    let totals = server.shard_request_totals();
    let grand: u64 = totals.iter().sum();
    let min_shard_share = if grand > 0 {
        totals.iter().copied().min().unwrap_or(0) as f64 / grand as f64
    } else {
        0.0
    };
    let (p50, p99) = (percentile(&latencies, 0.50), percentile(&latencies, 0.99));
    server.shutdown();
    SweepRow {
        shards,
        connections: conns_per_thread * threads,
        served,
        errors,
        throughput: served as f64 / elapsed,
        p50,
        p99,
        min_shard_share,
    }
}

fn main() {
    let server_shards = qpwm_bench::parse_threads_flag();
    let clients = parse_flag("--clients", 4);
    let total_requests = parse_flag("--requests", 20_000);
    let cycles = parse_flag("--cycles", 128) as u32;
    let sweep_connections = parse_flag("--sweep-connections", 1_024);
    let sweep_requests = parse_flag("--sweep-requests", 12_000);

    // -- workload: mark a cycle-union instance, serve the marked weights
    let query = ParametricQuery::new(Formula::atom(0, &[0, 1]), vec![0], vec![1]);
    let instance = with_random_weights(cycle_union(cycles, 6, 0), 100, 1_000, 1);
    let domain = unary_domain(instance.structure());
    let scheme = LocalScheme::build_over(
        &instance,
        &query,
        domain,
        &LocalSchemeConfig { rho: 1, d: 1, strategy: SelectionStrategy::Greedy, seed: 7 },
    )
    .expect("regular instances pair");
    let message: Vec<bool> = (0..scheme.capacity()).map(|i| i % 3 != 0).collect();
    let marked = scheme.mark(instance.weights(), &message);
    let key = SchemeKey { marking: scheme.marking().clone(), d: scheme.d() };

    // offline reference detection (what the owner would compute locally)
    let offline = scheme.detect(
        instance.weights(),
        &HonestServer::new(scheme.answers().clone(), marked.clone()),
    );
    assert_eq!(offline.bits, message, "offline detection must round-trip");
    let offline_check = offline.claim_check(&message, DEFAULT_DELTA);

    let family = scheme.answers().clone();
    let num_params = family.len();
    let data = ServeData::new(family, marked.clone(), Vec::new(), None, "bench-edge".into());
    let server = Server::start(
        data,
        ServerConfig { shards: server_shards, ..Default::default() },
    )
    .expect("bind ephemeral port");
    let addr = server.addr().to_string();
    println!(
        "serving {num_params} parameters on {addr} ({server_shards} shard(s), {clients} client(s), {total_requests} requests)"
    );

    // -- closed-loop load phase
    let zipf = Zipf::new(num_params, ZIPF_S);
    let per_client = total_requests / clients.max(1);
    let load_start = Instant::now();
    let results: Vec<(Vec<u64>, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let addr = addr.clone();
                let zipf = &zipf;
                scope.spawn(move || {
                    let mut rng = Rng::seed_from_u64(0xbe9c + c as u64);
                    let mut latencies = Vec::with_capacity(per_client);
                    let mut errors = 0u64;
                    let mut client = match HttpClient::connect(&addr) {
                        Ok(c) => c,
                        Err(_) => return (latencies, per_client as u64),
                    };
                    for _ in 0..per_client {
                        let i = zipf.sample(&mut rng);
                        let target = if rng.gen_bool(0.9) {
                            format!("/answer?i={i}")
                        } else {
                            format!("/aggregate?i={i}")
                        };
                        let start = Instant::now();
                        match client.get(&target) {
                            Ok((200, _)) => {
                                latencies.push(start.elapsed().as_micros() as u64);
                            }
                            _ => errors += 1,
                        }
                    }
                    (latencies, errors)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let elapsed = load_start.elapsed().as_secs_f64();

    let mut latencies: Vec<u64> = Vec::with_capacity(total_requests);
    let mut errors = 0u64;
    for (mut l, e) in results {
        latencies.append(&mut l);
        errors += e;
    }
    latencies.sort_unstable();
    let served = latencies.len();
    let throughput = served as f64 / elapsed;
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    let (hits, misses) = server.cache_stats();
    let hit_rate = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64
    } else {
        0.0
    };

    // -- ownership verification over the same public interface
    let body = detect_request_body(&key, instance.weights());
    let claim: String = message.iter().map(|&b| if b { '1' } else { '0' }).collect();
    let (status, detect_body) = qpwm_serve::client::http_post(
        &addr,
        &format!("/detect?claim={claim}"),
        &body,
    )
    .expect("detect request");
    assert_eq!(status, 200, "detect must succeed: {detect_body}");
    let bits_start = detect_body.find("\"bits\":\"").expect("bits in response") + 8;
    let bits_end = detect_body[bits_start..].find('"').expect("bits terminated") + bits_start;
    let http_bits = &detect_body[bits_start..bits_end];
    assert_eq!(http_bits, claim, "HTTP detection must recover the message");
    let sig_key = "\"significance\":";
    let sig_start = detect_body.find(sig_key).expect("significance in response") + sig_key.len();
    let sig_end = detect_body[sig_start..]
        .find([',', '}'])
        .expect("significance terminated")
        + sig_start;
    let http_significance: f64 = detect_body[sig_start..sig_end]
        .parse()
        .expect("significance parses");
    assert_eq!(
        http_significance, offline_check.significance,
        "HTTP and offline detection must report the same significance"
    );

    server.shutdown();

    let mut table = Table::new(vec![
        "clients", "requests", "errors", "rps", "p50 us", "p99 us", "hit rate", "significance",
    ]);
    table.row(vec![
        clients.to_string(),
        served.to_string(),
        errors.to_string(),
        format!("{throughput:.0}"),
        p50.to_string(),
        p99.to_string(),
        format!("{:.1}%", hit_rate * 100.0),
        format!("{http_significance:.2e}"),
    ]);
    table.print(&format!(
        "qpwm-serve load (cycle_union({cycles}, 6) edge query, zipf s = {ZIPF_S}, \
         {server_shards} reactor shard(s))"
    ));

    // -- shard sweep: the same workload through a growing shard count
    //    under a large keep-alive connection fan-in
    let mut sweep_rows = Vec::new();
    let mut sweep_table = Table::new(vec![
        "shards", "conns", "requests", "errors", "rps", "p50 us", "p99 us", "min share",
    ]);
    for shards in [1usize, 2, 4] {
        let row = sweep_point(
            &scheme,
            &marked,
            shards,
            sweep_connections,
            8,
            sweep_requests,
            &zipf,
        );
        sweep_table.row(vec![
            row.shards.to_string(),
            row.connections.to_string(),
            row.served.to_string(),
            row.errors.to_string(),
            format!("{:.0}", row.throughput),
            row.p50.to_string(),
            row.p99.to_string(),
            format!("{:.2}", row.min_shard_share),
        ]);
        sweep_rows.push(row);
    }
    sweep_table.print(&format!(
        "shard sweep ({sweep_connections} keep-alive connections, {sweep_requests} requests/point)"
    ));

    let sweep_json: Vec<String> = sweep_rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"shards\": {}, \"connections\": {}, \"requests\": {}, \
                 \"errors\": {}, \"throughput_rps\": {:.1}, \"p50_us\": {}, \
                 \"p99_us\": {}, \"min_shard_share\": {:.4}}}",
                r.shards, r.connections, r.served, r.errors, r.throughput, r.p50, r.p99,
                r.min_shard_share
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"workload\": \"cycle_union({cycles}, 6) edge query, zipf s={ZIPF_S}, 90/10 answer/aggregate\",\n  \
         \"server_shards\": {server_shards},\n  \"clients\": {clients},\n  \"requests\": {served},\n  \
         \"errors\": {errors},\n  \"throughput_rps\": {throughput:.1},\n  \"p50_us\": {p50},\n  \
         \"p99_us\": {p99},\n  \"cache_hit_rate\": {hit_rate:.4},\n  \
         \"detect_significance\": {http_significance:e},\n  \"detect_bits_ok\": true,\n  \
         \"sweep\": [\n{}\n  ]\n}}\n",
        sweep_json.join(",\n")
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("\nwrote BENCH_serve.json");
    assert_eq!(errors, 0, "load run must complete without error responses");
    for row in &sweep_rows {
        assert_eq!(row.errors, 0, "{} shard sweep must run error-free", row.shards);
    }
}
