//! Experiment X-B3: the cross-scheme attack battleground.
//!
//! Every [`qpwm_core::scheme::WatermarkScheme`] implementation × five
//! shared workloads × the unified attack suite, emitting the
//! `RESULTS_battleground.json` Pareto table and the
//! `BENCH_battleground.json` throughput trajectory. See the module docs
//! of [`qpwm_bench::battleground`] for the full cell semantics.
//!
//! Run with `cargo run --release -p qpwm-bench --bin battleground`.
//! Flags: `--check` (smoke grid, no files), `--threads N`,
//! `--schemes a,b`, `--attacks x,y`, `--no-bench`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(qpwm_bench::battleground::cli_main(&args));
}
