//! Experiment X-L1b: locality ranks — Gaifman's worst-case bound versus
//! the per-instance certified rank.
//!
//! The paper notes the theoretical `q` (driven by the locality rank,
//! itself exponential in quantifier depth) "can be rather huge for
//! practical applications"; this table quantifies the gap: for each
//! query, its quantifier depth, the Gaifman bound `(7^qd − 1)/2`, the
//! smallest rank certified empirically on concrete instances, and the
//! resulting `η = k^(2ρ+1)` entering the capacity formula.
//!
//! Run with `cargo run --release -p qpwm-bench --bin locality_table`.

use qpwm_bench::Table;
use qpwm_logic::{empirical_locality_rank, gaifman_rank_bound, parse_formula};
use qpwm_structures::GaifmanGraph;
use qpwm_workloads::graphs::cycle_union;

fn main() {
    let instance = cycle_union(6, 6, 0);
    let schema = instance.schema();
    let k = GaifmanGraph::of(&instance).max_degree() as u64;

    let queries = [
        ("E(u, v)", "edge"),
        ("exists z (E(u, z) & E(z, v))", "two-hop"),
        ("exists z (E(u, z) & E(z, v)) | E(u, v)", "within 2"),
        (
            "exists z exists w (E(u, z) & E(z, w) & E(w, v))",
            "three-hop",
        ),
        ("E(u, v) & !(u = v)", "edge, no loop"),
    ];

    let mut table = Table::new(vec![
        "query",
        "qd",
        "Gaifman bound",
        "certified rho",
        "eta = k^(2rho+1)",
    ]);
    for (text, name) in queries {
        let parsed = parse_formula(text, schema).expect("parses");
        let qd = parsed.formula.quantifier_depth();
        let query = parsed.query(&["u"], &["v"]);
        let bound = gaifman_rank_bound(qd);
        let certified = empirical_locality_rank(&instance, &query, 4);
        let (rho_text, eta_text) = match certified {
            Some(rho) => (
                rho.to_string(),
                k.saturating_pow(2 * rho + 1).to_string(),
            ),
            None => ("> 4".to_owned(), "-".to_owned()),
        };
        table.row(vec![
            name.to_owned(),
            qd.to_string(),
            bound.to_string(),
            rho_text,
            eta_text,
        ]);
    }
    table.print("X-L1b — locality: worst-case Gaifman bound vs certified rank (6-cycles, k = 2)");
    println!(
        "\nreading: the certified per-instance rank is 1-2 orders below the\n\
         worst-case bound, and η (hence the scheme's sampling pessimism)\n\
         shrinks accordingly — the practical gap the paper's Remark 2 warns\n\
         about, measured."
    );
}
