//! Persistent-store micro-benchmark: crash-recovery time and the
//! Theorem 7 incremental re-marking advantage.
//!
//! The carrier is the battleground's ring relation at store size
//! (n = 32768 by default — large enough that a full re-mark overflows
//! the buffer pool while the 1% update stays resident). The headline metric pits a full re-mark — a
//! fresh `delta_map` over every pair, written as one transaction —
//! against the incremental path for a 1% weight update, where
//! `remark_touched` confines the delta writes to the pairs the update
//! actually hit. The incremental commit must be at least 10× faster;
//! `scripts/bench_compare.sh` gates that floor alongside the recovery
//! timing in `BENCH_store.json`.
//!
//! Run with `cargo run --release -p qpwm-bench --bin bench_store`
//! (flags: `--ring <n>`, `--threads <n>`). Writes its store file and
//! WAL into the working directory.

use qpwm_bench::Table;
use qpwm_core::detect::{HonestServer, ObservedWeights, Verdict, DEFAULT_DELTA};
use qpwm_core::incremental::remark_touched;
use qpwm_core::local_scheme::{LocalScheme, LocalSchemeConfig, SelectionStrategy};
use qpwm_logic::datalog::parse_rule;
use qpwm_store::{DiskVfs, Store, StoreContent};
use qpwm_structures::{Element, WeightKey};
use qpwm_workloads::csv_db::load_csv_database;
use std::collections::HashSet;
use std::fmt::Write as _;
use std::time::Instant;

const STORE_NAME: &str = "bench_store.qps";

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    args.windows(2)
        .find(|w| w[0] == name)
        .map(|w| w[1].clone())
}

fn parse_flag(name: &str, default: usize) -> usize {
    match flag_value(name) {
        None => default,
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("error: {name} needs a positive integer, got '{raw}'");
            std::process::exit(2);
        }),
    }
}

/// Median ms/op (at least 5 iterations, stops after ~250 ms of
/// sampling). The median rather than the mean: commits end in fsync,
/// and a single slow flush would otherwise dominate a short op.
fn time_per_op(mut op: impl FnMut()) -> f64 {
    let start = Instant::now();
    let mut samples = Vec::new();
    loop {
        let t = Instant::now();
        op();
        samples.push(t.elapsed().as_secs_f64() * 1000.0);
        if (samples.len() >= 5 && start.elapsed().as_millis() >= 250) || samples.len() >= 100_000 {
            break;
        }
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// One full re-mark: a fresh `delta_map` over every pair, applied as a
/// single transaction of delta writes.
fn full_remark(store: &mut Store, content: &StoreContent, scheme: &LocalScheme, bits: &[bool]) {
    let deltas = scheme.marking().delta_map(bits);
    let mut txn = store.begin();
    for (key, delta) in &deltas {
        let id = content.lookup(key).expect("marked tuple is interned");
        txn.set_delta(id, *delta).expect("delta write");
    }
    txn.commit().expect("full re-mark commits");
}

fn main() {
    if let Some(raw) = flag_value("--threads") {
        match qpwm_par::parse_thread_arg(&raw) {
            Ok(n) => qpwm_par::set_threads(n),
            Err(e) => {
                eprintln!("error: --threads: {e}");
                std::process::exit(2);
            }
        }
    }
    let n = parse_flag("--ring", 32768) as u32;

    // the carrier: a ring relation under the battleground's ring rule
    let mut ring = String::new();
    let mut weights_csv = String::new();
    for i in 0..n {
        let _ = writeln!(ring, "n{i},n{}", (i + 1) % n);
        let _ = writeln!(weights_csv, "n{i},{}", 100 + i64::from(i) * 3);
    }
    let db = load_csv_database("R(a,b)", &[("R", &ring)], Some(&weights_csv))
        .expect("ring CSV loads");
    let rule = parse_rule("q($u; v) :- R($u, v)", db.instance.structure().schema())
        .expect("ring rule parses");
    let domain: Vec<Vec<Element>> = (0..n).map(|e| vec![e]).collect();
    let config = LocalSchemeConfig { rho: 1, d: 1, strategy: SelectionStrategy::Greedy, seed: 7 };
    let scheme = LocalScheme::build_over(&db.instance, &rule.query, domain, &config)
        .expect("ring scheme builds");
    let capacity = scheme.capacity();
    println!("carrier: ring n={n}, capacity {capacity} bits");
    assert!(
        capacity >= 20,
        "carrier must clear the default significance floor (got {capacity} bits)"
    );

    let message: Vec<bool> = (0..capacity).map(|i| i % 2 == 0).collect();
    let alternate: Vec<bool> = (0..capacity).map(|i| i % 3 != 0).collect();
    let marked = scheme.mark(db.instance.weights(), &message);
    let labels: Vec<String> = scheme
        .answers()
        .parameters()
        .iter()
        .map(|a| a.iter().map(|&e| db.name(e).to_owned()).collect::<Vec<_>>().join(","))
        .collect();
    let content = StoreContent::from_family(
        scheme.answers(),
        db.instance.weights(),
        &marked,
        labels,
        db.names.clone(),
        rule.name.clone(),
    )
    .expect("content captures the marked family");

    let vfs = DiskVfs::new("");
    let start = Instant::now();
    let mut store = Store::create(&vfs, STORE_NAME, &content).expect("store creates");
    let create_ms = start.elapsed().as_secs_f64() * 1000.0;

    // 1. recovery time: leave a WAL of committed-but-unchecked-pointed
    //    transactions, then reopen and let recovery roll them forward.
    const RECOVER_ROUNDS: usize = 5;
    const RECOVER_TXNS: usize = 16;
    let mut recover_ms_total = 0.0;
    let mut wal_records = 0usize;
    let mut replayed_pages = 0usize;
    for round in 0..RECOVER_ROUNDS {
        for k in 0..RECOVER_TXNS {
            let mut txn = store.begin();
            for j in 0..4u32 {
                let id = ((round * RECOVER_TXNS + k) as u32 * 131 + j * 977) % n;
                txn.set_base(id, store_base(&content, id) + 1).expect("base write");
            }
            txn.commit_no_checkpoint().expect("uncheckpointed commit");
        }
        drop(store);
        let start = Instant::now();
        store = Store::open(&vfs, STORE_NAME).expect("store reopens");
        recover_ms_total += start.elapsed().as_secs_f64() * 1000.0;
        let rec = store.recovery();
        assert_eq!(
            rec.replayed_txns, RECOVER_TXNS,
            "recovery must roll forward every committed transaction"
        );
        assert_eq!(rec.discarded_txns, 0, "nothing uncommitted to discard");
        wal_records = rec.wal_records;
        replayed_pages = rec.replayed_pages;
    }
    let recover_ms = recover_ms_total / RECOVER_ROUNDS as f64;

    // 2. full re-mark: every pair re-written in one transaction
    let mut flip = false;
    let full_remark_ms = time_per_op(|| {
        flip = !flip;
        let bits = if flip { &alternate } else { &message };
        full_remark(&mut store, &content, &scheme, bits);
    });
    // leave the canonical message embedded for the incremental phase
    full_remark(&mut store, &content, &scheme, &message);

    // 3. incremental re-mark of a 1% weight update (Theorem 7): bump the
    //    base weight of a contiguous 1% of tuples and re-mark only the
    //    pairs that update touched.
    let touched_n = (n as usize / 100).max(1) as u32;
    let touched: HashSet<WeightKey> = (0..touched_n).map(|e| vec![e]).collect();
    let mut bump = 0i64;
    let delta_remark_ms = time_per_op(|| {
        bump += 1;
        let mut txn = store.begin();
        for id in 0..touched_n {
            txn.set_base(id, store_base(&content, id) + bump).expect("base write");
        }
        let plan = remark_touched(scheme.marking(), &message, &touched);
        for (key, delta) in &plan {
            let id = content.lookup(key).expect("re-marked tuple is interned");
            txn.set_delta(id, *delta).expect("delta write");
        }
        txn.commit().expect("incremental re-mark commits");
    });
    let remarked = remark_touched(scheme.marking(), &message, &touched).len();
    let speedup = full_remark_ms / delta_remark_ms;

    // 4. acceptance drill: after all of the above the detector, reading
    //    the store cold, must still see the full mark.
    drop(store);
    let mut store = Store::open(&vfs, STORE_NAME).expect("final reopen");
    let fresh = store.content().expect("content decodes");
    let family = fresh.family().expect("family revalidates");
    let server = HonestServer::new(family, fresh.marked_weights());
    let observed = ObservedWeights::collect(&server);
    let report = scheme.marking().extract(&fresh.base_weights(), &observed);
    let check = report.claim_check(&message, DEFAULT_DELTA);
    let mark_intact = check.verdict == Verdict::MarkPresent && check.matches == check.claimed;
    assert!(
        mark_intact,
        "mark must survive recovery and incremental re-marking ({}/{} bits, {:?})",
        check.matches, check.claimed, check.verdict
    );

    let mut table = Table::new(vec!["metric", "value"]);
    table.row(vec!["create_ms".into(), format!("{create_ms:.2}")]);
    table.row(vec![
        format!("recover_ms ({RECOVER_TXNS} txns)"),
        format!("{recover_ms:.2}"),
    ]);
    table.row(vec!["full_remark_ms".into(), format!("{full_remark_ms:.2}")]);
    table.row(vec![
        format!("delta_remark_ms (1% = {touched_n} tuples)"),
        format!("{delta_remark_ms:.2}"),
    ]);
    table.row(vec!["remark_speedup".into(), format!("{speedup:.1}x")]);
    table.print("X-S2 — store: recovery time and incremental re-marking");
    println!(
        "WAL at recovery: {wal_records} record(s), {replayed_pages} page(s) replayed; \
         incremental plan re-marks {remarked} tuple(s); mark intact: {mark_intact}"
    );

    let json = format!(
        "{{\n  \"carrier\": \"ring n={n}, q($u; v) :- R($u, v), rho=1 d=1\",\n  \
         \"capacity_bits\": {capacity},\n  \"n_tuples\": {},\n  \"create_ms\": {create_ms:.3},\n  \
         \"recover_txns\": {RECOVER_TXNS},\n  \"recover_ms\": {recover_ms:.3},\n  \
         \"recover_wal_records\": {wal_records},\n  \"recover_replayed_pages\": {replayed_pages},\n  \
         \"full_remark_ms\": {full_remark_ms:.3},\n  \"delta_remark_ms\": {delta_remark_ms:.3},\n  \
         \"touched_tuples\": {touched_n},\n  \"remarked_tuples\": {remarked},\n  \
         \"remark_speedup\": {speedup:.2},\n  \"mark_intact\": {mark_intact}\n}}\n",
        content.n_tuples()
    );
    std::fs::write("BENCH_store.json", &json).expect("write BENCH_store.json");
    println!("wrote BENCH_store.json");
}

/// The carrier's deterministic original base weight for tuple `id` —
/// the CSV assigned `100 + 3·element`, and 1-ary tuples are their element.
fn store_base(content: &StoreContent, id: u32) -> i64 {
    100 + i64::from(content.flat[id as usize]) * 3
}
