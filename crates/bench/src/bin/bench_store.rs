//! Persistent-store micro-benchmark: the out-of-core marking/serving
//! path, group-commit throughput, crash-recovery time, and the
//! Theorem 7 incremental re-marking advantage.
//!
//! Phase order matters: the out-of-core phase runs **first** so the
//! process high-water mark (`VmHWM`) it reports reflects the streaming
//! path alone. It streams an `--oo`-sized pair family (default 10^7
//! tuples) through [`StoreStreamer`] into store pages, then verifies
//! every pair back through a [`ReadView`] buffer pool without ever
//! materializing the family — the acceptance gate holds the peak RSS
//! under 256 MiB. A smaller differential run re-reads the same image
//! through both the paged and the in-RAM (`Store::open` → `content()`)
//! paths and demands bit-for-bit identical detection evidence.
//!
//! The group-commit phase commits the same 64-transaction batch twice —
//! once with an fsync per transaction, once buffered behind a single
//! [`Store::group_commit_no_checkpoint`] flush — and reports the
//! speedup (gated at ≥ 3× by `scripts/bench_compare.sh`).
//!
//! The remaining phases are the original X-S2 drill over the
//! battleground's ring relation: recovery time for a committed WAL and
//! full re-mark vs `remark_touched` for a 1% update, with the 10×
//! incremental floor gated alongside everything else in
//! `BENCH_store.json`.
//!
//! Run with `cargo run --release -p qpwm-bench --bin bench_store`
//! (flags: `--oo <n>`, `--ring <n>`, `--threads <n>`). Writes its store
//! files and WALs into the working directory.

use qpwm_bench::Table;
use qpwm_core::detect::{
    DetectionReport, HonestServer, ObservedWeights, Verdict, DEFAULT_DELTA,
};
use qpwm_core::incremental::remark_touched;
use qpwm_core::local_scheme::{LocalScheme, LocalSchemeConfig, SelectionStrategy};
use qpwm_logic::datalog::parse_rule;
use qpwm_store::{DiskVfs, ReadView, Store, StoreContent, StoreStreamer};
use qpwm_structures::{Element, WeightKey};
use qpwm_workloads::csv_db::load_csv_database;
use std::collections::HashSet;
use std::fmt::Write as _;
use std::time::Instant;

const STORE_NAME: &str = "bench_store.qps";
const OO_NAME: &str = "bench_oo.qps";
const DIFF_NAME: &str = "bench_oo_diff.qps";
const GC_NAME: &str = "bench_gc.qps";

/// Frames per pool in the out-of-core phase: 8 MiB of 4 KiB pages, a
/// rounding error next to the ~375 MB image it serves.
const OO_POOL_FRAMES: usize = 2048;

/// Transactions per group-commit batch (the acceptance batch size).
const GC_BATCH: usize = 64;

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    args.windows(2)
        .find(|w| w[0] == name)
        .map(|w| w[1].clone())
}

fn parse_flag(name: &str, default: usize) -> usize {
    match flag_value(name) {
        None => default,
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("error: {name} needs a positive integer, got '{raw}'");
            std::process::exit(2);
        }),
    }
}

/// Median ms/op (at least 5 iterations, stops after ~250 ms of
/// sampling). The median rather than the mean: commits end in fsync,
/// and a single slow flush would otherwise dominate a short op.
fn time_per_op(mut op: impl FnMut()) -> f64 {
    let start = Instant::now();
    let mut samples = Vec::new();
    loop {
        let t = Instant::now();
        op();
        samples.push(t.elapsed().as_secs_f64() * 1000.0);
        if (samples.len() >= 5 && start.elapsed().as_millis() >= 250) || samples.len() >= 100_000 {
            break;
        }
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Process high-water RSS in MiB, from `VmHWM` in `/proc/self/status`.
fn peak_rss_mib() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

// ---------------------------------------------------------------- OO phase

/// The procedural pair carrier: unary tuples `0..n`, parameter `i`
/// activates the pair `{2i, 2i+1}`, and the embedded bit for pair `i`
/// is the popcount parity of `i`. Everything below derives from these
/// three functions, so no phase ever needs the family in RAM.
fn oo_bit(i: usize) -> bool {
    (i as u64).count_ones().is_multiple_of(2)
}

fn oo_base(e: u32) -> i64 {
    100 + i64::from(e) % 1000
}

/// The pair mark: the first member carries `+1` when the bit is 1, the
/// second the opposite sign — the same ±1 swap Theorem 3 emits.
fn oo_delta(e: u32) -> i64 {
    let first = if oo_bit((e / 2) as usize) { 1 } else { -1 };
    if e.is_multiple_of(2) {
        first
    } else {
        -first
    }
}

/// Streams the `n`-tuple pair family into `name` and returns the wall
/// time. Peak memory is the streamer's write buffers plus an `n/8`-byte
/// active bitmap — the family itself never exists in RAM.
fn oo_create(vfs: &DiskVfs, name: &str, n: usize) -> f64 {
    let start = Instant::now();
    let mut s = StoreStreamer::new(vfs, name, 1, 1, "pairs").expect("streamer");
    for e in 0..n as u32 {
        s.push_tuple(&[e], oo_base(e), oo_delta(e)).expect("tuple");
    }
    for i in 0..n as u32 / 2 {
        s.push_param(&[i], &format!("p{i}"), &[2 * i, 2 * i + 1]).expect("param");
    }
    let stats = s.finish(vfs).expect("finish");
    assert_eq!(stats.n_tuples, n);
    assert_eq!(stats.n_params, n / 2);
    start.elapsed().as_secs_f64() * 1000.0
}

/// Builds the pair-marking detection evidence from any per-tuple
/// `(base, delta)` reader: bit `i` is the sign of the observed swap on
/// pair `(2i, 2i+1)`. Both the paged and the in-RAM differential paths
/// run exactly this — only the data source differs.
fn pair_report(n_pairs: usize, mut entry: impl FnMut(u32) -> (i64, i64)) -> DetectionReport {
    let mut bits = Vec::with_capacity(n_pairs);
    let mut scores = Vec::with_capacity(n_pairs);
    for i in 0..n_pairs {
        let (_, d0) = entry(2 * i as u32);
        let (_, d1) = entry(2 * i as u32 + 1);
        let score = d0 - d1;
        bits.push(score > 0);
        scores.push(score);
    }
    DetectionReport { bits, scores, missing_pairs: 0 }
}

/// The small-scale differential: the same image read through the paged
/// path and through the in-RAM decode must yield bit-identical
/// detection evidence and claim checks.
fn oo_evidence_identical(vfs: &DiskVfs, n: usize) -> bool {
    let mut s = StoreStreamer::new(vfs, DIFF_NAME, 1, 1, "pairs").expect("diff streamer");
    for e in 0..n as u32 {
        s.push_tuple(&[e], oo_base(e), oo_delta(e)).expect("tuple");
    }
    for i in 0..n as u32 / 2 {
        s.push_param(&[i], &format!("p{i}"), &[2 * i, 2 * i + 1]).expect("param");
    }
    s.finish(vfs).expect("diff finish");

    let mut store = Store::open(vfs, DIFF_NAME).expect("diff open");
    let content = store.content().expect("diff content");
    let ram = pair_report(n / 2, |id| (content.base[id as usize], content.delta[id as usize]));
    drop(store);

    let mut view = ReadView::open(vfs, DIFF_NAME, Some(64)).expect("diff view");
    let paged = pair_report(n / 2, |id| view.weight_entry(id).expect("weight entry"));
    drop(view);
    let _ = std::fs::remove_file(DIFF_NAME);
    let _ = std::fs::remove_file(format!("{DIFF_NAME}.wal"));

    let expected: Vec<bool> = (0..64).map(oo_bit).collect();
    let ram_check = ram.claim_check(&expected, DEFAULT_DELTA);
    let paged_check = paged.claim_check(&expected, DEFAULT_DELTA);
    ram.bits == paged.bits
        && ram.scores == paged.scores
        && ram.missing_pairs == paged.missing_pairs
        && ram_check.matches == paged_check.matches
        && ram_check.compared == paged_check.compared
        && ram_check.significance == paged_check.significance
        && ram_check.verdict == paged_check.verdict
}

// ---------------------------------------------------------------- GC phase

/// A small dedicated store for the group-commit drill: 512 unary
/// tuples, 256 pair parameters.
fn gc_content() -> StoreContent {
    let n = 512usize;
    let ids: Vec<u32> = (0..n as u32).collect();
    StoreContent {
        tuple_arity: 1,
        param_arity: 1,
        flat: ids.clone(),
        parameters: (0..n as u32 / 2).collect(),
        offsets: (0..=n as u32 / 2).map(|i| 2 * i).collect(),
        ids: ids.clone(),
        universe: ids,
        base: (0..n).map(|e| 100 + e as i64).collect(),
        delta: vec![0; n],
        param_labels: (0..n / 2).map(|i| format!("p{i}")).collect(),
        element_names: Vec::new(),
        query_name: "gc".into(),
    }
}

/// One batch of `GC_BATCH` single-delta transactions, committed either
/// one-fsync-per-transaction or buffered behind one group commit.
/// Returns (elapsed ms, WAL fsyncs the batch cost).
fn gc_batch(store: &mut Store, round: i64, grouped: bool) -> (f64, u64) {
    let fsyncs_before = store.stat().wal.fsyncs;
    let start = Instant::now();
    for k in 0..GC_BATCH {
        let mut txn = store.begin();
        txn.set_delta(k as u32, round + k as i64).expect("delta write");
        if grouped {
            txn.commit_buffered().expect("buffered commit");
        } else {
            txn.commit_no_checkpoint().expect("per-txn commit");
        }
    }
    if grouped {
        let batched = store.group_commit_no_checkpoint().expect("group commit");
        assert_eq!(batched, GC_BATCH, "every buffered txn flushes");
    }
    let ms = start.elapsed().as_secs_f64() * 1000.0;
    (ms, store.stat().wal.fsyncs - fsyncs_before)
}

/// One full re-mark: a fresh `delta_map` over every pair, applied as a
/// single transaction of delta writes.
fn full_remark(store: &mut Store, content: &StoreContent, scheme: &LocalScheme, bits: &[bool]) {
    let deltas = scheme.marking().delta_map(bits);
    let mut txn = store.begin();
    for (key, delta) in &deltas {
        let id = content.lookup(key).expect("marked tuple is interned");
        txn.set_delta(id, *delta).expect("delta write");
    }
    txn.commit().expect("full re-mark commits");
}

fn main() {
    if let Some(raw) = flag_value("--threads") {
        match qpwm_par::parse_thread_arg(&raw) {
            Ok(n) => qpwm_par::set_threads(n),
            Err(e) => {
                eprintln!("error: --threads: {e}");
                std::process::exit(2);
            }
        }
    }
    let oo_n = parse_flag("--oo", 10_000_000);
    assert!(oo_n >= 4 && oo_n.is_multiple_of(2), "--oo must be an even pair count >= 4");
    let n = parse_flag("--ring", 32768) as u32;
    let vfs = DiskVfs::new("");

    // 0. out-of-core: stream a 10^7-tuple pair family into store pages,
    //    then verify every pair back through a bounded buffer pool. The
    //    family never exists in RAM; VmHWM is recorded immediately after
    //    so later (resident) phases can't inflate it.
    println!("out-of-core carrier: {oo_n} tuples, {} pairs", oo_n / 2);
    let oo_create_ms = oo_create(&vfs, OO_NAME, oo_n);
    let oo_pages = {
        let store = Store::open(&vfs, OO_NAME).expect("oo reopen");
        store.stat().total_pages
    };

    let mut view =
        ReadView::open(&vfs, OO_NAME, Some(OO_POOL_FRAMES)).expect("oo view");
    let start = Instant::now();
    let report = pair_report(oo_n / 2, |id| view.weight_entry(id).expect("weight entry"));
    let oo_verify_ms = start.elapsed().as_secs_f64() * 1000.0;
    let expected: Vec<bool> = (0..64).map(oo_bit).collect();
    let check = report.claim_check(&expected, DEFAULT_DELTA);
    assert!(
        check.verdict == Verdict::MarkPresent && check.matches == check.claimed,
        "streamed mark must verify ({}/{} bits, {:?})",
        check.matches,
        check.claimed,
        check.verdict
    );
    assert_eq!(report.clean_fraction(), 1.0, "every pair read cleanly");

    // the serving read path: answer sets + labels for a strided sample
    // of parameters, through the same pool the paged server uses.
    let sample = 4096.min(oo_n / 2);
    let stride = (oo_n / 2 / sample).max(1);
    let start = Instant::now();
    let mut served_rows = 0usize;
    for s in 0..sample {
        let i = s * stride;
        let pairs = view.answer_pairs(i).expect("answer pairs");
        let label = view.label(i).expect("label");
        assert_eq!(pairs.len(), 2, "pair family parameter {label}");
        served_rows += pairs.len();
    }
    let oo_serve_ms = start.elapsed().as_secs_f64() * 1000.0;
    let pool = view.pool_stats();
    let (resident, capacity) = view.pool_usage();
    drop(view);

    let oo_peak_rss_mib = peak_rss_mib().unwrap_or(0.0);
    assert!(
        oo_peak_rss_mib > 0.0 && oo_peak_rss_mib < 256.0,
        "out-of-core phase must stay under the 256 MiB ceiling (VmHWM {oo_peak_rss_mib:.1} MiB)"
    );
    let oo_evidence = oo_evidence_identical(&vfs, 100_000);
    assert!(oo_evidence, "paged and in-RAM detection evidence must be bit-identical");
    let _ = std::fs::remove_file(OO_NAME);
    let _ = std::fs::remove_file(format!("{OO_NAME}.wal"));
    println!(
        "out-of-core: create {oo_create_ms:.0} ms, verify {oo_verify_ms:.0} ms \
         ({} pool hits / {} misses / {} evictions, {resident}/{capacity} frames), \
         serve sample {served_rows} rows in {oo_serve_ms:.1} ms, peak RSS {oo_peak_rss_mib:.1} MiB",
        pool.hits, pool.misses, pool.evictions
    );

    // 0b. group commit: the same 64-txn batch, one fsync per txn vs one
    //     fsync per batch. Three rounds each, medians, interleaved so
    //     neither path monopolizes a cold or warm page cache.
    let gc = gc_content();
    let mut store = Store::create(&vfs, GC_NAME, &gc).expect("gc store");
    let mut per_txn = Vec::new();
    let mut grouped = Vec::new();
    let mut gc_fsyncs_per_txn = 0u64;
    let mut gc_fsyncs_grouped = 0u64;
    for round in 0..3i64 {
        let (ms, fsyncs) = gc_batch(&mut store, 2 * round, false);
        per_txn.push(ms);
        gc_fsyncs_per_txn = fsyncs;
        let (ms, fsyncs) = gc_batch(&mut store, 2 * round + 1, true);
        grouped.push(ms);
        gc_fsyncs_grouped = fsyncs;
    }
    per_txn.sort_by(f64::total_cmp);
    grouped.sort_by(f64::total_cmp);
    let gc_per_txn_ms = per_txn[per_txn.len() / 2];
    let gc_grouped_ms = grouped[grouped.len() / 2];
    let gc_speedup = gc_per_txn_ms / gc_grouped_ms;
    assert_eq!(gc_fsyncs_per_txn, GC_BATCH as u64, "one fsync per txn");
    assert_eq!(gc_fsyncs_grouped, 1, "one fsync per batch");
    // the batch survives a reopen: recovery replays every grouped txn
    drop(store);
    let store = Store::open(&vfs, GC_NAME).expect("gc reopen");
    assert_eq!(store.recovery().discarded_txns, 0, "no torn group commits");
    drop(store);
    let _ = std::fs::remove_file(GC_NAME);
    let _ = std::fs::remove_file(format!("{GC_NAME}.wal"));
    println!(
        "group commit: {GC_BATCH} txns, {gc_per_txn_ms:.1} ms per-txn vs \
         {gc_grouped_ms:.1} ms grouped ({gc_speedup:.1}x, \
         {gc_fsyncs_per_txn} vs {gc_fsyncs_grouped} fsyncs)"
    );

    // the carrier: a ring relation under the battleground's ring rule
    let mut ring = String::new();
    let mut weights_csv = String::new();
    for i in 0..n {
        let _ = writeln!(ring, "n{i},n{}", (i + 1) % n);
        let _ = writeln!(weights_csv, "n{i},{}", 100 + i64::from(i) * 3);
    }
    let db = load_csv_database("R(a,b)", &[("R", &ring)], Some(&weights_csv))
        .expect("ring CSV loads");
    let rule = parse_rule("q($u; v) :- R($u, v)", db.instance.structure().schema())
        .expect("ring rule parses");
    let domain: Vec<Vec<Element>> = (0..n).map(|e| vec![e]).collect();
    let config = LocalSchemeConfig { rho: 1, d: 1, strategy: SelectionStrategy::Greedy, seed: 7 };
    let scheme = LocalScheme::build_over(&db.instance, &rule.query, domain, &config)
        .expect("ring scheme builds");
    let capacity = scheme.capacity();
    println!("carrier: ring n={n}, capacity {capacity} bits");
    assert!(
        capacity >= 20,
        "carrier must clear the default significance floor (got {capacity} bits)"
    );

    let message: Vec<bool> = (0..capacity).map(|i| i % 2 == 0).collect();
    let alternate: Vec<bool> = (0..capacity).map(|i| i % 3 != 0).collect();
    let marked = scheme.mark(db.instance.weights(), &message);
    let labels: Vec<String> = scheme
        .answers()
        .parameters()
        .iter()
        .map(|a| a.iter().map(|&e| db.name(e).to_owned()).collect::<Vec<_>>().join(","))
        .collect();
    let content = StoreContent::from_family(
        scheme.answers(),
        db.instance.weights(),
        &marked,
        labels,
        db.names.clone(),
        rule.name.clone(),
    )
    .expect("content captures the marked family");

    let start = Instant::now();
    let mut store = Store::create(&vfs, STORE_NAME, &content).expect("store creates");
    let create_ms = start.elapsed().as_secs_f64() * 1000.0;

    // 1. recovery time: leave a WAL of committed-but-unchecked-pointed
    //    transactions, then reopen and let recovery roll them forward.
    const RECOVER_ROUNDS: usize = 5;
    const RECOVER_TXNS: usize = 16;
    let mut recover_ms_total = 0.0;
    let mut wal_records = 0usize;
    let mut replayed_pages = 0usize;
    for round in 0..RECOVER_ROUNDS {
        for k in 0..RECOVER_TXNS {
            let mut txn = store.begin();
            for j in 0..4u32 {
                let id = ((round * RECOVER_TXNS + k) as u32 * 131 + j * 977) % n;
                txn.set_base(id, store_base(&content, id) + 1).expect("base write");
            }
            txn.commit_no_checkpoint().expect("uncheckpointed commit");
        }
        drop(store);
        let start = Instant::now();
        store = Store::open(&vfs, STORE_NAME).expect("store reopens");
        recover_ms_total += start.elapsed().as_secs_f64() * 1000.0;
        let rec = store.recovery();
        assert_eq!(
            rec.replayed_txns, RECOVER_TXNS,
            "recovery must roll forward every committed transaction"
        );
        assert_eq!(rec.discarded_txns, 0, "nothing uncommitted to discard");
        wal_records = rec.wal_records;
        replayed_pages = rec.replayed_pages;
    }
    let recover_ms = recover_ms_total / RECOVER_ROUNDS as f64;

    // 2. full re-mark: every pair re-written in one transaction
    let mut flip = false;
    let full_remark_ms = time_per_op(|| {
        flip = !flip;
        let bits = if flip { &alternate } else { &message };
        full_remark(&mut store, &content, &scheme, bits);
    });
    // leave the canonical message embedded for the incremental phase
    full_remark(&mut store, &content, &scheme, &message);

    // 3. incremental re-mark of a 1% weight update (Theorem 7): bump the
    //    base weight of a contiguous 1% of tuples and re-mark only the
    //    pairs that update touched.
    let touched_n = (n as usize / 100).max(1) as u32;
    let touched: HashSet<WeightKey> = (0..touched_n).map(|e| vec![e]).collect();
    let mut bump = 0i64;
    let delta_remark_ms = time_per_op(|| {
        bump += 1;
        let mut txn = store.begin();
        for id in 0..touched_n {
            txn.set_base(id, store_base(&content, id) + bump).expect("base write");
        }
        let plan = remark_touched(scheme.marking(), &message, &touched);
        for (key, delta) in &plan {
            let id = content.lookup(key).expect("re-marked tuple is interned");
            txn.set_delta(id, *delta).expect("delta write");
        }
        txn.commit().expect("incremental re-mark commits");
    });
    let remarked = remark_touched(scheme.marking(), &message, &touched).len();
    let speedup = full_remark_ms / delta_remark_ms;

    // 4. acceptance drill: after all of the above the detector, reading
    //    the store cold, must still see the full mark.
    drop(store);
    let mut store = Store::open(&vfs, STORE_NAME).expect("final reopen");
    let fresh = store.content().expect("content decodes");
    let family = fresh.family().expect("family revalidates");
    let server = HonestServer::new(family, fresh.marked_weights());
    let observed = ObservedWeights::collect(&server);
    let report = scheme.marking().extract(&fresh.base_weights(), &observed);
    let check = report.claim_check(&message, DEFAULT_DELTA);
    let mark_intact = check.verdict == Verdict::MarkPresent && check.matches == check.claimed;
    assert!(
        mark_intact,
        "mark must survive recovery and incremental re-marking ({}/{} bits, {:?})",
        check.matches, check.claimed, check.verdict
    );

    let mut table = Table::new(vec!["metric", "value"]);
    table.row(vec![format!("oo_create_ms ({oo_n} tuples)"), format!("{oo_create_ms:.0}")]);
    table.row(vec!["oo_verify_ms".into(), format!("{oo_verify_ms:.0}")]);
    table.row(vec!["oo_peak_rss_mib".into(), format!("{oo_peak_rss_mib:.1}")]);
    table.row(vec![
        format!("gc_speedup ({GC_BATCH} txns)"),
        format!("{gc_speedup:.1}x"),
    ]);
    table.row(vec!["create_ms".into(), format!("{create_ms:.2}")]);
    table.row(vec![
        format!("recover_ms ({RECOVER_TXNS} txns)"),
        format!("{recover_ms:.2}"),
    ]);
    table.row(vec!["full_remark_ms".into(), format!("{full_remark_ms:.2}")]);
    table.row(vec![
        format!("delta_remark_ms (1% = {touched_n} tuples)"),
        format!("{delta_remark_ms:.2}"),
    ]);
    table.row(vec!["remark_speedup".into(), format!("{speedup:.1}x")]);
    table.print("X-S2/X-S3 — store: out-of-core, group commit, recovery, re-marking");
    println!(
        "WAL at recovery: {wal_records} record(s), {replayed_pages} page(s) replayed; \
         incremental plan re-marks {remarked} tuple(s); mark intact: {mark_intact}"
    );

    let json = format!(
        "{{\n  \"carrier\": \"ring n={n}, q($u; v) :- R($u, v), rho=1 d=1\",\n  \
         \"capacity_bits\": {capacity},\n  \"n_tuples\": {},\n  \
         \"oo_n_tuples\": {oo_n},\n  \"oo_pages\": {oo_pages},\n  \
         \"oo_create_ms\": {oo_create_ms:.3},\n  \"oo_verify_ms\": {oo_verify_ms:.3},\n  \
         \"oo_serve_ms\": {oo_serve_ms:.3},\n  \"oo_pool_frames\": {OO_POOL_FRAMES},\n  \
         \"oo_peak_rss_mib\": {oo_peak_rss_mib:.1},\n  \
         \"oo_evidence_identical\": {oo_evidence},\n  \
         \"gc_batch\": {GC_BATCH},\n  \"gc_per_txn_ms\": {gc_per_txn_ms:.3},\n  \
         \"gc_grouped_ms\": {gc_grouped_ms:.3},\n  \"gc_speedup\": {gc_speedup:.2},\n  \
         \"gc_fsyncs_per_txn\": {gc_fsyncs_per_txn},\n  \
         \"gc_fsyncs_grouped\": {gc_fsyncs_grouped},\n  \
         \"create_ms\": {create_ms:.3},\n  \
         \"recover_txns\": {RECOVER_TXNS},\n  \"recover_ms\": {recover_ms:.3},\n  \
         \"recover_wal_records\": {wal_records},\n  \"recover_replayed_pages\": {replayed_pages},\n  \
         \"full_remark_ms\": {full_remark_ms:.3},\n  \"delta_remark_ms\": {delta_remark_ms:.3},\n  \
         \"touched_tuples\": {touched_n},\n  \"remarked_tuples\": {remarked},\n  \
         \"remark_speedup\": {speedup:.2},\n  \"mark_intact\": {mark_intact}\n}}\n",
        content.n_tuples()
    );
    std::fs::write("BENCH_store.json", &json).expect("write BENCH_store.json");
    println!("wrote BENCH_store.json");
}

/// The carrier's deterministic original base weight for tuple `id` —
/// the CSV assigned `100 + 3·element`, and 1-ary tuples are their element.
fn store_base(content: &StoreContent, id: u32) -> i64 {
    100 + i64::from(content.flat[id as usize]) * 3
}
