//! Experiment X-T4: Theorem 4 — watermarking bounded clique-width graphs
//! through their k-expression parse trees.
//!
//! Sweeps graph size and reports the translated automaton's state count
//! (`2(k+1)²`), the scheme's capacity, the audited distortion (Theorem 5
//! bound: ≤ 1 on every edge-query answer), and end-to-end detection.
//!
//! Run with `cargo run --release -p qpwm-bench --bin cliquewidth_table`.

use qpwm_bench::Table;
use qpwm_core::cliquewidth::{clique_chain, edge_query_automaton, ParseTree};
use qpwm_core::detect::HonestServer;
use qpwm_core::TreeScheme;
use qpwm_structures::Weights;
use std::time::Instant;

fn main() {
    let k = 3u32;
    let query = edge_query_automaton(k);
    let m = query.automaton().num_states();
    let mut table = Table::new(vec![
        "vertices",
        "edges",
        "parse nodes",
        "m",
        "bits",
        "max global",
        "build ms",
        "detect ok",
    ]);
    for n in [150u32, 300, 600, 1_200] {
        let expr = clique_chain(n);
        let graph = expr.eval();
        let parse = ParseTree::of(&expr, k);
        let mut weights = Weights::new(1);
        for (v, &leaf) in parse.leaf_of_vertex.iter().enumerate() {
            weights.set(&[leaf], 500 + v as i64);
        }
        let domain: Vec<Vec<u32>> = parse.leaf_of_vertex.iter().map(|&l| vec![l]).collect();
        let start = Instant::now();
        let scheme = TreeScheme::build_over(&parse.tree, &query, 2, domain);
        let ms = start.elapsed().as_millis();
        let message: Vec<bool> = (0..scheme.capacity()).map(|i| i % 2 == 0).collect();
        let marked = scheme.mark(&weights, &message);
        let audit = scheme.audit(&weights, &marked);
        let server = HonestServer::new(scheme.family().clone(), marked);
        let ok = scheme.detect(&weights, &server).bits == message;
        table.row(vec![
            n.to_string(),
            (graph.tuples(0).len() / 2).to_string(),
            parse.tree.len().to_string(),
            m.to_string(),
            scheme.capacity().to_string(),
            audit.max_global.to_string(),
            ms.to_string(),
            ok.to_string(),
        ]);
    }
    table.print("X-T4 — Theorem 4: clique-width ≤ 3 graphs via parse trees (edge query)");
}
