//! Experiments X-B1/X-B2: baseline comparisons.
//!
//! X-B1 — Agrawal–Kiernan vs the Theorem 3 scheme on the same weighted
//! instance: AK keeps mean/variance nearly intact (their experimental
//! claim, reproduced) but *parametric* query results move without bound;
//! the query-preserving scheme bounds every parametric answer by `d`.
//!
//! X-B2 — Khanna–Zane on weighted graphs: the shortest-path analogue the
//! paper generalizes; reproduces its capacity/distortion trade-off.
//!
//! Run with `cargo run --release -p qpwm-bench --bin baseline_compare`.

use qpwm_baselines::agrawal_kiernan::{mean_variance, AkConfig, AkScheme};
use qpwm_baselines::khanna_zane::{KzGraph, KzScheme};
use qpwm_bench::Table;
use qpwm_core::local_scheme::{LocalScheme, LocalSchemeConfig, SelectionStrategy};
use qpwm_logic::{Formula, ParametricQuery};
use qpwm_rng::Rng;
use qpwm_structures::distortion::Aggregate;
use qpwm_workloads::graphs::{cycle_union, unary_domain, with_random_weights};

fn main() {
    // ---- X-B1 ---------------------------------------------------------------
    let instance = with_random_weights(cycle_union(100, 6, 0), 1_000, 5_000, 2);
    let query = ParametricQuery::new(Formula::atom(0, &[0, 1]), vec![0], vec![1]);
    let answers = query.answers_over(instance.structure(), unary_domain(instance.structure()));
    let universe: Vec<Vec<u32>> = instance.structure().universe().map(|e| vec![e]).collect();

    let mut b1 = Table::new(vec![
        "scheme",
        "bits",
        "mean shift",
        "variance shift %",
        "worst query shift",
    ]);

    for gamma in [2u64, 4, 8] {
        let ak = AkScheme::new(AkConfig { gamma, xi: 3, ..AkConfig::default() });
        let marked = ak.mark(instance.weights(), &universe);
        let (m0, v0) = mean_variance(instance.weights(), &universe);
        let (m1, v1) = mean_variance(&marked, &universe);
        let worst = (0..answers.len())
            .map(|i| {
                (Aggregate::Sum.apply_iter(instance.weights(), answers.set_tuples(i))
                    - Aggregate::Sum.apply_iter(&marked, answers.set_tuples(i)))
                .abs()
            })
            .max()
            .unwrap_or(0);
        let det = ak.detect(&marked, &universe);
        b1.row(vec![
            format!("AK gamma={gamma} xi=3"),
            det.total_marked.to_string(),
            format!("{:.3}", (m1 - m0).abs()),
            format!("{:.3}", 100.0 * (v1 - v0).abs() / v0),
            worst.to_string(),
        ]);
    }

    for d in [1u64, 2] {
        let scheme = LocalScheme::build_over(
            &instance,
            &query,
            unary_domain(instance.structure()),
            &LocalSchemeConfig { rho: 1, d, strategy: SelectionStrategy::Greedy, seed: 6 },
        )
        .expect("builds");
        let message: Vec<bool> = (0..scheme.capacity()).map(|i| i % 2 == 0).collect();
        let marked = scheme.mark(instance.weights(), &message);
        let (m0, v0) = mean_variance(instance.weights(), &universe);
        let (m1, v1) = mean_variance(&marked, &universe);
        let audit = scheme.audit(instance.weights(), &marked);
        b1.row(vec![
            format!("QP local d={d}"),
            scheme.capacity().to_string(),
            format!("{:.3}", (m1 - m0).abs()),
            format!("{:.3}", 100.0 * (v1 - v0).abs() / v0),
            audit.max_global.to_string(),
        ]);
    }
    b1.print("X-B1 — Agrawal–Kiernan vs query-preserving (same instance, edge query)");
    println!(
        "reading: AK's mean/variance barely move, but its worst parametric\n\
         answer moves by many units; the QP scheme pins it at d by design."
    );

    // ---- X-B2 ---------------------------------------------------------------
    let mut b2 = Table::new(vec!["graph", "edges", "d", "bits", "max path change"]);
    let mut rng = Rng::seed_from_u64(8);
    for n in [12u32, 20, 32] {
        let mut edges = Vec::new();
        for i in 0..n {
            edges.push((i, (i + 1) % n, rng.gen_range(8i64..20)));
        }
        for i in 0..n / 2 {
            edges.push((i, i + n / 2, rng.gen_range(20i64..40)));
        }
        let g = KzGraph::new(n as usize, edges);
        for d in [1i64, 2, 4] {
            let scheme = KzScheme::build(&g, d, 3);
            let message: Vec<bool> = (0..scheme.capacity()).map(|i| i % 2 == 0).collect();
            let marked = scheme.mark(&g, &message);
            b2.row(vec![
                format!("ring+chords n={n}"),
                g.edges().len().to_string(),
                d.to_string(),
                scheme.capacity().to_string(),
                g.max_distance_change(&marked).to_string(),
            ]);
        }
    }
    b2.print("X-B2 — Khanna–Zane shortest-path scheme: capacity vs budget");
}
