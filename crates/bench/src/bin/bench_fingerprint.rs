//! Fingerprinting micro-benchmark: key-derivation throughput, per-copy
//! stamping cost, and accusation latency as the issuance registry grows.
//!
//! The carrier is the battleground's ring relation at serving size
//! (n = 512, capacity 255 bits — comfortably past the default
//! significance floor). The headline check doubles as the subsystem's
//! end-to-end acceptance drill: with 10^4 issued recipients, a leaked
//! copy must be accused correctly at the default significance level.
//! Results land in `BENCH_fingerprint.json`, which
//! `scripts/bench_compare.sh` gates.
//!
//! Run with `cargo run --release -p qpwm-bench --bin bench_fingerprint`
//! (flags: `--ring <n>`, `--threads <n>` accepted for symmetry).

use qpwm_bench::Table;
use qpwm_core::detect::DEFAULT_DELTA;
use qpwm_core::local_scheme::{LocalScheme, LocalSchemeConfig, SelectionStrategy};
use qpwm_fingerprint::{accuse, observed_from_pairs, Fingerprinter, KeyRegistry, MasterSecret};
use qpwm_logic::datalog::parse_rule;
use qpwm_structures::Element;
use qpwm_workloads::csv_db::load_csv_database;
use std::fmt::Write as _;
use std::time::Instant;

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    args.windows(2)
        .find(|w| w[0] == name)
        .map(|w| w[1].clone())
}

fn parse_flag(name: &str, default: usize) -> usize {
    match flag_value(name) {
        None => default,
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("error: {name} needs a positive integer, got '{raw}'");
            std::process::exit(2);
        }),
    }
}

/// Mean ms/op (at least 3 iterations, stops after ~60 ms of sampling).
fn time_per_op(mut op: impl FnMut()) -> f64 {
    let start = Instant::now();
    let mut iters = 0u32;
    loop {
        op();
        iters += 1;
        if (iters >= 3 && start.elapsed().as_millis() >= 60) || iters >= 100_000 {
            break;
        }
    }
    start.elapsed().as_secs_f64() * 1000.0 / f64::from(iters)
}

struct AccusePoint {
    recipients: usize,
    ms: f64,
    accused_ok: bool,
    significance: f64,
    gap_log10: f64,
}

fn main() {
    if let Some(raw) = flag_value("--threads") {
        match qpwm_par::parse_thread_arg(&raw) {
            Ok(n) => qpwm_par::set_threads(n),
            Err(e) => {
                eprintln!("error: --threads: {e}");
                std::process::exit(2);
            }
        }
    }
    let n = parse_flag("--ring", 512) as u32;

    // the carrier: a ring relation under the battleground's ring rule
    let mut ring = String::new();
    let mut weights_csv = String::new();
    for i in 0..n {
        let _ = writeln!(ring, "n{i},n{}", (i + 1) % n);
        let _ = writeln!(weights_csv, "n{i},{}", 100 + i64::from(i) * 3);
    }
    let db = load_csv_database("R(a,b)", &[("R", &ring)], Some(&weights_csv))
        .expect("ring CSV loads");
    let rule = parse_rule("q($u; v) :- R($u, v)", db.instance.structure().schema())
        .expect("ring rule parses");
    let domain: Vec<Vec<Element>> = (0..n).map(|e| vec![e]).collect();
    let config = LocalSchemeConfig { rho: 1, d: 1, strategy: SelectionStrategy::Greedy, seed: 7 };
    let scheme = LocalScheme::build_over(&db.instance, &rule.query, domain, &config)
        .expect("ring scheme builds");
    let baseline = db.instance.weights().clone();
    let fingerprinter = Fingerprinter::new(scheme.marking().clone(), baseline);
    let capacity = fingerprinter.capacity();
    println!("carrier: ring n={n}, capacity {capacity} bits");
    assert!(
        capacity >= 20,
        "carrier must clear the default significance floor (got {capacity} bits)"
    );

    // 1. derivation throughput: pure arithmetic, no family access
    let master = MasterSecret::from_u64(0xF1F0_57A3);
    let derive_batch = 100_000u64;
    let start = Instant::now();
    let mut sink = 0u64;
    for i in 0..derive_batch {
        // fold the derived seed bytes (not the index, which is just `i`)
        // so the chain cannot be dead-coded
        let bytes = master.derive(i).to_bytes();
        sink ^= u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    }
    std::hint::black_box(sink);
    let derive_per_s = derive_batch as f64 / start.elapsed().as_secs_f64();

    // 2. stamping cost: full stamped table vs the sparse serving plan
    let key = master.derive(7);
    let stamp_ms = time_per_op(|| {
        std::hint::black_box(fingerprinter.stamp(key));
    });
    let plan_ms = time_per_op(|| {
        std::hint::black_box(fingerprinter.delta_map(key));
    });

    // 3. accusation latency vs registry size; the 10^4 point is the
    //    subsystem's end-to-end acceptance drill
    let mut points = Vec::new();
    for recipients in [100usize, 1_000, 10_000] {
        let mut registry = KeyRegistry::new(master);
        for i in 0..recipients {
            registry
                .issue(&format!("r{i:05}"), i as u64)
                .expect("fresh registry issues");
        }
        let culprit = recipients / 2;
        let leaked = fingerprinter.stamp(registry.key_at(culprit as u64));
        let observed = observed_from_pairs(
            fingerprinter
                .original()
                .keys_sorted()
                .into_iter()
                .map(|k| {
                    let w = leaked.get(&k);
                    (k, w)
                })
                .collect(),
        );
        let start = Instant::now();
        let outcome = accuse(&fingerprinter, &registry, &observed, DEFAULT_DELTA);
        let ms = start.elapsed().as_secs_f64() * 1000.0;
        let accused_ok = outcome
            .accused()
            .is_some_and(|a| a.recipient == format!("r{culprit:05}"));
        assert!(
            accused_ok,
            "a leaked copy among {recipients} recipients must be accused correctly"
        );
        points.push(AccusePoint {
            recipients,
            ms,
            accused_ok,
            significance: outcome.best.as_ref().map_or(1.0, |b| b.check.significance),
            gap_log10: outcome.gap_log10,
        });
    }

    let mut table = Table::new(vec!["recipients", "accuse_ms", "significance", "gap_log10"]);
    for p in &points {
        table.row(vec![
            p.recipients.to_string(),
            format!("{:.2}", p.ms),
            format!("{:.2e}", p.significance),
            format!("{:.1}", p.gap_log10),
        ]);
    }
    table.print("X-F2 — fingerprinting: accusation latency vs registry size");
    println!(
        "derivation: {:.0} keys/s; stamp: {:.4} ms/copy; serving plan: {:.4} ms/recipient",
        derive_per_s, stamp_ms, plan_ms
    );

    let entries: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"recipients\": {}, \"accuse_ms\": {:.3}, \"accused_ok\": {}, \
                 \"significance\": {:.6e}, \"gap_log10\": {:.3}}}",
                p.recipients, p.ms, p.accused_ok, p.significance, p.gap_log10
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"carrier\": \"ring n={n}, q($u; v) :- R($u, v), rho=1 d=1\",\n  \
         \"capacity_bits\": {capacity},\n  \"derive_per_s\": {derive_per_s:.1},\n  \
         \"stamp_ms\": {stamp_ms:.4},\n  \"plan_ms\": {plan_ms:.4},\n  \
         \"accuse\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write("BENCH_fingerprint.json", &json).expect("write BENCH_fingerprint.json");
    println!("wrote BENCH_fingerprint.json");
}
