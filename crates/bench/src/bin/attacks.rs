//! Experiment X-A1: the adversarial model (Fact 1).
//!
//! Sweeps attacker strength against repetition factor: bit-error rate of
//! the robust detector, the attacker's own realized global distortion d'
//! (Assumption 1 bounds it), and the false-positive behaviour on an
//! innocent server (Assumption 2).
//!
//! Run with `cargo run --release -p qpwm-bench --bin attacks`.

use qpwm_bench::Table;
use qpwm_core::adversary::{false_positive_matches, simulate_attack, Attack, RobustScheme};
use qpwm_core::local_scheme::{LocalScheme, LocalSchemeConfig, SelectionStrategy};
use qpwm_logic::{Formula, ParametricQuery};
use qpwm_workloads::graphs::{cycle_union, unary_domain, with_random_weights};

fn main() {
    let instance = with_random_weights(cycle_union(120, 6, 0), 1_000, 5_000, 5);
    let query = ParametricQuery::new(Formula::atom(0, &[0, 1]), vec![0], vec![1]);
    let base = LocalScheme::build_over(
        &instance,
        &query,
        unary_domain(instance.structure()),
        &LocalSchemeConfig { rho: 1, d: 4, strategy: SelectionStrategy::Greedy, seed: 1 },
    )
    .expect("builds");
    println!(
        "base scheme: {} pairs over |W| = {}",
        base.capacity(),
        base.stats().active_elements
    );
    let answers = base.answers().clone();

    // ---- bit errors vs attack strength and repetition -----------------------
    let mut table = Table::new(vec!["attack", "R=1 err", "R=3 err", "R=7 err", "attacker d'"]);
    for (name, amp, frac) in [
        ("noise ±1 @ 10%", 1i64, 0.10),
        ("noise ±1 @ 30%", 1, 0.30),
        ("noise ±2 @ 30%", 2, 0.30),
        ("noise ±2 @ 60%", 2, 0.60),
        ("noise ±4 @ 80%", 4, 0.80),
    ] {
        let mut row: Vec<String> = vec![name.to_owned()];
        let mut dprime = 0i64;
        for rep in [1usize, 3, 7] {
            let scheme = RobustScheme::new(base.marking().clone(), rep);
            let message: Vec<bool> = (0..scheme.capacity()).map(|i| i % 2 == 0).collect();
            let attack = Attack::UniformNoise { amplitude: amp, fraction: frac };
            // average over 5 seeds
            let mut errs = 0usize;
            for seed in 0..5 {
                let out = simulate_attack(
                    &scheme,
                    instance.weights(),
                    &answers,
                    &message,
                    &attack,
                    seed,
                );
                errs += out.bit_errors;
                dprime = dprime.max(out.attacker_distortion);
            }
            row.push(format!("{:.1}/{}", errs as f64 / 5.0, message.len()));
        }
        row.push(dprime.to_string());
        table.row(row);
    }
    table.print("X-A1a — bit errors vs attack strength and repetition R");

    // ---- false positives ------------------------------------------------------
    let mut fp = Table::new(vec!["innocent source", "claimed-bit matches", "of"]);
    let scheme = RobustScheme::new(base.marking().clone(), 1);
    let claimed: Vec<bool> = (0..scheme.capacity()).map(|i| i % 2 == 0).collect();
    for seed in [11u64, 22, 33] {
        let innocent = with_random_weights(cycle_union(120, 6, 0), 1_000, 5_000, seed);
        let matches = false_positive_matches(
            &scheme,
            instance.weights(),
            &answers,
            innocent.weights(),
            &claimed,
        );
        fp.row(vec![
            format!("random weights (seed {seed})"),
            matches.to_string(),
            claimed.len().to_string(),
        ]);
    }
    fp.print("X-A1b — false positives: innocent servers match ≈ half the claimed bits");

    // ---- auto-collusion (section 5 motivation) ---------------------------------
    let mut coll = Table::new(vec!["copies averaged", "bit errors", "of"]);
    for copies in [1usize, 2, 4] {
        let scheme = RobustScheme::new(base.marking().clone(), 1);
        let message: Vec<bool> = (0..scheme.capacity()).map(|i| i % 2 == 0).collect();
        let others: Vec<_> = (0..copies)
            .map(|c| {
                let other_msg: Vec<bool> =
                    (0..scheme.capacity()).map(|i| (i + c) % 3 == 0).collect();
                scheme.mark(instance.weights(), &other_msg)
            })
            .collect();
        let attack = Attack::Averaging { copies: others };
        let out = simulate_attack(
            &scheme,
            instance.weights(),
            &answers,
            &message,
            &attack,
            3,
        );
        coll.row(vec![
            copies.to_string(),
            out.bit_errors.to_string(),
            out.message_bits.to_string(),
        ]);
    }
    coll.print("X-A1c — averaging collusion degrades single-copy marks (section 5)");

    // ---- partial access: detect from a sample of the parameter domain ------
    use qpwm_core::detect::ObservedWeights;
    use qpwm_rng::Rng;
    let mut partial = Table::new(vec!["queried params", "bits read cleanly", "of", "significance"]);
    let scheme = RobustScheme::new(base.marking().clone(), 1);
    let message: Vec<bool> = (0..scheme.capacity()).map(|i| i % 2 == 0).collect();
    let marked = scheme.mark(instance.weights(), &message);
    let server = qpwm_core::detect::HonestServer::new(answers.clone(), marked);
    let total = answers.len();
    for fraction in [0.05f64, 0.15, 0.4, 1.0] {
        let sample_size = ((total as f64 * fraction) as usize).max(1);
        let mut rng = Rng::seed_from_u64(17);
        let mut indices: Vec<usize> = (0..total).collect();
        rng.shuffle(&mut indices);
        indices.truncate(sample_size);
        let observed = ObservedWeights::collect_sample(&server, &indices);
        let report = base.marking().extract(instance.weights(), &observed);
        let clean = report.scores.iter().filter(|s| s.abs() >= 2).count();
        partial.row(vec![
            format!("{sample_size}/{total}"),
            clean.to_string(),
            report.bits.len().to_string(),
            format!("{:.1e}", report.match_significance(&message)),
        ]);
    }
    partial.print("X-A1d — partial access: detection vs number of replayed parameters");
}
