//! Fault-rate sweep for remote detection over a chaotic transport.
//!
//! Serves a marked `cycle_union` instance (same workload family as
//! `bench_serve`) behind the deterministic chaos layer, then runs the
//! owner's full remote detection (`RemoteServer` + retrying client) at
//! increasing fault rates. For every transient-only spec the retry loop
//! must absorb every injected fault: zero user-visible errors, zero
//! permanently lost reads, and a verdict byte-identical to the offline
//! detector. The sweep also re-runs each rate with retries disabled to
//! measure how the missing-read budget grows and to check the
//! never-flip property (match or abstain, never a different ruling).
//! Results land in `BENCH_chaos.json`.
//!
//! Run with `cargo run --release -p qpwm-bench --bin bench_chaos`
//! (flags: `--threads <server shards>`, `--cycles <workload size>`).

use qpwm_bench::Table;
use qpwm_core::detect::{HonestServer, ObservedWeights, Verdict, DEFAULT_DELTA};
use qpwm_core::local_scheme::{LocalScheme, LocalSchemeConfig, SelectionStrategy};
use qpwm_logic::{Formula, ParametricQuery};
use qpwm_serve::{
    FaultPolicy, RemoteServer, RetryPolicy, ServeData, Server, ServerConfig, Timeouts,
};
use qpwm_workloads::graphs::{cycle_union, unary_domain, with_random_weights};
use std::time::{Duration, Instant};

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    args.windows(2)
        .find(|w| w[0] == name)
        .map(|w| w[1].clone())
}

fn parse_flag(name: &str, default: usize) -> usize {
    match flag_value(name) {
        None => default,
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("error: {name} needs a positive integer, got '{raw}'");
            std::process::exit(2);
        }),
    }
}

/// One detection run against a chaotic server.
struct SweepPoint {
    spec: &'static str,
    rate_pct: f64,
    retries_enabled: bool,
    requests: u64,
    attempts: u64,
    retries: u64,
    reconnects: u64,
    user_errors: u64,
    failed_reads: usize,
    faults_injected: u64,
    verdict: Verdict,
    matches_offline: bool,
    elapsed_ms: f64,
}

/// The shared marked instance every sweep point detects against.
struct Fixture<'a> {
    scheme: &'a LocalScheme,
    original: &'a qpwm_structures::Weights,
    marked: &'a qpwm_structures::Weights,
    message: &'a [bool],
    offline_verdict: Verdict,
    server_shards: usize,
}

fn run_point(fx: &Fixture, spec: &'static str, rate_pct: f64, policy: RetryPolicy) -> SweepPoint {
    let Fixture { scheme, original, marked, message, offline_verdict, server_shards } = *fx;
    let chaos = FaultPolicy::parse(spec).expect("valid chaos spec");
    let data = ServeData::new(
        scheme.answers().clone(),
        marked.clone(),
        Vec::new(),
        None,
        "bench-chaos".into(),
    );
    let server = Server::start(
        data,
        ServerConfig {
            shards: server_shards,
            chaos: Some(chaos),
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            ..Default::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.addr().to_string();

    let start = Instant::now();
    let remote = RemoteServer::connect_with(&addr, Timeouts::from_millis(2_000), policy)
        .expect("healthz probe");
    let observed = ObservedWeights::collect(&remote);
    let elapsed_ms = start.elapsed().as_secs_f64() * 1_000.0;

    let report = scheme.marking().extract(original, &observed);
    let failed_reads = remote.failed_reads();
    let check = if failed_reads > 0 {
        report.claim_check_effective(message, DEFAULT_DELTA)
    } else {
        report.claim_check(message, DEFAULT_DELTA)
    };
    let stats = remote.transport_stats();
    let requests = scheme.answers().len() as u64 + 1; // + healthz probe
    let (faults, _, _, _) = server.resilience_snapshot();
    let faults_injected: u64 = faults.iter().sum();
    drop(remote);
    server.shutdown();

    SweepPoint {
        spec,
        rate_pct,
        retries_enabled: policy.max_attempts > 1,
        requests,
        attempts: stats.attempts,
        retries: stats.retries,
        reconnects: stats.reconnects,
        user_errors: stats.failed_requests,
        failed_reads,
        faults_injected,
        verdict: check.verdict,
        matches_offline: check.verdict == offline_verdict,
        elapsed_ms,
    }
}

fn main() {
    let server_shards = qpwm_bench::parse_threads_flag();
    let cycles = parse_flag("--cycles", 64) as u32;

    let query = ParametricQuery::new(Formula::atom(0, &[0, 1]), vec![0], vec![1]);
    let instance = with_random_weights(cycle_union(cycles, 6, 0), 100, 1_000, 1);
    let domain = unary_domain(instance.structure());
    let scheme = LocalScheme::build_over(
        &instance,
        &query,
        domain,
        &LocalSchemeConfig { rho: 1, d: 1, strategy: SelectionStrategy::Greedy, seed: 7 },
    )
    .expect("regular instances pair");
    let message: Vec<bool> = (0..scheme.capacity()).map(|i| i % 3 != 0).collect();
    let marked = scheme.mark(instance.weights(), &message);

    let offline = scheme.detect(
        instance.weights(),
        &HonestServer::new(scheme.answers().clone(), marked.clone()),
    );
    assert_eq!(offline.bits, message, "offline detection must round-trip");
    let offline_verdict = offline.claim_check(&message, DEFAULT_DELTA).verdict;
    assert_eq!(
        offline_verdict,
        Verdict::MarkPresent,
        "the benchmark mark must be provable offline"
    );

    // transient-only specs: every fault class here is absorbable by a
    // retry (a fresh attempt re-rolls the chaos draw)
    let sweeps: [(&'static str, f64); 3] = [
        ("seed=17", 0.0),
        ("drop=3%,error=4%,delay=2%:1ms,trunc=1%,seed=17", 10.0),
        ("drop=9%,error=12%,delay=6%:1ms,trunc=3%,seed=17", 30.0),
    ];

    // the retry budget must outlast the worst fault streak: with n
    // reads at per-request fault rate p, the expected number of
    // permanent failures is n·p^k, so k = 8 attempts keeps it ≪ 1 even
    // at the 30% point (385 · 0.3^8 ≈ 0.03)
    let retry_on = RetryPolicy { max_attempts: 8, ..RetryPolicy::default() };

    let fx = Fixture {
        scheme: &scheme,
        original: instance.weights(),
        marked: &marked,
        message: &message,
        offline_verdict,
        server_shards,
    };
    let mut points = Vec::new();
    for (spec, rate) in sweeps {
        // retries on: the user-visible error rate must be zero
        points.push(run_point(&fx, spec, rate, retry_on));
        // retries off: faults become missing reads; the verdict may
        // abstain but must never flip
        if rate > 0.0 {
            points.push(run_point(&fx, spec, rate, RetryPolicy::none()));
        }
    }

    let mut table = Table::new(vec![
        "rate", "retries", "requests", "attempts", "faults", "user errs", "lost reads",
        "verdict", "ms",
    ]);
    for p in &points {
        table.row(vec![
            format!("{:.0}%", p.rate_pct),
            if p.retries_enabled { "on".into() } else { "off".into() },
            p.requests.to_string(),
            p.attempts.to_string(),
            p.faults_injected.to_string(),
            p.user_errors.to_string(),
            p.failed_reads.to_string(),
            p.verdict.to_string(),
            format!("{:.0}", p.elapsed_ms),
        ]);
    }
    table.print(&format!(
        "remote detection under chaos (cycle_union({cycles}, 6) edge query, \
         {server_shards} reactor shard(s))"
    ));

    // acceptance: transient-only faults never surface to the user when
    // retries are on, and no configuration ever flips the verdict
    for p in &points {
        if p.retries_enabled {
            assert_eq!(
                p.user_errors, 0,
                "{}: retries must absorb transient faults",
                p.spec
            );
            assert_eq!(p.failed_reads, 0, "{}: no read may fail permanently", p.spec);
            assert!(p.matches_offline, "{}: verdict must match offline", p.spec);
        } else {
            assert!(
                matches!(p.verdict, Verdict::MarkPresent | Verdict::Abstain),
                "{}: verdict flipped to {:?}",
                p.spec,
                p.verdict
            );
        }
        if p.rate_pct > 0.0 {
            assert!(p.faults_injected > 0, "{}: chaos must actually fire", p.spec);
        }
    }

    let entries: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"spec\": \"{}\", \"fault_rate_pct\": {}, \"retries\": {}, \
                 \"requests\": {}, \"attempts\": {}, \"client_retries\": {}, \
                 \"reconnects\": {}, \"faults_injected\": {}, \"user_errors\": {}, \
                 \"failed_reads\": {}, \"verdict\": \"{}\", \"matches_offline\": {}, \
                 \"elapsed_ms\": {:.1}}}",
                p.spec,
                p.rate_pct,
                p.retries_enabled,
                p.requests,
                p.attempts,
                p.retries,
                p.reconnects,
                p.faults_injected,
                p.user_errors,
                p.failed_reads,
                p.verdict,
                p.matches_offline,
                p.elapsed_ms
            )
        })
        .collect();
    let user_errors_total: u64 = points
        .iter()
        .filter(|p| p.retries_enabled)
        .map(|p| p.user_errors)
        .sum();
    let json = format!(
        "{{\n  \"workload\": \"cycle_union({cycles}, 6) edge query, remote detection sweep\",\n  \
         \"server_shards\": {server_shards},\n  \"user_errors_with_retries\": {user_errors_total},\n  \
         \"sweeps\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write("BENCH_chaos.json", &json).expect("write BENCH_chaos.json");
    println!("\nwrote BENCH_chaos.json");
}
