//! Experiment X-T3: Theorem 3 parameter sweeps.
//!
//! Measures, on random bounded-degree instances and regular cycle
//! unions: hidden bits vs `|W|`, vs the distortion budget `d = 1/ε`, and
//! vs the Gaifman degree bound `k`; marker wall-clock; and the empirical
//! success rate of Proposition 2's sampling marker (Definition 2 asks
//! ≥ 3/4).
//!
//! Run with `cargo run --release -p qpwm-bench --bin local_sweep`.
//! Pass `--threads <n>` to pin the `qpwm-par` worker-thread count.

use qpwm_bench::{parse_threads_flag, Table};
use qpwm_core::local_scheme::{LocalScheme, LocalSchemeConfig, SelectionStrategy};
use qpwm_logic::{Formula, ParametricQuery};
use qpwm_structures::GaifmanGraph;
use qpwm_workloads::graphs::{
    cycle_union, random_bounded_degree, unary_domain, with_random_weights,
};
use std::time::Instant;

fn edge_query() -> ParametricQuery {
    ParametricQuery::new(Formula::atom(0, &[0, 1]), vec![0], vec![1])
}

fn main() {
    parse_threads_flag();
    let query = edge_query();

    // ---- bits vs |W| (regular instances, d = 1) --------------------------
    let mut size = Table::new(vec!["|W|", "candidates", "bits", "bits/|W|", "marker ms"]);
    for cycles in [8u32, 32, 128, 512, 2048] {
        let instance = with_random_weights(cycle_union(cycles, 6, 0), 100, 1_000, 1);
        let domain = unary_domain(instance.structure());
        let start = Instant::now();
        let scheme = LocalScheme::build_over(
            &instance,
            &query,
            domain,
            &LocalSchemeConfig { rho: 1, d: 1, strategy: SelectionStrategy::Greedy, seed: 7 },
        )
        .expect("regular instances pair");
        let ms = start.elapsed().as_millis();
        let w = scheme.stats().active_elements;
        size.row(vec![
            w.to_string(),
            scheme.stats().candidate_pairs.to_string(),
            scheme.capacity().to_string(),
            format!("{:.2}", scheme.capacity() as f64 / w as f64),
            ms.to_string(),
        ]);
    }
    size.print("X-T3a — capacity vs |W| (6-cycles, d = 1, greedy)");

    // ---- bits vs d (fixed instance) ---------------------------------------
    let instance = with_random_weights(random_bounded_degree(600, 4, 900, 3), 100, 1_000, 3);
    let domain = unary_domain(instance.structure());
    let mut vs_d = Table::new(vec!["d = 1/eps", "bits", "max separation"]);
    for d in [1u64, 2, 3, 4, 6, 8] {
        match LocalScheme::build_over(
            &instance,
            &query,
            domain.clone(),
            &LocalSchemeConfig { rho: 1, d, strategy: SelectionStrategy::Greedy, seed: 5 },
        ) {
            Ok(scheme) => {
                vs_d.row(vec![
                    d.to_string(),
                    scheme.capacity().to_string(),
                    scheme.stats().max_separation.to_string(),
                ]);
            }
            Err(e) => {
                vs_d.row(vec![d.to_string(), format!("({e})"), "-".to_string()]);
            }
        }
    }
    vs_d.print("X-T3b — capacity vs distortion budget (random degree ≤ 4, n = 600)");

    // ---- bits vs degree bound k -------------------------------------------
    let mut vs_k = Table::new(vec!["k", "realized k", "ntp(1)", "bits", "eta = k^3"]);
    for k in [2u32, 3, 4, 6, 8] {
        let structure = random_bounded_degree(400, k, 400 * k / 2, 9);
        let realized = GaifmanGraph::of(&structure).max_degree();
        let instance = with_random_weights(structure, 100, 1_000, 9);
        let domain = unary_domain(instance.structure());
        match LocalScheme::build_over(
            &instance,
            &query,
            domain,
            &LocalSchemeConfig { rho: 1, d: 2, strategy: SelectionStrategy::Greedy, seed: 2 },
        ) {
            Ok(scheme) => {
                vs_k.row(vec![
                    k.to_string(),
                    realized.to_string(),
                    scheme.stats().num_types.to_string(),
                    scheme.capacity().to_string(),
                    (realized as u64).pow(3).to_string(),
                ]);
            }
            Err(e) => {
                vs_k.row(vec![k.to_string(), realized.to_string(), "-".into(), format!("({e})"), "-".into()]);
            }
        }
    }
    vs_k.print("X-T3c — capacity vs Gaifman degree bound (n = 400, d = 2)");

    // ---- Proposition 2: sampling success rate -------------------------------
    let instance = with_random_weights(cycle_union(40, 6, 0), 100, 1_000, 4);
    let domain = unary_domain(instance.structure());
    let mut succ = Table::new(vec!["d", "attempts (100 seeds)", "success rate", "mean bits"]);
    for d in [1u64, 2, 4] {
        let mut ok = 0u32;
        let mut bits = 0usize;
        let mut attempts = 0u64;
        for seed in 0..100 {
            let config = LocalSchemeConfig {
                rho: 1,
                d,
                strategy: SelectionStrategy::Sampling { max_retries: 1 },
                seed,
            };
            if let Ok(s) = LocalScheme::build_over(&instance, &query, domain.clone(), &config) {
                ok += 1;
                bits += s.capacity();
                attempts += u64::from(s.stats().attempts);
            } else {
                attempts += 1;
            }
        }
        succ.row(vec![
            d.to_string(),
            attempts.to_string(),
            format!("{:.2}", ok as f64 / 100.0),
            format!("{:.1}", if ok > 0 { bits as f64 / ok as f64 } else { 0.0 }),
        ]);
    }
    succ.print("X-T3d — Prop. 2 single-shot sampling success (Definition 2 needs ≥ 0.75)");
}
