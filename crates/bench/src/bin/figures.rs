//! Regenerates the paper's Figures 1–4 as tables (experiments X-F1–X-F4).
//!
//! Figure 1: the instance and its radius-1 neighborhood types.
//! Figure 2: isomorphism types and active weighted elements `W_u`.
//! Figure 3: the mark `(d:+1, e:−1)` and the distortion it induces.
//! Figure 4: canonical parameters, classes and the pair marking.
//!
//! Run with `cargo run -p qpwm-bench --bin figures`.

use qpwm_bench::Table;
use qpwm_core::pairing::{classes_ids, s_partition_ids, Pair, PairMarking};
use qpwm_logic::{Formula, ParametricQuery};
use qpwm_structures::{figure1_instance, GaifmanGraph, NeighborhoodTypes, TupleId, Weights};

fn main() {
    let s = figure1_instance();
    let q = ParametricQuery::new(Formula::atom(0, &[0, 1]), vec![0], vec![1]);
    let answers = q.answers(&s);
    let gaifman = GaifmanGraph::of(&s);
    let census = NeighborhoodTypes::classify(&s, &gaifman, 1, s.universe().map(|e| vec![e]));
    let name = |e: u32| s.display_element(e);

    // ---- Figure 1: types -------------------------------------------------
    let mut f1 = Table::new(vec!["u", "degree", "type(u)"]);
    for e in s.universe() {
        f1.row(vec![
            name(e),
            gaifman.degree(e).to_string(),
            (census.type_of(&[e]).expect("classified") + 1).to_string(),
        ]);
    }
    f1.print("Figure 1 — instance and neighborhood types (paper: 3 types)");

    // ---- Figure 2: types and active weighted elements --------------------
    let mut f2 = Table::new(vec!["u", "type(u)", "W_u"]);
    for e in s.universe() {
        let pos = answers.position_of(&[e]).expect("in domain");
        let set = answers
            .set_tuples(pos)
            .map(|b| name(b[0]))
            .collect::<Vec<_>>()
            .join(",");
        f2.row(vec![
            name(e),
            (census.type_of(&[e]).expect("classified") + 1).to_string(),
            format!("{{{set}}}"),
        ]);
    }
    f2.print("Figure 2 — types and active weighted elements");

    // ---- Figure 3: the (d:+1, e:−1) mark and its distortion ---------------
    let before = Weights::new(1);
    let mut after = Weights::new(1);
    after.set(&[3], 1); // d: +1
    after.set(&[4], -1); // e: −1
    let mut f3 = Table::new(vec!["u", "type(u)", "distortion on f(u)"]);
    for (i, e) in s.universe().enumerate() {
        let delta = answers.f(&after, i) - answers.f(&before, i);
        let rendered = match delta.cmp(&0) {
            std::cmp::Ordering::Greater => format!("+{delta}"),
            _ => delta.to_string(),
        };
        f3.row(vec![
            name(e),
            (census.type_of(&[e]).expect("classified") + 1).to_string(),
            rendered,
        ]);
    }
    f3.print("Figure 3 — mark d:+1 e:-1 (paper: 0 0 +1 0 0 -1)");

    // ---- Figure 4: canonical parameters, classes, pair marking -----------
    let canonical_sets: Vec<&[TupleId]> = (0..census.num_types())
        .map(|t| answers.ids_of(census.representative(t)).expect("domain"))
        .collect();
    let active = answers.active_universe();
    let cls = classes_ids(active, &canonical_sets);
    let mut f4a = Table::new(vec!["w", "cl(w)"]);
    for (rank, &id) in active.iter().enumerate() {
        let c = cls[rank]
            .iter()
            .map(|t| (t + 1).to_string())
            .collect::<Vec<_>>()
            .join(",");
        f4a.row(vec![name(answers.tuple(id)[0]), format!("{{{c}}}")]);
    }
    f4a.print("Figure 4a — canonical parameters and classes");

    let pairs: Vec<Pair> = s_partition_ids(active, &cls)
        .into_iter()
        .map(|(a, b)| Pair {
            plus: answers.tuple(a).to_vec(),
            minus: answers.tuple(b).to_vec(),
        })
        .collect();
    let marking = PairMarking::new(pairs);
    let mut f4b = Table::new(vec!["pair", "+1", "-1", "max separation"]);
    for (i, p) in marking.pairs().iter().enumerate() {
        f4b.row(vec![
            (i + 1).to_string(),
            name(p.plus[0]),
            name(p.minus[0]),
            marking.max_separation(&answers).to_string(),
        ]);
    }
    f4b.print("Figure 4b — S-partition pair marking (paper: pair (a,b), distortion 0)");
}
