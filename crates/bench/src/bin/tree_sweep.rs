//! Experiment X-T5: Theorem 5 parameter sweeps on trees/XML.
//!
//! Measures capacity vs `|W|` (Lemma 3 predicts ≈ `|W|/4m` pairs), vs the
//! automaton's state count `m`, and the per-query distortion bound
//! (Theorem 5: ≤ 1); plus the end-to-end school pipeline (pattern
//! compile → scheme → mark → detect) at growing document sizes.
//!
//! Run with `cargo run --release -p qpwm-bench --bin tree_sweep`.
//! Pass `--threads <n>` to pin the `qpwm-par` worker-thread count.

use qpwm_bench::{parse_threads_flag, Table};
use qpwm_core::detect::HonestServer;
use qpwm_core::TreeScheme;
use qpwm_trees::automaton::{BottomUpAutomaton, TreeAutomaton, STAR};
use qpwm_trees::pattern::PatternQuery;
use qpwm_trees::pebble::{pebbled_symbol, PebbledQuery};
use qpwm_trees::xml::XmlDocument;
use qpwm_workloads::xml_gen::{random_binary_tree, random_node_weights, random_school, school_weights};
use std::time::Instant;

/// A counting-mod-m automaton: state = (#marked-label nodes below) mod m,
/// accepting when the output pebble sits on label 1 — gives tunable m
/// while every node stays active.
fn mod_m_query(m: u32) -> PebbledQuery {
    let mut a = TreeAutomaton::new(m + 1, 0);
    let hit_state = m; // sticky "pebble seen on label 1"
    for base in [0u32, 1] {
        for bits in 0..4u32 {
            let sym = pebbled_symbol(base, bits, 2);
            let b_here = bits & 0b10 != 0 && base == 1;
            for ql in 0..=m {
                for qr in 0..=m {
                    for (l, r) in [(ql, qr), (ql, STAR), (STAR, qr), (STAR, STAR)] {
                        let seen = l == hit_state || r == hit_state || b_here;
                        let count = |q: u32| if q == STAR || q == hit_state { 0 } else { q };
                        let next = if seen {
                            hit_state
                        } else {
                            (count(l) + count(r) + base) % m
                        };
                        a.add_transition(l, r, sym, next);
                    }
                }
            }
        }
    }
    a.set_accepting(hit_state, true);
    PebbledQuery::new(a, 1)
}

fn canonical_parameters(doc: &XmlDocument) -> Vec<Vec<u32>> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for f in doc.nodes_with_tag("firstname") {
        if let Some(&t) = doc.tree.children(f).first() {
            if seen.insert(doc.tree.label(t)) {
                out.push(vec![t]);
            }
        }
    }
    out
}

fn main() {
    parse_threads_flag();
    // ---- capacity vs |W| at fixed m ---------------------------------------
    let mut vs_w = Table::new(vec!["nodes", "|W|", "m", "blocks", "bits", "|W|/4m"]);
    for n in [200u32, 400, 800, 1_600, 3_200] {
        let tree = random_binary_tree(n, 2, 5);
        let q = mod_m_query(3);
        let scheme = TreeScheme::build(&tree, &q, 2);
        let s = scheme.stats();
        vs_w.row(vec![
            n.to_string(),
            s.active_nodes.to_string(),
            s.num_states.to_string(),
            s.blocks.to_string(),
            scheme.capacity().to_string(),
            (s.active_nodes / (4 * s.num_states as usize)).to_string(),
        ]);
    }
    vs_w.print("X-T5a — capacity vs |W| (random binary trees, m = 4)");

    // ---- capacity vs m at fixed size ---------------------------------------
    let tree = random_binary_tree(2_000, 2, 6);
    let mut vs_m = Table::new(vec!["m", "blocks", "bits", "|W|/4m", "max transforms"]);
    for m in [2u32, 3, 5, 8, 12] {
        let q = mod_m_query(m);
        let scheme = TreeScheme::build(&tree, &q, 2);
        let s = scheme.stats();
        vs_m.row(vec![
            s.num_states.to_string(),
            s.blocks.to_string(),
            scheme.capacity().to_string(),
            (s.active_nodes / (4 * s.num_states as usize)).to_string(),
            s.max_transformations.to_string(),
        ]);
    }
    vs_m.print("X-T5b — capacity vs automaton states m (2000-node tree)");

    // ---- distortion audit: Theorem 5's ≤ 1 bound ----------------------------
    let mut audit = Table::new(vec!["nodes", "bits", "max local", "max global (<=1)"]);
    for n in [300u32, 900] {
        let tree = random_binary_tree(n, 2, 8);
        let q = mod_m_query(3);
        let scheme = TreeScheme::build(&tree, &q, 2);
        let w = random_node_weights(&tree, 100, 1_000, 8);
        let message: Vec<bool> = (0..scheme.capacity()).map(|i| i % 2 == 0).collect();
        let marked = scheme.mark(&w, &message);
        let report = scheme.audit(&w, &marked);
        audit.row(vec![
            n.to_string(),
            scheme.capacity().to_string(),
            report.max_local.to_string(),
            report.max_global.to_string(),
        ]);
    }
    audit.print("X-T5c — Theorem 5 distortion bound");

    // ---- end-to-end XML pipeline --------------------------------------------
    let names = ["Robert", "John", "Ana", "Wei"];
    let mut xml = Table::new(vec![
        "students",
        "m",
        "|W|",
        "bits",
        "build ms",
        "detect ok",
    ]);
    for students in [250u32, 1_000, 4_000, 16_000] {
        let doc = random_school(students, &names, 7);
        let query = PatternQuery::parse("school/student[firstname=$a]/exam").expect("parses");
        let compiled = query.compile(&doc);
        let binary = doc.tree.to_binary();
        let weights = school_weights(&doc);
        let start = Instant::now();
        let scheme = TreeScheme::build_over(&binary, &compiled, 2, canonical_parameters(&doc));
        let ms = start.elapsed().as_millis();
        let message: Vec<bool> = (0..scheme.capacity()).map(|i| i % 3 == 0).collect();
        let marked = scheme.mark(&weights, &message);
        let server = HonestServer::new(scheme.family().clone(), marked);
        let ok = scheme.detect(&weights, &server).bits == message;
        xml.row(vec![
            students.to_string(),
            compiled.automaton().num_states().to_string(),
            scheme.stats().active_nodes.to_string(),
            scheme.capacity().to_string(),
            ms.to_string(),
            ok.to_string(),
        ]);
    }
    xml.print("X-T5d — XML school pipeline (pattern -> automaton -> scheme)");

    // ---- ablation: block threshold vs capacity -------------------------------
    // The paper's 2m threshold is the pigeonhole guarantee; real automata
    // collide much sooner. Smaller blocks multiply capacity at zero
    // soundness cost (audited).
    let doc = random_school(2_000, &names, 7);
    let query = PatternQuery::parse("school/student[firstname=$a]/exam").expect("parses");
    let compiled = query.compile(&doc);
    let binary = doc.tree.to_binary();
    let weights = school_weights(&doc);
    let m = compiled.automaton().num_states() as usize;
    let mut ab = Table::new(vec!["threshold", "blocks", "bits", "max global (<=1)"]);
    for threshold in [2 * m, m, 64, 16, 4] {
        let scheme = TreeScheme::build_with_threshold(
            &binary,
            &compiled,
            threshold,
            canonical_parameters(&doc),
        );
        let message: Vec<bool> = (0..scheme.capacity()).map(|i| i % 2 == 0).collect();
        let marked = scheme.mark(&weights, &message);
        let audit = scheme.audit(&weights, &marked);
        ab.row(vec![
            threshold.to_string(),
            scheme.stats().blocks.to_string(),
            scheme.capacity().to_string(),
            audit.max_global.to_string(),
        ]);
    }
    ab.print("X-T5e — ablation: block threshold vs capacity (2000 students, 2m = paper)");
}
