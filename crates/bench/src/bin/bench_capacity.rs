//! Capacity-engine benchmark: the v2 counting engine (component
//! decomposition + memoized frontier DP + fork-join) against the v1
//! branch-and-bound enumerator it replaced, on the X-T1 cycle-union
//! workload, plus a `--threads` scaling sweep on two genuinely hard
//! single kernels (the shattered powerset family and the Gray-code
//! Ryser permanent). Writes the numbers to `BENCH_capacity.json` so
//! `scripts/bench_compare.sh` can gate count-time regressions.
//!
//! Run with `cargo run --release -p qpwm-bench --bin bench_capacity`.
//! Pass `--threads <n>` to pin the ambient worker count (the scaling
//! sweep always measures 1/2/4 explicitly). Pass `--check` for the
//! tier-1 smoke mode: a fast v1-vs-v2 differential on a tiny instance,
//! no timing, no JSON.

use qpwm_bench::Table;
use qpwm_core::capacity::{Bipartite, CapacityProblem};
use qpwm_core::impossibility::powerset_active_sets;
use qpwm_logic::{Formula, ParametricQuery};
use qpwm_workloads::graphs::{cycle_union, random_bipartite, unary_domain};
use std::time::Instant;

fn edge_query() -> ParametricQuery {
    ParametricQuery::new(Formula::atom(0, &[0, 1]), vec![0], vec![1])
}

/// Active-set problem of the X-T1 workload: edge query over a union of
/// `c` cycles of length 6 (the family `capacity_table` sweeps).
fn cycle_problem(cycles: u32) -> CapacityProblem {
    let instance = cycle_union(cycles, 6, 0);
    let answers = edge_query().answers_over(&instance, unary_domain(&instance));
    CapacityProblem::from_family(&answers)
}

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1_000.0
}

/// Times `f` as best-of-`reps` so microsecond-scale v2 counts are not
/// drowned in scheduler noise; returns (best ms, last result).
fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::MAX;
    let mut out = None;
    for _ in 0..reps {
        let start = Instant::now();
        out = Some(f());
        best = best.min(ms(start));
    }
    (best, out.expect("reps >= 1"))
}

/// `--check` smoke mode: v1 and v2 must agree bit-for-bit on a small
/// instance, at more than one thread count. Exercised by tier1.sh.
fn run_check() {
    let problem = cycle_problem(2);
    for d in 0..=2i64 {
        let v1 = problem.count_constrained_v1(&[-1, 0, 1], -d, d);
        for threads in [1usize, 2] {
            let v2 = problem.count_at_most_with(threads, d);
            assert_eq!(v1, v2, "v1/v2 divergence at d = {d}, threads = {threads}");
        }
    }
    println!("capacity differential check OK (v1 == v2 on cycle_union(2, 6), d = 0..=2)");
}

struct SpeedupSample {
    cycles: u32,
    w: usize,
    v1_ms: f64,
    v2_ms: f64,
    count: u128,
}

struct ScalingSample {
    case: &'static str,
    threads: usize,
    ms: f64,
    count: u128,
}

fn main() {
    let check_only = std::env::args().skip(1).any(|a| a == "--check");
    let threads = qpwm_bench::parse_threads_flag();
    if check_only {
        run_check();
        return;
    }

    // ---- v2 vs v1 on the X-T1 workload ----------------------------------
    // d = 1 throughout: the budget the X-T1b growth table centers on.
    // v1 explores ~130^c feasible prefixes; v2 decomposes into c
    // independent 6-cycle DPs, so its cost is linear in c.
    let d = 1i64;
    let mut speedup_samples: Vec<SpeedupSample> = Vec::new();
    for cycles in [1u32, 2, 3] {
        let problem = cycle_problem(cycles);
        let (v1_ms, v1_count) =
            time_best(1, || problem.count_constrained_v1(&[-1, 0, 1], -d, d));
        let (v2_ms, v2_count) = time_best(5, || problem.count_at_most_with(1, d));
        assert_eq!(v1_count, v2_count, "cycles {cycles}: v1 and v2 must agree");
        speedup_samples.push(SpeedupSample {
            cycles,
            w: problem.num_elements(),
            v1_ms,
            v2_ms,
            count: v2_count,
        });
    }

    let mut table = Table::new(vec!["cycles", "|W|", "#Mark(<=1)", "v1 ms", "v2 ms", "speedup"]);
    let mut best_speedup = 0.0f64;
    for s in &speedup_samples {
        let speedup = if s.v2_ms > 0.0 { s.v1_ms / s.v2_ms } else { f64::INFINITY };
        best_speedup = best_speedup.max(speedup);
        table.row(vec![
            s.cycles.to_string(),
            s.w.to_string(),
            s.count.to_string(),
            format!("{:.3}", s.v1_ms),
            format!("{:.4}", s.v2_ms),
            format!("{speedup:.0}x"),
        ]);
    }
    table.print(&format!(
        "Capacity counting: v2 engine vs v1 enumerator \
         (X-T1 cycle unions, d = 1, single thread; ambient threads = {threads})"
    ));
    assert!(
        best_speedup >= 10.0,
        "v2 must be >= 10x faster than v1 on the X-T1 workload (best {best_speedup:.1}x)"
    );

    // The headline instance (|W| = 24; v1 needs ~33 s there, measured
    // once and excluded from the sweep to keep the bench fast), then
    // fully beyond v1's reach at |W| = 48.
    let headline = cycle_problem(4);
    let (headline_ms, headline_count) = time_best(3, || headline.count_at_most_with(1, d));
    println!(
        "\nheadline: |W| = {} -> #Mark(<=1) = {} in {:.3} ms (v1: ~33 s)",
        headline.num_elements(),
        headline_count,
        headline_ms
    );
    let big = cycle_problem(8);
    let (big_ms, big_count) = time_best(3, || big.count_at_most_with(1, d));
    println!(
        "out of v1's reach: |W| = {} -> #Mark(<=1) = {} in {:.3} ms (v1 would need ~130^8 nodes)",
        big.num_elements(),
        big_count,
        big_ms
    );

    // ---- --threads scaling on hard single kernels ------------------------
    // powerset n=12: 4096 constraints over one 12-element component, no
    // decomposition to hide behind; permanent n=24: 2^24 Gray steps.
    let mut scaling: Vec<ScalingSample> = Vec::new();
    let shattered = CapacityProblem::new(&powerset_active_sets(12));
    let adj = random_bipartite(24, 0.5, 24 * 31 + 5);
    let perm = Bipartite::new(adj);
    for t in [1usize, 2, 4] {
        let (count_ms, count) = time_best(1, || shattered.count_at_most_with(t, 1));
        scaling.push(ScalingSample { case: "powerset12_d1", threads: t, ms: count_ms, count });
        let (perm_ms, matchings) = time_best(1, || perm.permanent_with(t));
        scaling.push(ScalingSample { case: "permanent24", threads: t, ms: perm_ms, count: matchings });
    }
    let mut scale_table = Table::new(vec!["case", "threads", "ms", "count"]);
    for s in &scaling {
        scale_table.row(vec![
            s.case.to_string(),
            s.threads.to_string(),
            format!("{:.2}", s.ms),
            s.count.to_string(),
        ]);
    }
    scale_table.print("Scaling: same counts, 1/2/4 threads (byte-identical by construction)");
    for case in ["powerset12_d1", "permanent24"] {
        let counts: Vec<u128> =
            scaling.iter().filter(|s| s.case == case).map(|s| s.count).collect();
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{case}: thread count changed the result");
    }

    // Hand-rolled JSON — the workspace carries no serde dependency.
    let mut json = String::from(
        "{\n  \"workload\": \"X-T1 cycle_union(c, 6) edge query, #Mark(<=1); \
         scaling: powerset n=12 d=1 + Ryser permanent n=24\",\n",
    );
    let cpus = std::thread::available_parallelism().map_or(1, usize::from);
    json.push_str(&format!(
        "  \"threads\": {threads},\n  \"host_cpus\": {cpus},\n  \"speedup_samples\": [\n"
    ));
    for (i, s) in speedup_samples.iter().enumerate() {
        let speedup = if s.v2_ms > 0.0 { s.v1_ms / s.v2_ms } else { f64::INFINITY };
        json.push_str(&format!(
            "    {{\"cycles\": {}, \"w\": {}, \"d\": 1, \"v1_ms\": {:.3}, \"v2_ms\": {:.4}, \
             \"speedup\": {:.1}, \"count\": \"{}\"}}{}\n",
            s.cycles,
            s.w,
            s.v1_ms,
            s.v2_ms,
            speedup,
            s.count,
            if i + 1 < speedup_samples.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n  \"scaling\": [\n");
    for (i, s) in scaling.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"case\": \"{}\", \"threads\": {}, \"ms\": {:.3}, \"count\": \"{}\"}}{}\n",
            s.case,
            s.threads,
            s.ms,
            s.count,
            if i + 1 < scaling.len() { "," } else { "" },
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"headline\": {{\"w\": {}, \"d\": 1, \"count\": \"{}\", \"ms\": {:.3}}},\n",
        headline.num_elements(),
        headline_count,
        headline_ms
    ));
    json.push_str(&format!(
        "  \"extended\": {{\"w\": {}, \"d\": 1, \"count\": \"{}\", \"ms\": {:.3}}}\n}}\n",
        big.num_elements(),
        big_count,
        big_ms
    ));
    std::fs::write("BENCH_capacity.json", &json).expect("write BENCH_capacity.json");
    println!("\nwrote BENCH_capacity.json (best v2-vs-v1 speedup: {best_speedup:.0}x)");
}
