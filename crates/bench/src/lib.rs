//! Experiment harness: table rendering shared by the `src/bin` experiment
//! regenerators (one binary per paper artifact; see DESIGN.md's
//! experiment index) and the Criterion benches under `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod battleground;

/// A plain-text table printer: fixed-width columns, a header rule, and
/// stable formatting for EXPERIMENTS.md extracts.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds one row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!("{cell:>w$}  ", w = w));
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints with a title banner.
    pub fn print(&self, title: &str) {
        println!("\n== {title} ==");
        print!("{}", self.render());
    }
}

/// Applies a `--threads <n>` command-line flag (if present) to the
/// `qpwm-par` thread-count override, and returns the resolved count.
/// Shared by the experiment binaries so every regenerator can pin its
/// parallelism the same way. Validation goes through the workspace-wide
/// [`qpwm_par::parse_thread_arg`] resolver — `--threads 0` and
/// non-numeric values exit with a diagnostic instead of panicking or
/// silently falling back.
pub fn parse_threads_flag() -> usize {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--threads" {
            let Some(raw) = it.next() else {
                eprintln!("error: --threads needs a value");
                std::process::exit(2);
            };
            match qpwm_par::parse_thread_arg(raw) {
                Ok(n) => qpwm_par::set_threads(n),
                Err(e) => {
                    eprintln!("error: --threads: {e}");
                    std::process::exit(2);
                }
            }
        }
    }
    qpwm_par::thread_count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["n", "bits"]);
        t.row(vec!["8", "2"]).row(vec!["128", "17"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("bits"));
        assert!(lines[3].ends_with("17"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }
}
