//! The cross-scheme attack battleground: every [`WatermarkScheme`] ×
//! every shared workload × a unified attack suite, producing the
//! capacity / distortion / detection-power / attack-survival Pareto
//! table the paper's comparison claims rest on.
//!
//! Five schemes enter: `qp-local` (Theorem 3), `qp-tree` (Theorem 5),
//! `qp-robust` (the Fact 1 repetition wrapper), `ak` (Agrawal–Kiernan)
//! and `kz` (Khanna–Zane). Five workloads host them: `meteo`, `travel`,
//! `csv_db` (a ring relation loaded from CSV), `graphs` (a cycle
//! union), `xml_gen` (a random binary tree). Schemes that natively
//! speak another carrier get a faithful derived one: `qp-tree` marks a
//! serialized tree view of a relational weight column, `qp-local` marks
//! the parent/child edge relation of the XML tree, and `kz` rides a
//! star graph whose leaf edges carry the tuple weights.
//!
//! Every cell is deterministic: the per-cell attack seed mixes the
//! (workload, scheme, attack) coordinates through splitmix64, and the
//! cell grid runs under [`qpwm_par::fork_join`], whose reduction order
//! is thread-count invariant — `RESULTS_battleground.json` is
//! byte-identical at any `--threads` value. Wall-clock throughput is
//! measured separately (sequentially) and lands in
//! `BENCH_battleground.json`, which `scripts/bench_compare.sh` gates.

use std::fmt::Write as _;
use std::time::Instant;

use qpwm_baselines::adapters::{AkWatermark, KzWatermark};
use qpwm_baselines::agrawal_kiernan::{AkConfig, AkScheme};
use qpwm_core::adversary::Attack;
use qpwm_core::detect::{Verdict, DEFAULT_DELTA};
use qpwm_fingerprint::{accuse, observed_from_pairs, Fingerprinter, KeyRegistry, MasterSecret};
use qpwm_core::local_scheme::{LocalSchemeConfig, SelectionStrategy};
use qpwm_core::scheme::{RobustWatermark, SchemeVerdict, WatermarkScheme};
use qpwm_core::{LocalScheme, PairWatermark, TreeScheme};
use qpwm_logic::datalog::parse_rule;
use qpwm_logic::{Formula, ParametricQuery};
use qpwm_par::{fork_join, Fork, ForkJoinLimits};
use qpwm_structures::{AnswerFamily, Element, Weights};
use qpwm_trees::automaton::{TreeAutomaton, STAR};
use qpwm_trees::pebble::{pebbled_symbol, PebbledQuery};
use qpwm_workloads::csv_db::load_csv_database;
use qpwm_workloads::graphs::{cycle_union, unary_domain, with_random_weights};
use qpwm_workloads::meteo::{random_meteo, region_domain, regional_rule};
use qpwm_workloads::travel::{random_travel, route_query, travel_domain};
use qpwm_workloads::xml_gen::{random_binary_tree, random_node_weights};

/// The scheme names the battleground knows, in reporting order.
pub const SCHEME_NAMES: [&str; 5] = ["qp-local", "qp-tree", "qp-robust", "ak", "kz"];

/// The workload names, in reporting order.
pub const WORKLOAD_NAMES: [&str; 5] = ["meteo", "travel", "csv_db", "graphs", "xml_gen"];

/// The attack names, in reporting order (`clean` is the no-attack
/// baseline cell that anchors the detection-power column).
pub const ATTACK_NAMES: [&str; 8] = [
    "clean",
    "noise",
    "rounding",
    "shift",
    "collusion",
    "subset",
    "superset",
    "rerandomize",
];

/// The coalition-combination strategies the traitor-tracing sweep runs,
/// in reporting order: per-tuple averaging, per-tuple median vote, and
/// seeded per-tuple mixing.
pub const COALITION_STRATEGIES: [&str; 3] = ["average", "vote", "mix"];

/// The coalition sizes the traitor-tracing sweep covers.
pub const COALITION_MAX_K: usize = 8;

/// The leak fractions the partial-leak sweep covers: what share of the
/// universe the leaked copy still exposes when it reaches the owner.
pub const LEAK_FRACTIONS: [f64; 5] = [1.0, 0.75, 0.5, 0.25, 0.1];

/// Battleground configuration (CLI flags map onto this 1:1).
#[derive(Debug, Clone, Default)]
pub struct BattleConfig {
    /// Tiny workloads, no files, assert every cell yields a verdict.
    pub check: bool,
    /// Keep only these schemes (names as in [`SCHEME_NAMES`]).
    pub schemes: Option<Vec<String>>,
    /// Keep only these attacks (names as in [`ATTACK_NAMES`]).
    pub attacks: Option<Vec<String>>,
    /// Skip the (sequential) throughput phase and the BENCH file.
    pub skip_bench: bool,
}

// (Experiment id: X-B3 — X-B1/X-B2 are the two-way baseline_compare
// studies this battleground generalizes to all five schemes at once.)

/// One scheme instance bound to one workload.
struct Unit {
    w_idx: usize,
    s_idx: usize,
    workload: &'static str,
    scheme: Box<dyn WatermarkScheme>,
    build_ms: f64,
}

/// One Pareto row: a scheme × workload × attack cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Scheme name.
    pub scheme: String,
    /// Workload name.
    pub workload: String,
    /// Attack name (`clean` for the unattacked baseline).
    pub attack: String,
    /// Scheme capacity on this workload (bits).
    pub capacity: usize,
    /// Marking distortion vs the unmarked baseline: max |Δweight|.
    pub mark_local: i64,
    /// Marking distortion vs the baseline: max |Δ aggregate|.
    pub mark_global: i64,
    /// The attacker's own local distortion (attacked vs marked).
    pub attack_local: i64,
    /// The attacker's own global distortion (attacked vs marked).
    pub attack_global: i64,
    /// Claim bits matched among the evidence-bearing sample.
    pub matches: usize,
    /// Evidence-bearing sample size.
    pub compared: usize,
    /// Mismatches in the sample.
    pub bit_errors: usize,
    /// False-positive significance of the match.
    pub significance: f64,
    /// The scheme's ruling.
    pub verdict: Verdict,
}

impl Cell {
    /// Did the mark survive the attack?
    pub fn survived(&self) -> bool {
        self.verdict == Verdict::MarkPresent
    }
}

/// Per-unit metadata for the RESULTS header.
#[derive(Debug, Clone)]
pub struct UnitInfo {
    /// Scheme name.
    pub scheme: String,
    /// Workload name.
    pub workload: String,
    /// Scheme parameter summary.
    pub params: String,
    /// Capacity on this workload.
    pub capacity: usize,
    /// Active-universe size of the scheme's carrier family.
    pub universe: usize,
}

/// Per-unit throughput sample (BENCH file).
#[derive(Debug, Clone)]
pub struct UnitBench {
    /// Scheme name.
    pub scheme: String,
    /// Workload name.
    pub workload: String,
    /// Scheme construction time (ms).
    pub build_ms: f64,
    /// Mean time to mark the full message (ms/op).
    pub mark_ms: f64,
    /// Mean time to detect on the clean carrier (ms/op).
    pub detect_ms: f64,
}

/// One traitor-tracing cell: `k` recipients combine their fingerprinted
/// copies of the `csv_db` carrier under one strategy, and the
/// accusation engine scores every issued recipient against the blend.
#[derive(Debug, Clone)]
pub struct CoalitionCell {
    /// Combination strategy (see [`COALITION_STRATEGIES`]).
    pub strategy: String,
    /// Coalition size.
    pub k: usize,
    /// Recipients scored by the accusation.
    pub scored: usize,
    /// The accused recipient, if anyone cleared the significance floor.
    pub accused: Option<String>,
    /// Was the accused actually a coalition member? (`false` both when
    /// nobody was accused and on a — never observed — misaccusation.)
    pub traced: bool,
    /// Best-scoring recipient's false-positive significance.
    pub best_significance: f64,
    /// log10 separation between the best and runner-up significance.
    pub gap_log10: f64,
}

/// One partial-leak cell: a single recipient's copy leaks, but only a
/// `fraction` of the universe reaches the owner; the accusation engine
/// scores the subset through the missing-read (effective-sample)
/// significance budget.
#[derive(Debug, Clone)]
pub struct LeakCell {
    /// Fraction of the universe the leak exposes.
    pub fraction: f64,
    /// Tuples actually present in the leak.
    pub kept: usize,
    /// Universe size of the carrier.
    pub universe: usize,
    /// Recipients scored by the accusation.
    pub scored: usize,
    /// The accused recipient, if anyone cleared the significance floor.
    pub accused: Option<String>,
    /// Did the accusation name the actual leaker?
    pub traced: bool,
    /// Best-scoring recipient's false-positive significance.
    pub best_significance: f64,
    /// log10 separation between the best and runner-up significance.
    pub gap_log10: f64,
}

/// Everything one battleground run produces.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Unit metadata (scheme × workload).
    pub units: Vec<UnitInfo>,
    /// All Pareto cells, in (workload, scheme, attack) order.
    pub cells: Vec<Cell>,
    /// The traitor-tracing coalition sweep (strategy × k).
    pub coalitions: Vec<CoalitionCell>,
    /// The partial-leak sweep (fraction of the universe leaked).
    pub leaks: Vec<LeakCell>,
    /// Throughput samples (empty in `--check` / `skip_bench` mode).
    pub bench: Vec<UnitBench>,
    /// Worker threads the cell grid ran under.
    pub threads: usize,
}

/// splitmix64: the per-cell seed mixer (deterministic, coordinate-keyed).
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The deterministic seed for one (workload, scheme, attack) cell.
fn cell_seed(w_idx: usize, s_idx: usize, a_idx: usize) -> u64 {
    splitmix((w_idx as u64) << 32 | (s_idx as u64) << 16 | a_idx as u64)
}

/// The counting-mod-m automaton with a sticky accepting state (the
/// `tree_sweep` construction, with the acceptance condition relaxed
/// from "output pebble on a label-1 node" to "output pebble seen"):
/// state = (#label-1 nodes below) mod m, accepting once the output
/// pebble is encountered — so *every* node is active and the whole
/// tree is markable carrier material, which is what a capacity
/// benchmark wants from its carrier query.
fn mod_m_query(m: u32) -> PebbledQuery {
    let mut a = TreeAutomaton::new(m + 1, 0);
    let hit_state = m;
    for base in [0u32, 1] {
        for bits in 0..4u32 {
            let sym = pebbled_symbol(base, bits, 2);
            let b_here = bits & 0b10 != 0;
            for ql in 0..=m {
                for qr in 0..=m {
                    for (l, r) in [(ql, qr), (ql, STAR), (STAR, qr), (STAR, STAR)] {
                        let seen = l == hit_state || r == hit_state || b_here;
                        let count = |q: u32| if q == STAR || q == hit_state { 0 } else { q };
                        let next = if seen {
                            hit_state
                        } else {
                            (count(l) + count(r) + base) % m
                        };
                        a.add_transition(l, r, sym, next);
                    }
                }
            }
        }
    }
    a.set_accepting(hit_state, true);
    PebbledQuery::new(a, 1)
}

/// Wraps a freshly built [`TreeScheme`] as a trait object.
fn tree_watermark(scheme: &TreeScheme, baseline: Weights, params: String) -> PairWatermark {
    PairWatermark::new("qp-tree", params, scheme.core().clone(), baseline)
}

/// The derived XML view of a relational weight column: a random binary
/// tree with one node per active tuple (in universe order), node `i`
/// carrying tuple `i`'s weight, marked under the mod-2 counting query.
/// Block threshold 3: the X-T5e ablation shows real automata collide
/// almost immediately, so the smallest legal block maximizes capacity
/// at zero soundness cost (a collision-free block just yields no pair).
fn derived_tree_watermark(family: &AnswerFamily, baseline: &Weights, seed: u64) -> PairWatermark {
    let universe: Vec<Vec<Element>> = family.universe_tuples().map(|t| t.to_vec()).collect();
    let n = universe.len() as u32;
    let tree = random_binary_tree(n.max(4), 2, seed);
    let query = mod_m_query(2);
    let domain: Vec<Vec<Element>> = (0..tree.len() as Element).map(|a| vec![a]).collect();
    let scheme = TreeScheme::build_with_threshold(&tree, &query, 3, domain);
    let mut weights = Weights::new(1);
    for (i, key) in universe.iter().enumerate() {
        weights.set(&[i as Element], baseline.get(key));
    }
    tree_watermark(
        &scheme,
        weights,
        format!("m=3, threshold=3, derived tree |W|={n}"),
    )
}

/// The ψ(u, v) = E(u, v) edge query (parameter `u`, output `v`).
fn edge_query() -> ParametricQuery {
    ParametricQuery::new(Formula::atom(0, &[0, 1]), vec![0], vec![1])
}

/// One workload's carrier material: the family every non-native scheme
/// is benchmarked over, its baseline weights, and the native
/// query-preserving schemes.
struct Material {
    family: AnswerFamily,
    baseline: Weights,
    qp_local: PairWatermark,
    qp_tree: PairWatermark,
}

/// Builds one workload's material (five of these, see
/// [`WORKLOAD_NAMES`]). `check` shrinks every instance to smoke-test
/// size.
fn build_material(name: &str, check: bool) -> Material {
    let local_cfg = |d: u64| LocalSchemeConfig {
        rho: 1,
        d,
        strategy: SelectionStrategy::Greedy,
        seed: 7,
    };
    match name {
        "meteo" => {
            let m = if check {
                random_meteo(24, 8, 4, 4, 5)
            } else {
                random_meteo(120, 30, 6, 4, 5)
            };
            let rule = regional_rule(&m);
            let family = rule
                .query
                .answers_over(m.instance.structure(), region_domain(&m));
            let baseline = m.instance.weights().clone();
            let scheme = LocalScheme::build_over(
                &m.instance,
                &rule.query,
                region_domain(&m),
                &local_cfg(3),
            )
            .expect("meteo scheme builds");
            let qp_local = PairWatermark::new(
                "qp-local",
                "rho=1, d=3, greedy (regional rule)".to_string(),
                scheme.core().clone(),
                baseline.clone(),
            );
            let qp_tree = derived_tree_watermark(&family, &baseline, 11);
            Material { family, baseline, qp_local, qp_tree }
        }
        "travel" => {
            let t = if check {
                random_travel(12, 24, 2, 3, 5)
            } else {
                random_travel(70, 130, 3, 3, 5)
            };
            let query = route_query();
            let family = query.answers_over(t.instance.structure(), travel_domain(&t));
            let baseline = t.instance.weights().clone();
            let scheme =
                LocalScheme::build_over(&t.instance, &query, travel_domain(&t), &local_cfg(3))
                    .expect("travel scheme builds");
            let qp_local = PairWatermark::new(
                "qp-local",
                "rho=1, d=3, greedy (route query)".to_string(),
                scheme.core().clone(),
                baseline.clone(),
            );
            let qp_tree = derived_tree_watermark(&family, &baseline, 13);
            Material { family, baseline, qp_local, qp_tree }
        }
        "csv_db" => {
            let n = if check { 24u32 } else { 128 };
            let mut ring = String::new();
            let mut weights_csv = String::new();
            for i in 0..n {
                let _ = writeln!(ring, "n{i},n{}", (i + 1) % n);
                let _ = writeln!(weights_csv, "n{i},{}", 100 + i64::from(i) * 3);
            }
            let db = load_csv_database("R(a,b)", &[("R", &ring)], Some(&weights_csv))
                .expect("ring CSV loads");
            let rule = parse_rule("q($u; v) :- R($u, v)", db.instance.structure().schema())
                .expect("ring rule parses");
            let domain: Vec<Vec<Element>> = (0..n).map(|e| vec![e]).collect();
            let family = rule
                .query
                .answers_over(db.instance.structure(), domain.clone());
            let baseline = db.instance.weights().clone();
            let scheme =
                LocalScheme::build_over(&db.instance, &rule.query, domain, &local_cfg(1))
                    .expect("csv scheme builds");
            let qp_local = PairWatermark::new(
                "qp-local",
                "rho=1, d=1, greedy (ring rule)".to_string(),
                scheme.core().clone(),
                baseline.clone(),
            );
            let qp_tree = derived_tree_watermark(&family, &baseline, 17);
            Material { family, baseline, qp_local, qp_tree }
        }
        "graphs" => {
            let instance = if check {
                with_random_weights(cycle_union(4, 6, 0), 100, 900, 5)
            } else {
                with_random_weights(cycle_union(20, 6, 0), 100, 900, 5)
            };
            let query = edge_query();
            let domain = unary_domain(instance.structure());
            let family = query.answers_over(instance.structure(), domain.clone());
            let baseline = instance.weights().clone();
            let scheme = LocalScheme::build_over(&instance, &query, domain, &local_cfg(2))
                .expect("graphs scheme builds");
            let qp_local = PairWatermark::new(
                "qp-local",
                "rho=1, d=2, greedy (edge query)".to_string(),
                scheme.core().clone(),
                baseline.clone(),
            );
            let qp_tree = derived_tree_watermark(&family, &baseline, 19);
            Material { family, baseline, qp_local, qp_tree }
        }
        "xml_gen" => {
            let n = if check { 40u32 } else { 160 };
            let tree = random_binary_tree(n, 2, 5);
            let node_weights = random_node_weights(&tree, 100, 500, 7);
            let query = mod_m_query(2);
            let domain: Vec<Vec<Element>> = (0..tree.len() as Element).map(|a| vec![a]).collect();
            let tree_scheme = TreeScheme::build_with_threshold(&tree, &query, 3, domain);
            let family = tree_scheme.family().clone();
            let baseline = node_weights.clone();
            let qp_tree = tree_watermark(
                &tree_scheme,
                baseline.clone(),
                format!("m=3, threshold=3, native tree n={n}"),
            );
            // qp-local marks the parent/child edge relation of the same
            // tree (weights stay on the child node).
            let schema = std::sync::Arc::new(qpwm_structures::Schema::graph());
            let mut b = qpwm_structures::StructureBuilder::new(schema, n);
            for node in 0..tree.len() as Element {
                for child in [tree.left(node), tree.right(node)].into_iter().flatten() {
                    b.add(0, &[node, child]);
                    b.add(0, &[child, node]);
                }
            }
            let structure = b.build();
            let edge_instance =
                qpwm_structures::WeightedStructure::new(structure, node_weights.clone());
            let q = edge_query();
            let edge_domain = unary_domain(edge_instance.structure());
            let scheme =
                LocalScheme::build_over(&edge_instance, &q, edge_domain, &local_cfg(2))
                    .expect("xml edge scheme builds");
            let qp_local = PairWatermark::new(
                "qp-local",
                "rho=1, d=2, greedy (tree edge relation)".to_string(),
                scheme.core().clone(),
                baseline.clone(),
            );
            Material { family, baseline, qp_local, qp_tree }
        }
        other => panic!("unknown workload {other}"),
    }
}

/// Instantiates one named scheme over a workload's material.
fn scheme_for(material: &Material, sname: &str) -> Box<dyn WatermarkScheme> {
    match sname {
        "qp-local" => Box::new(material.qp_local.clone()),
        "qp-tree" => Box::new(material.qp_tree.clone()),
        "qp-robust" => Box::new(RobustWatermark::over_marking(
            material.qp_local.core().marking().clone(),
            "R=2 over qp-local pairs".to_string(),
            material.family.clone(),
            material.baseline.clone(),
            2,
        )),
        "ak" => Box::new(AkWatermark::new(
            AkScheme::new(AkConfig::default()),
            "gamma=4, xi=2".to_string(),
            material.family.clone(),
            material.baseline.clone(),
        )),
        "kz" => Box::new(KzWatermark::new(
            material.family.clone(),
            material.baseline.clone(),
            2,
            23,
        )),
        other => panic!("unknown scheme {other}"),
    }
}

/// All five schemes instantiated over one named workload, exactly as the
/// battleground runs them — the surface the trait-conformance suite
/// exercises. `check` selects the smoke-test workload sizes.
pub fn workload_schemes(workload: &str, check: bool) -> Vec<Box<dyn WatermarkScheme>> {
    let material = build_material(workload, check);
    SCHEME_NAMES
        .iter()
        .map(|s| scheme_for(&material, s))
        .collect()
}

/// Is `name` enabled by an optional comma-list filter?
fn enabled(filter: &Option<Vec<String>>, name: &str) -> bool {
    match filter {
        None => true,
        Some(list) => list.iter().any(|f| f.eq_ignore_ascii_case(name)),
    }
}

/// Builds all enabled scheme × workload units.
fn build_units(cfg: &BattleConfig) -> Vec<Unit> {
    let mut units = Vec::new();
    for (w_idx, &wname) in WORKLOAD_NAMES.iter().enumerate() {
        let start = Instant::now();
        let material = build_material(wname, cfg.check);
        let material_ms = start.elapsed().as_secs_f64() * 1000.0;
        for (s_idx, &sname) in SCHEME_NAMES.iter().enumerate() {
            if !enabled(&cfg.schemes, sname) {
                continue;
            }
            let start = Instant::now();
            let scheme = scheme_for(&material, sname);
            let build_ms = material_ms + start.elapsed().as_secs_f64() * 1000.0;
            units.push(Unit { w_idx, s_idx, workload: wname, scheme, build_ms });
        }
    }
    units
}

/// The message every scheme embeds: alternating bits at full capacity.
fn message_for(capacity: usize) -> Vec<bool> {
    (0..capacity).map(|i| i % 2 == 0).collect()
}

/// Runs the full attack row for one unit.
fn run_unit(unit: &Unit, attacks: &Option<Vec<String>>) -> Vec<Cell> {
    let scheme = unit.scheme.as_ref();
    let capacity = scheme.capacity_hint();
    let message = message_for(capacity);
    let marked = scheme.mark(&message);
    let mark_report = scheme.distortion(&marked);
    // The collusion copy: the same scheme instance marking the
    // complementary message (for keyed schemes like AK this is the same
    // marking — averaging is then a no-op, which is itself a finding).
    let complement: Vec<bool> = message.iter().map(|b| !b).collect();
    let co_marked = scheme.mark(&complement).weights;
    let universe = scheme.family().active_universe().len();

    let mut cells = Vec::new();
    for (a_idx, &aname) in ATTACK_NAMES.iter().enumerate() {
        if !enabled(attacks, aname) {
            continue;
        }
        let attack = match aname {
            "clean" => None,
            "noise" => Some(Attack::UniformNoise { amplitude: 2, fraction: 0.25 }),
            "rounding" => Some(Attack::Rounding { granularity: 2 }),
            "shift" => Some(Attack::ConstantShift { delta: 7 }),
            "collusion" => Some(Attack::Averaging { copies: vec![co_marked.clone()] }),
            "subset" => Some(Attack::SubsetSelection { drop_fraction: 0.5 }),
            "superset" => Some(Attack::FakeInsertion {
                count: universe.div_ceil(2),
                amplitude: 3,
            }),
            "rerandomize" => Some(Attack::Rerandomize { fraction: 0.3 }),
            other => panic!("unknown attack {other}"),
        };
        let mut carrier = marked.clone();
        if let Some(att) = &attack {
            att.apply_carrier(
                &mut carrier,
                scheme.family(),
                cell_seed(unit.w_idx, unit.s_idx, a_idx),
            );
        }
        let verdict: SchemeVerdict = scheme.detect(&carrier);
        let attack_report = scheme
            .family()
            .global_distortion(&marked.weights, &carrier.weights);
        cells.push(Cell {
            scheme: scheme.name().to_string(),
            workload: unit.workload.to_string(),
            attack: aname.to_string(),
            capacity,
            mark_local: mark_report.max_local,
            mark_global: mark_report.max_global,
            attack_local: attack_report.max_local,
            attack_global: attack_report.max_global,
            matches: verdict.matches,
            compared: verdict.compared,
            bit_errors: verdict.bit_errors,
            significance: verdict.significance,
            verdict: verdict.verdict,
        });
    }
    cells
}

/// The traitor-tracing sweep: fingerprint the `csv_db` carrier for a
/// registry of recipients, let coalitions of size `k = 1..=8` blend
/// their copies under each [`COALITION_STRATEGIES`] entry, and score
/// the blend with the accusation engine. Fully sequential and
/// seed-deterministic, so the rendered rows are byte-stable at any
/// thread count.
fn tracing_setup(check: bool) -> (Material, Fingerprinter, KeyRegistry) {
    let material = build_material("csv_db", check);
    let fingerprinter = Fingerprinter::new(
        material.qp_local.core().marking().clone(),
        material.baseline.clone(),
    );
    let recipients: usize = if check { 16 } else { 64 };
    let mut registry = KeyRegistry::new(MasterSecret::from_u64(0xB477_1E60));
    for i in 0..recipients {
        registry
            .issue(&format!("r{i:03}"), i as u64)
            .expect("fresh registry issues");
    }
    (material, fingerprinter, registry)
}

fn run_coalitions(cfg: &BattleConfig) -> Vec<CoalitionCell> {
    let (material, fingerprinter, registry) = tracing_setup(cfg.check);
    let recipients = registry.len();
    let mut cells = Vec::new();
    for (strat_idx, &strategy) in COALITION_STRATEGIES.iter().enumerate() {
        for k in 1..=COALITION_MAX_K {
            // coalition membership is coordinate-seeded: k consecutive
            // indices from a splitmix-derived start, so strategies and
            // sizes cover different slices of the registry
            let seed = cell_seed(9, strat_idx, k);
            let start = (seed % recipients as u64) as usize;
            let members: Vec<u64> =
                (0..k).map(|j| ((start + j) % recipients) as u64).collect();
            let mut copies: Vec<Weights> = members
                .iter()
                .map(|&i| fingerprinter.stamp(registry.key_at(i)))
                .collect();
            let mine = copies.remove(0);
            let blended = if copies.is_empty() {
                mine
            } else {
                let attack = match strategy {
                    "average" => Attack::Averaging { copies },
                    "vote" => Attack::MajorityVote { copies },
                    "mix" => Attack::Mixing { copies },
                    other => panic!("unknown coalition strategy {other}"),
                };
                attack.apply(&mine, &material.family, splitmix(seed))
            };
            let observed = observed_from_pairs(
                material
                    .family
                    .universe_tuples()
                    .map(|t| (t.to_vec(), blended.get(t)))
                    .collect(),
            );
            let outcome = accuse(&fingerprinter, &registry, &observed, DEFAULT_DELTA);
            let accused = outcome.accused().map(|a| a.recipient.clone());
            let traced = accused
                .as_ref()
                .is_some_and(|name| {
                    registry
                        .record(name)
                        .is_some_and(|r| members.contains(&r.index))
                });
            cells.push(CoalitionCell {
                strategy: strategy.to_string(),
                k,
                scored: outcome.scored,
                accused,
                traced,
                best_significance: outcome
                    .best
                    .as_ref()
                    .map_or(1.0, |b| b.check.significance),
                gap_log10: outcome.gap_log10,
            });
        }
    }
    cells
}

/// The partial-leak sweep (X-F1b): one recipient's stamped `csv_db`
/// copy leaks, but only a fraction of the universe survives the leak
/// (a competitor republishing excerpts). The accusation engine sees the
/// subset as missing reads and scores it through the effective-sample
/// significance — thin leaks must degrade to *abstain*, never to a
/// misaccusation. Deterministic: the kept subset is splitmix-ranked.
fn run_leak_fractions(cfg: &BattleConfig) -> Vec<LeakCell> {
    let (material, fingerprinter, registry) = tracing_setup(cfg.check);
    let universe: Vec<Vec<Element>> =
        material.family.universe_tuples().map(|t| t.to_vec()).collect();
    // the leaker: a fixed mid-registry grant (coordinate-seeded like
    // every other cell, so the sweep is stable under registry growth)
    let leaker = cell_seed(10, 0, 0) % registry.len() as u64;
    let leaker_name = format!("r{leaker:03}");
    let copy = fingerprinter.stamp(registry.key_at(leaker));
    let mut cells = Vec::new();
    for (f_idx, &fraction) in LEAK_FRACTIONS.iter().enumerate() {
        // rank tuples by a seeded hash and keep the first ⌈f·n⌉ — an
        // exact-size, deterministic subset per fraction
        let seed = cell_seed(10, 1, f_idx);
        let mut ranked: Vec<usize> = (0..universe.len()).collect();
        ranked.sort_by_key(|&i| splitmix(seed ^ i as u64));
        let kept = ((fraction * universe.len() as f64).ceil() as usize).min(universe.len());
        ranked.truncate(kept);
        let observed = observed_from_pairs(
            ranked
                .iter()
                .map(|&i| (universe[i].clone(), copy.get(&universe[i])))
                .collect(),
        );
        let outcome = accuse(&fingerprinter, &registry, &observed, DEFAULT_DELTA);
        let accused = outcome.accused().map(|a| a.recipient.clone());
        let traced = accused.as_deref() == Some(leaker_name.as_str());
        cells.push(LeakCell {
            fraction,
            kept,
            universe: universe.len(),
            scored: outcome.scored,
            accused,
            traced,
            best_significance: outcome
                .best
                .as_ref()
                .map_or(1.0, |b| b.check.significance),
            gap_log10: outcome.gap_log10,
        });
    }
    cells
}

/// Times `op` and returns mean ms/op (at least 3 iterations, stops
/// after ~40 ms of sampling).
fn time_per_op(mut op: impl FnMut()) -> f64 {
    let start = Instant::now();
    let mut iters = 0u32;
    loop {
        op();
        iters += 1;
        if (iters >= 3 && start.elapsed().as_millis() >= 40) || iters >= 10_000 {
            break;
        }
    }
    start.elapsed().as_secs_f64() * 1000.0 / f64::from(iters)
}

/// Runs the battleground: builds units, evaluates the cell grid under
/// [`fork_join`], then (unless disabled) measures per-unit throughput
/// sequentially.
pub fn run(cfg: &BattleConfig) -> RunOutcome {
    let threads = qpwm_par::thread_count();
    let units = build_units(cfg);
    let infos: Vec<UnitInfo> = units
        .iter()
        .map(|u| UnitInfo {
            scheme: u.scheme.name().to_string(),
            workload: u.workload.to_string(),
            params: u.scheme.params(),
            capacity: u.scheme.capacity_hint(),
            universe: u.scheme.family().active_universe().len(),
        })
        .collect();

    // The cell grid: fork-join over unit indices, one leaf per unit,
    // concatenation join — deterministic at any thread count.
    let indices: Vec<usize> = (0..units.len()).collect();
    let cells = fork_join(
        indices,
        ForkJoinLimits::default(),
        |mut task, _depth| {
            if task.len() <= 1 {
                Fork::Leaf(task)
            } else {
                let right = task.split_off(task.len() / 2);
                Fork::Split(vec![task, right])
            }
        },
        |task: &Vec<usize>| -> Vec<Cell> {
            task.iter()
                .flat_map(|&i| run_unit(&units[i], &cfg.attacks))
                .collect()
        },
        |parts: Vec<Vec<Cell>>| parts.into_iter().flatten().collect(),
    );

    // Traitor tracing: sequential and seed-deterministic by design.
    let coalitions = run_coalitions(cfg);
    let leaks = run_leak_fractions(cfg);

    // Throughput phase: sequential, so contention never skews the
    // numbers the perf gate compares.
    let mut bench = Vec::new();
    if !cfg.check && !cfg.skip_bench {
        for unit in &units {
            let scheme = unit.scheme.as_ref();
            let message = message_for(scheme.capacity_hint());
            let marked = scheme.mark(&message);
            let mark_ms = time_per_op(|| {
                std::hint::black_box(scheme.mark(&message));
            });
            let detect_ms = time_per_op(|| {
                std::hint::black_box(scheme.detect(&marked));
            });
            bench.push(UnitBench {
                scheme: scheme.name().to_string(),
                workload: unit.workload.to_string(),
                build_ms: unit.build_ms,
                mark_ms,
                detect_ms,
            });
        }
    }

    RunOutcome { units: infos, cells, coalitions, leaks, bench, threads }
}

/// The subset-selection dominance check the paper predicts: on every
/// workload where both ran, `qp-local`'s survival must be at least
/// Agrawal–Kiernan's, and strictly better somewhere.
pub fn subset_dominance(cells: &[Cell]) -> Option<bool> {
    let survived = |scheme: &str, workload: &str| -> Option<bool> {
        cells
            .iter()
            .find(|c| c.scheme == scheme && c.workload == workload && c.attack == "subset")
            .map(Cell::survived)
    };
    let mut saw_pair = false;
    let mut strict = false;
    for &w in &WORKLOAD_NAMES {
        let (Some(qp), Some(ak)) = (survived("qp-local", w), survived("ak", w)) else {
            continue;
        };
        saw_pair = true;
        if ak && !qp {
            return Some(false);
        }
        if qp && !ak {
            strict = true;
        }
    }
    saw_pair.then_some(strict)
}

/// JSON escaping for the hand-rolled writers.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders the deterministic Pareto table (`RESULTS_battleground.json`).
pub fn results_json(outcome: &RunOutcome) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"units\": [\n");
    for (i, u) in outcome.units.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"scheme\": {}, \"workload\": {}, \"params\": {}, \"capacity\": {}, \"universe\": {}}}{}",
            json_str(&u.scheme),
            json_str(&u.workload),
            json_str(&u.params),
            u.capacity,
            u.universe,
            if i + 1 < outcome.units.len() { "," } else { "" },
        );
    }
    s.push_str("  ],\n  \"cells\": [\n");
    for (i, c) in outcome.cells.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"scheme\": {}, \"workload\": {}, \"attack\": {}, \"capacity\": {}, \
             \"mark_local\": {}, \"mark_global\": {}, \"attack_local\": {}, \"attack_global\": {}, \
             \"matches\": {}, \"compared\": {}, \"bit_errors\": {}, \"significance\": {:.6e}, \
             \"verdict\": {}, \"survived\": {}}}{}",
            json_str(&c.scheme),
            json_str(&c.workload),
            json_str(&c.attack),
            c.capacity,
            c.mark_local,
            c.mark_global,
            c.attack_local,
            c.attack_global,
            c.matches,
            c.compared,
            c.bit_errors,
            c.significance,
            json_str(&c.verdict.to_string()),
            c.survived(),
            if i + 1 < outcome.cells.len() { "," } else { "" },
        );
    }
    s.push_str("  ],\n  \"coalitions\": [\n");
    for (i, c) in outcome.coalitions.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"strategy\": {}, \"k\": {}, \"scored\": {}, \"accused\": {}, \
             \"traced\": {}, \"best_significance\": {:.6e}, \"gap_log10\": {:.3}}}{}",
            json_str(&c.strategy),
            c.k,
            c.scored,
            match &c.accused {
                Some(name) => json_str(name),
                None => "null".to_string(),
            },
            c.traced,
            c.best_significance,
            c.gap_log10,
            if i + 1 < outcome.coalitions.len() { "," } else { "" },
        );
    }
    s.push_str("  ],\n  \"leaks\": [\n");
    for (i, c) in outcome.leaks.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"fraction\": {:.2}, \"kept\": {}, \"universe\": {}, \"scored\": {}, \
             \"accused\": {}, \"traced\": {}, \"best_significance\": {:.6e}, \"gap_log10\": {:.3}}}{}",
            c.fraction,
            c.kept,
            c.universe,
            c.scored,
            match &c.accused {
                Some(name) => json_str(name),
                None => "null".to_string(),
            },
            c.traced,
            c.best_significance,
            c.gap_log10,
            if i + 1 < outcome.leaks.len() { "," } else { "" },
        );
    }
    let schemes: std::collections::BTreeSet<&str> =
        outcome.cells.iter().map(|c| c.scheme.as_str()).collect();
    let workloads: std::collections::BTreeSet<&str> =
        outcome.cells.iter().map(|c| c.workload.as_str()).collect();
    let attacks: std::collections::BTreeSet<&str> =
        outcome.cells.iter().map(|c| c.attack.as_str()).collect();
    let dominance = match subset_dominance(&outcome.cells) {
        Some(b) => b.to_string(),
        None => "null".to_string(),
    };
    let traced = outcome.coalitions.iter().filter(|c| c.traced).count();
    let leaks_traced = outcome.leaks.iter().filter(|c| c.traced).count();
    let _ = write!(
        s,
        "  ],\n  \"summary\": {{\"schemes\": {}, \"workloads\": {}, \"attacks\": {}, \"cells\": {}, \
         \"coalition_cells\": {}, \"coalitions_traced\": {}, \"leak_cells\": {}, \
         \"leaks_traced\": {}, \"subset_dominance\": {}}}\n}}\n",
        schemes.len(),
        workloads.len(),
        attacks.len(),
        outcome.cells.len(),
        outcome.coalitions.len(),
        traced,
        outcome.leaks.len(),
        leaks_traced,
        dominance,
    );
    s
}

/// Renders the timing trajectory (`BENCH_battleground.json`).
pub fn bench_json(outcome: &RunOutcome) -> String {
    let mut s = String::new();
    let _ = write!(s, "{{\n  \"threads\": {},\n  \"units\": [\n", outcome.threads);
    for (i, b) in outcome.bench.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"scheme\": {}, \"workload\": {}, \"build_ms\": {:.3}, \"mark_ms\": {:.4}, \"detect_ms\": {:.4}}}{}",
            json_str(&b.scheme),
            json_str(&b.workload),
            b.build_ms,
            b.mark_ms,
            b.detect_ms,
            if i + 1 < outcome.bench.len() { "," } else { "" },
        );
    }
    s.push_str("  ],\n  \"per_scheme\": [\n");
    let mut totals: Vec<(String, f64, f64)> = Vec::new();
    for b in &outcome.bench {
        match totals.iter_mut().find(|(n, _, _)| *n == b.scheme) {
            Some(t) => {
                t.1 += b.mark_ms;
                t.2 += b.detect_ms;
            }
            None => totals.push((b.scheme.clone(), b.mark_ms, b.detect_ms)),
        }
    }
    for (i, (name, mark_ms, detect_ms)) in totals.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"scheme\": {}, \"mark_ms\": {:.4}, \"detect_ms\": {:.4}, \"mark_per_s\": {:.1}, \"detect_per_s\": {:.1}}}{}",
            json_str(name),
            mark_ms,
            detect_ms,
            if *mark_ms > 0.0 { 1000.0 / mark_ms } else { 0.0 },
            if *detect_ms > 0.0 { 1000.0 / detect_ms } else { 0.0 },
            if i + 1 < totals.len() { "," } else { "" },
        );
    }
    s.push_str("  ]\n}\n");
    s
}

/// Shared CLI driver for the `battleground` binary and the
/// `qpwm battleground` subcommand. Parses flags, honours
/// `--threads` via [`qpwm_par::parse_thread_arg`], runs, writes the
/// JSON artifacts (full mode), and returns a process exit code.
pub fn cli_main(args: &[String]) -> i32 {
    let mut cfg = BattleConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--check" => cfg.check = true,
            "--no-bench" => cfg.skip_bench = true,
            "--threads" => {
                let Some(raw) = it.next() else {
                    eprintln!("error: --threads needs a value");
                    return 2;
                };
                match qpwm_par::parse_thread_arg(raw) {
                    Ok(n) => qpwm_par::set_threads(n),
                    Err(e) => {
                        eprintln!("error: --threads: {e}");
                        return 2;
                    }
                }
            }
            "--schemes" => {
                let Some(raw) = it.next() else {
                    eprintln!("error: --schemes needs a comma-separated list");
                    return 2;
                };
                cfg.schemes = Some(raw.split(',').map(|s| s.trim().to_string()).collect());
            }
            "--attacks" => {
                let Some(raw) = it.next() else {
                    eprintln!("error: --attacks needs a comma-separated list");
                    return 2;
                };
                cfg.attacks = Some(raw.split(',').map(|s| s.trim().to_string()).collect());
            }
            other => {
                eprintln!(
                    "unknown flag: {other}\nusage: battleground [--check] [--threads N] \
                     [--schemes a,b] [--attacks x,y] [--no-bench]"
                );
                return 2;
            }
        }
    }

    let outcome = run(&cfg);

    if cfg.check {
        let expected_schemes = match &cfg.schemes {
            None => SCHEME_NAMES.len(),
            Some(list) => SCHEME_NAMES
                .iter()
                .filter(|s| enabled(&cfg.schemes, s))
                .count()
                .max(usize::from(!list.is_empty())),
        };
        let expected_attacks = match &cfg.attacks {
            None => ATTACK_NAMES.len(),
            Some(_) => ATTACK_NAMES
                .iter()
                .filter(|a| enabled(&cfg.attacks, a))
                .count(),
        };
        let expected = expected_schemes * expected_attacks * WORKLOAD_NAMES.len();
        if outcome.cells.len() != expected {
            eprintln!(
                "battleground check FAILED: {} cells, expected {expected}",
                outcome.cells.len()
            );
            return 1;
        }
        // Every cell must carry a ruling — a significance in [0, 1] and
        // a printable verdict.
        for c in &outcome.cells {
            if !(0.0..=1.0).contains(&c.significance) {
                eprintln!(
                    "battleground check FAILED: {}/{}/{} has significance {}",
                    c.scheme, c.workload, c.attack, c.significance
                );
                return 1;
            }
        }
        let expected_coalitions = COALITION_STRATEGIES.len() * COALITION_MAX_K;
        if outcome.coalitions.len() != expected_coalitions {
            eprintln!(
                "battleground check FAILED: {} coalition cells, expected {expected_coalitions}",
                outcome.coalitions.len()
            );
            return 1;
        }
        if outcome.leaks.len() != LEAK_FRACTIONS.len() {
            eprintln!(
                "battleground check FAILED: {} leak cells, expected {}",
                outcome.leaks.len(),
                LEAK_FRACTIONS.len()
            );
            return 1;
        }
        for c in &outcome.leaks {
            if !(0.0..=1.0).contains(&c.best_significance) {
                eprintln!(
                    "battleground check FAILED: leak f={} has significance {}",
                    c.fraction, c.best_significance
                );
                return 1;
            }
        }
        println!(
            "battleground check OK ({} cells, {} coalition cells, {} leak cells, {} units, {} threads)",
            outcome.cells.len(),
            outcome.coalitions.len(),
            outcome.leaks.len(),
            outcome.units.len(),
            outcome.threads
        );
        return 0;
    }

    std::fs::write("RESULTS_battleground.json", results_json(&outcome))
        .expect("write RESULTS_battleground.json");
    if !outcome.bench.is_empty() {
        std::fs::write("BENCH_battleground.json", bench_json(&outcome))
            .expect("write BENCH_battleground.json");
    }

    // A human-readable digest of the Pareto table.
    let mut table = crate::Table::new(vec![
        "workload", "scheme", "bits", "d_mark", "survived", "of",
    ]);
    for &w in &WORKLOAD_NAMES {
        for &s in &SCHEME_NAMES {
            let row: Vec<&Cell> = outcome
                .cells
                .iter()
                .filter(|c| c.workload == w && c.scheme == s)
                .collect();
            if row.is_empty() {
                continue;
            }
            let survived = row.iter().filter(|c| c.survived()).count();
            table.row(vec![
                w.to_string(),
                s.to_string(),
                row[0].capacity.to_string(),
                row[0].mark_global.to_string(),
                survived.to_string(),
                row.len().to_string(),
            ]);
        }
    }
    table.print("X-B3 — battleground: attacks survived per scheme × workload");

    // Traitor tracing: accusation power vs coalition size.
    let mut tracing = crate::Table::new(vec!["strategy", "k", "accused", "traced", "gap_log10"]);
    for c in &outcome.coalitions {
        tracing.row(vec![
            c.strategy.clone(),
            c.k.to_string(),
            c.accused.clone().unwrap_or_else(|| "-".to_string()),
            if c.traced { "yes".to_string() } else { "no".to_string() },
            format!("{:.1}", c.gap_log10),
        ]);
    }
    tracing.print("X-F1 — traitor tracing: accusation vs coalition size (csv_db carrier)");

    // Partial leaks: accusation power vs leaked fraction.
    let mut leak_table =
        crate::Table::new(vec!["fraction", "kept/universe", "accused", "traced", "significance"]);
    for c in &outcome.leaks {
        leak_table.row(vec![
            format!("{:.0}%", c.fraction * 100.0),
            format!("{}/{}", c.kept, c.universe),
            c.accused.clone().unwrap_or_else(|| "-".to_string()),
            if c.traced { "yes".to_string() } else { "no".to_string() },
            format!("{:.2e}", c.best_significance),
        ]);
    }
    leak_table.print("X-F1b — partial leaks: accusation vs leaked fraction (csv_db carrier)");
    match subset_dominance(&outcome.cells) {
        Some(true) => println!("subset-selection dominance: qp-local ≥ ak on every workload (strict somewhere) ✓"),
        Some(false) => println!("subset-selection dominance: VIOLATED (ak survived where qp-local did not)"),
        None => println!("subset-selection dominance: not evaluated (filtered run)"),
    }
    println!("wrote RESULTS_battleground.json{}", if outcome.bench.is_empty() { "" } else { " and BENCH_battleground.json" });
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_grid_is_complete_and_thread_invariant() {
        let cfg = BattleConfig {
            check: true,
            schemes: Some(vec!["qp-local".into(), "ak".into()]),
            attacks: Some(vec!["clean".into(), "subset".into()]),
            skip_bench: true,
        };
        qpwm_par::set_threads(1);
        let one = run(&cfg);
        qpwm_par::set_threads(2);
        let two = run(&cfg);
        qpwm_par::set_threads(1);
        assert_eq!(one.cells.len(), 2 * 2 * WORKLOAD_NAMES.len());
        assert_eq!(results_json(&one), results_json(&two));
    }

    #[test]
    #[ignore]
    fn probe_capacities() {
        for m in [1u32, 2] {
            for thr in [3usize, 4, 6, 8] {
                for n in [120u32, 150, 176, 240] {
                    let tree = random_binary_tree(n, 2, 11);
                    let q = mod_m_query(m);
                    let domain: Vec<Vec<Element>> =
                        (0..tree.len() as Element).map(|a| vec![a]).collect();
                    let s = TreeScheme::build_with_threshold(&tree, &q, thr, domain);
                    println!(
                        "tree m={m} thr={thr} n={n} active={} cap={}",
                        s.family().active_universe().len(),
                        s.capacity()
                    );
                }
            }
        }
        for (stations, regions, d) in [(120u32, 30u32, 2u64), (120, 30, 3), (150, 38, 3)] {
            let m = random_meteo(stations, regions, 6, 4, 5);
            let rule = regional_rule(&m);
            let s = LocalScheme::build_over(
                &m.instance,
                &rule.query,
                region_domain(&m),
                &LocalSchemeConfig { rho: 1, d, strategy: SelectionStrategy::Greedy, seed: 7 },
            )
            .unwrap();
            println!("meteo s={stations} r={regions} d={d} cap={}", s.capacity());
        }
        for (travels, transports, d) in [(70u32, 130u32, 2u64), (70, 130, 3), (85, 150, 3)] {
            let t = random_travel(travels, transports, 3, 3, 5);
            let s = LocalScheme::build_over(
                &t.instance,
                &route_query(),
                travel_domain(&t),
                &LocalSchemeConfig { rho: 1, d, strategy: SelectionStrategy::Greedy, seed: 7 },
            )
            .unwrap();
            println!("travel t={travels} tr={transports} d={d} cap={}", s.capacity());
        }
        for n in [160u32, 170, 176, 190] {
            let universe: Vec<Vec<Element>> = (0..n).map(|e| vec![e]).collect();
            let ak = AkScheme::new(AkConfig::default());
            println!("ak n={n} cap={}", ak.selections(&universe).len());
        }
    }

    #[test]
    fn coalition_sweep_traces_singletons_and_is_deterministic() {
        // full-size csv_db carrier: capacity clears the default
        // significance floor, so every k=1 "coalition" (a plain leak)
        // must be traced to its recipient
        let cfg = BattleConfig { skip_bench: true, ..BattleConfig::default() };
        let cells = run_coalitions(&cfg);
        assert_eq!(cells.len(), COALITION_STRATEGIES.len() * COALITION_MAX_K);
        for c in cells.iter().filter(|c| c.k == 1) {
            assert!(
                c.traced,
                "a single leaked copy must be traced ({}, accused {:?})",
                c.strategy, c.accused
            );
            assert!(c.best_significance < DEFAULT_DELTA);
        }
        // the engine abstains rather than misaccuse: every accusation
        // that does land names a coalition member
        for c in &cells {
            assert!(c.accused.is_none() || c.traced, "{}/k={} misaccused", c.strategy, c.k);
        }
        let again = run_coalitions(&cfg);
        for (a, b) in cells.iter().zip(&again) {
            assert_eq!(a.accused, b.accused);
            assert_eq!(a.best_significance.to_bits(), b.best_significance.to_bits());
        }
    }

    #[test]
    fn leak_sweep_traces_half_leaks_and_never_misaccuses() {
        // full-size csv_db carrier: half the universe still carries
        // enough pair evidence to clear the significance floor, while
        // the thinnest leaks must degrade to abstain — never to an
        // accusation of the wrong recipient
        let cfg = BattleConfig { skip_bench: true, ..BattleConfig::default() };
        let cells = run_leak_fractions(&cfg);
        assert_eq!(cells.len(), LEAK_FRACTIONS.len());
        for c in &cells {
            assert!(c.accused.is_none() || c.traced, "f={} misaccused", c.fraction);
        }
        for c in cells.iter().filter(|c| c.fraction >= 0.5) {
            assert!(
                c.traced,
                "a {:.0}% leak must still be traced (significance {:.2e})",
                c.fraction * 100.0,
                c.best_significance
            );
            assert!(c.best_significance < DEFAULT_DELTA);
        }
        let again = run_leak_fractions(&cfg);
        for (a, b) in cells.iter().zip(&again) {
            assert_eq!(a.accused, b.accused);
            assert_eq!(a.best_significance.to_bits(), b.best_significance.to_bits());
        }
    }

    #[test]
    fn cell_seeds_are_coordinate_unique() {
        let mut seen = std::collections::HashSet::new();
        for w in 0..5 {
            for s in 0..5 {
                for a in 0..8 {
                    assert!(seen.insert(cell_seed(w, s, a)));
                }
            }
        }
    }
}
