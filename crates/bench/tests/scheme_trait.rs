//! Trait-conformance suite: every scheme behind [`WatermarkScheme`]
//! must (a) mark-then-detect its own message at the default
//! significance δ, and (b) refuse to claim ownership of unmarked data.
//!
//! The schemes are instantiated exactly as the battleground runs them
//! (`workload_schemes`), on the `graphs` workload — the cheapest full
//! size carrier — so this suite also pins the battleground's builders.

use qpwm_bench::battleground::{workload_schemes, SCHEME_NAMES};
use qpwm_core::detect::Verdict;
use qpwm_core::scheme::MarkedCarrier;

fn alternating(n: usize) -> Vec<bool> {
    (0..n).map(|i| i % 2 == 0).collect()
}

#[test]
fn every_scheme_roundtrips_and_rejects_unmarked() {
    let schemes = workload_schemes("graphs", false);
    assert_eq!(schemes.len(), SCHEME_NAMES.len());
    for (scheme, &expected_name) in schemes.iter().zip(SCHEME_NAMES.iter()) {
        assert_eq!(scheme.name(), expected_name);
        assert!(!scheme.params().is_empty(), "{expected_name} params are empty");
        // Enough capacity to clear the 2^-20 < δ significance bar.
        let capacity = scheme.capacity_hint();
        assert!(capacity >= 20, "{expected_name} capacity {capacity} < 20");

        let message = alternating(capacity);
        let marked = scheme.mark(&message);
        let verdict = scheme.detect(&marked);
        assert_eq!(
            verdict.verdict,
            Verdict::MarkPresent,
            "{expected_name} failed its own roundtrip: {verdict:?}"
        );
        assert_eq!(verdict.bit_errors, 0, "{expected_name} clean decode has errors");

        // The same claim against the unmarked baseline must not
        // establish ownership (pair schemes abstain — no evidence;
        // baselines land at chance-level matches — inconclusive).
        let unmarked = MarkedCarrier::clean(scheme.baseline().clone(), marked.message.clone());
        let innocent = scheme.detect(&unmarked);
        assert_ne!(
            innocent.verdict,
            Verdict::MarkPresent,
            "{expected_name} claimed unmarked data: {innocent:?}"
        );
    }
}

#[test]
fn marking_distortion_is_audited_per_scheme() {
    for scheme in workload_schemes("graphs", false) {
        let marked = scheme.mark(&alternating(scheme.capacity_hint()));
        let report = scheme.distortion(&marked);
        assert!(report.max_local >= 0 && report.max_global >= 0);
        match scheme.name() {
            // Pair schemes move each weight by at most 1 and each
            // answer-set aggregate by at most the scheme's d (the tree
            // scheme's bound is 1 per region).
            "qp-local" | "qp-robust" => {
                assert!(report.max_global <= 2, "global {}", report.max_global);
            }
            "qp-tree" => assert!(report.max_global <= 1, "global {}", report.max_global),
            // The baselines bound nothing per answer set — that gap is
            // the paper's motivation, so just require they moved
            // something.
            "ak" | "kz" => assert!(report.max_local >= 1, "baseline marked nothing"),
            other => panic!("unexpected scheme {other}"),
        }
    }
}

#[test]
fn check_sized_workloads_build_for_all_five_workloads() {
    // The --check grid builds every workload at smoke size; conformance
    // there is just "constructs and reports coherent metadata".
    for workload in ["meteo", "travel", "csv_db", "graphs", "xml_gen"] {
        for scheme in workload_schemes(workload, true) {
            assert!(!scheme.params().is_empty());
            assert!(!scheme.family().is_empty(), "{workload} family is empty");
        }
    }
}
