//! Binary Σ-trees.
//!
//! A binary tree is the `{S₁, S₂, ⪯}`-structure of the paper: nodes with
//! optional left/right children, the tree order `⪯` (ancestor relation),
//! and a labeling `σ : T → Σ`. Labels are interned symbols from an
//! [`Alphabet`].

use std::collections::HashMap;
use std::fmt;

/// A node identifier (dense index into the tree's node arena).
pub type NodeId = u32;

/// A symbol of the finite alphabet Σ (interned index).
pub type Symbol = u32;

/// An interning table for alphabet symbols.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Alphabet {
    names: Vec<String>,
    index: HashMap<String, Symbol>,
}

impl Alphabet {
    /// An empty alphabet.
    pub fn new() -> Self {
        Alphabet::default()
    }

    /// Interns `name`, returning its symbol (existing or fresh).
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&s) = self.index.get(name) {
            return s;
        }
        let s = self.names.len() as Symbol;
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), s);
        s
    }

    /// Looks a symbol up without interning.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.index.get(name).copied()
    }

    /// The name of a symbol.
    pub fn name(&self, s: Symbol) -> &str {
        &self.names[s as usize]
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no symbol was interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Node {
    label: Symbol,
    left: Option<NodeId>,
    right: Option<NodeId>,
    parent: Option<NodeId>,
}

/// An ordered binary tree with labeled nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryTree {
    nodes: Vec<Node>,
    root: NodeId,
}

impl BinaryTree {
    /// Creates a tree with a single root labeled `label`.
    pub fn leaf(label: Symbol) -> Self {
        BinaryTree {
            nodes: vec![Node { label, left: None, right: None, parent: None }],
            root: 0,
        }
    }

    /// Builds a tree from `(label, left, right)` triples where children are
    /// indices into the same slice; entry `root` is the root.
    ///
    /// # Panics
    /// Panics if the description is not a tree (dangling indices, child
    /// shared by two parents, root with a parent).
    pub fn from_triples(triples: &[(Symbol, Option<u32>, Option<u32>)], root: u32) -> Self {
        let n = triples.len();
        let mut nodes: Vec<Node> = triples
            .iter()
            .map(|&(label, left, right)| Node { label, left, right, parent: None })
            .collect();
        for (i, &(_, l, r)) in triples.iter().enumerate() {
            for child in [l, r].into_iter().flatten() {
                assert!((child as usize) < n, "dangling child index {child}");
                assert!(
                    nodes[child as usize].parent.is_none(),
                    "node {child} has two parents"
                );
                nodes[child as usize].parent = Some(i as u32);
            }
        }
        assert!((root as usize) < n, "dangling root");
        assert!(nodes[root as usize].parent.is_none(), "root has a parent");
        let tree = BinaryTree { nodes, root };
        debug_assert_eq!(tree.postorder().len(), n, "disconnected nodes");
        tree
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for the (impossible) empty tree; trees always have a root.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Label of `node`.
    pub fn label(&self, node: NodeId) -> Symbol {
        self.nodes[node as usize].label
    }

    /// Left child (`S₁`).
    pub fn left(&self, node: NodeId) -> Option<NodeId> {
        self.nodes[node as usize].left
    }

    /// Right child (`S₂`).
    pub fn right(&self, node: NodeId) -> Option<NodeId> {
        self.nodes[node as usize].right
    }

    /// Parent node.
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.nodes[node as usize].parent
    }

    /// Is `node` a leaf?
    pub fn is_leaf(&self, node: NodeId) -> bool {
        self.left(node).is_none() && self.right(node).is_none()
    }

    /// All nodes in postorder (children before parents) — the evaluation
    /// order of bottom-up automata.
    pub fn postorder(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        // iterative postorder with explicit state
        let mut stack: Vec<(NodeId, u8)> = vec![(self.root, 0)];
        while let Some((node, phase)) = stack.pop() {
            match phase {
                0 => {
                    stack.push((node, 1));
                    if let Some(r) = self.right(node) {
                        stack.push((r, 0));
                    }
                    if let Some(l) = self.left(node) {
                        stack.push((l, 0));
                    }
                }
                _ => out.push(node),
            }
        }
        out
    }

    /// The tree order `⪯`: is `anc` an ancestor of (or equal to) `node`?
    pub fn is_ancestor(&self, anc: NodeId, node: NodeId) -> bool {
        let mut cur = Some(node);
        while let Some(c) = cur {
            if c == anc {
                return true;
            }
            cur = self.parent(c);
        }
        false
    }

    /// Depth of `node` (root = 0).
    pub fn depth(&self, node: NodeId) -> u32 {
        let mut d = 0;
        let mut cur = node;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// Lowest common ancestor of a non-empty set of nodes.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn lca(&self, nodes: &[NodeId]) -> NodeId {
        assert!(!nodes.is_empty(), "lca of empty set");
        let mut acc = nodes[0];
        for &n in &nodes[1..] {
            acc = self.lca2(acc, n);
        }
        acc
    }

    fn lca2(&self, a: NodeId, b: NodeId) -> NodeId {
        let (mut a, mut b) = (a, b);
        let (mut da, mut db) = (self.depth(a), self.depth(b));
        while da > db {
            a = self.parent(a).expect("depth accounting");
            da -= 1;
        }
        while db > da {
            b = self.parent(b).expect("depth accounting");
            db -= 1;
        }
        while a != b {
            a = self.parent(a).expect("common root exists");
            b = self.parent(b).expect("common root exists");
        }
        a
    }

    /// Nodes of the subtree rooted at `node`, in postorder.
    pub fn subtree(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack: Vec<(NodeId, u8)> = vec![(node, 0)];
        while let Some((n, phase)) = stack.pop() {
            match phase {
                0 => {
                    stack.push((n, 1));
                    if let Some(r) = self.right(n) {
                        stack.push((r, 0));
                    }
                    if let Some(l) = self.left(n) {
                        stack.push((l, 0));
                    }
                }
                _ => out.push(n),
            }
        }
        out
    }

    /// Size of the subtree rooted at each node (indexed by `NodeId`).
    pub fn subtree_sizes(&self) -> Vec<u32> {
        let mut sizes = vec![1u32; self.nodes.len()];
        for node in self.postorder() {
            let mut total = 1;
            if let Some(l) = self.left(node) {
                total += sizes[l as usize];
            }
            if let Some(r) = self.right(node) {
                total += sizes[r as usize];
            }
            sizes[node as usize] = total;
        }
        sizes
    }

    /// Maximum depth over all nodes.
    pub fn height(&self) -> u32 {
        (0..self.nodes.len() as u32).map(|n| self.depth(n)).max().unwrap_or(0)
    }
}

impl fmt::Display for BinaryTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn rec(t: &BinaryTree, n: NodeId, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", t.label(n))?;
            if t.left(n).is_some() || t.right(n).is_some() {
                write!(f, "(")?;
                match t.left(n) {
                    Some(l) => rec(t, l, f)?,
                    None => write!(f, "·")?,
                }
                write!(f, ",")?;
                match t.right(n) {
                    Some(r) => rec(t, r, f)?,
                    None => write!(f, "·")?,
                }
                write!(f, ")")?;
            }
            Ok(())
        }
        rec(self, self.root, f)
    }
}

/// A builder assembling a binary tree top-down.
#[derive(Debug, Default)]
pub struct TreeBuilder {
    nodes: Vec<Node>,
}

impl TreeBuilder {
    /// Starts an empty builder.
    pub fn new() -> Self {
        TreeBuilder::default()
    }

    /// Adds a root or detached node; attach it later via
    /// [`TreeBuilder::set_left`]/[`TreeBuilder::set_right`].
    pub fn add_node(&mut self, label: Symbol) -> NodeId {
        let id = self.nodes.len() as NodeId;
        self.nodes.push(Node { label, left: None, right: None, parent: None });
        id
    }

    /// Makes `child` the left child of `parent`.
    ///
    /// # Panics
    /// Panics if the slot is taken or the child already has a parent.
    pub fn set_left(&mut self, parent: NodeId, child: NodeId) {
        assert!(self.nodes[parent as usize].left.is_none(), "left slot taken");
        assert!(self.nodes[child as usize].parent.is_none(), "child reattached");
        self.nodes[parent as usize].left = Some(child);
        self.nodes[child as usize].parent = Some(parent);
    }

    /// Makes `child` the right child of `parent`.
    ///
    /// # Panics
    /// Panics if the slot is taken or the child already has a parent.
    pub fn set_right(&mut self, parent: NodeId, child: NodeId) {
        assert!(self.nodes[parent as usize].right.is_none(), "right slot taken");
        assert!(self.nodes[child as usize].parent.is_none(), "child reattached");
        self.nodes[parent as usize].right = Some(child);
        self.nodes[child as usize].parent = Some(parent);
    }

    /// Finalizes with `root` as the root.
    ///
    /// # Panics
    /// Panics if `root` has a parent or any node is unreachable.
    pub fn build(self, root: NodeId) -> BinaryTree {
        assert!(self.nodes[root as usize].parent.is_none(), "root has a parent");
        let tree = BinaryTree { nodes: self.nodes, root };
        assert_eq!(tree.postorder().len(), tree.len(), "unreachable nodes");
        tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small fixed tree:
    /// ```text
    ///        0
    ///       / \
    ///      1   2
    ///     / \    \
    ///    3   4    5
    /// ```
    fn sample() -> BinaryTree {
        BinaryTree::from_triples(
            &[
                (0, Some(1), Some(2)),
                (1, Some(3), Some(4)),
                (2, None, Some(5)),
                (3, None, None),
                (4, None, None),
                (5, None, None),
            ],
            0,
        )
    }

    #[test]
    fn alphabet_interning() {
        let mut a = Alphabet::new();
        let x = a.intern("school");
        let y = a.intern("student");
        assert_ne!(x, y);
        assert_eq!(a.intern("school"), x);
        assert_eq!(a.name(y), "student");
        assert_eq!(a.get("nope"), None);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn structure_accessors() {
        let t = sample();
        assert_eq!(t.len(), 6);
        assert_eq!(t.root(), 0);
        assert_eq!(t.left(0), Some(1));
        assert_eq!(t.right(2), Some(5));
        assert_eq!(t.parent(5), Some(2));
        assert!(t.is_leaf(3));
        assert!(!t.is_leaf(1));
    }

    #[test]
    fn postorder_children_first() {
        let t = sample();
        let order = t.postorder();
        assert_eq!(order, vec![3, 4, 1, 5, 2, 0]);
    }

    #[test]
    fn ancestor_and_depth() {
        let t = sample();
        assert!(t.is_ancestor(0, 5));
        assert!(t.is_ancestor(1, 4));
        assert!(!t.is_ancestor(1, 5));
        assert!(t.is_ancestor(3, 3));
        assert_eq!(t.depth(0), 0);
        assert_eq!(t.depth(5), 2);
        assert_eq!(t.height(), 2);
    }

    #[test]
    fn lca_pairs_and_sets() {
        let t = sample();
        assert_eq!(t.lca(&[3, 4]), 1);
        assert_eq!(t.lca(&[3, 5]), 0);
        assert_eq!(t.lca(&[4]), 4);
        assert_eq!(t.lca(&[3, 4, 5]), 0);
        assert_eq!(t.lca(&[1, 3]), 1);
    }

    #[test]
    fn subtree_and_sizes() {
        let t = sample();
        assert_eq!(t.subtree(1), vec![3, 4, 1]);
        let sizes = t.subtree_sizes();
        assert_eq!(sizes[0], 6);
        assert_eq!(sizes[1], 3);
        assert_eq!(sizes[2], 2);
        assert_eq!(sizes[3], 1);
    }

    #[test]
    fn builder_roundtrip() {
        let mut b = TreeBuilder::new();
        let root = b.add_node(7);
        let l = b.add_node(8);
        b.set_left(root, l);
        let t = b.build(root);
        assert_eq!(t.label(t.root()), 7);
        assert_eq!(t.left(t.root()), Some(l));
    }

    #[test]
    #[should_panic(expected = "two parents")]
    fn shared_child_rejected() {
        let _ = BinaryTree::from_triples(
            &[(0, Some(2), None), (1, Some(2), None), (2, None, None)],
            0,
        );
    }

    #[test]
    fn display_renders() {
        let t = sample();
        assert_eq!(t.to_string(), "0(1(3,4),2(·,5))");
    }
}
