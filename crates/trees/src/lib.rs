//! Trees, XML documents, and tree automata — the substrate of the paper's
//! Section 4 (MSO-query-preserving watermarking).
//!
//! Provides binary Σ-trees (`⟨T, S₁, S₂, ⪯, (P_c)⟩`), unranked labeled
//! trees with the first-child/next-sibling binary encoding used to model
//! XML, a minimal XML parser/serializer, deterministic and
//! nondeterministic bottom-up tree automata (with determinization, product
//! and minimization), pebbled alphabets `Σ_{k+s}` for parametric queries,
//! and a compiler from XPath-like pattern queries to automata.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod automaton;
pub mod nta;
pub mod pattern;
pub mod pebble;
pub mod tree;
pub mod unranked;
pub mod xml;

pub use automaton::TreeAutomaton;
pub use nta::Nta;
pub use pattern::{BoundPattern, PatternQuery};
pub use pebble::{BoundPebbled, PebbledQuery};
pub use tree::{Alphabet, BinaryTree, NodeId};
pub use unranked::UnrankedTree;
pub use xml::{parse_xml, XmlError};
