//! A minimal XML parser and serializer.
//!
//! Covers the fragment the paper's documents use: nested elements, text
//! content, attributes, comments and the XML declaration. Documents parse
//! into an [`UnrankedTree`] over an interned [`Alphabet`]:
//!
//! * an element `<tag>` gets the symbol for `tag`;
//! * an attribute `name="v"` becomes a child labeled `@name` with a text
//!   child;
//! * text content becomes a node labeled `#` + the trimmed text, so that
//!   a parametric query can compare text *values* through labels (this is
//!   exactly how Example 4's `firstname=a` test reaches an automaton over
//!   a finite alphabet).

use crate::tree::{Alphabet, NodeId, Symbol};
use crate::unranked::UnrankedTree;
use std::fmt;

/// Errors from [`parse_xml`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// Input ended inside a construct.
    UnexpectedEof,
    /// A close tag did not match the open tag.
    MismatchedTag {
        /// Tag that was open.
        expected: String,
        /// Tag that closed it.
        found: String,
    },
    /// Malformed syntax at a byte offset.
    Malformed {
        /// Byte offset of the problem.
        at: usize,
        /// What went wrong.
        what: &'static str,
    },
    /// No root element.
    Empty,
    /// Content after the root element closed.
    TrailingContent(usize),
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::UnexpectedEof => write!(f, "unexpected end of input"),
            XmlError::MismatchedTag { expected, found } => {
                write!(f, "mismatched tag: expected </{expected}>, found </{found}>")
            }
            XmlError::Malformed { at, what } => write!(f, "malformed XML at byte {at}: {what}"),
            XmlError::Empty => write!(f, "no root element"),
            XmlError::TrailingContent(at) => write!(f, "trailing content at byte {at}"),
        }
    }
}

impl std::error::Error for XmlError {}

/// A parsed XML document: an unranked tree plus its alphabet.
#[derive(Debug, Clone)]
pub struct XmlDocument {
    /// The document tree.
    pub tree: UnrankedTree,
    /// Interned labels (`tag`, `@attr`, `#text`).
    pub alphabet: Alphabet,
}

impl XmlDocument {
    /// Is `node` a text node?
    pub fn is_text(&self, node: NodeId) -> bool {
        self.alphabet.name(self.tree.label(node)).starts_with('#')
    }

    /// The text content of a text node (without the `#` marker).
    pub fn text(&self, node: NodeId) -> Option<&str> {
        let name = self.alphabet.name(self.tree.label(node));
        name.strip_prefix('#')
    }

    /// Symbol for an element tag, if it occurs in the document.
    pub fn tag_symbol(&self, tag: &str) -> Option<Symbol> {
        self.alphabet.get(tag)
    }

    /// Symbol for a text value, if it occurs.
    pub fn text_symbol(&self, text: &str) -> Option<Symbol> {
        self.alphabet.get(&format!("#{text}"))
    }

    /// All nodes whose element tag is `tag`.
    pub fn nodes_with_tag(&self, tag: &str) -> Vec<NodeId> {
        match self.tag_symbol(tag) {
            None => Vec::new(),
            Some(sym) => self
                .tree
                .preorder()
                .into_iter()
                .filter(|&n| self.tree.label(n) == sym)
                .collect(),
        }
    }

    /// Serializes back to XML (attributes re-emerge from `@` children).
    pub fn to_xml(&self) -> String {
        self.to_xml_with(&std::collections::HashMap::new())
    }

    /// Serializes with some text nodes' content replaced — how a marked
    /// document (weights = numeric text values) is written back out.
    pub fn to_xml_with(&self, text_overrides: &std::collections::HashMap<NodeId, String>) -> String {
        let mut out = String::new();
        self.write_node(self.tree.root(), &mut out, 0, text_overrides);
        out
    }

    fn write_node(
        &self,
        node: NodeId,
        out: &mut String,
        indent: usize,
        text_overrides: &std::collections::HashMap<NodeId, String>,
    ) {
        let pad = "  ".repeat(indent);
        let name = self.alphabet.name(self.tree.label(node));
        if let Some(text) = name.strip_prefix('#') {
            let text = text_overrides.get(&node).map_or(text, String::as_str);
            out.push_str(&pad);
            out.push_str(&escape(text));
            out.push('\n');
            return;
        }
        let (attrs, children): (Vec<NodeId>, Vec<NodeId>) = self
            .tree
            .children(node)
            .iter()
            .partition(|&&c| self.alphabet.name(self.tree.label(c)).starts_with('@'));
        out.push_str(&pad);
        out.push('<');
        out.push_str(name);
        for a in attrs {
            let aname = self.alphabet.name(self.tree.label(a));
            let value = self
                .tree
                .children(a)
                .first()
                .and_then(|&v| self.text(v))
                .unwrap_or("");
            out.push(' ');
            out.push_str(aname.strip_prefix('@').unwrap_or(aname));
            out.push_str("=\"");
            out.push_str(&escape(value));
            out.push('"');
        }
        if children.is_empty() {
            out.push_str("/>\n");
            return;
        }
        out.push_str(">\n");
        for c in children {
            self.write_node(c, out, indent + 1, text_overrides);
        }
        out.push_str(&pad);
        out.push_str("</");
        out.push_str(name);
        out.push_str(">\n");
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

fn unescape(s: &str) -> String {
    s.replace("&lt;", "<").replace("&gt;", ">").replace("&amp;", "&")
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.input[self.pos..].starts_with(b"<?") {
                match find(self.input, self.pos, b"?>") {
                    Some(end) => self.pos = end + 2,
                    None => return Err(XmlError::UnexpectedEof),
                }
            } else if self.input[self.pos..].starts_with(b"<!--") {
                match find(self.input, self.pos, b"-->") {
                    Some(end) => self.pos = end + 3,
                    None => return Err(XmlError::UnexpectedEof),
                }
            } else {
                return Ok(());
            }
        }
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b':' | b'.') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(XmlError::Malformed { at: start, what: "expected a name" });
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    /// Parses one element; cursor must be at `<`.
    fn element(&mut self, alphabet: &mut Alphabet, tree: &mut Option<UnrankedTree>, parent: Option<NodeId>) -> Result<NodeId, XmlError> {
        debug_assert_eq!(self.peek(), Some(b'<'));
        self.pos += 1;
        let tag = self.name()?;
        let sym = alphabet.intern(&tag);
        let node = match (tree.as_mut(), parent) {
            (Some(t), Some(p)) => t.add_child(p, sym),
            _ => {
                *tree = Some(UnrankedTree::new(sym));
                tree.as_ref().expect("just set").root()
            }
        };
        // attributes
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(XmlError::Malformed { at: self.pos, what: "expected > after /" });
                    }
                    self.pos += 1;
                    return Ok(node);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let aname = self.name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(XmlError::Malformed { at: self.pos, what: "expected = in attribute" });
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = self.peek();
                    if !matches!(quote, Some(b'"' | b'\'')) {
                        return Err(XmlError::Malformed { at: self.pos, what: "expected quoted attribute value" });
                    }
                    let quote = quote.expect("matched above");
                    self.pos += 1;
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c != quote) {
                        self.pos += 1;
                    }
                    if self.peek().is_none() {
                        return Err(XmlError::UnexpectedEof);
                    }
                    let value =
                        unescape(&String::from_utf8_lossy(&self.input[start..self.pos]));
                    self.pos += 1;
                    let asym = alphabet.intern(&format!("@{aname}"));
                    let vsym = alphabet.intern(&format!("#{value}"));
                    let t = tree.as_mut().expect("created above");
                    let attr_node = t.add_child(node, asym);
                    t.add_child(attr_node, vsym);
                }
                None => return Err(XmlError::UnexpectedEof),
            }
        }
        // children / text until matching close tag
        loop {
            let text_start = self.pos;
            while self.peek().is_some_and(|c| c != b'<') {
                self.pos += 1;
            }
            if self.pos > text_start {
                let raw = String::from_utf8_lossy(&self.input[text_start..self.pos]);
                let trimmed = raw.trim();
                if !trimmed.is_empty() {
                    let tsym = alphabet.intern(&format!("#{}", unescape(trimmed)));
                    tree.as_mut().expect("created above").add_child(node, tsym);
                }
            }
            match self.peek() {
                None => return Err(XmlError::UnexpectedEof),
                Some(b'<') => {
                    if self.input[self.pos..].starts_with(b"<!--") {
                        match find(self.input, self.pos, b"-->") {
                            Some(end) => {
                                self.pos = end + 3;
                                continue;
                            }
                            None => return Err(XmlError::UnexpectedEof),
                        }
                    }
                    if self.input[self.pos..].starts_with(b"</") {
                        self.pos += 2;
                        let close = self.name()?;
                        if close != tag {
                            return Err(XmlError::MismatchedTag { expected: tag, found: close });
                        }
                        self.skip_ws();
                        if self.peek() != Some(b'>') {
                            return Err(XmlError::Malformed { at: self.pos, what: "expected > in close tag" });
                        }
                        self.pos += 1;
                        return Ok(node);
                    }
                    self.element(alphabet, tree, Some(node))?;
                }
                Some(_) => unreachable!("loop consumed non-< bytes"),
            }
        }
    }
}

fn find(haystack: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    haystack[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| p + from)
}

/// Parses an XML document.
pub fn parse_xml(input: &str) -> Result<XmlDocument, XmlError> {
    let mut parser = Parser { input: input.as_bytes(), pos: 0 };
    parser.skip_misc()?;
    if parser.peek() != Some(b'<') {
        return Err(XmlError::Empty);
    }
    let mut alphabet = Alphabet::new();
    let mut tree: Option<UnrankedTree> = None;
    parser.element(&mut alphabet, &mut tree, None)?;
    parser.skip_misc()?;
    parser.skip_ws();
    if parser.pos != parser.input.len() {
        return Err(XmlError::TrailingContent(parser.pos));
    }
    Ok(XmlDocument { tree: tree.ok_or(XmlError::Empty)?, alphabet })
}

/// The school document of the paper's Example 4.
pub fn example4_school() -> XmlDocument {
    parse_xml(
        r#"<school>
  <student>
    <firstname>John</firstname>
    <lastname>Doe</lastname>
    <exam>11</exam>
  </student>
  <student>
    <firstname>Robert</firstname>
    <lastname>Durant</lastname>
    <exam>16</exam>
  </student>
  <student>
    <firstname>Robert</firstname>
    <lastname>Smith</lastname>
    <exam>12</exam>
  </student>
</school>"#,
    )
    .expect("example 4 document is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_example4() {
        let doc = example4_school();
        assert_eq!(doc.nodes_with_tag("student").len(), 3);
        assert_eq!(doc.nodes_with_tag("exam").len(), 3);
        // exam values are text children
        let exams = doc.nodes_with_tag("exam");
        let values: Vec<&str> = exams
            .iter()
            .map(|&e| doc.text(doc.tree.children(e)[0]).expect("text child"))
            .collect();
        assert_eq!(values, vec!["11", "16", "12"]);
    }

    #[test]
    fn text_symbols_are_shared() {
        let doc = example4_school();
        // "Robert" occurs twice but is a single symbol.
        let robert = doc.text_symbol("Robert").expect("present");
        let count = doc
            .tree
            .preorder()
            .into_iter()
            .filter(|&n| doc.tree.label(n) == robert)
            .count();
        assert_eq!(count, 2);
    }

    #[test]
    fn attributes_become_children() {
        let doc = parse_xml(r#"<a href="x">hi</a>"#).expect("parses");
        let root = doc.tree.root();
        let kids = doc.tree.children(root);
        assert_eq!(kids.len(), 2);
        let names: Vec<&str> = kids
            .iter()
            .map(|&k| doc.alphabet.name(doc.tree.label(k)))
            .collect();
        assert!(names.contains(&"@href"));
        assert!(names.contains(&"#hi"));
    }

    #[test]
    fn self_closing_and_comments() {
        let doc = parse_xml("<?xml version=\"1.0\"?><!-- hi --><r><x/><!-- mid --><y/></r>")
            .expect("parses");
        assert_eq!(doc.tree.children(doc.tree.root()).len(), 2);
    }

    #[test]
    fn entity_escapes_roundtrip() {
        let doc = parse_xml("<r>a &lt; b &amp; c</r>").expect("parses");
        let t = doc.tree.children(doc.tree.root())[0];
        assert_eq!(doc.text(t), Some("a < b & c"));
        let rendered = doc.to_xml();
        assert!(rendered.contains("a &lt; b &amp; c"));
    }

    #[test]
    fn mismatched_tags_rejected() {
        assert!(matches!(
            parse_xml("<a><b></a></b>"),
            Err(XmlError::MismatchedTag { .. })
        ));
    }

    #[test]
    fn trailing_content_rejected() {
        assert!(matches!(parse_xml("<a/><b/>"), Err(XmlError::TrailingContent(_))));
    }

    #[test]
    fn truncated_input_rejected() {
        assert!(matches!(parse_xml("<a><b>"), Err(XmlError::UnexpectedEof)));
        assert!(parse_xml("").is_err());
    }

    #[test]
    fn serializer_reparses_equivalently() {
        let doc = example4_school();
        let doc2 = parse_xml(&doc.to_xml()).expect("roundtrip parses");
        assert_eq!(doc.tree.len(), doc2.tree.len());
        assert_eq!(doc2.nodes_with_tag("student").len(), 3);
    }
}
