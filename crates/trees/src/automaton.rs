//! Deterministic bottom-up Σ-tree automata.
//!
//! `B = (Q, δ, F)` with `δ : (Q ∪ {*})² × Σ → Q` exactly as in the paper:
//! `*` stands for an absent child. Transitions are stored sparsely with a
//! designated *sink* state absorbing unspecified combinations, which makes
//! every automaton total (and hence complementable) without materializing
//! the full table.

use crate::tree::{BinaryTree, NodeId, Symbol};
use std::collections::HashMap;

/// State identifier.
pub type State = u32;

/// The `*` marker for an absent child in a transition.
pub const STAR: State = State::MAX;

/// A deterministic bottom-up tree automaton, abstractly: anything with a
/// total transition function over `(Q ∪ {*})² × Σ`.
///
/// [`TreeAutomaton`] is the table-backed implementation; the pattern
/// compiler ([`crate::pattern`]) provides a *semantic* implementation
/// whose transition function is computed on the fly, avoiding the table
/// blow-up of large (text-valued) alphabets.
pub trait BottomUpAutomaton {
    /// Number of states `m`.
    fn num_states(&self) -> u32;

    /// The transition function; children use [`STAR`] when absent.
    fn step(&self, ql: State, qr: State, sym: Symbol) -> State;

    /// Is `q` accepting?
    fn is_accepting(&self, q: State) -> bool;

    /// Runs on `tree` with node labels given by `label`; returns the state
    /// of every node.
    fn run_with_labels(&self, tree: &BinaryTree, label: &mut dyn FnMut(NodeId) -> Symbol) -> Vec<State> {
        let mut states = vec![0; tree.len()];
        for node in tree.postorder() {
            let ql = tree.left(node).map_or(STAR, |l| states[l as usize]);
            let qr = tree.right(node).map_or(STAR, |r| states[r as usize]);
            states[node as usize] = self.step(ql, qr, label(node));
        }
        states
    }

    /// Does the automaton accept `tree` under `label`?
    fn accepts_with_labels(&self, tree: &BinaryTree, label: &mut dyn FnMut(NodeId) -> Symbol) -> bool {
        let states = self.run_with_labels(tree, label);
        self.is_accepting(states[tree.root() as usize])
    }
}

/// A deterministic bottom-up tree automaton.
#[derive(Debug, Clone)]
pub struct TreeAutomaton {
    num_states: u32,
    delta: HashMap<(State, State, Symbol), State>,
    accepting: Vec<bool>,
    sink: State,
}

impl TreeAutomaton {
    /// Creates an automaton with `num_states` states; state `sink` absorbs
    /// all unspecified transitions (specify `sink`'s own transitions or
    /// leave them to default back to `sink`).
    ///
    /// # Panics
    /// Panics if `sink >= num_states` or `num_states == 0`.
    pub fn new(num_states: u32, sink: State) -> Self {
        assert!(num_states > 0, "automaton needs at least one state");
        assert!(sink < num_states, "sink out of range");
        TreeAutomaton {
            num_states,
            delta: HashMap::new(),
            accepting: vec![false; num_states as usize],
            sink,
        }
    }

    /// Number of states `m` (the paper's capacity parameter).
    pub fn num_states(&self) -> u32 {
        self.num_states
    }

    /// The sink state.
    pub fn sink(&self) -> State {
        self.sink
    }

    /// Marks `q` accepting.
    pub fn set_accepting(&mut self, q: State, accepting: bool) {
        self.accepting[q as usize] = accepting;
    }

    /// Is `q` accepting?
    pub fn is_accepting(&self, q: State) -> bool {
        self.accepting[q as usize]
    }

    /// Adds `δ(ql, qr, sym) = target`; use [`STAR`] for an absent child.
    ///
    /// # Panics
    /// Panics if any non-`STAR` state is out of range.
    pub fn add_transition(&mut self, ql: State, qr: State, sym: Symbol, target: State) {
        for q in [ql, qr] {
            assert!(q == STAR || q < self.num_states, "state out of range");
        }
        assert!(target < self.num_states, "target out of range");
        self.delta.insert((ql, qr, sym), target);
    }

    /// The transition function (total via the sink).
    pub fn step(&self, ql: State, qr: State, sym: Symbol) -> State {
        self.delta.get(&(ql, qr, sym)).copied().unwrap_or(self.sink)
    }

    /// Runs on `tree` where node `n` carries symbol `label(n)`. Returns the
    /// state of every node (indexed by `NodeId`).
    pub fn run_with<F: FnMut(NodeId) -> Symbol>(
        &self,
        tree: &BinaryTree,
        mut label: F,
    ) -> Vec<State> {
        let mut states = vec![self.sink; tree.len()];
        for node in tree.postorder() {
            let ql = tree.left(node).map_or(STAR, |l| states[l as usize]);
            let qr = tree.right(node).map_or(STAR, |r| states[r as usize]);
            states[node as usize] = self.step(ql, qr, label(node));
        }
        states
    }

    /// Runs using the tree's own labels.
    pub fn run(&self, tree: &BinaryTree) -> Vec<State> {
        self.run_with(tree, |n| tree.label(n))
    }

    /// Does the automaton accept `tree` (with its own labels)?
    pub fn accepts(&self, tree: &BinaryTree) -> bool {
        let states = self.run(tree);
        self.is_accepting(states[tree.root() as usize])
    }

    /// Does it accept under a custom labeling?
    pub fn accepts_with<F: FnMut(NodeId) -> Symbol>(&self, tree: &BinaryTree, label: F) -> bool {
        let states = self.run_with(tree, label);
        self.is_accepting(states[tree.root() as usize])
    }

    /// Complement: accepts exactly the trees this automaton rejects
    /// (sound because the automaton is deterministic and total).
    pub fn complement(&self) -> TreeAutomaton {
        let mut out = self.clone();
        for q in 0..out.num_states {
            out.accepting[q as usize] = !out.accepting[q as usize];
        }
        out
    }

    /// Product automaton; acceptance combined by `combine(a_accepts,
    /// b_accepts)`. States are pairs encoded as `qa * b.num_states + qb`.
    /// Builds only transitions both factors specify on the union of their
    /// specified symbols, plus sink absorption — reachable behaviour is
    /// preserved because unspecified transitions go to the product sink.
    pub fn product<F: Fn(bool, bool) -> bool>(
        &self,
        other: &TreeAutomaton,
        combine: F,
    ) -> TreeAutomaton {
        let nb = other.num_states;
        let encode = |qa: State, qb: State| -> State {
            if qa == STAR && qb == STAR {
                STAR
            } else {
                debug_assert!(qa != STAR && qb != STAR);
                qa * nb + qb
            }
        };
        let mut out = TreeAutomaton::new(self.num_states * nb, encode(self.sink, other.sink));
        for qa in 0..self.num_states {
            for qb in 0..nb {
                let q = encode(qa, qb);
                out.accepting[q as usize] =
                    combine(self.accepting[qa as usize], other.accepting[qb as usize]);
            }
        }
        // Symbols either factor mentions.
        let mut symbols: Vec<Symbol> =
            self.delta.keys().chain(other.delta.keys()).map(|k| k.2).collect();
        symbols.sort_unstable();
        symbols.dedup();
        // Child-state combinations: (STAR, STAR) plus all pairs.
        for &sym in &symbols {
            for la in child_states(self.num_states) {
                for lb in child_states(nb) {
                    if (la == STAR) != (lb == STAR) {
                        continue;
                    }
                    for ra in child_states(self.num_states) {
                        for rb in child_states(nb) {
                            if (ra == STAR) != (rb == STAR) {
                                continue;
                            }
                            let ta = self.step(la, ra, sym);
                            let tb = other.step(lb, rb, sym);
                            out.add_transition(encode(la, lb), encode(ra, rb), sym, encode(ta, tb));
                        }
                    }
                }
            }
        }
        out
    }

    /// Minimizes by partition refinement (Myhill–Nerode for deterministic
    /// bottom-up tree automata) over the symbols that appear in `delta`.
    /// Returns an equivalent automaton with the minimal number of states
    /// distinguishable on those symbols.
    pub fn minimize(&self) -> TreeAutomaton {
        let n = self.num_states as usize;
        let mut symbols: Vec<Symbol> = self.delta.keys().map(|k| k.2).collect();
        symbols.sort_unstable();
        symbols.dedup();
        // block id per state; start with accepting / rejecting.
        let mut block: Vec<u32> = (0..n)
            .map(|q| u32::from(self.accepting[q]))
            .collect();
        let mut num_blocks = 2;
        loop {
            // signature of each state: for every (context-state, side,
            // symbol) where does it go, expressed in blocks.
            let mut sig: Vec<Vec<u32>> = vec![Vec::new(); n];
            for (q, s) in sig.iter_mut().enumerate() {
                let q = q as State;
                s.push(block[q as usize]);
                for &sym in &symbols {
                    // as a left child with every possible right sibling
                    for other in child_states(self.num_states) {
                        s.push(block[self.step(q, other, sym) as usize]);
                        s.push(block[self.step(other, q, sym) as usize]);
                    }
                }
            }
            let mut remap: HashMap<&[u32], u32> = HashMap::new();
            let mut next_block = vec![0u32; n];
            for q in 0..n {
                let id = remap.len() as u32;
                let entry = remap.entry(&sig[q]).or_insert(id);
                next_block[q] = *entry;
            }
            let new_count = remap.len();
            if new_count == num_blocks {
                break;
            }
            num_blocks = new_count;
            block = next_block;
        }
        let mut out = TreeAutomaton::new(num_blocks as u32, block[self.sink as usize]);
        for (q, &blk) in block.iter().enumerate() {
            if self.accepting[q] {
                out.accepting[blk as usize] = true;
            }
        }
        for (&(ql, qr, sym), &t) in &self.delta {
            let ml = if ql == STAR { STAR } else { block[ql as usize] };
            let mr = if qr == STAR { STAR } else { block[qr as usize] };
            out.delta.insert((ml, mr, sym), block[t as usize]);
        }
        out
    }

    /// The set of states reachable by *some* tree over `alphabet`
    /// (fixpoint from leaf transitions upward).
    pub fn reachable_states(&self, alphabet: &[Symbol]) -> Vec<State> {
        let mut reachable = vec![false; self.num_states as usize];
        loop {
            let mut grew = false;
            let current: Vec<State> = (0..self.num_states)
                .filter(|&q| reachable[q as usize])
                .collect();
            for &sym in alphabet {
                let mut mark = |q: State, grew: &mut bool| {
                    if !reachable[q as usize] {
                        reachable[q as usize] = true;
                        *grew = true;
                    }
                };
                mark(self.step(STAR, STAR, sym), &mut grew);
                for &l in &current {
                    mark(self.step(l, STAR, sym), &mut grew);
                    mark(self.step(STAR, l, sym), &mut grew);
                    for &r in &current {
                        mark(self.step(l, r, sym), &mut grew);
                    }
                }
            }
            if !grew {
                break;
            }
        }
        (0..self.num_states).filter(|&q| reachable[q as usize]).collect()
    }

    /// Does the automaton accept at least one tree over `alphabet`?
    pub fn is_empty(&self, alphabet: &[Symbol]) -> bool {
        !self
            .reachable_states(alphabet)
            .iter()
            .any(|&q| self.is_accepting(q))
    }

    /// Does it accept *every* tree over `alphabet`? (Emptiness of the
    /// complement — sound because the automaton is deterministic/total.)
    pub fn is_universal(&self, alphabet: &[Symbol]) -> bool {
        self.complement().is_empty(alphabet)
    }
}

fn child_states(num_states: u32) -> impl Iterator<Item = State> {
    (0..num_states).chain(std::iter::once(STAR))
}

impl BottomUpAutomaton for TreeAutomaton {
    fn num_states(&self) -> u32 {
        self.num_states
    }

    fn step(&self, ql: State, qr: State, sym: Symbol) -> State {
        TreeAutomaton::step(self, ql, qr, sym)
    }

    fn is_accepting(&self, q: State) -> bool {
        TreeAutomaton::is_accepting(self, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::BinaryTree;

    /// Automaton over Σ = {0: "zero", 1: "one"} accepting trees whose
    /// number of 1-labeled nodes is odd. States: 0 = even, 1 = odd.
    fn parity() -> TreeAutomaton {
        let mut a = TreeAutomaton::new(2, 0);
        for ql in [STAR, 0, 1] {
            for qr in [STAR, 0, 1] {
                let below = (if ql == 1 { 1 } else { 0 }) + (if qr == 1 { 1 } else { 0 });
                for sym in [0u32, 1] {
                    let total = (below + sym) % 2;
                    a.add_transition(ql, qr, sym, total);
                }
            }
        }
        a.set_accepting(1, true);
        a
    }

    fn chain(labels: &[Symbol]) -> BinaryTree {
        // left-spine chain, labels[0] at root
        let triples: Vec<(Symbol, Option<u32>, Option<u32>)> = labels
            .iter()
            .enumerate()
            .map(|(i, &l)| {
                let child = if i + 1 < labels.len() { Some(i as u32 + 1) } else { None };
                (l, child, None)
            })
            .collect();
        BinaryTree::from_triples(&triples, 0)
    }

    #[test]
    fn parity_counts_ones() {
        let a = parity();
        assert!(a.accepts(&chain(&[1])));
        assert!(!a.accepts(&chain(&[0])));
        assert!(!a.accepts(&chain(&[1, 1])));
        assert!(a.accepts(&chain(&[1, 0, 1, 1])));
    }

    #[test]
    fn run_reports_per_node_states() {
        let a = parity();
        let t = chain(&[1, 1, 0]);
        let states = a.run(&t);
        // postorder: node2 (0 ones) -> 0, node1 (1 one) -> 1, node0 (2) -> 0
        assert_eq!(states[2], 0);
        assert_eq!(states[1], 1);
        assert_eq!(states[0], 0);
    }

    #[test]
    fn unspecified_transitions_sink() {
        let mut a = TreeAutomaton::new(2, 0);
        a.add_transition(STAR, STAR, 5, 1);
        a.set_accepting(1, true);
        assert!(a.accepts(&chain(&[5])));
        // symbol 9 has no transition: sinks to state 0, rejecting.
        assert!(!a.accepts(&chain(&[9])));
    }

    #[test]
    fn complement_flips_acceptance() {
        let a = parity();
        let c = a.complement();
        let t = chain(&[1, 0]);
        assert!(a.accepts(&t));
        assert!(!c.accepts(&t));
        let t2 = chain(&[0, 0]);
        assert!(!a.accepts(&t2));
        assert!(c.accepts(&t2));
    }

    #[test]
    fn product_intersection() {
        // parity-of-1s AND root-labeled-1 (a 2-state automaton tracking the
        // last symbol... simpler: automaton accepting iff root label is 1).
        let mut root1 = TreeAutomaton::new(2, 0);
        for ql in [STAR, 0, 1] {
            for qr in [STAR, 0, 1] {
                root1.add_transition(ql, qr, 1, 1);
                root1.add_transition(ql, qr, 0, 0);
            }
        }
        root1.set_accepting(1, true);
        let both = parity().product(&root1, |a, b| a && b);
        assert!(both.accepts(&chain(&[1, 0, 0])));
        assert!(!both.accepts(&chain(&[0, 1, 0]))); // even... wait: two labels {0,1,0}
        assert!(!both.accepts(&chain(&[1, 1, 0]))); // root 1 but even ones
        assert!(!both.accepts(&chain(&[0, 1])));
    }

    #[test]
    fn accepts_with_overrides_labels() {
        let a = parity();
        let t = chain(&[0, 0]);
        assert!(!a.accepts(&t));
        assert!(a.accepts_with(&t, |n| if n == 0 { 1 } else { 0 }));
    }

    #[test]
    fn minimize_collapses_redundant_states() {
        // Build parity with 4 states where 2|3 duplicate 0|1: the target
        // lands in the copy selected by the symbol, so both copies are
        // reachable and minimization must merge {0,2} and {1,3}.
        let mut a = TreeAutomaton::new(4, 0);
        for ql in [STAR, 0, 1, 2, 3] {
            for qr in [STAR, 0, 1, 2, 3] {
                let ones = |q: State| -> u32 {
                    if q == STAR {
                        0
                    } else {
                        q % 2
                    }
                };
                let below = ones(ql) + ones(qr);
                for sym in [0u32, 1] {
                    let parity = (below + sym) % 2;
                    a.add_transition(ql, qr, sym, parity + 2 * sym);
                }
            }
        }
        a.set_accepting(1, true);
        a.set_accepting(3, true);
        let m = a.minimize();
        assert!(m.num_states() <= 2);
        for labels in [[1u32, 0, 1].as_slice(), &[0, 0], &[1], &[1, 1, 1]] {
            assert_eq!(a.accepts(&chain(labels)), m.accepts(&chain(labels)), "{labels:?}");
        }
    }

    #[test]
    fn emptiness_and_universality() {
        let p = parity();
        // parity accepts some trees and rejects others
        assert!(!p.is_empty(&[0, 1]));
        assert!(!p.is_universal(&[0, 1]));
        // restricted to only even symbols, the odd-count language is empty
        assert!(p.is_empty(&[0]));
        // ... and its complement is universal over that alphabet
        assert!(p.complement().is_universal(&[0]));
        // an automaton accepting everything
        let mut all = TreeAutomaton::new(1, 0);
        for ql in [STAR, 0] {
            for qr in [STAR, 0] {
                all.add_transition(ql, qr, 0, 0);
            }
        }
        all.set_accepting(0, true);
        assert!(all.is_universal(&[0]));
        assert!(!all.is_empty(&[0]));
    }

    #[test]
    fn reachable_states_grow_with_alphabet() {
        let p = parity();
        // with only symbol 0 no odd count is reachable... both parities
        // ARE reachable via node counts? symbol 0 contributes 0, so only
        // even (state 0) is reachable.
        assert_eq!(p.reachable_states(&[0]), vec![0]);
        assert_eq!(p.reachable_states(&[0, 1]), vec![0, 1]);
    }

    #[test]
    fn minimized_product_shrinks() {
        let p = parity();
        let doubled = p.product(&p, |a, _| a);
        assert_eq!(doubled.num_states(), 4);
        let m = doubled.minimize();
        assert!(m.num_states() <= 2);
        let t = chain(&[1, 0, 1, 1]);
        assert_eq!(doubled.accepts(&t), m.accepts(&t));
    }
}
