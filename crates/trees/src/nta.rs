//! Nondeterministic bottom-up tree automata and determinization.
//!
//! The pattern compiler ([`crate::pattern`]) emits nondeterministic
//! automata (guessing which branch contains the match); the watermarking
//! scheme needs deterministic ones. Determinization is the classical
//! bottom-up subset construction; only reachable subsets are materialized.

use crate::automaton::{State, TreeAutomaton, STAR};
use crate::tree::{BinaryTree, Symbol};
use std::collections::{BTreeSet, HashMap};

/// A nondeterministic bottom-up tree automaton.
///
/// `δ ⊆ (Q ∪ {*})² × Σ × Q`; a run may choose any listed target. Symbols
/// not mentioned in any rule for a given child pair yield no run (implicit
/// empty target set), unless a wildcard rule was registered via
/// [`Nta::add_wildcard_rule`].
#[derive(Debug, Clone, Default)]
pub struct Nta {
    num_states: u32,
    rules: HashMap<(State, State, Symbol), Vec<State>>,
    /// Rules applying to *every* symbol (used for "any label" steps).
    wildcard: HashMap<(State, State), Vec<State>>,
    accepting: BTreeSet<State>,
}

impl Nta {
    /// Creates an NTA with `num_states` states.
    pub fn new(num_states: u32) -> Self {
        Nta { num_states, ..Default::default() }
    }

    /// Number of states.
    pub fn num_states(&self) -> u32 {
        self.num_states
    }

    /// Adds a rule `(ql, qr, sym) → target` (use [`STAR`] for absent
    /// children).
    pub fn add_rule(&mut self, ql: State, qr: State, sym: Symbol, target: State) {
        assert!(target < self.num_states);
        self.rules.entry((ql, qr, sym)).or_default().push(target);
    }

    /// Adds a rule matching every symbol.
    pub fn add_wildcard_rule(&mut self, ql: State, qr: State, target: State) {
        assert!(target < self.num_states);
        self.wildcard.entry((ql, qr)).or_default().push(target);
    }

    /// Marks `q` accepting.
    pub fn set_accepting(&mut self, q: State) {
        assert!(q < self.num_states);
        self.accepting.insert(q);
    }

    fn targets(&self, ql: State, qr: State, sym: Symbol, out: &mut BTreeSet<State>) {
        if let Some(ts) = self.rules.get(&(ql, qr, sym)) {
            out.extend(ts.iter().copied());
        }
        if let Some(ts) = self.wildcard.get(&(ql, qr)) {
            out.extend(ts.iter().copied());
        }
    }

    /// The set of reachable states at each node (subset semantics).
    pub fn run(&self, tree: &BinaryTree) -> Vec<BTreeSet<State>> {
        let mut sets: Vec<BTreeSet<State>> = vec![BTreeSet::new(); tree.len()];
        for node in tree.postorder() {
            let mut here = BTreeSet::new();
            match (tree.left(node), tree.right(node)) {
                (None, None) => self.targets(STAR, STAR, tree.label(node), &mut here),
                (Some(l), None) => {
                    let ls = sets[l as usize].clone();
                    for &ql in &ls {
                        self.targets(ql, STAR, tree.label(node), &mut here);
                    }
                }
                (None, Some(r)) => {
                    let rs = sets[r as usize].clone();
                    for &qr in &rs {
                        self.targets(STAR, qr, tree.label(node), &mut here);
                    }
                }
                (Some(l), Some(r)) => {
                    let ls = sets[l as usize].clone();
                    let rs = sets[r as usize].clone();
                    for &ql in &ls {
                        for &qr in &rs {
                            self.targets(ql, qr, tree.label(node), &mut here);
                        }
                    }
                }
            }
            sets[node as usize] = here;
        }
        sets
    }

    /// Does some run accept `tree`?
    pub fn accepts(&self, tree: &BinaryTree) -> bool {
        let sets = self.run(tree);
        sets[tree.root() as usize]
            .iter()
            .any(|q| self.accepting.contains(q))
    }

    /// Determinizes over the given alphabet by the bottom-up subset
    /// construction (only reachable subsets become states). The resulting
    /// deterministic automaton is equivalent on all trees labeled within
    /// `alphabet`.
    pub fn determinize(&self, alphabet: &[Symbol]) -> TreeAutomaton {
        // Subset states, interned; the empty subset (id 0) is the sink.
        // Round-based fixpoint: each round pairs every known subset with
        // every known subset (and with STAR) under every symbol; rounds
        // repeat until no new subset appears. Transition recomputation is
        // idempotent, so the map just overwrites identical entries.
        let mut subsets: Vec<BTreeSet<State>> = vec![BTreeSet::new()];
        let mut ids: HashMap<BTreeSet<State>, State> = HashMap::new();
        ids.insert(BTreeSet::new(), 0);
        let mut transitions: HashMap<(State, State, Symbol), State> = HashMap::new();

        fn intern(
            set: BTreeSet<State>,
            subsets: &mut Vec<BTreeSet<State>>,
            ids: &mut HashMap<BTreeSet<State>, State>,
        ) -> State {
            if let Some(&id) = ids.get(&set) {
                return id;
            }
            let id = subsets.len() as State;
            ids.insert(set.clone(), id);
            subsets.push(set);
            id
        }

        // Leaf transitions seed the reachable subsets.
        for &sym in alphabet {
            let mut set = BTreeSet::new();
            self.targets(STAR, STAR, sym, &mut set);
            let id = intern(set, &mut subsets, &mut ids);
            transitions.insert((STAR, STAR, sym), id);
        }

        loop {
            let count_before = subsets.len();
            for l in 0..subsets.len() as State {
                for &sym in alphabet {
                    // l with an absent sibling, both sides
                    let mut set_l = BTreeSet::new();
                    let mut set_r = BTreeSet::new();
                    for &q in &subsets[l as usize].clone() {
                        self.targets(q, STAR, sym, &mut set_l);
                        self.targets(STAR, q, sym, &mut set_r);
                    }
                    let tl = intern(set_l, &mut subsets, &mut ids);
                    let tr = intern(set_r, &mut subsets, &mut ids);
                    transitions.insert((l, STAR, sym), tl);
                    transitions.insert((STAR, l, sym), tr);
                    // l paired with every known subset
                    for r in 0..subsets.len() as State {
                        let mut set = BTreeSet::new();
                        let ls = subsets[l as usize].clone();
                        let rs = subsets[r as usize].clone();
                        for &ql in &ls {
                            for &qr in &rs {
                                self.targets(ql, qr, sym, &mut set);
                            }
                        }
                        let t = intern(set, &mut subsets, &mut ids);
                        transitions.insert((l, r, sym), t);
                    }
                }
            }
            if subsets.len() == count_before {
                break;
            }
        }

        let mut dta = TreeAutomaton::new(subsets.len() as u32, 0);
        for ((l, r, sym), t) in transitions {
            dta.add_transition(l, r, sym, t);
        }
        for (i, set) in subsets.iter().enumerate() {
            if set.iter().any(|q| self.accepting.contains(q)) {
                dta.set_accepting(i as State, true);
            }
        }
        dta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::BinaryTree;

    fn chain(labels: &[Symbol]) -> BinaryTree {
        let triples: Vec<(Symbol, Option<u32>, Option<u32>)> = labels
            .iter()
            .enumerate()
            .map(|(i, &l)| {
                let child = if i + 1 < labels.len() { Some(i as u32 + 1) } else { None };
                (l, child, None)
            })
            .collect();
        BinaryTree::from_triples(&triples, 0)
    }

    /// NTA accepting trees containing at least one node labeled 1:
    /// state 0 = "not seen yet", state 1 = "seen". Nondeterministic
    /// because a parent of two "seen" children has two derivations.
    fn contains_one() -> Nta {
        let mut a = Nta::new(2);
        // leaves
        a.add_rule(STAR, STAR, 0, 0);
        a.add_rule(STAR, STAR, 1, 1);
        for ql in [STAR, 0, 1] {
            for qr in [STAR, 0, 1] {
                if ql == STAR && qr == STAR {
                    continue;
                }
                let seen = ql == 1 || qr == 1;
                a.add_rule(ql, qr, 0, u32::from(seen));
                a.add_rule(ql, qr, 1, 1);
            }
        }
        a.set_accepting(1);
        a
    }

    #[test]
    fn nta_accepts_containment() {
        let a = contains_one();
        assert!(a.accepts(&chain(&[0, 0, 1])));
        assert!(a.accepts(&chain(&[1])));
        assert!(!a.accepts(&chain(&[0, 0])));
    }

    #[test]
    fn truly_nondeterministic_guess() {
        // Automaton that guesses at a leaf whether it will be "the" marked
        // leaf: both states reachable from a 0-leaf.
        let mut a = Nta::new(2);
        a.add_rule(STAR, STAR, 0, 0);
        a.add_rule(STAR, STAR, 0, 1);
        a.set_accepting(1);
        let sets = a.run(&chain(&[0]));
        assert_eq!(sets[0].len(), 2);
        assert!(a.accepts(&chain(&[0])));
    }

    #[test]
    fn determinize_preserves_language() {
        let a = contains_one();
        let d = a.determinize(&[0, 1]);
        for labels in [
            [0u32].as_slice(),
            &[1],
            &[0, 1],
            &[0, 0, 0],
            &[1, 0, 1],
            &[0, 0, 1, 0],
        ] {
            let t = chain(labels);
            assert_eq!(a.accepts(&t), d.accepts(&t), "{labels:?}");
        }
    }

    #[test]
    fn determinize_handles_branching_trees() {
        let a = contains_one();
        let d = a.determinize(&[0, 1]);
        // full binary tree with the 1 deep on the right
        let t = BinaryTree::from_triples(
            &[
                (0, Some(1), Some(2)),
                (0, Some(3), Some(4)),
                (0, None, Some(5)),
                (0, None, None),
                (0, None, None),
                (1, None, None),
            ],
            0,
        );
        assert!(a.accepts(&t));
        assert!(d.accepts(&t));
        let t2 = BinaryTree::from_triples(
            &[(0, Some(1), Some(2)), (0, None, None), (0, None, None)],
            0,
        );
        assert!(!a.accepts(&t2));
        assert!(!d.accepts(&t2));
    }

    #[test]
    fn wildcard_rules_match_any_symbol() {
        let mut a = Nta::new(1);
        a.add_wildcard_rule(STAR, STAR, 0);
        a.add_wildcard_rule(0, STAR, 0);
        a.set_accepting(0);
        assert!(a.accepts(&chain(&[42, 7])));
        let d = a.determinize(&[42, 7]);
        assert!(d.accepts(&chain(&[42, 7])));
    }

    #[test]
    fn determinized_minimizes_further() {
        let a = contains_one();
        let d = a.determinize(&[0, 1]).minimize();
        assert!(d.num_states() <= 3);
        assert!(d.accepts(&chain(&[0, 1])));
        assert!(!d.accepts(&chain(&[0, 0])));
    }
}
