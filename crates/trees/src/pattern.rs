//! XPath-like pattern queries compiled to deterministic tree automata.
//!
//! The paper's Example 4 uses the parametric query
//! `ψ(a, v) = school/student[firstname=a]/exam`: `a` is a node whose
//! label is a text value, and the answers are the text-value nodes of
//! `exam` elements belonging to `student` elements whose `firstname` text
//! equals `a`'s label. This module supports exactly that family:
//!
//! ```text
//! tag_0 / tag_1 / ... / item_tag [ filter_tag = $a ] / target_tag
//! ```
//!
//! with the output pebble on the text child of `target_tag` elements.
//!
//! Two implementations are provided and cross-checked in tests:
//!
//! 1. [`PatternQuery::answer_set_unranked`] — a direct evaluator on the
//!    unranked document (ground truth);
//! 2. [`PatternQuery::compile`] — a deterministic bottom-up automaton on
//!    the first-child/next-sibling binary encoding, implemented
//!    *semantically* (the transition function is computed from a small
//!    enumerated state space, so the automaton works over arbitrarily
//!    large text alphabets without a transition table). The compiled
//!    automaton is what the paper's Theorem 5 scheme consumes; its state
//!    count `m` is the capacity parameter in `|W|/4m`.

use crate::automaton::{BottomUpAutomaton, State, STAR};
use crate::pebble::PebbledQuery;
use crate::tree::{NodeId, Symbol};
use crate::xml::XmlDocument;
use qpwm_structures::{AnswerSource, Element};
use std::collections::HashMap;
use std::fmt;

/// A parsed pattern query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternQuery {
    /// Plain path steps from the root down to (and including) the item
    /// tag; `path[0]` must match the document root.
    pub path: Vec<String>,
    /// The filter tag compared against the parameter (`[filter=$a]` on the
    /// last path step).
    pub filter: String,
    /// The target tag whose text children are the answers.
    pub target: String,
}

/// Pattern parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternParseError(pub String);

impl fmt::Display for PatternParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid pattern: {}", self.0)
    }
}

impl std::error::Error for PatternParseError {}

impl PatternQuery {
    /// Parses `"school/student[firstname=$a]/exam"`.
    ///
    /// ```
    /// use qpwm_trees::PatternQuery;
    /// let q = PatternQuery::parse("school/student[firstname=$a]/exam").unwrap();
    /// assert_eq!(q.path, vec!["school", "student"]);
    /// assert_eq!(q.filter, "firstname");
    /// assert_eq!(q.target, "exam");
    /// ```
    pub fn parse(input: &str) -> Result<Self, PatternParseError> {
        let steps: Vec<&str> = input.split('/').collect();
        if steps.len() < 2 {
            return Err(PatternParseError("need at least item[...]/target".into()));
        }
        let target = steps[steps.len() - 1].trim();
        if target.is_empty() || target.contains('[') {
            return Err(PatternParseError("last step must be a plain target tag".into()));
        }
        let mut path = Vec::new();
        let mut filter = None;
        for (i, step) in steps[..steps.len() - 1].iter().enumerate() {
            let step = step.trim();
            if let Some(open) = step.find('[') {
                if i != steps.len() - 2 {
                    return Err(PatternParseError(
                        "filter allowed only on the item step".into(),
                    ));
                }
                let tag = &step[..open];
                let rest = step[open + 1..]
                    .strip_suffix(']')
                    .ok_or_else(|| PatternParseError("missing ]".into()))?;
                let (ftag, fval) = rest
                    .split_once('=')
                    .ok_or_else(|| PatternParseError("filter must be tag=$var".into()))?;
                if !fval.trim().starts_with('$') {
                    return Err(PatternParseError("filter value must be a $parameter".into()));
                }
                path.push(tag.trim().to_owned());
                filter = Some(ftag.trim().to_owned());
            } else {
                if step.is_empty() {
                    return Err(PatternParseError("empty step".into()));
                }
                path.push(step.to_owned());
            }
        }
        let filter = filter.ok_or_else(|| {
            PatternParseError("item step needs a [filter=$a] predicate".into())
        })?;
        Ok(PatternQuery { path, filter, target: target.to_owned() })
    }

    /// Ground-truth evaluation on the unranked document: the set of target
    /// text nodes matching parameter node `a`, sorted.
    pub fn answer_set_unranked(&self, doc: &XmlDocument, a: NodeId) -> Vec<NodeId> {
        let a_label = doc.tree.label(a);
        let mut out = Vec::new();
        self.walk(doc, doc.tree.root(), 0, a_label, &mut out);
        out.sort_unstable();
        out
    }

    fn walk(&self, doc: &XmlDocument, node: NodeId, depth: usize, a_label: Symbol, out: &mut Vec<NodeId>) {
        let name = doc.alphabet.name(doc.tree.label(node));
        if name != self.path[depth] {
            return;
        }
        if depth + 1 < self.path.len() {
            for &c in doc.tree.children(node) {
                self.walk(doc, c, depth + 1, a_label, out);
            }
            return;
        }
        // `node` is an item: check the filter, then collect target texts.
        let filter_matches = doc.tree.children(node).iter().any(|&c| {
            doc.alphabet.name(doc.tree.label(c)) == self.filter
                && doc
                    .tree
                    .children(c)
                    .first()
                    .is_some_and(|&t| doc.tree.label(t) == a_label)
        });
        if !filter_matches {
            return;
        }
        for &c in doc.tree.children(node) {
            if doc.alphabet.name(doc.tree.label(c)) == self.target {
                if let Some(&t) = doc.tree.children(c).first() {
                    if doc.is_text(t) {
                        out.push(t);
                    }
                }
            }
        }
    }

    /// All answer sets over parameters that can produce non-empty answers
    /// (text nodes whose label is a filter value), plus a count of total
    /// parameters. Ground truth for experiments.
    pub fn all_answers_unranked(&self, doc: &XmlDocument) -> Vec<(NodeId, Vec<NodeId>)> {
        (0..doc.tree.len() as NodeId)
            .map(|a| (a, self.answer_set_unranked(doc, a)))
            .collect()
    }

    /// Compiles to a deterministic pebbled automaton on the binary
    /// encoding (k = 1 parameter pebble, 1 output pebble).
    pub fn compile(&self, doc: &XmlDocument) -> PebbledQuery<PatternAutomaton> {
        PebbledQuery::new(PatternAutomaton::build(self, doc), 1)
    }

    /// Binds the pattern to a document as an [`AnswerSource`] — the
    /// tree-pattern face of the answer-set engine (Theorem 5 schemes and
    /// the relational ones then share one materialization path).
    pub fn bind<'a>(&'a self, doc: &'a XmlDocument) -> BoundPattern<'a> {
        BoundPattern { query: self, doc }
    }
}

/// A [`PatternQuery`] bound to a document, producing singleton node
/// tuples (`NodeId` and `Element` are the same dense `u32` index space).
#[derive(Debug, Clone, Copy)]
pub struct BoundPattern<'a> {
    query: &'a PatternQuery,
    doc: &'a XmlDocument,
}

impl AnswerSource for BoundPattern<'_> {
    fn output_arity(&self) -> usize {
        1
    }

    fn for_each_answer(&self, param: &[Element], visit: &mut dyn FnMut(&[Element])) {
        assert_eq!(param.len(), 1, "pattern queries take one parameter node");
        for b in self.query.answer_set_unranked(self.doc, param[0]) {
            visit(&[b]);
        }
    }
}

/// Classification of a base symbol for the pattern automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// `path[i]` tag.
    Level(u8),
    /// The filter tag.
    Filter,
    /// The target tag.
    Target,
    /// A text value that occurs under some filter element (index into the
    /// tracked-value table).
    TrackedText(u8),
    /// Any other text value.
    OtherText,
    /// Any other element tag.
    OtherTag,
}

/// Semantic state of the validity machine (M1): summarizes a binary
/// (first-child/next-sibling) subtree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum M1 {
    /// The output pebble is somewhere it can never be valid.
    Dead,
    /// No pebble, no structural information.
    Clean,
    /// A text leaf: pebble-b flag and tracked value (if any).
    Text { b: bool, val: Option<u8> },
    /// Right-spine of item children (filter/target/other fields).
    Fields { b_target: bool, fval: Option<u8> },
    /// Right-spine of elements at path depth `level`; `bv` is `Some(v)`
    /// when the output pebble sits validly inside with filter value `v`.
    Chain { level: u8, bv: Option<u8> },
}

/// Semantic state of the parameter machine (M2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum M2 {
    /// Pebble `a` not seen.
    NoA,
    /// Pebble `a` on a node labeled with tracked value `v`.
    A(u8),
    /// Pebble `a` on a node whose label is not a tracked value: the
    /// equality test can never succeed.
    ADead,
}

/// A deterministic bottom-up automaton recognizing
/// `{ T_ab : b ∈ ψ(a, T) }` for a compiled [`PatternQuery`].
///
/// States are interned pairs of enumerated semantic states, so `step` is
/// a pure computation plus two table lookups; no transition table over
/// the (large) text alphabet is ever materialized.
#[derive(Debug, Clone)]
pub struct PatternAutomaton {
    kind_of: HashMap<Symbol, Kind>,
    m1_states: Vec<M1>,
    m1_ids: HashMap<M1, u32>,
    m2_count: u32,
    num_values: u8,
    item_level: u8,
}

impl PatternAutomaton {
    fn build(pattern: &PatternQuery, doc: &XmlDocument) -> Self {
        // Tracked values: distinct text symbols occurring as the first
        // child of a filter element.
        let mut value_syms: Vec<Symbol> = Vec::new();
        for f in doc.nodes_with_tag(&pattern.filter) {
            if let Some(&t) = doc.tree.children(f).first() {
                let sym = doc.tree.label(t);
                if !value_syms.contains(&sym) {
                    value_syms.push(sym);
                }
            }
        }
        value_syms.sort_unstable();
        assert!(value_syms.len() < 250, "too many distinct filter values");
        let num_values = value_syms.len() as u8;
        let item_level = (pattern.path.len() - 1) as u8;

        let mut kind_of: HashMap<Symbol, Kind> = HashMap::new();
        // Classify every symbol of the document.
        for sym in 0..doc.alphabet.len() as Symbol {
            let name = doc.alphabet.name(sym);
            let kind = if let Some(v) = value_syms.iter().position(|&s| s == sym) {
                Kind::TrackedText(v as u8)
            } else if name.starts_with('#') {
                Kind::OtherText
            } else if name == pattern.filter {
                Kind::Filter
            } else if name == pattern.target {
                Kind::Target
            } else if let Some(level) = pattern.path.iter().position(|t| t == name) {
                Kind::Level(level as u8)
            } else {
                Kind::OtherTag
            };
            kind_of.insert(sym, kind);
        }

        // Enumerate the M1 state space.
        let mut m1_states = vec![M1::Dead, M1::Clean];
        for b in [false, true] {
            m1_states.push(M1::Text { b, val: None });
            for v in 0..num_values {
                m1_states.push(M1::Text { b, val: Some(v) });
            }
        }
        for b_target in [false, true] {
            m1_states.push(M1::Fields { b_target, fval: None });
            for v in 0..num_values {
                m1_states.push(M1::Fields { b_target, fval: Some(v) });
            }
        }
        for level in 0..=item_level {
            m1_states.push(M1::Chain { level, bv: None });
            for v in 0..num_values {
                m1_states.push(M1::Chain { level, bv: Some(v) });
            }
        }
        let m1_ids = m1_states
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i as u32))
            .collect();

        PatternAutomaton {
            kind_of,
            m1_states,
            m1_ids,
            m2_count: num_values as u32 + 2,
            num_values,
            item_level,
        }
    }

    /// Number of tracked filter values.
    pub fn num_values(&self) -> u8 {
        self.num_values
    }

    fn m2_decode(&self, id: u32) -> M2 {
        match id {
            0 => M2::NoA,
            1 => M2::ADead,
            v => M2::A((v - 2) as u8),
        }
    }

    fn m2_encode(&self, m: M2) -> u32 {
        match m {
            M2::NoA => 0,
            M2::ADead => 1,
            M2::A(v) => v as u32 + 2,
        }
    }

    fn decode(&self, q: State) -> Option<(M1, M2)> {
        if q == STAR {
            return None;
        }
        let m1 = self.m1_states[(q / self.m2_count) as usize];
        let m2 = self.m2_decode(q % self.m2_count);
        Some((m1, m2))
    }

    fn encode(&self, m1: M1, m2: M2) -> State {
        self.m1_ids[&m1] * self.m2_count + self.m2_encode(m2)
    }

    /// Does this subtree summary contain the output pebble?
    fn has_b(m: M1) -> bool {
        matches!(
            m,
            M1::Text { b: true, .. }
                | M1::Fields { b_target: true, .. }
                | M1::Chain { bv: Some(_), .. }
        )
    }

    /// Extracts the resolved validity (`bv`) of a sibling summary at item
    /// level or above; unresolved pebbles kill the run.
    fn bv_of(m: Option<M1>) -> Result<Option<u8>, ()> {
        match m {
            None | Some(M1::Clean) => Ok(None),
            Some(M1::Chain { bv, .. }) => Ok(bv),
            Some(M1::Text { b: false, .. }) | Some(M1::Fields { b_target: false, .. }) => Ok(None),
            Some(M1::Dead) | Some(M1::Text { b: true, .. }) | Some(M1::Fields { b_target: true, .. }) => Err(()),
        }
    }

    /// Merges two at-most-one-pebble validity values.
    fn bv_merge(x: Option<u8>, y: Option<u8>) -> Result<Option<u8>, ()> {
        match (x, y) {
            (None, z) | (z, None) => Ok(z),
            _ => Err(()), // two output pebbles cannot happen; be safe
        }
    }

    /// Reads a following-sibling summary as field-chain content.
    fn fields_of(m: Option<M1>) -> Result<(bool, Option<u8>), ()> {
        match m {
            None | Some(M1::Clean) => Ok((false, None)),
            Some(M1::Fields { b_target, fval }) => Ok((b_target, fval)),
            Some(M1::Text { b: false, .. }) => Ok((false, None)),
            Some(M1::Chain { bv: None, .. }) => Ok((false, None)),
            Some(M1::Dead)
            | Some(M1::Text { b: true, .. })
            | Some(M1::Chain { bv: Some(_), .. }) => Err(()),
        }
    }

    fn step_m1(&self, l: Option<M1>, r: Option<M1>, kind: Kind, has_b: bool) -> M1 {
        use M1::*;
        if l == Some(Dead) || r == Some(Dead) {
            return Dead;
        }
        match kind {
            Kind::TrackedText(v) => {
                // A text leaf; children are impossible, a right sibling
                // means mixed content (unsupported -> reject any pebble
                // through Dead, otherwise stay neutral).
                if l.is_some() {
                    return if Self::has_b_opt(l) || has_b { Dead } else { Clean };
                }
                match r {
                    None => Text { b: has_b, val: Some(v) },
                    Some(sib) => {
                        if has_b || Self::has_b(sib) {
                            Dead
                        } else {
                            // keep the sibling summary alive: a clean text
                            // among fields contributes nothing
                            sib
                        }
                    }
                }
            }
            Kind::OtherText => {
                if l.is_some() {
                    return if Self::has_b_opt(l) || has_b { Dead } else { Clean };
                }
                match r {
                    None => Text { b: has_b, val: None },
                    Some(sib) => {
                        if has_b || Self::has_b(sib) {
                            Dead
                        } else {
                            sib
                        }
                    }
                }
            }
            Kind::Filter => {
                if has_b {
                    return Dead; // b on the filter element itself
                }
                let val = match l {
                    None => None,
                    Some(Text { b: false, val }) => val,
                    Some(other) => {
                        if Self::has_b(other) {
                            return Dead;
                        }
                        None
                    }
                };
                match Self::fields_of(r) {
                    Ok((b_target, fval)) => {
                        Fields { b_target, fval: val.or(fval) }
                    }
                    Err(()) => Dead,
                }
            }
            Kind::Target => {
                if has_b {
                    return Dead; // b must be on the text child, not the element
                }
                let b_here = match l {
                    None => false,
                    Some(Text { b, .. }) => b,
                    Some(other) => {
                        if Self::has_b(other) {
                            return Dead;
                        }
                        false
                    }
                };
                match Self::fields_of(r) {
                    Ok((b_target, fval)) => {
                        if b_here && b_target {
                            Dead
                        } else {
                            Fields { b_target: b_here || b_target, fval }
                        }
                    }
                    Err(()) => Dead,
                }
            }
            Kind::Level(i) if i == self.item_level => {
                if has_b {
                    return Dead;
                }
                // children: the field chain of this item
                let my_bv = match Self::fields_of(l) {
                    Ok((true, Some(v))) => Some(v),
                    Ok((true, None)) => return Dead, // b in target, no usable filter
                    Ok((false, _)) => None,
                    Err(()) => return Dead,
                };
                match (Self::bv_of(r), Self::bv_merge(my_bv, None)) {
                    (Ok(sib_bv), _) => match Self::bv_merge(my_bv, sib_bv) {
                        Ok(bv) => Chain { level: self.item_level, bv },
                        Err(()) => Dead,
                    },
                    (Err(()), _) => Dead,
                }
            }
            Kind::Level(i) => {
                if has_b {
                    return Dead;
                }
                // children must summarize level i+1 (or be neutral)
                let child_bv = match l {
                    None => None,
                    Some(Chain { level, bv }) if level == i + 1 => bv,
                    Some(other) => {
                        if Self::has_b(other) {
                            return Dead;
                        }
                        None
                    }
                };
                let sib_bv = match Self::bv_of(r) {
                    Ok(bv) => bv,
                    Err(()) => return Dead,
                };
                // siblings at this level must be Chain{i} or neutral; a
                // Chain of a different level with a pebble is Dead via
                // bv_of? bv_of accepts any Chain level — a valid pebble
                // deeper down bubbles up through exactly this path, so
                // accepting any level here is sound for single-pebble runs.
                match Self::bv_merge(child_bv, sib_bv) {
                    Ok(bv) => Chain { level: i, bv },
                    Err(()) => Dead,
                }
            }
            Kind::OtherTag => {
                if has_b || Self::has_b_opt(l) {
                    return Dead;
                }
                // transparent: preserve the sibling summary
                match r {
                    None => Clean,
                    Some(sib) => sib,
                }
            }
        }
    }

    fn has_b_opt(m: Option<M1>) -> bool {
        m.is_some_and(Self::has_b)
    }

    fn step_m2(&self, l: Option<M2>, r: Option<M2>, kind: Kind, has_a: bool) -> M2 {
        let mine = if has_a {
            match kind {
                Kind::TrackedText(v) => M2::A(v),
                _ => M2::ADead,
            }
        } else {
            M2::NoA
        };
        let mut acc = M2::NoA;
        for part in [l.unwrap_or(M2::NoA), r.unwrap_or(M2::NoA), mine] {
            acc = match (acc, part) {
                (M2::NoA, x) | (x, M2::NoA) => x,
                _ => M2::ADead, // two pebbles: impossible, fail closed
            };
        }
        acc
    }
}

impl BottomUpAutomaton for PatternAutomaton {
    fn num_states(&self) -> u32 {
        self.m1_states.len() as u32 * self.m2_count
    }

    fn step(&self, ql: State, qr: State, sym: Symbol) -> State {
        // Decode the pebbled symbol: 2 pebble bits (a = bit 0, b = bit 1).
        let base = sym >> 2;
        let has_a = sym & 0b01 != 0;
        let has_b = sym & 0b10 != 0;
        let kind = self.kind_of.get(&base).copied().unwrap_or(Kind::OtherTag);
        let l = self.decode(ql);
        let r = self.decode(qr);
        let m1 = self.step_m1(l.map(|p| p.0), r.map(|p| p.0), kind, has_b);
        let m2 = self.step_m2(l.map(|p| p.1), r.map(|p| p.1), kind, has_a);
        self.encode(m1, m2)
    }

    fn is_accepting(&self, q: State) -> bool {
        match self.decode(q) {
            Some((M1::Chain { level: 0, bv: Some(v) }, M2::A(a))) => v == a,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xml::{example4_school, parse_xml};

    fn school_query() -> PatternQuery {
        PatternQuery::parse("school/student[firstname=$a]/exam").expect("parses")
    }

    #[test]
    fn parse_shapes() {
        let q = school_query();
        assert_eq!(q.path, vec!["school", "student"]);
        assert_eq!(q.filter, "firstname");
        assert_eq!(q.target, "exam");
        let deep = PatternQuery::parse("a/b/c[d=$x]/e").expect("parses");
        assert_eq!(deep.path, vec!["a", "b", "c"]);
    }

    #[test]
    fn parse_rejects_bad_shapes() {
        assert!(PatternQuery::parse("onlyone").is_err());
        assert!(PatternQuery::parse("a/b/c").is_err()); // no filter
        assert!(PatternQuery::parse("a[f=$x]/b[g=$y]/c").is_err());
        assert!(PatternQuery::parse("a/b[f=3]/c").is_err()); // literal filter
    }

    #[test]
    fn example4_direct_evaluation() {
        let doc = example4_school();
        let q = school_query();
        // parameter: a Robert firstname text node
        let robert = doc.text_symbol("Robert").expect("present");
        let a = doc
            .tree
            .preorder()
            .into_iter()
            .find(|&n| doc.tree.label(n) == robert)
            .expect("robert node");
        let answers = q.answer_set_unranked(&doc, a);
        // both Robert students' exam texts: values 16 and 12
        assert_eq!(answers.len(), 2);
        let values: Vec<&str> = answers.iter().map(|&t| doc.text(t).expect("text")).collect();
        assert_eq!(values, vec!["16", "12"]);
    }

    #[test]
    fn example4_john_and_irrelevant_parameters() {
        let doc = example4_school();
        let q = school_query();
        let john = doc.text_symbol("John").expect("present");
        let a = doc
            .tree
            .preorder()
            .into_iter()
            .find(|&n| doc.tree.label(n) == john)
            .expect("john node");
        assert_eq!(q.answer_set_unranked(&doc, a).len(), 1);
        // an exam value as parameter: no student has firstname "11"
        let eleven = doc.text_symbol("11").expect("present");
        let a2 = doc
            .tree
            .preorder()
            .into_iter()
            .find(|&n| doc.tree.label(n) == eleven)
            .expect("11 node");
        assert!(q.answer_set_unranked(&doc, a2).is_empty());
        // an element node as parameter: empty
        let student = doc.nodes_with_tag("student")[0];
        assert!(q.answer_set_unranked(&doc, student).is_empty());
    }

    #[test]
    fn compiled_matches_direct_on_example4() {
        let doc = example4_school();
        let q = school_query();
        let compiled = q.compile(&doc);
        let binary = doc.tree.to_binary();
        for a in 0..doc.tree.len() as NodeId {
            let direct = q.answer_set_unranked(&doc, a);
            let auto = compiled.answer_set(&binary, &[a]);
            assert_eq!(direct, auto, "parameter node {a}");
        }
    }

    #[test]
    fn compiled_matches_direct_on_messier_document() {
        // unknown tags, empty students, missing filters, extra text
        let doc = parse_xml(
            r#"<school>
                 <note>term 1</note>
                 <student>
                   <lastname>X</lastname>
                   <exam>7</exam>
                 </student>
                 <student>
                   <firstname>Ana</firstname>
                   <exam>9</exam>
                   <exam>10</exam>
                 </student>
                 <student>
                   <firstname>Bob</firstname>
                 </student>
                 <student>
                   <firstname>Ana</firstname>
                   <hobby>chess</hobby>
                   <exam>3</exam>
                 </student>
               </school>"#,
        )
        .expect("parses");
        let q = school_query();
        let compiled = q.compile(&doc);
        let binary = doc.tree.to_binary();
        for a in 0..doc.tree.len() as NodeId {
            let direct = q.answer_set_unranked(&doc, a);
            let auto = compiled.answer_set(&binary, &[a]);
            assert_eq!(direct, auto, "parameter node {a}");
        }
        // Ana has three exams across two students: 9, 10, 3.
        let ana = doc.text_symbol("Ana").expect("present");
        let a = doc
            .tree
            .preorder()
            .into_iter()
            .find(|&n| doc.tree.label(n) == ana)
            .expect("ana node");
        assert_eq!(q.answer_set_unranked(&doc, a).len(), 3);
    }

    #[test]
    fn attribute_filters_work_unchanged() {
        // attributes parse to `@name` children with a text child, so a
        // filter tag of `@cat` needs no special handling anywhere.
        let doc = parse_xml(
            r#"<shop>
                 <item cat="tools"><price>5</price></item>
                 <item cat="toys"><price>9</price></item>
                 <item cat="tools"><price>7</price></item>
               </shop>"#,
        )
        .expect("parses");
        let q = PatternQuery::parse("shop/item[@cat=$a]/price").expect("parses");
        assert_eq!(q.filter, "@cat");
        let tools = doc.text_symbol("tools").expect("present");
        let a = doc
            .tree
            .preorder()
            .into_iter()
            .find(|&n| doc.tree.label(n) == tools)
            .expect("tools node");
        let direct = q.answer_set_unranked(&doc, a);
        assert_eq!(direct.len(), 2);
        let values: Vec<&str> = direct.iter().map(|&t| doc.text(t).expect("text")).collect();
        assert_eq!(values, vec!["5", "7"]);
        // and the compiled automaton agrees on every parameter
        let compiled = q.compile(&doc);
        let binary = doc.tree.to_binary();
        for node in 0..doc.tree.len() as NodeId {
            assert_eq!(
                q.answer_set_unranked(&doc, node),
                compiled.answer_set(&binary, &[node]),
                "parameter {node}"
            );
        }
    }

    #[test]
    fn automaton_state_count_is_modest() {
        let doc = example4_school();
        let q = school_query();
        let compiled = q.compile(&doc);
        // 2 tracked values (John, Robert): the product must stay small.
        assert_eq!(compiled.automaton().num_values(), 2);
        assert!(compiled.automaton().num_states() < 200);
    }
}
