//! Unranked labeled trees and their binary encoding.
//!
//! XML documents are unranked (a node has any number of ordered children);
//! the paper handles them by encoding into binary trees (citing
//! Milo–Suciu–Vianu). We use the standard first-child / next-sibling
//! encoding: in the binary image, the left child is the first child and
//! the right child is the next sibling. The encoding is a bijection on
//! node sets, so weights and query answers transfer verbatim.

use crate::tree::{BinaryTree, NodeId, Symbol, TreeBuilder};

#[derive(Debug, Clone, PartialEq, Eq)]
struct UNode {
    label: Symbol,
    children: Vec<NodeId>,
    parent: Option<NodeId>,
}

/// An ordered unranked labeled tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnrankedTree {
    nodes: Vec<UNode>,
    root: NodeId,
}

impl UnrankedTree {
    /// Creates a tree with a single root.
    pub fn new(root_label: Symbol) -> Self {
        UnrankedTree {
            nodes: vec![UNode { label: root_label, children: Vec::new(), parent: None }],
            root: 0,
        }
    }

    /// Appends a child to `parent`, returning the new node.
    pub fn add_child(&mut self, parent: NodeId, label: Symbol) -> NodeId {
        let id = self.nodes.len() as NodeId;
        self.nodes.push(UNode { label, children: Vec::new(), parent: Some(parent) });
        self.nodes[parent as usize].children.push(id);
        id
    }

    /// The root.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the tree is only a root (never fully empty).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Label of `node`.
    pub fn label(&self, node: NodeId) -> Symbol {
        self.nodes[node as usize].label
    }

    /// Ordered children of `node`.
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.nodes[node as usize].children
    }

    /// Parent of `node`.
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.nodes[node as usize].parent
    }

    /// Preorder traversal (document order).
    pub fn preorder(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            out.push(n);
            for &c in self.nodes[n as usize].children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// First-child / next-sibling binary encoding.
    ///
    /// Node ids are preserved: unranked node `i` becomes binary node `i`,
    /// so weights assigned to unranked nodes carry over unchanged.
    pub fn to_binary(&self) -> BinaryTree {
        let mut b = TreeBuilder::new();
        for node in &self.nodes {
            b.add_node(node.label);
        }
        for (i, node) in self.nodes.iter().enumerate() {
            let i = i as NodeId;
            if let Some(&first) = node.children.first() {
                b.set_left(i, first);
            }
            for pair in node.children.windows(2) {
                b.set_right(pair[0], pair[1]);
            }
        }
        b.build(self.root)
    }
}

/// Decodes a first-child / next-sibling binary tree back into an unranked
/// tree (inverse of [`UnrankedTree::to_binary`]; node ids are preserved).
///
/// # Panics
/// Panics if the binary tree's root has a right child (not a valid
/// encoding).
pub fn from_binary(tree: &BinaryTree) -> UnrankedTree {
    assert!(
        tree.right(tree.root()).is_none(),
        "not a first-child/next-sibling encoding: root has a sibling"
    );
    let n = tree.len();
    let mut nodes: Vec<UNode> = (0..n)
        .map(|i| UNode { label: tree.label(i as NodeId), children: Vec::new(), parent: None })
        .collect();
    fn attach(tree: &BinaryTree, nodes: &mut [UNode], parent: NodeId, first: NodeId) {
        let mut cur = Some(first);
        while let Some(c) = cur {
            nodes[parent as usize].children.push(c);
            nodes[c as usize].parent = Some(parent);
            if let Some(l) = tree.left(c) {
                attach(tree, nodes, c, l);
            }
            cur = tree.right(c);
        }
    }
    if let Some(l) = tree.left(tree.root()) {
        attach(tree, &mut nodes, tree.root(), l);
    }
    UnrankedTree { nodes, root: tree.root() }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// school with two students, each with two fields.
    fn sample() -> UnrankedTree {
        let mut t = UnrankedTree::new(0); // school
        let s1 = t.add_child(t.root(), 1); // student
        let s2 = t.add_child(t.root(), 1);
        t.add_child(s1, 2); // firstname
        t.add_child(s1, 3); // exam
        t.add_child(s2, 2);
        t.add_child(s2, 3);
        t
    }

    #[test]
    fn construction_and_accessors() {
        let t = sample();
        assert_eq!(t.len(), 7);
        assert_eq!(t.children(t.root()).len(), 2);
        assert_eq!(t.label(0), 0);
        assert_eq!(t.parent(1), Some(0));
        assert_eq!(t.parent(0), None);
    }

    #[test]
    fn preorder_visits_document_order() {
        let t = sample();
        assert_eq!(t.preorder(), vec![0, 1, 3, 4, 2, 5, 6]);
    }

    #[test]
    fn binary_encoding_shape() {
        let t = sample();
        let b = t.to_binary();
        assert_eq!(b.len(), 7);
        // root's left = first child (student 1); no right sibling.
        assert_eq!(b.left(0), Some(1));
        assert_eq!(b.right(0), None);
        // student1's right = student2; left = firstname.
        assert_eq!(b.right(1), Some(2));
        assert_eq!(b.left(1), Some(3));
        // firstname's right = exam sibling.
        assert_eq!(b.right(3), Some(4));
    }

    #[test]
    fn labels_preserved_under_encoding() {
        let t = sample();
        let b = t.to_binary();
        for i in 0..t.len() as NodeId {
            assert_eq!(t.label(i), b.label(i), "node {i}");
        }
    }

    #[test]
    fn roundtrip_binary_unranked() {
        let t = sample();
        let back = from_binary(&t.to_binary());
        assert_eq!(t, back);
    }

    #[test]
    fn single_node_roundtrip() {
        let t = UnrankedTree::new(9);
        let b = t.to_binary();
        assert_eq!(b.len(), 1);
        assert_eq!(from_binary(&b), t);
    }

    #[test]
    fn wide_node_chains_right_spine() {
        let mut t = UnrankedTree::new(0);
        for _ in 0..5 {
            t.add_child(0, 1);
        }
        let b = t.to_binary();
        // children 1..5 form a right-spine: 1 -R-> 2 -R-> 3 ...
        let mut cur = b.left(0);
        let mut count = 0;
        while let Some(c) = cur {
            count += 1;
            cur = b.right(c);
        }
        assert_eq!(count, 5);
    }
}
