//! Pebbled alphabets `Σ_{k+s}` and parametric automaton queries.
//!
//! A `Σ_{k+s}`-tree automaton defines the s-ary query with k parameters
//! `B(ā, T) = {b̄ : B accepts T_{āb̄}}` where `T_{āb̄}` relabels each node
//! with its base symbol plus one bit per pebble. We encode the extended
//! symbol as `base · 2^(k+s) + bits`, parameter pebbles in the low `k`
//! bits, output pebbles above them.
//!
//! Evaluation is incremental: placing the output pebble at `b` only
//! changes automaton states on the path from `b` to the root, so after one
//! `O(n)` base run per parameter tuple, each candidate output costs
//! `O(depth)` ([`Overlay`]).

use crate::automaton::{BottomUpAutomaton, State, TreeAutomaton, STAR};
use crate::tree::{BinaryTree, NodeId, Symbol};
use std::collections::HashMap;

/// Encodes an extended symbol: `base` with pebble `bits` (bit i = pebble
/// i present), for `k_plus_s` pebbles total.
pub fn pebbled_symbol(base: Symbol, bits: u32, k_plus_s: u32) -> Symbol {
    debug_assert!(bits < (1 << k_plus_s));
    (base << k_plus_s) | bits
}

/// Recomputes automaton states under point overrides without rerunning
/// the whole tree.
///
/// Given a base run (states for a fixed labeling), `Overlay` answers
/// "what would the state at `target` be if these nodes had different
/// labels / these nodes' states were forced": only ancestors of the
/// overridden nodes are recomputed.
pub struct Overlay<'a, A: BottomUpAutomaton + ?Sized> {
    automaton: &'a A,
    tree: &'a BinaryTree,
    base_states: &'a [State],
    label_overrides: HashMap<NodeId, Symbol>,
    state_overrides: HashMap<NodeId, State>,
    /// base labels, needed to recompute dirty non-overridden nodes.
    base_label: &'a dyn Fn(NodeId) -> Symbol,
}

impl<'a, A: BottomUpAutomaton + ?Sized> Overlay<'a, A> {
    /// Creates an overlay over a base run.
    pub fn new(
        automaton: &'a A,
        tree: &'a BinaryTree,
        base_states: &'a [State],
        base_label: &'a dyn Fn(NodeId) -> Symbol,
    ) -> Self {
        Overlay {
            automaton,
            tree,
            base_states,
            label_overrides: HashMap::new(),
            state_overrides: HashMap::new(),
            base_label,
        }
    }

    /// Overrides the label of `node`.
    pub fn set_label(&mut self, node: NodeId, sym: Symbol) -> &mut Self {
        self.label_overrides.insert(node, sym);
        self
    }

    /// Forces the state of `node` (used by the tree scheme to explore
    /// "entering state" behaviour below a region boundary).
    pub fn set_state(&mut self, node: NodeId, state: State) -> &mut Self {
        self.state_overrides.insert(node, state);
        self
    }

    /// State at `target` under the overrides.
    pub fn state_at(&self, target: NodeId) -> State {
        // Dirty nodes: every ancestor-or-self of an override.
        let mut dirty: HashMap<NodeId, ()> = HashMap::new();
        for &n in self.label_overrides.keys().chain(self.state_overrides.keys()) {
            let mut cur = Some(n);
            while let Some(c) = cur {
                if dirty.insert(c, ()).is_some() {
                    break; // path already marked
                }
                cur = self.tree.parent(c);
            }
        }
        self.eval(target, &dirty)
    }

    fn eval(&self, node: NodeId, dirty: &HashMap<NodeId, ()>) -> State {
        if let Some(&s) = self.state_overrides.get(&node) {
            return s;
        }
        if !dirty.contains_key(&node) {
            return self.base_states[node as usize];
        }
        let ql = self.tree.left(node).map_or(STAR, |l| self.eval(l, dirty));
        let qr = self.tree.right(node).map_or(STAR, |r| self.eval(r, dirty));
        let sym = self
            .label_overrides
            .get(&node)
            .copied()
            .unwrap_or_else(|| (self.base_label)(node));
        self.automaton.step(ql, qr, sym)
    }
}

/// A [`PebbledQuery`] bound to a binary tree as an
/// [`qpwm_structures::AnswerSource`]: parameters are `k` pebble
/// positions, answers are singleton output-node tuples.
#[derive(Debug, Clone, Copy)]
pub struct BoundPebbled<'a, A: BottomUpAutomaton> {
    query: &'a PebbledQuery<A>,
    tree: &'a BinaryTree,
}

impl<A: BottomUpAutomaton> qpwm_structures::AnswerSource for BoundPebbled<'_, A> {
    fn output_arity(&self) -> usize {
        1
    }

    fn for_each_answer(
        &self,
        param: &[qpwm_structures::Element],
        visit: &mut dyn FnMut(&[qpwm_structures::Element]),
    ) {
        assert_eq!(param.len(), self.query.k() as usize, "pebble arity mismatch");
        for b in self.query.answer_set(self.tree, param) {
            visit(&[b]);
        }
    }
}

/// A parametric query defined by a `Σ_{k+s}`-tree automaton.
///
/// Currently `s = 1` (single output pebble) — the arity the paper's tree
/// scheme (Lemma 3 / Theorem 5) is proved for; Theorem 5's generalization
/// to larger `s` goes through the same randomized argument as the local
/// scheme and is not needed by any experiment.
#[derive(Debug, Clone)]
pub struct PebbledQuery<A: BottomUpAutomaton = TreeAutomaton> {
    automaton: A,
    k: u32,
}

impl<A: BottomUpAutomaton> PebbledQuery<A> {
    /// Wraps an automaton over the pebbled alphabet with `k` parameter
    /// pebbles and one output pebble.
    pub fn new(automaton: A, k: u32) -> Self {
        PebbledQuery { automaton, k }
    }

    /// The underlying automaton.
    pub fn automaton(&self) -> &A {
        &self.automaton
    }

    /// Number of parameter pebbles `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Total pebble count `k + s` (s = 1).
    pub fn pebbles(&self) -> u32 {
        self.k + 1
    }

    /// Binds the query to a tree as an answer source for the engine.
    pub fn bind<'a>(&'a self, tree: &'a BinaryTree) -> BoundPebbled<'a, A> {
        BoundPebbled { query: self, tree }
    }

    /// The pebbled label of `node` with parameters at `params` and the
    /// output pebble optionally at `output`.
    pub fn label(
        &self,
        tree: &BinaryTree,
        node: NodeId,
        params: &[NodeId],
        output: Option<NodeId>,
    ) -> Symbol {
        let mut bits = 0u32;
        for (i, &p) in params.iter().enumerate() {
            if p == node {
                bits |= 1 << i;
            }
        }
        if output == Some(node) {
            bits |= 1 << self.k;
        }
        pebbled_symbol(tree.label(node), bits, self.pebbles())
    }

    /// Runs the automaton on `T_ā` (parameters placed, no output pebble),
    /// returning all node states.
    pub fn base_run(&self, tree: &BinaryTree, params: &[NodeId]) -> Vec<State> {
        assert_eq!(params.len(), self.k as usize, "parameter arity mismatch");
        self.automaton
            .run_with_labels(tree, &mut |n| self.label(tree, n, params, None))
    }

    /// The label of `node` with *no* pebbles placed at all (used by the
    /// tree scheme, which reasons about runs independent of the
    /// parameter's position).
    pub fn free_label(&self, tree: &BinaryTree, node: NodeId) -> Symbol {
        self.label(tree, node, &[], None)
    }

    /// The label of `node` carrying only the output pebble.
    pub fn output_label(&self, tree: &BinaryTree, node: NodeId) -> Symbol {
        self.label(tree, node, &[], Some(node))
    }

    /// Runs the automaton with no pebbles placed.
    pub fn base_run_free(&self, tree: &BinaryTree) -> Vec<State> {
        self.automaton
            .run_with_labels(tree, &mut |n| self.free_label(tree, n))
    }

    /// Does `B` accept `T_{āb}`?
    pub fn accepts(&self, tree: &BinaryTree, params: &[NodeId], output: NodeId) -> bool {
        self.automaton
            .accepts_with_labels(tree, &mut |n| self.label(tree, n, params, Some(output)))
    }

    /// The answer set `B(ā, T) = {b : B accepts T_{āb}}`, sorted.
    ///
    /// `O(n·m)`: one bottom-up base run for `ā`, then one top-down pass
    /// computing, per node, the *context acceptance vector* — whether the
    /// root would accept if this node were in state `q` with everything
    /// else unchanged. A candidate `b` is in the answer set iff its
    /// context accepts the state its pebbled relabeling produces.
    pub fn answer_set(&self, tree: &BinaryTree, params: &[NodeId]) -> Vec<NodeId> {
        let base_states = self.base_run(tree, params);
        let m = self.automaton.num_states() as usize;
        let n = tree.len();
        // acc[v][q] = does the root accept if v's state were q?
        let mut acc: Vec<Vec<bool>> = vec![Vec::new(); n];
        let root = tree.root();
        acc[root as usize] = (0..m as State).map(|q| self.automaton.is_accepting(q)).collect();
        // parents before children: reverse postorder
        let mut order = tree.postorder();
        order.reverse();
        for &v in &order {
            let label_v = self.label(tree, v, params, None);
            let acc_v = std::mem::take(&mut acc[v as usize]);
            let left = tree.left(v);
            let right = tree.right(v);
            if let Some(l) = left {
                let qr = right.map_or(STAR, |r| base_states[r as usize]);
                acc[l as usize] = (0..m as State)
                    .map(|q| acc_v[self.automaton.step(q, qr, label_v) as usize])
                    .collect();
            }
            if let Some(r) = right {
                let ql = left.map_or(STAR, |l| base_states[l as usize]);
                acc[r as usize] = (0..m as State)
                    .map(|q| acc_v[self.automaton.step(ql, q, label_v) as usize])
                    .collect();
            }
            acc[v as usize] = acc_v;
        }
        let mut out = Vec::new();
        for b in 0..n as NodeId {
            let ql = tree.left(b).map_or(STAR, |l| base_states[l as usize]);
            let qr = tree.right(b).map_or(STAR, |r| base_states[r as usize]);
            let pebbled = self.automaton.step(ql, qr, self.label(tree, b, params, Some(b)));
            if acc[b as usize][pebbled as usize] {
                out.push(b);
            }
        }
        out
    }

    /// Answer sets for every parameter tuple in `T^k` (row-major
    /// odometer). `k = 0` yields the single empty-parameter answer.
    pub fn all_answer_sets(&self, tree: &BinaryTree) -> Vec<(Vec<NodeId>, Vec<NodeId>)> {
        let n = tree.len() as NodeId;
        if self.k == 0 {
            return vec![(Vec::new(), self.answer_set(tree, &[]))];
        }
        let mut out = Vec::new();
        let mut params = vec![0 as NodeId; self.k as usize];
        loop {
            out.push((params.clone(), self.answer_set(tree, &params)));
            let mut i = params.len();
            loop {
                if i == 0 {
                    return out;
                }
                i -= 1;
                params[i] += 1;
                if params[i] < n {
                    break;
                }
                params[i] = 0;
            }
        }
    }

    /// The active weights `W = ∪_ā W_ā`, sorted.
    pub fn active_universe(&self, tree: &BinaryTree) -> Vec<NodeId> {
        let mut active = vec![false; tree.len()];
        for (_, set) in self.all_answer_sets(tree) {
            for b in set {
                active[b as usize] = true;
            }
        }
        (0..tree.len() as NodeId).filter(|&b| active[b as usize]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{TreeAutomaton, STAR};
    use crate::tree::BinaryTree;

    /// Base alphabet {0, 1}; k = 1. Query: "output pebble sits on a node
    /// with base label 1, anywhere relative to the parameter".
    /// States: 0 = not seen, 1 = seen output-pebble-on-1. Encoded symbols:
    /// base << 2 | bits with bit0 = param, bit1 = output.
    fn on_one_query() -> PebbledQuery {
        let mut a = TreeAutomaton::new(2, 0);
        for base in [0u32, 1] {
            for bits in 0..4u32 {
                let sym = pebbled_symbol(base, bits, 2);
                let hit = base == 1 && bits & 0b10 != 0;
                for ql in [STAR, 0, 1] {
                    for qr in [STAR, 0, 1] {
                        let seen = hit || ql == 1 || qr == 1;
                        a.add_transition(ql, qr, sym, u32::from(seen));
                    }
                }
            }
        }
        a.set_accepting(1, true);
        PebbledQuery::new(a, 1)
    }

    fn sample() -> BinaryTree {
        // labels:    0
        //           / \
        //          1   0
        //         / \    \
        //        0   1    1
        BinaryTree::from_triples(
            &[
                (0, Some(1), Some(2)),
                (1, Some(3), Some(4)),
                (0, None, Some(5)),
                (0, None, None),
                (1, None, None),
                (1, None, None),
            ],
            0,
        )
    }

    #[test]
    fn answer_set_finds_label_one_nodes() {
        let q = on_one_query();
        let t = sample();
        // nodes with base label 1: 1, 4, 5 — independent of the parameter.
        for a in 0..6 {
            assert_eq!(q.answer_set(&t, &[a]), vec![1, 4, 5], "param {a}");
        }
    }

    #[test]
    fn answer_set_matches_naive_acceptance() {
        let q = on_one_query();
        let t = sample();
        for a in 0..6 {
            for b in 0..6 {
                let fast = q.answer_set(&t, &[a]).contains(&b);
                let slow = q.accepts(&t, &[a], b);
                assert_eq!(fast, slow, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn all_answer_sets_covers_domain() {
        let q = on_one_query();
        let t = sample();
        let all = q.all_answer_sets(&t);
        assert_eq!(all.len(), 6);
        assert_eq!(q.active_universe(&t), vec![1, 4, 5]);
    }

    #[test]
    fn overlay_matches_full_rerun() {
        let q = on_one_query();
        let t = sample();
        let base = q.base_run(&t, &[2]);
        let label_of = |n: NodeId| q.label(&t, n, &[2], None);
        for b in 0..6 {
            let mut ov = Overlay::new(q.automaton(), &t, &base, &label_of);
            ov.set_label(b, q.label(&t, b, &[2], Some(b)));
            let overlay_state = ov.state_at(t.root());
            let full = q
                .automaton()
                .run_with(&t, |n| q.label(&t, n, &[2], Some(b)));
            assert_eq!(overlay_state, full[t.root() as usize], "b={b}");
        }
    }

    #[test]
    fn overlay_state_override_propagates() {
        let q = on_one_query();
        let t = sample();
        let base = q.base_run(&t, &[0]);
        let label_of = |n: NodeId| q.label(&t, n, &[0], None);
        // Force node 1's state to "seen": root must become seen.
        let mut ov = Overlay::new(q.automaton(), &t, &base, &label_of);
        ov.set_state(1, 1);
        assert_eq!(ov.state_at(t.root()), 1);
        // Forcing to "not seen" keeps root not-seen (no other 1-pebble).
        let mut ov2 = Overlay::new(q.automaton(), &t, &base, &label_of);
        ov2.set_state(1, 0);
        assert_eq!(ov2.state_at(t.root()), 0);
    }

    #[test]
    fn pebbled_symbol_encoding() {
        assert_eq!(pebbled_symbol(0, 0, 2), 0);
        assert_eq!(pebbled_symbol(1, 0, 2), 4);
        assert_eq!(pebbled_symbol(1, 3, 2), 7);
        assert_eq!(pebbled_symbol(2, 1, 1), 5);
    }

    #[test]
    fn zero_parameter_queries() {
        // k = 0: single parameter tuple (empty).
        let mut a = TreeAutomaton::new(2, 0);
        for base in [0u32, 1] {
            for bits in 0..2u32 {
                let sym = pebbled_symbol(base, bits, 1);
                let hit = base == 1 && bits & 1 != 0;
                for ql in [STAR, 0, 1] {
                    for qr in [STAR, 0, 1] {
                        let seen = hit || ql == 1 || qr == 1;
                        a.add_transition(ql, qr, sym, u32::from(seen));
                    }
                }
            }
        }
        a.set_accepting(1, true);
        let q = PebbledQuery::new(a, 0);
        let t = sample();
        let all = q.all_answer_sets(&t);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].1, vec![1, 4, 5]);
    }
}
