//! Property-based tests for trees, encodings, XML and automata.

use proptest::prelude::*;
use qpwm_trees::automaton::{TreeAutomaton, STAR};
use qpwm_trees::nta::Nta;
use qpwm_trees::pebble::{pebbled_symbol, Overlay, PebbledQuery};
use qpwm_trees::tree::BinaryTree;
use qpwm_trees::unranked::{from_binary, UnrankedTree};

/// Strategy: a random unranked tree described by each node's parent
/// (node i attaches to a parent among 0..i).
fn unranked_strategy() -> impl Strategy<Value = UnrankedTree> {
    proptest::collection::vec((any::<u32>(), 0u32..64), 0..40).prop_map(|nodes| {
        let mut t = UnrankedTree::new(0);
        for (i, (label, parent_hint)) in nodes.into_iter().enumerate() {
            let parent = parent_hint % (i as u32 + 1);
            t.add_child(parent, label % 5);
        }
        t
    })
}

/// Strategy: a random binary tree via parent/slot descriptions.
fn binary_strategy() -> impl Strategy<Value = BinaryTree> {
    proptest::collection::vec((0u32..4, any::<u32>()), 1..40).prop_map(|nodes| {
        let mut b = qpwm_trees::tree::TreeBuilder::new();
        let root = b.add_node(nodes[0].0);
        let mut slots = vec![(root, true), (root, false)];
        for &(label, pick) in &nodes[1..] {
            let idx = (pick as usize) % slots.len();
            let (parent, left) = slots.swap_remove(idx);
            let n = b.add_node(label);
            if left {
                b.set_left(parent, n);
            } else {
                b.set_right(parent, n);
            }
            slots.push((n, true));
            slots.push((n, false));
        }
        b.build(root)
    })
}

fn parity_automaton() -> TreeAutomaton {
    let mut a = TreeAutomaton::new(2, 0);
    for ql in [STAR, 0, 1] {
        for qr in [STAR, 0, 1] {
            let below = u32::from(ql == 1) + u32::from(qr == 1);
            for sym in 0..4u32 {
                a.add_transition(ql, qr, sym, (below + sym % 2) % 2);
            }
        }
    }
    a.set_accepting(1, true);
    a
}

proptest! {
    #[test]
    fn fcns_roundtrip(t in unranked_strategy()) {
        let binary = t.to_binary();
        prop_assert_eq!(binary.len(), t.len());
        let back = from_binary(&binary);
        prop_assert_eq!(back, t);
    }

    #[test]
    fn postorder_is_a_permutation_with_children_first(t in binary_strategy()) {
        let order = t.postorder();
        prop_assert_eq!(order.len(), t.len());
        let mut position = vec![0usize; t.len()];
        for (i, &n) in order.iter().enumerate() {
            position[n as usize] = i;
        }
        for n in 0..t.len() as u32 {
            for child in [t.left(n), t.right(n)].into_iter().flatten() {
                prop_assert!(position[child as usize] < position[n as usize]);
            }
        }
    }

    #[test]
    fn lca_is_common_ancestor(t in binary_strategy(), a in 0u32..40, b in 0u32..40) {
        prop_assume!((a as usize) < t.len() && (b as usize) < t.len());
        let l = t.lca(&[a, b]);
        prop_assert!(t.is_ancestor(l, a));
        prop_assert!(t.is_ancestor(l, b));
        // deepest: its children are not common ancestors
        for child in [t.left(l), t.right(l)].into_iter().flatten() {
            prop_assert!(!(t.is_ancestor(child, a) && t.is_ancestor(child, b)));
        }
    }

    #[test]
    fn parity_automaton_counts_correctly(t in binary_strategy()) {
        let a = parity_automaton();
        let ones = (0..t.len() as u32).filter(|&n| t.label(n) % 2 == 1).count();
        prop_assert_eq!(a.accepts(&t), ones % 2 == 1);
    }

    #[test]
    fn minimization_preserves_language(t in binary_strategy()) {
        let a = parity_automaton();
        let doubled = a.product(&a, |x, _| x);
        let minimized = doubled.minimize();
        prop_assert!(minimized.num_states() <= doubled.num_states());
        prop_assert_eq!(doubled.accepts(&t), minimized.accepts(&t));
        prop_assert_eq!(a.accepts(&t), minimized.accepts(&t));
    }

    #[test]
    fn determinization_preserves_language(t in binary_strategy()) {
        // NTA: "some node labeled 1 exists" (nondeterministic flavor)
        let mut nta = Nta::new(2);
        for sym in 0..4u32 {
            nta.add_rule(STAR, STAR, sym, u32::from(sym == 1));
            for ql in [STAR, 0, 1] {
                for qr in [STAR, 0, 1] {
                    if ql == STAR && qr == STAR {
                        continue;
                    }
                    let seen = ql == 1 || qr == 1 || sym == 1;
                    nta.add_rule(ql, qr, sym, u32::from(seen));
                }
            }
        }
        nta.set_accepting(1);
        let dta = nta.determinize(&[0, 1, 2, 3]);
        prop_assert_eq!(nta.accepts(&t), dta.accepts(&t));
    }

    #[test]
    fn overlay_agrees_with_full_rerun(t in binary_strategy(), node in 0u32..40, newlabel in 0u32..4) {
        prop_assume!((node as usize) < t.len());
        let a = parity_automaton();
        let base = a.run(&t);
        let label_fn = |n: u32| t.label(n);
        let mut ov = Overlay::new(&a, &t, &base, &label_fn);
        ov.set_label(node, newlabel);
        let overlay_root = ov.state_at(t.root());
        let full = a.run_with(&t, |n| if n == node { newlabel } else { t.label(n) });
        prop_assert_eq!(overlay_root, full[t.root() as usize]);
    }

    #[test]
    fn pebbled_answer_sets_match_naive(t in binary_strategy(), a in 0u32..40) {
        prop_assume!((a as usize) < t.len());
        // query: output pebble on an odd-labeled node
        let mut auto = TreeAutomaton::new(2, 0);
        for base in 0..4u32 {
            for bits in 0..4u32 {
                let sym = pebbled_symbol(base, bits, 2);
                let hit = base % 2 == 1 && bits & 0b10 != 0;
                for ql in [STAR, 0, 1] {
                    for qr in [STAR, 0, 1] {
                        let seen = hit || ql == 1 || qr == 1;
                        auto.add_transition(ql, qr, sym, u32::from(seen));
                    }
                }
            }
        }
        auto.set_accepting(1, true);
        let q = PebbledQuery::new(auto, 1);
        let fast = q.answer_set(&t, &[a]);
        let slow: Vec<u32> = (0..t.len() as u32).filter(|&b| q.accepts(&t, &[a], b)).collect();
        prop_assert_eq!(fast, slow);
    }
}

proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]
    #[test]
    fn determinization_agrees_on_random_ntas(
        rules in proptest::collection::vec(
            (0u32..4, 0u32..4, 0u32..3, 0u32..3),
            1..24,
        ),
        accepting in 0u32..3,
        t in binary_strategy(),
    ) {
        // decode: (child-kind-left, child-kind-right, symbol, target);
        // child kind 3 = STAR.
        let mut nta = Nta::new(3);
        for &(l, r, sym, target) in &rules {
            let ql = if l == 3 { STAR } else { l.min(2) };
            let qr = if r == 3 { STAR } else { r.min(2) };
            nta.add_rule(ql, qr, sym, target);
        }
        nta.set_accepting(accepting);
        let dta = nta.determinize(&[0, 1, 2, 3]);
        prop_assert_eq!(nta.accepts(&t), dta.accepts(&t));
        // and minimization preserves the determinized language
        let min = dta.minimize();
        prop_assert_eq!(dta.accepts(&t), min.accepts(&t));
    }
}

proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(256))]
    /// The XML parser must never panic, whatever bytes arrive.
    #[test]
    fn xml_parser_never_panics(input in "\\PC*") {
        let _ = qpwm_trees::xml::parse_xml(&input);
    }

    /// Slightly structured garbage: random tag soup.
    #[test]
    fn xml_parser_survives_tag_soup(
        parts in proptest::collection::vec(
            prop_oneof![
                proptest::string::string_regex("<[a-z]{1,4}>").unwrap(),
                proptest::string::string_regex("</[a-z]{1,4}>").unwrap(),
                proptest::string::string_regex("[a-z0-9 ]{0,8}").unwrap(),
                Just("<!--x-->".to_string()),
                Just("<a b=\"c\">".to_string()),
            ],
            0..12,
        )
    ) {
        let soup: String = parts.concat();
        let _ = qpwm_trees::xml::parse_xml(&soup);
    }

    /// Well-formed documents round-trip through serialize + parse.
    #[test]
    fn xml_roundtrip_preserves_shape(t in unranked_strategy()) {
        // turn the random unranked tree into a document with safe names
        let mut alphabet = qpwm_trees::tree::Alphabet::new();
        for i in 0..5 {
            alphabet.intern(&format!("tag{i}"));
        }
        let doc = qpwm_trees::xml::XmlDocument { tree: t.clone(), alphabet };
        let rendered = doc.to_xml();
        let reparsed = qpwm_trees::xml::parse_xml(&rendered).expect("round-trips");
        prop_assert_eq!(reparsed.tree.len(), t.len());
    }
}
