//! Deterministic, dependency-free pseudo-randomness for the workspace.
//!
//! The schemes only ever need *reproducible* randomness — every marker,
//! workload generator, and attack simulation is driven by an explicit
//! `u64` seed so experiments can be replayed bit-for-bit. That contract
//! is served by a small fixed generator rather than an external crate:
//! [`Rng`] is xoshiro256** (Blackman–Vigna), seeded through SplitMix64
//! exactly as the reference implementation recommends, so a single
//! `u64` seed expands to a well-mixed 256-bit state.
//!
//! The API mirrors the subset of `rand` the workspace used:
//! [`Rng::seed_from_u64`], [`Rng::gen_range`] over half-open and
//! inclusive integer ranges, [`Rng::gen_f64`] for uniform `[0, 1)`
//! doubles, and [`Rng::shuffle`] (Fisher–Yates).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step: the recommended seeder for xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** generator with SplitMix64 seeding.
///
/// Not cryptographic — the schemes' *secrecy* lives in the key material,
/// not in the generator; this only has to be uniform and reproducible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed (SplitMix64-expanded, so
    /// nearby seeds yield unrelated streams).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Unbiased uniform draw from `[0, bound)` by rejection sampling.
    ///
    /// # Panics
    /// Panics when `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling range");
        // Reject the tail that would bias the modulus.
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Uniform draw from an integer range, half-open or inclusive.
    ///
    /// # Panics
    /// Panics when the range is empty.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

/// A range type [`Rng::gen_range`] can sample from uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty sampling range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty sampling range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u32, u64, usize, i32, i64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector_xoshiro256starstar() {
        // First outputs for state seeded by SplitMix64(0), per the
        // reference C implementation pairing.
        let mut a = Rng::seed_from_u64(0);
        let mut b = Rng::seed_from_u64(0);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Different seeds diverge immediately.
        let mut c = Rng::seed_from_u64(1);
        assert_ne!(Rng::seed_from_u64(0).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = Rng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_hit_their_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&b| b));
        for _ in 0..1_000 {
            let v = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
        }
        assert_eq!(rng.gen_range(4u32..5), 4);
        assert_eq!(rng.gen_range(9i32..=9), 9);
    }

    #[test]
    fn rejection_sampling_is_roughly_uniform() {
        let mut rng = Rng::seed_from_u64(3);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[rng.below(3) as usize] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "count {c}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left 100 elements in order");
    }

    #[test]
    fn streams_are_reproducible() {
        let mut a = Rng::seed_from_u64(99);
        let seq: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let mut b = Rng::seed_from_u64(99);
        let seq2: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(seq, seq2);
    }
}
