//! Registry determinism: derivation is a pure function of
//! `(master, index)` — the same inputs yield byte-identical keys no
//! matter how many worker threads derive them, and a ledger replay on
//! another machine re-derives the same keys without any key database.

use qpwm_fingerprint::{KeyRegistry, MasterSecret};

/// Same master secret + index ⇒ byte-identical derived key, across
/// 1/2/4 worker threads and across independent derivation orders.
#[test]
fn derived_keys_are_byte_identical_across_thread_counts() {
    let master = MasterSecret::from_u64(0x00d1_ce00_f00d_cafe);
    let indices: Vec<u64> = (0..4096).collect();

    let derive_all = || -> Vec<[u8; 16]> {
        qpwm_par::par_map(&indices, |&i| master.derive(i).to_bytes())
    };

    qpwm_par::set_threads(1);
    let one = derive_all();
    qpwm_par::set_threads(2);
    let two = derive_all();
    qpwm_par::set_threads(4);
    let four = derive_all();
    qpwm_par::set_threads(1);

    assert_eq!(one, two, "1 vs 2 threads");
    assert_eq!(two, four, "2 vs 4 threads");

    // the expanded message bits are equally stable
    let bits_one: Vec<Vec<bool>> = one
        .iter()
        .enumerate()
        .map(|(i, _)| master.derive(i as u64).message_bits(48))
        .collect();
    qpwm_par::set_threads(4);
    let bits_four = qpwm_par::par_map(&indices, |&i| master.derive(i).message_bits(48));
    qpwm_par::set_threads(1);
    assert_eq!(bits_one, bits_four, "bit expansion is thread-invariant");
}

/// A registry replayed from its ledger derives the same keys as the
/// registry that wrote it — the ledger carries indices, never keys.
#[test]
fn ledger_replay_re_derives_identical_keys() {
    let master = MasterSecret::from_text("operations master secret");
    let mut reg = KeyRegistry::new(master);
    for i in 0..200 {
        reg.issue(&format!("tenant-{i}"), 1_000 + i).expect("issue");
    }
    reg.revoke("tenant-7", 5_000).expect("revoke");

    let replayed = KeyRegistry::from_ledger(master, &reg.ledger()).expect("replay");
    for i in 0..200 {
        let name = format!("tenant-{i}");
        assert_eq!(
            reg.key_for(&name).map(|k| k.to_bytes()),
            replayed.key_for(&name).map(|k| k.to_bytes()),
            "{name}"
        );
    }
}
