//! The issuance registry: who holds which derivation index, and whether
//! that grant is still live.
//!
//! Records are immutable once written; the only mutation the registry
//! knows is *appending* — issuing a new recipient appends an `issue`
//! record, revoking appends a `revoke` record that flips the replayed
//! state. Persistence mirrors that shape: an append-only JSON-lines
//! ledger, one operation per line, replayed front to back by
//! [`KeyRegistry::from_ledger`]. A deployment appends lines with
//! [`KeyRegistry::issue_line`] / [`KeyRegistry::revoke_line`] and never
//! rewrites history.
//!
//! ```text
//! {"op":"issue","recipient":"alice","index":0,"issued_at":1700000000}
//! {"op":"issue","recipient":"bob","index":1,"issued_at":1700000060}
//! {"op":"revoke","recipient":"alice","at":1700086400}
//! ```
//!
//! Timestamps are caller-provided (unix seconds): the registry itself
//! never reads a clock, so replays and tests are deterministic.

use crate::derive::{MasterSecret, RecipientKey};
use std::collections::HashMap;
use std::fmt;

/// Registry and ledger errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// Issuing a recipient id that already holds a grant.
    DuplicateRecipient(String),
    /// Revoking (or looking up) a recipient that was never issued.
    UnknownRecipient(String),
    /// A ledger line that does not parse as an `issue`/`revoke` op.
    BadLedgerLine {
        /// 1-based line number.
        line: usize,
        /// The offending line, verbatim.
        content: String,
    },
    /// An `issue` op whose index is not the next unissued index —
    /// evidence the append-only ledger was reordered or truncated.
    IndexMismatch {
        /// 1-based line number.
        line: usize,
        /// The index the ledger line claims.
        got: u64,
        /// The index replay expected.
        expected: u64,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::DuplicateRecipient(r) => {
                write!(f, "recipient '{r}' already holds an issued fingerprint")
            }
            RegistryError::UnknownRecipient(r) => {
                write!(f, "recipient '{r}' was never issued")
            }
            RegistryError::BadLedgerLine { line, content } => {
                write!(f, "malformed ledger line {line}: '{content}'")
            }
            RegistryError::IndexMismatch { line, got, expected } => {
                write!(
                    f,
                    "ledger line {line}: issue index {got} but replay expected {expected} \
                     (ledger reordered or truncated?)"
                )
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// One immutable issuance record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IssuanceRecord {
    /// The recipient id (tenant name, contract id, …).
    pub recipient: String,
    /// The derivation index handed to [`MasterSecret::derive`].
    pub index: u64,
    /// Caller-provided issuance timestamp (unix seconds).
    pub issued_at: u64,
    /// When the grant was revoked, if it was.
    pub revoked_at: Option<u64>,
}

impl IssuanceRecord {
    /// Is this grant still live?
    pub fn active(&self) -> bool {
        self.revoked_at.is_none()
    }
}

/// The in-memory registry: issuance records in index order plus the
/// master secret that re-derives each recipient's key on demand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyRegistry {
    master: MasterSecret,
    records: Vec<IssuanceRecord>,
    by_name: HashMap<String, usize>,
    torn_tail: Option<String>,
}

impl KeyRegistry {
    /// An empty registry over `master`.
    pub fn new(master: MasterSecret) -> KeyRegistry {
        KeyRegistry { master, records: Vec::new(), by_name: HashMap::new(), torn_tail: None }
    }

    /// Total records, revoked included.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Has nothing been issued yet?
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records, in derivation-index order.
    pub fn records(&self) -> &[IssuanceRecord] {
        &self.records
    }

    /// The non-revoked records, in derivation-index order.
    pub fn active(&self) -> impl Iterator<Item = &IssuanceRecord> {
        self.records.iter().filter(|r| r.active())
    }

    /// Looks up one recipient's record.
    pub fn record(&self, recipient: &str) -> Option<&IssuanceRecord> {
        self.by_name.get(recipient).map(|&i| &self.records[i])
    }

    /// Re-derives one recipient's key (revoked recipients included —
    /// forensics may still need to *score* a revoked key, it just must
    /// never be *accused* as live).
    pub fn key_for(&self, recipient: &str) -> Option<RecipientKey> {
        self.record(recipient).map(|r| self.master.derive(r.index))
    }

    /// The key for a raw derivation index.
    pub fn key_at(&self, index: u64) -> RecipientKey {
        self.master.derive(index)
    }

    /// Issues the next derivation index to `recipient`. Returns the new
    /// record; rejects a recipient id that already holds a grant.
    pub fn issue(
        &mut self,
        recipient: &str,
        issued_at: u64,
    ) -> Result<&IssuanceRecord, RegistryError> {
        if self.by_name.contains_key(recipient) {
            return Err(RegistryError::DuplicateRecipient(recipient.to_owned()));
        }
        let index = self.records.len() as u64;
        self.by_name.insert(recipient.to_owned(), self.records.len());
        self.records.push(IssuanceRecord {
            recipient: recipient.to_owned(),
            index,
            issued_at,
            revoked_at: None,
        });
        Ok(&self.records[self.records.len() - 1])
    }

    /// Revokes `recipient`'s grant at `at`. Idempotent revocation is
    /// rejected: a second revoke is evidence of a confused caller.
    pub fn revoke(&mut self, recipient: &str, at: u64) -> Result<(), RegistryError> {
        let idx = *self
            .by_name
            .get(recipient)
            .ok_or_else(|| RegistryError::UnknownRecipient(recipient.to_owned()))?;
        if self.records[idx].revoked_at.is_some() {
            return Err(RegistryError::UnknownRecipient(recipient.to_owned()));
        }
        self.records[idx].revoked_at = Some(at);
        Ok(())
    }

    /// The ledger line an `issue` op appends.
    pub fn issue_line(record: &IssuanceRecord) -> String {
        format!(
            "{{\"op\":\"issue\",\"recipient\":{},\"index\":{},\"issued_at\":{}}}\n",
            json_string(&record.recipient),
            record.index,
            record.issued_at,
        )
    }

    /// The ledger line a `revoke` op appends.
    pub fn revoke_line(recipient: &str, at: u64) -> String {
        format!(
            "{{\"op\":\"revoke\",\"recipient\":{},\"at\":{}}}\n",
            json_string(recipient),
            at,
        )
    }

    /// The canonical full-history dump: every issue op in index order,
    /// then every revoke op in index order. Replays to the same state
    /// as the original append sequence.
    pub fn ledger(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&KeyRegistry::issue_line(r));
        }
        for r in &self.records {
            if let Some(at) = r.revoked_at {
                out.push_str(&KeyRegistry::revoke_line(&r.recipient, at));
            }
        }
        out
    }

    /// The discarded unparsable final line, when the ledger ended in
    /// one (a torn append from a crash mid-write). The operation that
    /// line would have recorded is **lost** — callers should surface
    /// this so the operator can re-issue or re-revoke.
    pub fn torn_tail(&self) -> Option<&str> {
        self.torn_tail.as_deref()
    }

    /// Replays an append-only ledger into a registry. Blank lines are
    /// skipped; anything else must parse as an issue/revoke op, issue
    /// indices must arrive in order, and the usual duplicate/unknown
    /// rules apply — with one forgiveness: an unparsable **final** line
    /// is the signature of an append torn by a crash, so it is dropped
    /// (and reported via [`KeyRegistry::torn_tail`]) instead of
    /// poisoning the whole ledger. Malformed lines with history after
    /// them are still hard errors: that is corruption, not a torn tail.
    pub fn from_ledger(master: MasterSecret, text: &str) -> Result<KeyRegistry, RegistryError> {
        let mut reg = KeyRegistry::new(master);
        let lines: Vec<&str> = text.lines().collect();
        let last_content = lines.iter().rposition(|l| !l.trim().is_empty());
        for (n, raw) in lines.iter().enumerate() {
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            let is_final = Some(n) == last_content;
            let bad = || RegistryError::BadLedgerLine { line: n + 1, content: (*raw).to_owned() };
            match Self::replay_line(&mut reg, line, n, bad) {
                Ok(()) => {}
                Err(RegistryError::BadLedgerLine { .. }) if is_final => {
                    reg.torn_tail = Some((*raw).to_owned());
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(reg)
    }

    fn replay_line(
        reg: &mut KeyRegistry,
        line: &str,
        n: usize,
        bad: impl Fn() -> RegistryError,
    ) -> Result<(), RegistryError> {
        let op = json_field_str(line, "op").ok_or_else(&bad)?;
        let recipient = json_field_str(line, "recipient").ok_or_else(&bad)?;
        match op.as_str() {
            "issue" => {
                let index = json_field_u64(line, "index").ok_or_else(&bad)?;
                let issued_at = json_field_u64(line, "issued_at").ok_or_else(&bad)?;
                let expected = reg.records.len() as u64;
                if index != expected {
                    return Err(RegistryError::IndexMismatch { line: n + 1, got: index, expected });
                }
                reg.issue(&recipient, issued_at)?;
                Ok(())
            }
            "revoke" => {
                let at = json_field_u64(line, "at").ok_or_else(&bad)?;
                reg.revoke(&recipient, at)
            }
            _ => Err(bad()),
        }
    }
}

/// Durably appends one ledger line: open append-or-create, write, then
/// `sync_data` — the line is on disk before the caller acts on the
/// operation it records. Without the sync, an issuance could hand out a
/// fingerprint whose record evaporates in a crash, leaving a marked
/// release no ledger replay can attribute.
pub fn append_ledger_line(path: &std::path::Path, line: &str) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    f.write_all(line.as_bytes())?;
    f.sync_data()
}

/// Renders a JSON string literal (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Extracts `"name":"value"` from one ledger line, undoing the escapes
/// [`json_string`] produces. Purpose-built for the ledger's own
/// rendering, not a general JSON parser (the workspace carries none).
fn json_field_str(line: &str, name: &str) -> Option<String> {
    let needle = format!("\"{name}\":\"");
    let start = line.find(&needle)? + needle.len();
    let mut out = String::new();
    let mut chars = line[start..].chars();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'u' => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

/// Extracts `"name":<integer>` from one ledger line.
fn json_field_u64(line: &str, name: &str) -> Option<u64> {
    let needle = format!("\"{name}\":");
    let start = line.find(&needle)? + needle.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> KeyRegistry {
        let mut reg = KeyRegistry::new(MasterSecret::from_u64(0xabc));
        reg.issue("alice", 100).expect("issue alice");
        reg.issue("bob", 200).expect("issue bob");
        reg.issue("carol", 300).expect("issue carol");
        reg.revoke("bob", 250).expect("revoke bob");
        reg
    }

    #[test]
    fn issuance_assigns_sequential_indices_and_rejects_duplicates() {
        let mut reg = registry();
        assert_eq!(reg.record("alice").unwrap().index, 0);
        assert_eq!(reg.record("carol").unwrap().index, 2);
        assert_eq!(
            reg.issue("alice", 400),
            Err(RegistryError::DuplicateRecipient("alice".into()))
        );
        assert_eq!(reg.len(), 3, "failed issue must not burn an index");
    }

    #[test]
    fn revocation_excludes_from_active_but_keeps_the_record() {
        let reg = registry();
        let active: Vec<&str> = reg.active().map(|r| r.recipient.as_str()).collect();
        assert_eq!(active, ["alice", "carol"]);
        assert_eq!(reg.record("bob").unwrap().revoked_at, Some(250));
        assert!(reg.key_for("bob").is_some(), "forensics can still derive a revoked key");
        assert!(reg.clone().revoke("bob", 999).is_err(), "double revoke rejected");
        assert!(reg.clone().revoke("mallory", 1).is_err());
    }

    #[test]
    fn ledger_round_trips_including_revocations() {
        let reg = registry();
        let text = reg.ledger();
        assert_eq!(text.lines().count(), 4, "3 issues + 1 revoke:\n{text}");
        let back =
            KeyRegistry::from_ledger(MasterSecret::from_u64(0xabc), &text).expect("replays");
        assert_eq!(back.records(), reg.records());
        assert_eq!(back.ledger(), text, "dump is a fixpoint");
    }

    #[test]
    fn ledger_lines_are_append_only_compatible() {
        // appending issue_line/revoke_line one op at a time replays to
        // the same state as the canonical dump
        let mut appended = String::new();
        let mut reg = KeyRegistry::new(MasterSecret::from_u64(7));
        for (name, at) in [("a\"quote", 1u64), ("b\\slash", 2), ("plain", 3)] {
            let record = reg.issue(name, at).expect("issue").clone();
            appended.push_str(&KeyRegistry::issue_line(&record));
        }
        reg.revoke("a\"quote", 9).expect("revoke");
        appended.push_str(&KeyRegistry::revoke_line("a\"quote", 9));
        let back = KeyRegistry::from_ledger(MasterSecret::from_u64(7), &appended)
            .expect("escaped names replay");
        assert_eq!(back.records(), reg.records());
    }

    #[test]
    fn ledger_rejects_corruption_by_line() {
        let master = MasterSecret::from_u64(1);
        // a malformed line with real history after it is corruption, not
        // a torn tail, and must fail loudly
        let text = "\nnot json\n{\"op\":\"issue\",\"recipient\":\"x\",\"index\":0,\"issued_at\":1}\n";
        let err = KeyRegistry::from_ledger(master, text).unwrap_err();
        assert!(
            matches!(err, RegistryError::BadLedgerLine { line: 2, .. }),
            "{err}"
        );
        // reordered indices are named, not silently re-normalized
        let text = "{\"op\":\"issue\",\"recipient\":\"x\",\"index\":5,\"issued_at\":1}\n";
        assert_eq!(
            KeyRegistry::from_ledger(master, text),
            Err(RegistryError::IndexMismatch { line: 1, got: 5, expected: 0 })
        );
        // revoking before issuing fails the replay
        let text = "{\"op\":\"revoke\",\"recipient\":\"x\",\"at\":1}\n";
        assert!(KeyRegistry::from_ledger(master, text).is_err());
    }

    #[test]
    fn torn_final_line_is_tolerated_and_reported() {
        let master = MasterSecret::from_u64(2);
        let mut text = registry().ledger();
        // a crash mid-append leaves a prefix of the next line
        text.push_str("{\"op\":\"issue\",\"recipient\":\"dave\",\"ind");
        let reg = KeyRegistry::from_ledger(master, &text).expect("torn tail tolerated");
        assert_eq!(reg.len(), 3, "full lines replayed");
        assert!(reg.record("dave").is_none(), "the torn op is lost, not guessed");
        assert!(reg.torn_tail().expect("reported").contains("dave"));
        // trailing whitespace after the torn line changes nothing
        let reg2 = KeyRegistry::from_ledger(master, &format!("{text}\n  \n")).expect("replays");
        assert_eq!(reg2.records(), reg.records());
        assert!(reg2.torn_tail().is_some());
        // a clean ledger reports no tear
        assert!(KeyRegistry::from_ledger(master, &registry().ledger())
            .expect("replays")
            .torn_tail()
            .is_none());
    }

    #[test]
    fn malformed_line_mid_ledger_is_still_a_hard_error() {
        let master = MasterSecret::from_u64(3);
        let good = registry().ledger();
        let mut lines: Vec<&str> = good.lines().collect();
        lines.insert(1, "{\"op\":\"iss"); // tear with history after it
        let text = lines.join("\n");
        let err = KeyRegistry::from_ledger(master, &text).unwrap_err();
        assert!(matches!(err, RegistryError::BadLedgerLine { line: 2, .. }), "{err}");
    }

    #[test]
    fn append_ledger_line_survives_replay() {
        let dir = std::env::temp_dir().join(format!("qpwm-ledger-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmpdir");
        let path = dir.join("ledger.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut reg = KeyRegistry::new(MasterSecret::from_u64(4));
        let rec = reg.issue("erin", 10).expect("issue").clone();
        append_ledger_line(&path, &KeyRegistry::issue_line(&rec)).expect("append");
        append_ledger_line(&path, &KeyRegistry::revoke_line("erin", 20)).expect("append");
        reg.revoke("erin", 20).expect("revoke");
        let text = std::fs::read_to_string(&path).expect("read");
        let back = KeyRegistry::from_ledger(MasterSecret::from_u64(4), &text).expect("replay");
        assert_eq!(back.records(), reg.records());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn keys_come_from_the_master_chain() {
        let reg = registry();
        let alice = reg.key_for("alice").unwrap();
        assert_eq!(alice, MasterSecret::from_u64(0xabc).derive(0));
        assert_eq!(reg.key_at(1), MasterSecret::from_u64(0xabc).derive(1));
        assert!(reg.key_for("mallory").is_none());
    }
}
