//! The forensic half: trace a leaked answer set to its recipient.
//!
//! Accusation is one extraction plus many cheap scorings. The marking
//! is applied to the leaked observations exactly once
//! ([`PairMarking::extract`](qpwm_core::pairing::PairMarking::extract)
//! — the expensive, `O(pairs × observations)` step); every issued,
//! non-revoked recipient is then scored against that single
//! [`DetectionReport`](qpwm_core::detect::DetectionReport) with
//! [`claim_check_effective`](qpwm_core::detect::DetectionReport::claim_check_effective),
//! which is `O(capacity)` per recipient — so a 10⁴-recipient registry
//! is scored in milliseconds, and the scoring loop parallelizes with
//! [`qpwm_par::par_map`] without changing the result.
//!
//! **Never accuse an innocent.** The best-scoring recipient is only
//! *accused* when their claim clears the significance floor `delta`
//! with [`Verdict::MarkPresent`]; a leak that merely *resembles*
//! someone's fingerprint (or a registry scored against an unrelated
//! leak) ends in [`Verdict::Abstain`] / `Inconclusive` with nobody
//! accused. The runner-up gap quantifies how far the verdict is from
//! flipping to the next-best recipient: `gap_log10` is
//! `log10(runner_up significance) − log10(accused significance)` —
//! orders of magnitude of evidence separating the two.

use crate::registry::KeyRegistry;
use crate::stamp::Fingerprinter;
use qpwm_core::detect::{AnswerServer, ClaimCheck, ObservedWeights, Verdict};
use qpwm_structures::Element;

/// One recipient's score against the leaked evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct Accusation {
    /// The recipient id.
    pub recipient: String,
    /// The recipient's derivation index.
    pub index: u64,
    /// The significance check of this recipient's expected bits.
    pub check: ClaimCheck,
}

/// The outcome of scoring a whole registry against one leak.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuseOutcome {
    /// Non-revoked recipients scored.
    pub scored: usize,
    /// Revoked recipients excluded from scoring.
    pub skipped_revoked: usize,
    /// The best-scoring recipient (lowest significance), whatever their
    /// verdict.
    pub best: Option<Accusation>,
    /// The second-best recipient.
    pub runner_up: Option<Accusation>,
    /// `log10(runner_up.significance) − log10(best.significance)`:
    /// orders of magnitude separating the accused from the next
    /// candidate. `0.0` when fewer than two recipients were scored.
    pub gap_log10: f64,
}

impl AccuseOutcome {
    /// The accused recipient — the best scorer, but only when the
    /// evidence clears the significance floor. `None` means the
    /// forensic run *abstains*: nobody is accused on weak evidence.
    pub fn accused(&self) -> Option<&Accusation> {
        self.best
            .as_ref()
            .filter(|a| a.check.verdict == Verdict::MarkPresent)
    }
}

/// Scores every issued, non-revoked recipient in `registry` against the
/// leaked observations and returns the ranked outcome. `delta` is the
/// false-accusation budget (see
/// [`DEFAULT_DELTA`](qpwm_core::detect::DEFAULT_DELTA)).
pub fn accuse(
    fingerprinter: &Fingerprinter,
    registry: &KeyRegistry,
    leaked: &ObservedWeights,
    delta: f64,
) -> AccuseOutcome {
    let report = fingerprinter.marking().extract(fingerprinter.original(), leaked);
    let capacity = fingerprinter.capacity();
    let active: Vec<_> = registry.active().collect();
    let skipped_revoked = registry.len() - active.len();

    let scores: Vec<Accusation> = qpwm_par::par_map(&active, |record| {
        let expected = registry.key_at(record.index).message_bits(capacity);
        Accusation {
            recipient: record.recipient.clone(),
            index: record.index,
            check: report.claim_check_effective(&expected, delta),
        }
    });

    // Rank by significance, ties broken by derivation index — a total
    // order, so the outcome is deterministic at any thread count.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[a]
            .check
            .significance
            .total_cmp(&scores[b].check.significance)
            .then(scores[a].index.cmp(&scores[b].index))
    });

    let best = order.first().map(|&i| scores[i].clone());
    let runner_up = order.get(1).map(|&i| scores[i].clone());
    let gap_log10 = match (&best, &runner_up) {
        (Some(b), Some(r)) => {
            let floor = f64::MIN_POSITIVE;
            (r.check.significance.max(floor)).log10() - (b.check.significance.max(floor)).log10()
        }
        _ => 0.0,
    };
    AccuseOutcome { scored: scores.len(), skipped_revoked, best, runner_up, gap_log10 }
}

/// Builds the leaked-evidence view from raw `(tuple, weight)`
/// observations — the shape a leak arrives in, whether parsed from a
/// `POST /accuse` body or scraped from a suspect's files.
pub fn observed_from_pairs(pairs: Vec<(Vec<Element>, i64)>) -> ObservedWeights {
    struct LeakServer {
        pairs: Vec<(Vec<Element>, i64)>,
    }
    impl AnswerServer for LeakServer {
        fn num_parameters(&self) -> usize {
            1
        }
        fn answer(&self, _i: usize) -> Vec<(Vec<Element>, i64)> {
            self.pairs.clone()
        }
    }
    ObservedWeights::collect(&LeakServer { pairs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derive::MasterSecret;
    use qpwm_core::detect::DEFAULT_DELTA;
    use qpwm_core::pairing::{Pair, PairMarking};
    use qpwm_structures::Weights;

    /// 32 disjoint unit pairs over elements 0..64 — enough capacity for
    /// decisive significance.
    fn fixture(recipients: usize) -> (Fingerprinter, KeyRegistry) {
        let pairs: Vec<Pair> = (0..32)
            .map(|i| Pair { plus: vec![2 * i], minus: vec![2 * i + 1] })
            .collect();
        let mut original = Weights::new(1);
        for e in 0..64u32 {
            original.set(&[e], 500 + i64::from(e));
        }
        let fp = Fingerprinter::new(PairMarking::new(pairs), original);
        let mut reg = KeyRegistry::new(MasterSecret::from_u64(0x5eed));
        for i in 0..recipients {
            reg.issue(&format!("tenant-{i}"), 1_000 + i as u64).expect("issue");
        }
        (fp, reg)
    }

    fn leak_of(fp: &Fingerprinter, reg: &KeyRegistry, recipient: &str) -> ObservedWeights {
        let stamped = fp.stamp(reg.key_for(recipient).expect("issued"));
        let pairs: Vec<(Vec<Element>, i64)> =
            (0..64u32).map(|e| (vec![e], stamped.get(&[e]))).collect();
        observed_from_pairs(pairs)
    }

    #[test]
    fn the_leaker_is_accused_with_a_wide_gap() {
        let (fp, reg) = fixture(50);
        let leaked = leak_of(&fp, &reg, "tenant-17");
        let outcome = accuse(&fp, &reg, &leaked, DEFAULT_DELTA);
        assert_eq!(outcome.scored, 50);
        let accused = outcome.accused().expect("a clean leak is decisive");
        assert_eq!(accused.recipient, "tenant-17");
        assert_eq!(accused.check.verdict, Verdict::MarkPresent);
        assert!(
            outcome.gap_log10 > 3.0,
            "runner-up should trail by orders of magnitude, gap={}",
            outcome.gap_log10
        );
    }

    #[test]
    fn revoked_recipients_are_excluded_from_scoring() {
        let (fp, mut reg) = fixture(10);
        let leaked = leak_of(&fp, &reg, "tenant-3");
        reg.revoke("tenant-3", 9_999).expect("revoke");
        let outcome = accuse(&fp, &reg, &leaked, DEFAULT_DELTA);
        assert_eq!(outcome.scored, 9);
        assert_eq!(outcome.skipped_revoked, 1);
        assert!(
            outcome.best.as_ref().is_none_or(|b| b.recipient != "tenant-3"),
            "a revoked recipient must never appear in the ranking"
        );
        // and the leak of a *revoked* copy must not frame an innocent
        // active recipient
        assert!(outcome.accused().is_none(), "{:?}", outcome.best);
    }

    #[test]
    fn an_unrelated_leak_accuses_nobody() {
        let (fp, reg) = fixture(25);
        // the pristine original: no fingerprint at all
        let pairs: Vec<(Vec<Element>, i64)> =
            (0..64u32).map(|e| (vec![e], fp.original().get(&[e]))).collect();
        let outcome = accuse(&fp, &reg, &observed_from_pairs(pairs), DEFAULT_DELTA);
        assert_eq!(outcome.scored, 25);
        assert!(outcome.accused().is_none(), "never accuse an innocent: {:?}", outcome.best);
    }

    #[test]
    fn outcome_is_thread_invariant() {
        let (fp, reg) = fixture(64);
        let leaked = leak_of(&fp, &reg, "tenant-40");
        qpwm_par::set_threads(1);
        let one = accuse(&fp, &reg, &leaked, DEFAULT_DELTA);
        qpwm_par::set_threads(4);
        let four = accuse(&fp, &reg, &leaked, DEFAULT_DELTA);
        qpwm_par::set_threads(1);
        assert_eq!(one, four);
    }
}
