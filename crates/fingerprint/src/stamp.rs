//! Stamping: a recipient's bits applied to the shared answer family.
//!
//! The [`Fingerprinter`] owns the scheme's secret pair marking and the
//! original (unmarked) weight table — the two things every recipient's
//! copy is derived from. It exposes the operation at two granularities:
//!
//! * [`Fingerprinter::stamp`] — the offline path: a full stamped
//!   [`Weights`] table, exactly `marking.apply(original, bits)`.
//! * [`Fingerprinter::delta_map`] — the serving hot path: the sparse
//!   per-weight-key ±1 plan a server splices into precomputed wire
//!   bytes. The family is *never* re-materialized per recipient; a plan
//!   is `O(pairs)` to build and `O(1)` per answer tuple to apply.

use crate::derive::RecipientKey;
use qpwm_core::pairing::PairMarking;
use qpwm_structures::{WeightKey, Weights};
use std::collections::HashMap;

/// Turns derived recipient keys into stamped weight tables or sparse
/// stamping plans over one shared marking.
#[derive(Debug, Clone)]
pub struct Fingerprinter {
    marking: PairMarking,
    original: Weights,
}

impl Fingerprinter {
    /// A fingerprinter over the scheme's secret `marking` and the
    /// `original` weights every recipient copy is derived from.
    pub fn new(marking: PairMarking, original: Weights) -> Fingerprinter {
        Fingerprinter { marking, original }
    }

    /// The shared pair marking.
    pub fn marking(&self) -> &PairMarking {
        &self.marking
    }

    /// The original weights (the detection reference).
    pub fn original(&self) -> &Weights {
        &self.original
    }

    /// Fingerprint capacity in bits (= the marking's pair count).
    pub fn capacity(&self) -> usize {
        self.marking.capacity()
    }

    /// The message bits this recipient's copy carries.
    pub fn bits_for(&self, key: RecipientKey) -> Vec<bool> {
        key.message_bits(self.capacity())
    }

    /// The full stamped weight table for one recipient — the offline
    /// equivalent of what the serving hot path assembles per answer.
    pub fn stamp(&self, key: RecipientKey) -> Weights {
        self.marking.apply(&self.original, &self.bits_for(key))
    }

    /// The sparse stamping plan for one recipient: weight key → ±1
    /// delta. Bit `1` adds to the pair's plus key and subtracts from
    /// its minus key; bit `0` the opposite — the same convention as
    /// [`PairMarking::apply`], just without touching a weight table.
    pub fn delta_map(&self, key: RecipientKey) -> HashMap<WeightKey, i64> {
        let bits = self.bits_for(key);
        let mut deltas: HashMap<WeightKey, i64> =
            HashMap::with_capacity(self.marking.capacity() * 2);
        for (pair, &bit) in self.marking.pairs().iter().zip(&bits) {
            let sign = if bit { 1 } else { -1 };
            *deltas.entry(pair.plus.clone()).or_insert(0) += sign;
            *deltas.entry(pair.minus.clone()).or_insert(0) -= sign;
        }
        deltas
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derive::MasterSecret;
    use qpwm_core::pairing::Pair;

    fn fingerprinter() -> Fingerprinter {
        let pairs: Vec<Pair> = (0..8)
            .map(|i| Pair { plus: vec![2 * i], minus: vec![2 * i + 1] })
            .collect();
        let mut original = Weights::new(1);
        for e in 0..16u32 {
            original.set(&[e], 100 + i64::from(e));
        }
        Fingerprinter::new(PairMarking::new(pairs), original)
    }

    #[test]
    fn delta_map_agrees_with_full_apply() {
        let fp = fingerprinter();
        let key = MasterSecret::from_u64(3).derive(5);
        let stamped = fp.stamp(key);
        let deltas = fp.delta_map(key);
        for e in 0..16u32 {
            let base = fp.original().get(&[e]);
            let delta = deltas.get(&vec![e]).copied().unwrap_or(0);
            assert_eq!(stamped.get(&[e]), base + delta, "tuple {e}");
            assert_eq!(delta.abs(), 1, "disjoint unit pairs move every key by exactly 1");
        }
    }

    #[test]
    fn distinct_recipients_get_distinct_stamps() {
        let fp = fingerprinter();
        let master = MasterSecret::from_u64(11);
        let a = fp.stamp(master.derive(0));
        let b = fp.stamp(master.derive(1));
        assert_ne!(
            (0..16u32).map(|e| a.get(&[e])).collect::<Vec<_>>(),
            (0..16u32).map(|e| b.get(&[e])).collect::<Vec<_>>(),
        );
        // same recipient, same stamp — stamping is a pure function
        let again = fp.stamp(master.derive(0));
        assert_eq!(
            (0..16u32).map(|e| a.get(&[e])).collect::<Vec<_>>(),
            (0..16u32).map(|e| again.get(&[e])).collect::<Vec<_>>(),
        );
    }
}
