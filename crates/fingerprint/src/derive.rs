//! Per-recipient key derivation: an HMAC-style two-pass splitmix chain.
//!
//! The shape follows HMAC — `F(k, v) = H((k ^ opad) ‖ H((k ^ ipad) ‖ v))`
//! — with the workspace's splitmix64 finalizer standing in for the hash
//! compression function. Two properties matter here and both are
//! inherited from the construction:
//!
//! * **determinism**: `(master, index)` fully determines the recipient
//!   key, so any process holding the master secret re-derives any
//!   recipient's bits without a key database — the ledger only records
//!   *who* holds *which index*;
//! * **spread**: the double mix decorrelates neighboring indices, so
//!   recipients `i` and `i+1` receive message bit vectors that disagree
//!   on about half their positions — which is exactly what the
//!   accusation scorer needs to separate them.
//!
//! This is *not* a cryptographic guarantee (nothing in this hermetic
//! workspace is); it is the deterministic, dependency-free analogue the
//! rest of the system can be measured against.

use qpwm_rng::Rng;

/// HMAC inner pad (the classic `0x36` byte, repeated).
const INNER_PAD: u64 = 0x3636_3636_3636_3636;
/// HMAC outer pad (the classic `0x5c` byte, repeated).
const OUTER_PAD: u64 = 0x5c5c_5c5c_5c5c_5c5c;

/// splitmix64 finalizer — the same mixing constants the workspace RNG
/// uses for seeding (`qpwm-rng` keeps its copy private; the chain here
/// is a derivation primitive, not a stream generator).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The owner's master fingerprinting secret.
///
/// One `MasterSecret` serves every recipient: per-recipient keys are
/// derived, never stored. Keep it out of ledgers and logs — the ledger
/// format deliberately has no field for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MasterSecret {
    key: u64,
}

impl MasterSecret {
    /// Wraps a raw 64-bit secret.
    pub fn from_u64(key: u64) -> MasterSecret {
        MasterSecret { key }
    }

    /// Folds an arbitrary passphrase into a master secret: each byte is
    /// absorbed through the splitmix finalizer, so `"hunter2"` and
    /// `"hunter3"` land far apart.
    pub fn from_text(passphrase: &str) -> MasterSecret {
        let mut key = mix(passphrase.len() as u64);
        for &b in passphrase.as_bytes() {
            key = mix(key ^ u64::from(b));
        }
        MasterSecret { key }
    }

    /// Derives recipient key number `index`:
    /// `outer_mix(inner_mix(index))` keyed by the padded master secret.
    pub fn derive(&self, index: u64) -> RecipientKey {
        let inner = mix(mix(self.key ^ INNER_PAD).wrapping_add(index));
        let seed = mix(mix(self.key ^ OUTER_PAD).wrapping_add(inner));
        RecipientKey { index, seed }
    }
}

/// One recipient's derived key: the derivation index plus the expanded
/// seed. Cheap to copy, cheap to re-derive, never persisted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RecipientKey {
    /// The derivation index recorded in the issuance ledger.
    pub index: u64,
    seed: u64,
}

impl RecipientKey {
    /// The canonical byte form (little-endian `index ‖ seed`) — what
    /// "byte-identical derivation" is asserted against in tests.
    pub fn to_bytes(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.index.to_le_bytes());
        out[8..].copy_from_slice(&self.seed.to_le_bytes());
        out
    }

    /// Expands the key into this recipient's message bits at a given
    /// marking capacity. The expansion is a seeded stream, so one key
    /// serves markings of any capacity and a capacity change (re-keyed
    /// scheme) does not require re-issuing recipients.
    pub fn message_bits(self, capacity: usize) -> Vec<bool> {
        let mut rng = Rng::seed_from_u64(self.seed);
        (0..capacity).map(|_| rng.gen_bool(0.5)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic_and_index_sensitive() {
        let master = MasterSecret::from_u64(0xfeed);
        assert_eq!(master.derive(7), master.derive(7));
        assert_ne!(master.derive(7), master.derive(8));
        assert_ne!(
            MasterSecret::from_u64(1).derive(7),
            MasterSecret::from_u64(2).derive(7),
            "different masters must not share recipient keys"
        );
    }

    #[test]
    fn neighboring_indices_disagree_on_about_half_their_bits() {
        let master = MasterSecret::from_u64(42);
        let capacity = 256;
        for index in 0..16u64 {
            let a = master.derive(index).message_bits(capacity);
            let b = master.derive(index + 1).message_bits(capacity);
            let differ = a.iter().zip(&b).filter(|(x, y)| x != y).count();
            assert!(
                (capacity / 4..=3 * capacity / 4).contains(&differ),
                "index {index}: neighbors differ on {differ}/{capacity} bits"
            );
        }
    }

    #[test]
    fn passphrase_folding_separates_close_inputs() {
        let a = MasterSecret::from_text("hunter2");
        let b = MasterSecret::from_text("hunter3");
        assert_ne!(a, b);
        assert_eq!(a, MasterSecret::from_text("hunter2"));
        assert_ne!(
            MasterSecret::from_text(""),
            MasterSecret::from_u64(0),
            "empty passphrase is still mixed, not the zero key"
        );
    }

    #[test]
    fn byte_form_round_trips_the_fields() {
        let key = MasterSecret::from_u64(9).derive(3);
        let bytes = key.to_bytes();
        assert_eq!(u64::from_le_bytes(bytes[..8].try_into().unwrap()), 3);
        assert_eq!(bytes.len(), 16);
    }
}
