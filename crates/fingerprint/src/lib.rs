//! Multi-tenant fingerprinting: one answer family, millions of
//! recipients.
//!
//! The core marker embeds one owner key into one weight table. This
//! crate turns that marker into a *fingerprinting* service in the sense
//! of the database-watermarking literature: every recipient of the data
//! receives a copy carrying a distinct, detectable mark derived from a
//! single master secret, so a leaked answer set can be traced back to
//! the recipient who received it.
//!
//! The pieces, in pipeline order:
//!
//! * [`MasterSecret`] / [`RecipientKey`] ([`derive`]) — an HMAC-style
//!   two-pass splitmix chain maps `(master, index)` to a per-recipient
//!   seed; the seed expands to the recipient's message bits at any
//!   marking capacity. Derivation is pure arithmetic: no answer-family
//!   re-materialization, no per-recipient state beyond the index.
//! * [`KeyRegistry`] ([`registry`]) — immutable issuance records
//!   (recipient id, derivation index, issued-at, revocation status)
//!   replayed from an append-only JSON-lines ledger.
//! * [`Fingerprinter`] ([`stamp`]) — reuses the existing
//!   [`qpwm_core::pairing::PairMarking`] machinery to turn a
//!   recipient's bits into a stamped weight table, or into the sparse
//!   per-tuple delta map a serving hot path splices into precomputed
//!   wire bytes.
//! * [`accuse`](accuse::accuse) ([`accuse`]) — the forensic half:
//!   extract once from the leaked observations, then score every
//!   issued, non-revoked recipient with the
//!   [`claim_check`](qpwm_core::detect::DetectionReport::claim_check_effective)
//!   significance framework and return the accused recipient, its
//!   significance, and the runner-up gap. A leak that matches nobody at
//!   the significance floor yields
//!   [`Verdict::Abstain`](qpwm_core::detect::Verdict) — the subsystem
//!   never accuses an innocent recipient to say *something*.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuse;
pub mod derive;
pub mod registry;
pub mod stamp;

pub use accuse::{accuse, observed_from_pairs, Accusation, AccuseOutcome};
pub use derive::{MasterSecret, RecipientKey};
pub use registry::{append_ledger_line, IssuanceRecord, KeyRegistry, RegistryError};
pub use stamp::Fingerprinter;
