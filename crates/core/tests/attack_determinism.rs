//! Seeded-determinism property tests for every [`Attack`] variant: the
//! battleground's byte-identical RESULTS promise rests on each attack
//! being a pure function of `(carrier, family, seed)` — same seed ⇒
//! byte-identical attacked weights (and, for the carrier-level attacks,
//! identical dropped/inserted records), different seed ⇒ a genuinely
//! different transformation for every randomized variant.

use qpwm_core::adversary::Attack;
use qpwm_core::scheme::MarkedCarrier;
use qpwm_structures::{AnswerFamily, WeightKey, Weights};

/// A 64-tuple family: 16 disjoint answer sets of 4 singletons each.
fn family() -> AnswerFamily {
    let sets: Vec<Vec<WeightKey>> = (0..16u32)
        .map(|s| (4 * s..4 * s + 4).map(|e| vec![e]).collect())
        .collect();
    let params = (0..sets.len()).map(|i| vec![1000 + i as u32]).collect();
    AnswerFamily::from_nested(params, &sets)
}

fn weights() -> Weights {
    let mut w = Weights::new(1);
    for e in 0..64u32 {
        w.set(&[e], 500 + i64::from(e) * 7);
    }
    w
}

/// Every attack variant under test, with its display name.
fn all_attacks(answers: &AnswerFamily, weights: &Weights) -> Vec<(&'static str, Attack)> {
    // A plausible colluding copy: the same weights nudged on one tuple.
    let mut copy = weights.clone();
    copy.add(&[3u32], 5);
    vec![
        ("uniform-noise", Attack::UniformNoise { amplitude: 3, fraction: 0.4 }),
        ("rounding", Attack::Rounding { granularity: 4 }),
        ("constant-shift", Attack::ConstantShift { delta: 9 }),
        ("averaging", Attack::Averaging { copies: vec![copy] }),
        ("subset-selection", Attack::SubsetSelection { drop_fraction: 0.5 }),
        (
            "fake-insertion",
            Attack::FakeInsertion { count: answers.active_universe().len() / 2, amplitude: 3 },
        ),
        ("rerandomize", Attack::Rerandomize { fraction: 0.5 }),
    ]
}

#[test]
fn same_seed_gives_byte_identical_weights() {
    let answers = family();
    let w = weights();
    for (name, attack) in all_attacks(&answers, &w) {
        for seed in [0u64, 1, 42, u64::MAX] {
            let a = attack.apply(&w, &answers, seed);
            let b = attack.apply(&w, &answers, seed);
            assert_eq!(a, b, "{name} is not deterministic at seed {seed}");
        }
    }
}

#[test]
fn same_seed_gives_identical_carrier_transcripts() {
    let answers = family();
    let w = weights();
    let message = vec![true; 4];
    for (name, attack) in all_attacks(&answers, &w) {
        for seed in [7u64, 99] {
            let mut a = MarkedCarrier::clean(w.clone(), message.clone());
            let mut b = MarkedCarrier::clean(w.clone(), message.clone());
            attack.apply_carrier(&mut a, &answers, seed);
            attack.apply_carrier(&mut b, &answers, seed);
            assert_eq!(a.weights, b.weights, "{name} carrier weights differ at seed {seed}");
            assert_eq!(a.dropped, b.dropped, "{name} dropped set differs at seed {seed}");
            assert_eq!(a.inserted, b.inserted, "{name} inserted set differs at seed {seed}");
        }
    }
}

#[test]
fn different_seeds_change_randomized_attacks() {
    let answers = family();
    let w = weights();
    for (name, attack) in all_attacks(&answers, &w) {
        let deterministic = matches!(
            attack,
            Attack::Rounding { .. } | Attack::ConstantShift { .. } | Attack::Averaging { .. }
        );
        let mut a = MarkedCarrier::clean(w.clone(), vec![true]);
        let mut b = MarkedCarrier::clean(w.clone(), vec![true]);
        attack.apply_carrier(&mut a, &answers, 1);
        attack.apply_carrier(&mut b, &answers, 2);
        let identical = a.weights == b.weights && a.dropped == b.dropped && a.inserted == b.inserted;
        if deterministic {
            assert!(identical, "{name} should ignore the seed");
        } else {
            assert!(!identical, "{name} ignored its seed");
        }
    }
}

#[test]
fn subset_selection_only_drops_and_fake_insertion_only_inserts() {
    let answers = family();
    let w = weights();
    let mut sub = MarkedCarrier::clean(w.clone(), vec![true]);
    Attack::SubsetSelection { drop_fraction: 0.5 }.apply_carrier(&mut sub, &answers, 3);
    assert_eq!(sub.weights, w, "subsetting must not rewrite surviving weights");
    assert!(!sub.dropped.is_empty());
    assert!(sub.inserted.is_empty());

    let mut sup = MarkedCarrier::clean(w.clone(), vec![true]);
    Attack::FakeInsertion { count: 10, amplitude: 2 }.apply_carrier(&mut sup, &answers, 3);
    assert_eq!(sup.inserted.len(), 10);
    assert!(sup.dropped.is_empty());
    // Forged tuples live outside the real universe.
    let universe: std::collections::HashSet<WeightKey> =
        answers.universe_tuples().map(|t| t.to_vec()).collect();
    for (key, _) in &sup.inserted {
        assert!(!universe.contains(key), "forged tuple {key:?} collides with a real one");
    }
}
