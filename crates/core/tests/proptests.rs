//! Property-based tests for the watermarking core: pair markings,
//! detection, capacity counting and the adversarial wrapper.

use proptest::prelude::*;
use qpwm_core::capacity::CapacityProblem;
use qpwm_core::detect::{HonestServer, ObservedWeights};
use qpwm_core::pairing::{Pair, PairMarking};
use qpwm_structures::{WeightKey, Weights};
use std::collections::HashSet;

fn key(e: u32) -> WeightKey {
    vec![e]
}

/// Strategy: `p` disjoint pairs over elements 0..2p, plus base weights.
fn marking_strategy() -> impl Strategy<Value = (PairMarking, Weights)> {
    (1usize..12).prop_flat_map(|p| {
        proptest::collection::vec(-500i64..500, 2 * p).prop_map(move |vals| {
            let pairs: Vec<Pair> = (0..p)
                .map(|i| Pair { plus: key(2 * i as u32), minus: key(2 * i as u32 + 1) })
                .collect();
            let mut w = Weights::new(1);
            for (e, v) in vals.into_iter().enumerate() {
                w.set(&[e as u32], v);
            }
            (PairMarking::new(pairs), w)
        })
    })
}

fn message_strategy(max: usize) -> impl Strategy<Value = Vec<bool>> {
    proptest::collection::vec(any::<bool>(), max)
}

proptest! {
    #[test]
    fn marking_is_always_one_local((marking, w) in marking_strategy(), bits in message_strategy(12)) {
        let message = &bits[..marking.capacity().min(bits.len())];
        let marked = marking.apply(&w, message);
        prop_assert!(w.max_pointwise_diff(&marked) <= 1);
    }

    #[test]
    fn pair_sums_are_invariant((marking, w) in marking_strategy(), bits in message_strategy(12)) {
        // the (+1, −1) trick: each pair's summed weight never changes
        let message = &bits[..marking.capacity().min(bits.len())];
        let marked = marking.apply(&w, message);
        for pair in marking.pairs() {
            let before = w.get(&pair.plus) + w.get(&pair.minus);
            let after = marked.get(&pair.plus) + marked.get(&pair.minus);
            prop_assert_eq!(before, after);
        }
    }

    #[test]
    fn roundtrip_any_message((marking, w) in marking_strategy(), bits in message_strategy(12)) {
        prop_assume!(bits.len() >= marking.capacity());
        let message = &bits[..marking.capacity()];
        let marked = marking.apply(&w, message);
        let all: Vec<WeightKey> = (0..2 * marking.capacity() as u32).map(key).collect();
        let server = HonestServer::new(vec![all], marked);
        let report = marking.extract(&w, &ObservedWeights::collect(&server));
        prop_assert_eq!(report.bits.as_slice(), message);
        prop_assert_eq!(report.missing_pairs, 0);
    }

    #[test]
    fn global_distortion_bounded_by_separation(
        (marking, w) in marking_strategy(),
        bits in message_strategy(12),
        masks in proptest::collection::vec(0u32..(1 << 16), 1..6),
    ) {
        prop_assume!(bits.len() >= marking.capacity());
        let message = &bits[..marking.capacity()];
        let sets: Vec<Vec<WeightKey>> = masks
            .iter()
            .map(|m| (0..16u32).filter(|i| m >> i & 1 == 1).map(key).collect())
            .collect();
        let marked = marking.apply(&w, message);
        let seps = marking.separation_counts(&sets);
        for (set, sep) in sets.iter().zip(seps) {
            let before: i64 = set.iter().map(|k| w.get(k)).sum();
            let after: i64 = set.iter().map(|k| marked.get(k)).sum();
            prop_assert!((before - after).unsigned_abs() as usize <= sep);
        }
    }

    #[test]
    fn distortion_zero_on_sets_containing_whole_pairs(
        (marking, w) in marking_strategy(),
        bits in message_strategy(12),
    ) {
        prop_assume!(bits.len() >= marking.capacity());
        let message = &bits[..marking.capacity()];
        let marked = marking.apply(&w, message);
        // a set made of complete pairs sees zero distortion
        let set: Vec<WeightKey> = marking
            .pairs()
            .iter()
            .flat_map(|p| [p.plus.clone(), p.minus.clone()])
            .collect();
        let before: i64 = set.iter().map(|k| w.get(k)).sum();
        let after: i64 = set.iter().map(|k| marked.get(k)).sum();
        prop_assert_eq!(before, after);
    }

    #[test]
    fn capacity_counts_are_monotone_in_d(
        masks in proptest::collection::vec(0u32..256, 1..6),
    ) {
        let sets: Vec<Vec<WeightKey>> = masks
            .iter()
            .map(|m| (0..8u32).filter(|i| m >> i & 1 == 1).map(key).collect())
            .collect();
        let p = CapacityProblem::new(&sets);
        prop_assume!(p.num_elements() <= 8);
        let mut prev = 0u128;
        for d in 0..3i64 {
            let count = p.count_at_most(d);
            prop_assert!(count >= prev);
            prev = count;
        }
        // exact counts partition the at-most counts
        prop_assert_eq!(p.count_at_most(2), p.count_exactly(0) + p.count_exactly(1) + p.count_exactly(2));
    }

    #[test]
    fn brute_force_capacity_agrees(masks in proptest::collection::vec(0u32..64, 1..5)) {
        // compare the pruned counter against exhaustive enumeration on ≤ 6
        // elements
        let sets: Vec<Vec<WeightKey>> = masks
            .iter()
            .map(|m| (0..6u32).filter(|i| m >> i & 1 == 1).map(key).collect())
            .collect();
        let p = CapacityProblem::new(&sets);
        let n = p.num_elements();
        prop_assume!(n <= 6);
        // enumerate all 3^n assignments over the *union* elements
        let union: Vec<WeightKey> = {
            let mut u: Vec<WeightKey> = sets.iter().flatten().cloned().collect::<HashSet<_>>().into_iter().collect();
            u.sort_unstable();
            u
        };
        for d in 0..2i64 {
            let mut brute = 0u128;
            let mut assignment = vec![-1i64; union.len()];
            loop {
                let ok = sets.iter().all(|set| {
                    let sum: i64 = set
                        .iter()
                        .map(|k| {
                            let idx = union.binary_search(k).expect("union member");
                            assignment[idx]
                        })
                        .sum();
                    sum.abs() <= d
                });
                if ok {
                    brute += 1;
                }
                // odometer over {-1,0,1}^n
                let mut i = 0;
                loop {
                    if i == assignment.len() {
                        break;
                    }
                    assignment[i] += 1;
                    if assignment[i] <= 1 {
                        break;
                    }
                    assignment[i] = -1;
                    i += 1;
                }
                if i == assignment.len() {
                    break;
                }
            }
            prop_assert_eq!(p.count_at_most(d), brute, "d = {}", d);
        }
    }

    #[test]
    fn v2_engine_agrees_with_v1_enumerator(
        masks in proptest::collection::vec(0u32..4096, 1..7),
    ) {
        // the decomposed/memoized engine vs the plain branch-and-bound
        // reference, on overlapping sets over ≤ 12 elements
        let sets: Vec<Vec<WeightKey>> = masks
            .iter()
            .map(|m| (0..12u32).filter(|i| m >> i & 1 == 1).map(key).collect())
            .collect();
        let p = CapacityProblem::new(&sets);
        for d in 0..3i64 {
            let v1 = p.count_constrained_v1(&[-1, 0, 1], -d, d);
            for threads in [1usize, 2, 4] {
                prop_assert_eq!(p.count_at_most_with(threads, d), v1, "d = {}, threads = {}", d, threads);
            }
        }
    }

    #[test]
    fn capacity_count_invariant_under_set_permutation(
        masks in proptest::collection::vec(0u32..1024, 2..6),
        rot in 1usize..5,
    ) {
        let sets: Vec<Vec<WeightKey>> = masks
            .iter()
            .map(|m| (0..10u32).filter(|i| m >> i & 1 == 1).map(key).collect())
            .collect();
        let mut rotated = sets.clone();
        rotated.rotate_left(rot % sets.len());
        let p = CapacityProblem::new(&sets);
        let q = CapacityProblem::new(&rotated);
        for d in 0..3i64 {
            prop_assert_eq!(p.count_at_most(d), q.count_at_most(d), "d = {}", d);
        }
    }
}

/// End-to-end property: on random bounded-degree instances, the Theorem 3
/// scheme's Definition-2 contract holds for random messages.
mod scheme_properties {
    use super::*;
    
    use qpwm_core::detect::HonestServer;
    use qpwm_core::local_scheme::{LocalScheme, LocalSchemeConfig, SelectionStrategy};
    use qpwm_core::TreeScheme;
    use qpwm_logic::{Formula, ParametricQuery};
    use qpwm_structures::{Schema, StructureBuilder, WeightedStructure};
    use qpwm_trees::automaton::{TreeAutomaton, STAR};
    use qpwm_trees::pebble::{pebbled_symbol, PebbledQuery};
    use qpwm_trees::tree::BinaryTree;
    use std::sync::Arc;

    fn bounded_degree_instance(
        n: u32,
        edges: &[(u32, u32)],
        weights: &[i64],
    ) -> WeightedStructure {
        let schema = Arc::new(Schema::graph());
        let mut b = StructureBuilder::new(schema, n);
        let mut degree = vec![0u32; n as usize];
        for &(u, v) in edges {
            let (u, v) = (u % n, v % n);
            if u != v && degree[u as usize] < 4 && degree[v as usize] < 4 {
                degree[u as usize] += 1;
                degree[v as usize] += 1;
                b.add(0, &[u, v]);
                b.add(0, &[v, u]);
            }
        }
        let s = b.build();
        let mut w = Weights::new(1);
        for (e, &val) in s.universe().zip(weights.iter().cycle()) {
            w.set(&[e], val.rem_euclid(10_000));
        }
        WeightedStructure::new(s, w)
    }

    proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(12))]
        #[test]
        fn local_scheme_contract_on_random_instances(
            n in 12u32..40,
            edges in proptest::collection::vec((0u32..40, 0u32..40), 10..60),
            weights in proptest::collection::vec(0i64..10_000, 8),
            bits in proptest::collection::vec(any::<bool>(), 64),
            d in 1u64..4,
        ) {
            let instance = bounded_degree_instance(n, &edges, &weights);
            let query = ParametricQuery::new(Formula::atom(0, &[0, 1]), vec![0], vec![1]);
            let config = LocalSchemeConfig {
                rho: 1,
                d,
                strategy: SelectionStrategy::Greedy,
                seed: 5,
            };
            let Ok(scheme) = LocalScheme::build(&instance, &query, &config) else {
                return Ok(()); // sparse instances may have no pairs: fine
            };
            let message: Vec<bool> = bits.iter().copied().take(scheme.capacity()).collect();
            let marked = scheme.mark(instance.weights(), &message);
            let audit = scheme.audit(instance.weights(), &marked);
            prop_assert!(audit.is_c_local(1));
            prop_assert!(audit.is_d_global(d as i64), "global {}", audit.max_global);
            let server = HonestServer::new(scheme.answers().clone(), marked);
            let report = scheme.detect(instance.weights(), &server);
            prop_assert_eq!(&report.bits[..message.len()], message.as_slice());
        }

        #[test]
        fn tree_scheme_contract_on_random_trees(
            nodes in proptest::collection::vec((0u32..2, any::<u32>()), 24..120),
            bits in proptest::collection::vec(any::<bool>(), 64),
            weights in proptest::collection::vec(0i64..10_000, 8),
        ) {
            // random binary tree via slot insertion
            let mut builder = qpwm_trees::tree::TreeBuilder::new();
            let root = builder.add_node(nodes[0].0);
            let mut slots = vec![(root, true), (root, false)];
            for &(label, pick) in &nodes[1..] {
                let idx = (pick as usize) % slots.len();
                let (parent, left) = slots.swap_remove(idx);
                let node = builder.add_node(label);
                if left {
                    builder.set_left(parent, node);
                } else {
                    builder.set_right(parent, node);
                }
                slots.push((node, true));
                slots.push((node, false));
            }
            let tree: BinaryTree = builder.build(root);
            // query: pebble on a label-1 node (2 states)
            let mut a = TreeAutomaton::new(2, 0);
            for base in [0u32, 1] {
                for pbits in 0..4u32 {
                    let sym = pebbled_symbol(base, pbits, 2);
                    let hit = base == 1 && pbits & 0b10 != 0;
                    for ql in [STAR, 0, 1] {
                        for qr in [STAR, 0, 1] {
                            let seen = hit || ql == 1 || qr == 1;
                            a.add_transition(ql, qr, sym, u32::from(seen));
                        }
                    }
                }
            }
            a.set_accepting(1, true);
            let query = PebbledQuery::new(a, 1);
            let scheme = TreeScheme::build(&tree, &query, 2);
            let mut w = Weights::new(1);
            for (node, &val) in (0..tree.len() as u32).zip(weights.iter().cycle()) {
                w.set(&[node], val);
            }
            let message: Vec<bool> = bits.iter().copied().take(scheme.capacity()).collect();
            let marked = scheme.mark(&w, &message);
            let audit = scheme.audit(&w, &marked);
            prop_assert!(audit.is_c_local(1));
            prop_assert!(audit.is_d_global(1), "global {}", audit.max_global);
            let server = HonestServer::new(scheme.family().clone(), marked);
            let report = scheme.detect(&w, &server);
            prop_assert_eq!(&report.bits[..message.len()], message.as_slice());
        }
    }
}

proptest! {
    /// Key files round-trip arbitrary pair lists.
    #[test]
    fn keyfile_roundtrip(
        raw_pairs in proptest::collection::vec(
            (proptest::collection::vec(0u32..1000, 1..3),
             proptest::collection::vec(0u32..1000, 1..3)),
            0..24,
        ),
        d in 0u64..10,
    ) {
        use qpwm_core::keyfile::SchemeKey;
        use qpwm_core::pairing::Pair;
        let pairs: Vec<Pair> = raw_pairs
            .into_iter()
            .map(|(plus, minus)| Pair { plus, minus })
            .collect();
        let key = SchemeKey { marking: PairMarking::new(pairs), d };
        let text = key.to_text();
        let back = SchemeKey::from_text(&text).expect("round-trips");
        prop_assert_eq!(back, key);
    }
}

proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]
    /// `tree_to_kexpr` reproduces exactly the tree's edges on random
    /// rooted trees, within 3 labels.
    #[test]
    fn tree_to_kexpr_matches_random_trees(
        parent_hints in proptest::collection::vec(any::<u32>(), 1..40),
    ) {
        use qpwm_core::cliquewidth::tree_to_kexpr;
        let mut parent: Vec<Option<u32>> = vec![None];
        for (i, hint) in parent_hints.iter().enumerate() {
            parent.push(Some(hint % (i as u32 + 1)));
        }
        let (expr, order) = tree_to_kexpr(&parent);
        prop_assert!(expr.max_label() < 3);
        let graph = expr.eval();
        prop_assert_eq!(graph.universe_size() as usize, parent.len());
        let mut produced = std::collections::BTreeSet::new();
        for t in graph.tuples(0) {
            let (u, v) = (order[t[0] as usize], order[t[1] as usize]);
            produced.insert((u.min(v), u.max(v)));
        }
        let expected: std::collections::BTreeSet<(u32, u32)> = parent
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|p| (p.min(i as u32), p.max(i as u32))))
            .collect();
        prop_assert_eq!(produced, expected);
    }

    /// `pathdecomp_to_kexpr` reproduces random path powers.
    #[test]
    fn pathdecomp_matches_random_path_powers(n in 2u32..30, k in 1u32..4) {
        use qpwm_core::cliquewidth::{path_power, pathdecomp_to_kexpr};
        let (bags, edges) = path_power(n, k);
        let (expr, order) =
            pathdecomp_to_kexpr(&bags, &edges, k as usize).expect("valid decomposition");
        let graph = expr.eval();
        let mut produced = std::collections::BTreeSet::new();
        for t in graph.tuples(0) {
            let (u, v) = (order[t[0] as usize], order[t[1] as usize]);
            produced.insert((u.min(v), u.max(v)));
        }
        let expected: std::collections::BTreeSet<(u32, u32)> = edges.iter().copied().collect();
        prop_assert_eq!(produced, expected);
    }
}
