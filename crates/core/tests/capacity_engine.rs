//! Deterministic property tests for the v2 capacity engine: algebraic
//! invariants (monotonicity, the `3^|W|` ceiling, permutation and
//! reordering invariance, component factorization) plus the three-way
//! differential pin v1 enumerator == v2 engine == Ryser permanent on
//! the Theorem 1 reduction instances — all at `|W| ≤ 12` where the v1
//! reference is fast, and the `|W| = 24` union-of-cycles headline the
//! old enumerator could not reach.

use qpwm_core::capacity::{Bipartite, CapacityProblem};
use qpwm_structures::WeightKey;

fn key(e: u32) -> WeightKey {
    vec![e]
}

/// Deterministic splitmix-ish generator so every run sees the same
/// instances (no proptest dependency in the hermetic workspace).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Random overlapping constraint family over `n` elements.
fn random_sets(rng: &mut Lcg, n: u32, num_sets: usize) -> Vec<Vec<WeightKey>> {
    (0..num_sets)
        .map(|_| {
            let mask = rng.next();
            (0..n).filter(|i| mask >> i & 1 == 1).map(key).collect()
        })
        .collect()
}

#[test]
fn count_at_most_is_monotone_in_d() {
    let mut rng = Lcg(0x5eed0001);
    for _ in 0..20 {
        let n = 4 + (rng.next() % 8) as u32;
        let num_sets = 1 + (rng.next() % 5) as usize;
        let sets = random_sets(&mut rng, n, num_sets);
        let p = CapacityProblem::new(&sets);
        let mut prev = 0u128;
        for d in 0..=(n as i64) {
            let cur = p.count_at_most(d);
            assert!(cur >= prev, "count_at_most must be monotone in d (n = {n}, d = {d})");
            prev = cur;
        }
    }
}

#[test]
fn count_at_most_is_bounded_by_3_pow_w() {
    let mut rng = Lcg(0x5eed0002);
    for _ in 0..20 {
        let n = 3 + (rng.next() % 9) as u32;
        let num_sets = 1 + (rng.next() % 5) as usize;
        let sets = random_sets(&mut rng, n, num_sets);
        let p = CapacityProblem::new(&sets);
        let ceiling = 3u128.pow(p.num_elements() as u32);
        for d in 0..=(n as i64) {
            assert!(p.count_at_most(d) <= ceiling);
        }
        // A budget that swallows every extreme sum hits the ceiling.
        assert_eq!(p.count_at_most(n as i64), ceiling);
    }
}

#[test]
fn count_is_invariant_under_constraint_permutation() {
    let mut rng = Lcg(0x5eed0003);
    for _ in 0..15 {
        let n = 4 + (rng.next() % 8) as u32;
        let num_sets = 2 + (rng.next() % 4) as usize;
        let sets = random_sets(&mut rng, n, num_sets);
        let p = CapacityProblem::new(&sets);
        // Deterministic shuffle of the constraint list.
        let mut permuted = sets.clone();
        for i in (1..permuted.len()).rev() {
            permuted.swap(i, (rng.next() % (i as u64 + 1)) as usize);
        }
        let q = CapacityProblem::new(&permuted);
        for d in 0..=2i64 {
            assert_eq!(p.count_at_most(d), q.count_at_most(d), "d = {d}");
        }
    }
}

#[test]
fn count_is_invariant_under_element_reordering() {
    let mut rng = Lcg(0x5eed0004);
    for _ in 0..15 {
        let n = 4 + (rng.next() % 8) as u32;
        let num_sets = 2 + (rng.next() % 4) as usize;
        let sets = random_sets(&mut rng, n, num_sets);
        // Relabel elements by a deterministic permutation: the induced
        // problem is isomorphic, so every count must match.
        let mut perm: Vec<u32> = (0..n).collect();
        for i in (1..perm.len()).rev() {
            perm.swap(i, (rng.next() % (i as u64 + 1)) as usize);
        }
        let relabeled: Vec<Vec<WeightKey>> = sets
            .iter()
            .map(|set| set.iter().map(|w| key(perm[w[0] as usize])).collect())
            .collect();
        let p = CapacityProblem::new(&sets);
        let q = CapacityProblem::new(&relabeled);
        for d in 0..=2i64 {
            assert_eq!(p.count_at_most(d), q.count_at_most(d), "d = {d}");
        }
    }
}

#[test]
fn component_decomposed_count_equals_monolithic() {
    // Two independent blocks glued into one problem: the engine's
    // factored count must equal the v1 monolithic enumeration, and
    // must equal the product of the blocks counted separately.
    let mut rng = Lcg(0x5eed0005);
    for _ in 0..10 {
        let na = 3 + (rng.next() % 4) as u32;
        let nb = 3 + (rng.next() % 4) as u32;
        let block_a = random_sets(&mut rng, na, 2);
        let block_b: Vec<Vec<WeightKey>> = random_sets(&mut rng, nb, 2)
            .into_iter()
            .map(|set| set.into_iter().map(|w| key(w[0] + 100)).collect())
            .collect();
        let mut combined = block_a.clone();
        combined.extend(block_b.iter().cloned());
        let whole = CapacityProblem::new(&combined);
        let pa = CapacityProblem::new(&block_a);
        let pb = CapacityProblem::new(&block_b);
        for d in 0..=2i64 {
            let mono = whole.count_constrained_v1(&[-1, 0, 1], -d, d);
            assert_eq!(whole.count_at_most(d), mono, "engine vs monolithic, d = {d}");
            assert_eq!(pa.count_at_most(d) * pb.count_at_most(d), mono, "product, d = {d}");
        }
    }
}

#[test]
fn v1_v2_and_ryser_agree_on_reduction_instances() {
    // Theorem 1 reduction: permanents of random bipartite graphs,
    // counted three ways. |W| = number of edges ≤ 12 keeps v1 fast.
    let mut rng = Lcg(0x5eed0006);
    for n in 2..=4usize {
        for _ in 0..5 {
            let adj: Vec<Vec<bool>> =
                (0..n).map(|_| (0..n).map(|_| rng.next() & 1 == 1).collect()).collect();
            let g = Bipartite::new(adj);
            let problem = g.to_marking_problem();
            if problem.num_elements() > 12 {
                continue;
            }
            let ryser = g.permanent();
            let v1 = problem.count_constrained_v1(&[0, 1], 1, 1);
            let v2 = problem.count_constrained(&[0, 1], 1, 1);
            assert_eq!(v1, v2, "n = {n}");
            assert_eq!(v2, ryser, "n = {n}");
        }
    }
}

#[test]
fn engine_is_deterministic_across_thread_counts() {
    // The acceptance-criteria sweep: same instance, threads 1/2/4,
    // byte-identical counts (fork-join shape is thread-independent).
    let mut rng = Lcg(0x5eed0007);
    for _ in 0..8 {
        let n = 10 + (rng.next() % 9) as u32; // 10..=18: crosses the split threshold
        let num_sets = 3 + (rng.next() % 3) as usize;
        let sets = random_sets(&mut rng, n, num_sets);
        let p = CapacityProblem::new(&sets);
        for d in 0..=2i64 {
            let reference = p.count_at_most_with(1, d);
            for threads in [2usize, 4] {
                assert_eq!(p.count_at_most_with(threads, d), reference, "d = {d}, {threads} threads");
            }
        }
    }
}

#[test]
fn headline_union_of_cycles_at_w24() {
    // The issue's headline: exact #Mark(≤ d) at |W| ≥ 24 on a union of
    // cycles — the v1 enumerator saturated at |W| = 8. Expected counts
    // are the per-cycle v1 reference raised to the number of cycles.
    let (cycles, len) = (4u32, 6u32);
    let mut sets: Vec<Vec<WeightKey>> = Vec::new();
    for c in 0..cycles {
        let base = c * len;
        for i in 0..len {
            sets.push(vec![key(base + i), key(base + (i + 1) % len)]);
        }
    }
    let p = CapacityProblem::new(&sets);
    assert_eq!(p.num_elements(), 24);
    let one: Vec<Vec<WeightKey>> = (0..len).map(|i| vec![key(i), key((i + 1) % len)]).collect();
    let single = CapacityProblem::new(&one);
    for d in 0..=3i64 {
        let expected = single.count_constrained_v1(&[-1, 0, 1], -d, d).pow(cycles);
        for threads in [1usize, 4] {
            assert_eq!(p.count_at_most_with(threads, d), expected, "d = {d}, {threads} threads");
        }
    }
    // And the saturation ceiling is respected: d = |W| gives 3^24.
    assert_eq!(p.count_at_most(24), 3u128.pow(24));
}
