//! Incremental watermarking (paper, section 5).
//!
//! * **Weights-only updates** (Theorem 7): when the owner republishes new
//!   weights over the same structure, re-applying the stored mark deltas
//!   preserves both the distortion bound and detectability, because the
//!   detector is differential (it only sees `W'(w̄) − W(w̄)`).
//! * **Type-preserving updates** (Theorem 8): when the structure itself
//!   changes but no neighborhood type appears or disappears, the original
//!   pair marking remains a `(|W|, η, 0, 0)`-procedure; we provide the
//!   type-census comparison that classifies an update, and the audit that
//!   measures the post-update distortion.
//! * **Auto-collusion**: re-marking from scratch after every update lets
//!   a server average successive versions to erase the mark — simulated
//!   in [`crate::adversary::Attack::Averaging`] and demonstrated in the
//!   experiments.

use crate::pairing::PairMarking;
use qpwm_structures::{
    are_isomorphic, AnswerFamily, GaifmanGraph, NeighborhoodTypes, Structure, WeightKey, Weights,
};
use std::collections::{BTreeMap, HashSet};

/// The stored mark: per-weight deltas (the difference the marker applied)
/// that can be re-applied to any future weight assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarkDeltas {
    deltas: Vec<(WeightKey, i64)>,
}

impl MarkDeltas {
    /// Extracts the deltas of a marked instance.
    pub fn from_marked(original: &Weights, marked: &Weights) -> Self {
        let mut deltas = Vec::new();
        for key in marked.keys_sorted() {
            let d = marked.get(&key) - original.get(&key);
            if d != 0 {
                deltas.push((key, d));
            }
        }
        MarkDeltas { deltas }
    }

    /// The deltas, sorted by key.
    pub fn deltas(&self) -> &[(WeightKey, i64)] {
        &self.deltas
    }

    /// Theorem 7: re-applies the same deltas to an updated weight
    /// assignment (`W₁' = W₁ + M`).
    pub fn reapply(&self, new_weights: &Weights) -> Weights {
        let mut out = new_weights.clone();
        for (key, d) in &self.deltas {
            out.add(key, *d);
        }
        out
    }
}

/// Indices of the marking's pairs with at least one member among the
/// `touched` keys of an update — the pairs whose ρ-neighborhood evidence
/// an incremental re-marking must refresh. Everything else is untouched
/// by Theorem 7/8, so a transactional update can re-mark in time
/// proportional to `|touched|`, not the database.
pub fn affected_pairs(marking: &PairMarking, touched: &HashSet<WeightKey>) -> Vec<usize> {
    marking
        .pairs()
        .iter()
        .enumerate()
        .filter(|(_, p)| touched.contains(&p.plus) || touched.contains(&p.minus))
        .map(|(i, _)| i)
        .collect()
}

/// The sparse re-mark plan for an update that touched `touched` keys:
/// per-key mark deltas of exactly the affected pairs (both members of
/// each, so a pair is always re-marked atomically even when only one
/// member was updated), sorted by key. Re-applying this plan on top of
/// the updated base weights restores the full mark on the touched
/// region; the untouched region still carries its original deltas.
pub fn remark_touched(
    marking: &PairMarking,
    bits: &[bool],
    touched: &HashSet<WeightKey>,
) -> Vec<(WeightKey, i64)> {
    let mut plan: BTreeMap<WeightKey, i64> = BTreeMap::new();
    for i in affected_pairs(marking, touched) {
        let Some(&bit) = bits.get(i) else { continue };
        let pair = &marking.pairs()[i];
        let sign = if bit { 1 } else { -1 };
        *plan.entry(pair.plus.clone()).or_insert(0) += sign;
        *plan.entry(pair.minus.clone()).or_insert(0) -= sign;
    }
    plan.into_iter().collect()
}

/// Classification of a structure update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateClass {
    /// Only weights changed (the structure is untouched) — Theorem 7
    /// applies with zero extra distortion.
    WeightsOnly,
    /// The structure changed but the set of neighborhood types is the
    /// same — Theorem 8: the old mark survives with distortion ≤ η.
    TypePreserving,
    /// Types were created or destroyed — re-marking (the "brute-force
    /// method") is required; beware auto-collusion.
    TypeChanging,
}

/// Compares two structures' unary ρ-type censuses (up to isomorphism of
/// representatives) and classifies the update.
pub fn classify_update(old: &Structure, new: &Structure, rho: u32) -> UpdateClass {
    if structures_equal(old, new) {
        return UpdateClass::WeightsOnly;
    }
    let old_census = census(old, rho);
    let new_census = census(new, rho);
    if same_type_sets(&old_census, &new_census) {
        UpdateClass::TypePreserving
    } else {
        UpdateClass::TypeChanging
    }
}

fn structures_equal(a: &Structure, b: &Structure) -> bool {
    if a.universe_size() != b.universe_size()
        || a.schema().num_relations() != b.schema().num_relations()
    {
        return false;
    }
    (0..a.schema().num_relations()).all(|rel| a.tuples(rel) == b.tuples(rel))
}

fn census(s: &Structure, rho: u32) -> NeighborhoodTypes {
    let g = GaifmanGraph::of(s);
    qpwm_structures::types::classify_elements(s, &g, rho)
}

/// Do two censuses exhibit the same multiset-free *set* of types?
/// (Theorem 8 cares about creation/suppression of types, not counts.)
fn same_type_sets(a: &NeighborhoodTypes, b: &NeighborhoodTypes) -> bool {
    if a.num_types() != b.num_types() {
        return false;
    }
    // match each type of `a` to some isomorphic type of `b`, injectively
    let mut used = vec![false; b.num_types()];
    'outer: for ta in 0..a.num_types() {
        let na = a.representative_neighborhood(ta);
        for (tb, slot) in used.iter_mut().enumerate() {
            if !*slot && are_isomorphic(na, b.representative_neighborhood(tb)) {
                *slot = true;
                continue 'outer;
            }
        }
        return false;
    }
    true
}

/// Result of maintaining a mark across a structure update.
#[derive(Debug, Clone)]
pub struct MaintenanceReport {
    /// How the update was classified.
    pub class: UpdateClass,
    /// Pairs of the original marking whose members are both still active
    /// in the updated instance (detectable pairs).
    pub surviving_pairs: usize,
    /// Total pairs.
    pub total_pairs: usize,
    /// Global distortion of the maintained mark on the *new* instance's
    /// query answers (Theorem 8 bounds this by η for type-preserving
    /// updates).
    pub new_distortion: i64,
}

/// Checks how a pair marking fares after a structure update: how many
/// pairs remain detectable and what distortion the kept mark now causes.
/// Pair survival is an arena lookup against the new family's interned
/// universe — no hash set over owned keys.
pub fn maintain_marking(
    marking: &PairMarking,
    class: UpdateClass,
    new_weights: &Weights,
    new_answers: &AnswerFamily,
    message: &[bool],
) -> MaintenanceReport {
    let arena = new_answers.arena();
    let is_active = |key: &WeightKey| {
        arena
            .lookup(key)
            .is_some_and(|id| new_answers.universe_rank(id).is_some())
    };
    let surviving = marking
        .pairs()
        .iter()
        .filter(|p| is_active(&p.plus) && is_active(&p.minus))
        .count();
    let marked = marking.apply(new_weights, message);
    let new_distortion = new_answers.global_distortion(new_weights, &marked).max_global;
    MaintenanceReport {
        class,
        surviving_pairs: surviving,
        total_pairs: marking.capacity(),
        new_distortion,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::{HonestServer, ObservedWeights};
    use crate::pairing::Pair;
    use qpwm_structures::{figure1_instance, Schema, StructureBuilder};
    use std::sync::Arc;

    fn key(e: u32) -> WeightKey {
        vec![e]
    }

    #[test]
    fn theorem7_weights_only_update_roundtrip() {
        let marking = PairMarking::new(vec![
            Pair { plus: key(0), minus: key(1) },
            Pair { plus: key(2), minus: key(3) },
        ]);
        let mut w0 = Weights::new(1);
        for e in 0..4u32 {
            w0.set(&[e], 100);
        }
        let message = vec![true, false];
        let marked0 = marking.apply(&w0, &message);
        let deltas = MarkDeltas::from_marked(&w0, &marked0);

        // owner updates the weights
        let mut w1 = Weights::new(1);
        for e in 0..4u32 {
            w1.set(&[e], 500 + e as i64 * 3);
        }
        let marked1 = deltas.reapply(&w1);
        // same local distortion profile
        assert_eq!(w1.max_pointwise_diff(&marked1), 1);
        // detector (differential) still reads the message
        let sets = vec![(0..4).map(key).collect::<Vec<_>>()];
        let server = HonestServer::from_sets(sets, marked1);
        let report = marking.extract(&w1, &ObservedWeights::collect(&server));
        assert_eq!(report.bits, message);
    }

    #[test]
    fn deltas_capture_only_changes() {
        let mut w = Weights::new(1);
        w.set(&[0], 10);
        w.set(&[1], 20);
        let mut marked = w.clone();
        marked.add(&[0], 1);
        let d = MarkDeltas::from_marked(&w, &marked);
        assert_eq!(d.deltas(), &[(key(0), 1)]);
    }

    #[test]
    fn classify_weights_only() {
        let s = figure1_instance();
        assert_eq!(classify_update(&s, &s.clone(), 1), UpdateClass::WeightsOnly);
    }

    #[test]
    fn classify_type_preserving() {
        // Two disjoint symmetric edges; removing one edge and adding it
        // back elsewhere keeps the same type set {endpoint-of-edge}.
        let schema = Arc::new(Schema::graph());
        let mut b1 = StructureBuilder::new(Arc::clone(&schema), 6);
        for &(x, y) in &[(0u32, 1u32), (2, 3), (4, 5)] {
            b1.add(0, &[x, y]);
            b1.add(0, &[y, x]);
        }
        let old = b1.build();
        let mut b2 = StructureBuilder::new(schema, 6);
        for &(x, y) in &[(0u32, 1u32), (2, 5), (4, 3)] {
            b2.add(0, &[x, y]);
            b2.add(0, &[y, x]);
        }
        let new = b2.build();
        assert_eq!(classify_update(&old, &new, 1), UpdateClass::TypePreserving);
    }

    #[test]
    fn classify_type_changing() {
        // Removing c's only edge in figure 1 creates an isolated-vertex
        // type that did not exist.
        let old = figure1_instance();
        let schema = old.schema_arc();
        let mut b = StructureBuilder::new(schema, 6);
        for &(x, y) in &[(0u32, 3u32), (0, 4), (1, 3), (1, 4), (5, 4)] {
            b.add(0, &[x, y]);
            b.add(0, &[y, x]);
        }
        let new = b.build();
        assert_eq!(classify_update(&old, &new, 1), UpdateClass::TypeChanging);
    }

    #[test]
    fn remark_touched_covers_exactly_the_affected_pairs() {
        let marking = PairMarking::new(vec![
            Pair { plus: key(0), minus: key(1) },
            Pair { plus: key(2), minus: key(3) },
            Pair { plus: key(4), minus: key(5) },
        ]);
        let bits = [true, false, true];
        // touching one member of pair 1 re-marks both of its members
        let touched: HashSet<WeightKey> = [key(3)].into_iter().collect();
        assert_eq!(affected_pairs(&marking, &touched), vec![1]);
        let plan = remark_touched(&marking, &bits, &touched);
        assert_eq!(plan, vec![(key(2), -1), (key(3), 1)]);
        // untouched update: empty plan
        let none: HashSet<WeightKey> = [key(9)].into_iter().collect();
        assert!(remark_touched(&marking, &bits, &none).is_empty());
        // the full plan equals the delta_map of apply
        let all: HashSet<WeightKey> = (0..6).map(key).collect();
        let full = remark_touched(&marking, &bits, &all);
        let map = marking.delta_map(&bits);
        assert_eq!(full.len(), map.len());
        for (k, d) in &full {
            assert_eq!(map[k], *d, "key {k:?}");
        }
    }

    #[test]
    fn maintenance_counts_survivors_and_distortion() {
        let marking = PairMarking::new(vec![
            Pair { plus: key(0), minus: key(1) },
            Pair { plus: key(2), minus: key(3) },
        ]);
        let mut w = Weights::new(1);
        for e in 0..4u32 {
            w.set(&[e], 10);
        }
        // Updated instance: element 3 became inactive; a set separates
        // pair 1.
        let new_sets: Vec<Vec<WeightKey>> = vec![vec![key(0), key(1)], vec![key(0), key(2)]];
        let new_answers =
            AnswerFamily::from_nested(vec![vec![0], vec![1]], &new_sets);
        let report = maintain_marking(
            &marking,
            UpdateClass::TypePreserving,
            &w,
            &new_answers,
            &[true, true],
        );
        assert_eq!(report.total_pairs, 2);
        assert_eq!(report.surviving_pairs, 1); // pair (2,3) lost member 3
        // distortion: set {0,2} contains + of both pairs: 1 + 1 = 2
        assert_eq!(report.new_distortion, 2);
    }
}
