//! Classes, S-partitions and balanced pair markings (paper, section 3).
//!
//! The class `cl(w̄)` of a weighted element is the set of canonical-
//! parameter types whose answer sets contain it. An *S-partition* pairs
//! elements with equal classes; a pair marking adds `+1` to one member
//! and `−1` to the other, so every canonical parameter sees zero net
//! distortion (Proposition 1), and by Lemma 1 any other parameter sees at
//! most the few weights where its answer set deviates from its canonical
//! representative's.

use qpwm_structures::{AnswerFamily, TupleId, WeightKey, Weights};
use std::collections::{BTreeSet, HashMap, HashSet};

/// A balanced pair of weighted elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pair {
    /// Member receiving `+1` when the bit is `1` (and `−1` when `0`).
    pub plus: WeightKey,
    /// Member receiving the opposite distortion.
    pub minus: WeightKey,
}

impl Pair {
    /// The signed distortion this pair induces on an active set under
    /// message bit `bit`: `+1`/`−1` if the set separates the pair, `0`
    /// otherwise.
    pub fn distortion_on(&self, set: &HashSet<WeightKey>, bit: bool) -> i64 {
        let sign: i64 = if bit { 1 } else { -1 };
        let p = i64::from(set.contains(&self.plus));
        let m = i64::from(set.contains(&self.minus));
        sign * (p - m)
    }
}

/// Computes the class of every active element: `cl(w̄) = {i : w̄ ∈
/// W_{ā_i}}` over the canonical active sets (one per neighborhood type).
pub fn classes(
    active_universe: &[WeightKey],
    canonical_sets: &[Vec<WeightKey>],
) -> HashMap<WeightKey, BTreeSet<usize>> {
    // One sweep over the canonical-set postings — the [`classes_ids`]
    // signature technique applied to content keys. The universe is
    // ranked once; each posting then costs a single hash lookup, so the
    // build is O(universe + total postings) instead of the old
    // per-element scan over every canonical set.
    let rank_of: HashMap<&WeightKey, usize> = active_universe
        .iter()
        .enumerate()
        .map(|(rank, w)| (w, rank))
        .collect();
    let mut cls: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); active_universe.len()];
    for (i, set) in canonical_sets.iter().enumerate() {
        for w in set {
            if let Some(&rank) = rank_of.get(w) {
                cls[rank].insert(i);
            }
        }
    }
    active_universe.iter().cloned().zip(cls).collect()
}

/// Builds an S-partition: pairs of active elements with equal classes.
/// Elements in odd-sized class groups leave one element unpaired.
/// Deterministic: elements are paired in sorted order within each group.
pub fn s_partition(
    active_universe: &[WeightKey],
    classes: &HashMap<WeightKey, BTreeSet<usize>>,
) -> Vec<Pair> {
    let mut groups: HashMap<&BTreeSet<usize>, Vec<&WeightKey>> = HashMap::new();
    for w in active_universe {
        groups.entry(&classes[w]).or_default().push(w);
    }
    let mut keys: Vec<&BTreeSet<usize>> = groups.keys().copied().collect();
    keys.sort_unstable();
    let mut pairs = Vec::new();
    for k in keys {
        let group = groups.get_mut(k).expect("key from map");
        group.sort_unstable();
        for chunk in group.chunks(2) {
            if let [a, b] = chunk {
                pairs.push(Pair { plus: (*a).clone(), minus: (*b).clone() });
            }
        }
    }
    pairs
}

/// Computes the class of every universe id against canonical active
/// sets, all as interned id slices, as a packed bitset signature:
/// `classes[rank]` has bit `i` set iff the id at `rank` in `universe`
/// belongs to `canonical_sets[i]`. Built in one sweep over the
/// canonical-set postings — O(total postings), no per-(id, set) binary
/// searches.
pub fn classes_ids(universe: &[TupleId], canonical_sets: &[&[TupleId]]) -> Vec<Vec<u64>> {
    let words = canonical_sets.len().div_ceil(64);
    let mut sigs = vec![vec![0u64; words]; universe.len()];
    if universe.is_empty() {
        return sigs;
    }
    // Dense id → rank lookup; universe ids are canonical (ascending).
    let max_id = *universe.last().expect("nonempty") as usize;
    let mut rank_of = vec![u32::MAX; max_id + 1];
    for (rank, &id) in universe.iter().enumerate() {
        rank_of[id as usize] = rank as u32;
    }
    for (i, set) in canonical_sets.iter().enumerate() {
        let (word, bit) = (i / 64, 1u64 << (i % 64));
        for &id in *set {
            let Some(&rank) = rank_of.get(id as usize) else { continue };
            if rank != u32::MAX {
                sigs[rank as usize][word] |= bit;
            }
        }
    }
    sigs
}

/// S-partition over interned ids: pairs universe ids with equal classes
/// (equal bitset signatures). Because canonical ids follow content
/// order, the result matches the content-based [`s_partition`] pair for
/// pair; groups are emitted in ascending set-index order, exactly as the
/// sorted-`BTreeSet` path used to produce.
pub fn s_partition_ids(universe: &[TupleId], classes: &[Vec<u64>]) -> Vec<(TupleId, TupleId)> {
    let mut groups: HashMap<&[u64], Vec<TupleId>> = HashMap::new();
    for (rank, &id) in universe.iter().enumerate() {
        groups.entry(classes[rank].as_slice()).or_default().push(id);
    }
    // Order groups the way sorted `BTreeSet<usize>` keys would sort:
    // lexicographically on the ascending list of member set indices.
    let mut keyed: Vec<(Vec<usize>, Vec<TupleId>)> = groups
        .into_iter()
        .map(|(sig, group)| {
            let indices: Vec<usize> = (0..classes.first().map_or(0, |c| c.len()) * 64)
                .filter(|&i| sig[i / 64] & (1u64 << (i % 64)) != 0)
                .collect();
            (indices, group)
        })
        .collect();
    keyed.sort_unstable();
    let mut pairs = Vec::new();
    for (_, mut group) in keyed {
        group.sort_unstable();
        for chunk in group.chunks(2) {
            if let [a, b] = chunk {
                pairs.push((*a, *b));
            }
        }
    }
    pairs
}

/// A postings-list transpose of one or more answer families sharing an
/// arena: `postings[id]` lists (in order) the global indices of the sets
/// containing `id`. Pair-separation queries then reduce to a symmetric-
/// difference merge walk over two sorted lists — the hot path of the
/// marker's selection loops, with no per-set hash sets and no tuple
/// hashing.
#[derive(Debug)]
pub struct FamilyIndex {
    postings: Vec<Vec<u32>>,
    num_sets: usize,
}

impl FamilyIndex {
    /// Builds the transpose. Families are concatenated in order: family
    /// `f`'s set `i` gets global index `offset_f + i`.
    ///
    /// # Panics
    /// Panics when the families do not share one arena (ids must be
    /// comparable).
    pub fn new(families: &[&AnswerFamily]) -> Self {
        let arena_len = families.first().map_or(0, |f| f.arena().len());
        for f in families {
            assert_eq!(f.arena().len(), arena_len, "families must share an arena");
        }
        let mut postings: Vec<Vec<u32>> = vec![Vec::new(); arena_len];
        let mut global = 0u32;
        for family in families {
            for i in 0..family.len() {
                for &id in family.active_ids(i) {
                    postings[id as usize].push(global);
                }
                global += 1;
            }
        }
        FamilyIndex { postings, num_sets: global as usize }
    }

    /// Total number of indexed sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Visits the global index of every set separating the pair `(a, b)`
    /// (containing exactly one member) — a merge walk over the two
    /// sorted postings lists.
    pub fn for_each_separating_set(&self, a: TupleId, b: TupleId, mut visit: impl FnMut(usize)) {
        let (pa, pb) = (&self.postings[a as usize], &self.postings[b as usize]);
        let (mut i, mut j) = (0usize, 0usize);
        while i < pa.len() || j < pb.len() {
            match (pa.get(i), pb.get(j)) {
                (Some(&x), Some(&y)) if x == y => {
                    i += 1;
                    j += 1;
                }
                (Some(&x), Some(&y)) if x < y => {
                    visit(x as usize);
                    i += 1;
                }
                (Some(_), Some(&y)) => {
                    visit(y as usize);
                    j += 1;
                }
                (Some(&x), None) => {
                    visit(x as usize);
                    i += 1;
                }
                (None, Some(&y)) => {
                    visit(y as usize);
                    j += 1;
                }
                (None, None) => unreachable!("loop condition"),
            }
        }
    }

    /// How many indexed sets separate the pair `(a, b)`?
    pub fn separation(&self, a: TupleId, b: TupleId) -> usize {
        let mut n = 0usize;
        self.for_each_separating_set(a, b, |_| n += 1);
        n
    }
}

/// A pair marking: an ordered list of pairs carrying one message bit
/// each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairMarking {
    pairs: Vec<Pair>,
}

impl PairMarking {
    /// Wraps a pair list.
    pub fn new(pairs: Vec<Pair>) -> Self {
        PairMarking { pairs }
    }

    /// Number of bits the marking can carry.
    pub fn capacity(&self) -> usize {
        self.pairs.len()
    }

    /// The pairs.
    pub fn pairs(&self) -> &[Pair] {
        &self.pairs
    }

    /// Applies message `bits` to `weights`: bit `1` ⇒ `(+1, −1)` on the
    /// pair, bit `0` ⇒ `(−1, +1)`. Always a 1-local distortion.
    ///
    /// # Panics
    /// Panics if `bits` is longer than the capacity (shorter is fine:
    /// remaining pairs stay unmarked).
    pub fn apply(&self, weights: &Weights, bits: &[bool]) -> Weights {
        assert!(bits.len() <= self.pairs.len(), "message longer than capacity");
        let mut out = weights.clone();
        for (pair, &bit) in self.pairs.iter().zip(bits) {
            let sign = if bit { 1 } else { -1 };
            out.add(&pair.plus, sign);
            out.add(&pair.minus, -sign);
        }
        out
    }

    /// The sparse plan of [`PairMarking::apply`]: the map of per-key
    /// signed distortions message `bits` induces, without touching a full
    /// weight assignment. This is what transactional re-marking persists —
    /// only the `2 · |bits|` touched keys, not the whole table. Keys
    /// shared by several pairs accumulate (and may cancel to an explicit
    /// 0 entry, which `apply` would also leave behind as `w + 0`).
    ///
    /// # Panics
    /// Panics if `bits` is longer than the capacity.
    pub fn delta_map(&self, bits: &[bool]) -> HashMap<WeightKey, i64> {
        assert!(bits.len() <= self.pairs.len(), "message longer than capacity");
        let mut map: HashMap<WeightKey, i64> = HashMap::with_capacity(2 * bits.len());
        for (pair, &bit) in self.pairs.iter().zip(bits) {
            let sign = if bit { 1 } else { -1 };
            *map.entry(pair.plus.clone()).or_insert(0) += sign;
            *map.entry(pair.minus.clone()).or_insert(0) -= sign;
        }
        map
    }

    /// For each active set of the family, how many pairs does it separate
    /// (contain exactly one member of)? The worst case over all sets
    /// bounds the global distortion of *any* message. Each pair member is
    /// interned once (an arena lookup); membership is an id binary
    /// search — no per-set hash sets.
    pub fn separation_counts(&self, answers: &AnswerFamily) -> Vec<usize> {
        let ids: Vec<(Option<TupleId>, Option<TupleId>)> = self
            .pairs
            .iter()
            .map(|p| (answers.arena().lookup(&p.plus), answers.arena().lookup(&p.minus)))
            .collect();
        let count_for = |i: usize| {
            ids.iter()
                .filter(|(p, m)| {
                    let cp = p.is_some_and(|id| answers.contains(i, id));
                    let cm = m.is_some_and(|id| answers.contains(i, id));
                    cp != cm
                })
                .count()
        };
        let chunks = qpwm_par::par_chunks(answers.len(), |range| {
            range.map(count_for).collect::<Vec<usize>>()
        });
        chunks.into_iter().flatten().collect()
    }

    /// The worst-case separation over a family of active sets — an upper
    /// bound on the global distortion of every possible message, and the
    /// quantity the marker's ε-goodness check constrains.
    pub fn max_separation(&self, answers: &AnswerFamily) -> usize {
        self.separation_counts(answers).into_iter().max().unwrap_or(0)
    }

    /// Reads the message back by comparing observed weights against the
    /// original: bit = sign of the pair's observed delta.
    pub fn extract(
        &self,
        original: &Weights,
        observed: &crate::detect::ObservedWeights,
    ) -> crate::detect::DetectionReport {
        // Per-pair orientation reads are independent; fan them out and
        // assemble the report in pair order.
        let per_pair = qpwm_par::par_map(&self.pairs, |pair| {
            let dp = observed
                .get(&pair.plus)
                .map(|w| w - original.get(&pair.plus));
            let dm = observed
                .get(&pair.minus)
                .map(|w| w - original.get(&pair.minus));
            let score = dp.unwrap_or(0) - dm.unwrap_or(0);
            (score, dp.is_none() && dm.is_none())
        });
        let mut bits = Vec::with_capacity(self.pairs.len());
        let mut scores = Vec::with_capacity(self.pairs.len());
        let mut missing = 0usize;
        for (score, gone) in per_pair {
            missing += usize::from(gone);
            scores.push(score);
            bits.push(score > 0);
        }
        crate::detect::DetectionReport { bits, scores, missing_pairs: missing }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::{HonestServer, ObservedWeights};

    fn key(e: u32) -> WeightKey {
        vec![e]
    }

    /// Wraps hand-built nested sets as an interned family (synthetic
    /// parameters `[i]`).
    fn fam(sets: &[Vec<WeightKey>]) -> AnswerFamily {
        let params = (0..sets.len()).map(|i| vec![i as u32]).collect();
        AnswerFamily::from_nested(params, sets)
    }

    #[test]
    fn figure4_classes_and_partition() {
        // Figure 1 instance, edge query: canonical parameters a (type 1),
        // c (type 3), d (type 2) with W_a = {d,e}, W_c = {d}, W_d = {a,b,c}.
        // Classes over canonical sets [W_a, W_c, W_d]:
        //   a -> {2}, b -> {2}, c -> {2}, d -> {0,1}, e -> {0}, f -> {}.
        let active: Vec<WeightKey> = (0..6).map(key).collect();
        let canonical = vec![
            vec![key(3), key(4)],         // W_a
            vec![key(3)],                 // W_c
            vec![key(0), key(1), key(2)], // W_d
        ];
        let cls = classes(&active, &canonical);
        assert_eq!(cls[&key(0)], BTreeSet::from([2]));
        assert_eq!(cls[&key(3)], BTreeSet::from([0, 1]));
        assert_eq!(cls[&key(4)], BTreeSet::from([0]));
        assert!(cls[&key(5)].is_empty());
        let pairs = s_partition(&active, &cls);
        // group {a,b,c} -> 1 pair (a,b); singleton groups d, e, f -> none.
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0], Pair { plus: key(0), minus: key(1) });
    }

    #[test]
    fn proposition1_zero_distortion_on_canonical_parameters() {
        // Pairs with equal classes never get separated by canonical sets.
        let active: Vec<WeightKey> = (0..4).map(key).collect();
        let canonical = vec![vec![key(0), key(1)], vec![key(2), key(3)]];
        let cls = classes(&active, &canonical);
        let pairs = s_partition(&active, &cls);
        assert_eq!(pairs.len(), 2);
        let marking = PairMarking::new(pairs);
        assert_eq!(marking.max_separation(&fam(&canonical)), 0);
        // And the realized distortion of any message on those sets is 0.
        let mut w = Weights::new(1);
        for e in 0..4u32 {
            w.set(&[e], 10);
        }
        for message in [[true, true], [true, false], [false, false]] {
            let marked = marking.apply(&w, &message);
            for set in &canonical {
                let before: i64 = set.iter().map(|k| w.get(k)).sum();
                let after: i64 = set.iter().map(|k| marked.get(k)).sum();
                assert_eq!(before, after, "message {message:?}");
            }
        }
    }

    #[test]
    fn apply_is_one_local() {
        let marking = PairMarking::new(vec![Pair { plus: key(0), minus: key(1) }]);
        let mut w = Weights::new(1);
        w.set(&[0], 100);
        w.set(&[1], 50);
        let marked = marking.apply(&w, &[true]);
        assert_eq!(marked.get(&[0]), 101);
        assert_eq!(marked.get(&[1]), 49);
        assert_eq!(w.max_pointwise_diff(&marked), 1);
        let marked0 = marking.apply(&w, &[false]);
        assert_eq!(marked0.get(&[0]), 99);
        assert_eq!(marked0.get(&[1]), 51);
    }

    #[test]
    fn separation_counts_see_split_pairs() {
        let marking = PairMarking::new(vec![
            Pair { plus: key(0), minus: key(1) },
            Pair { plus: key(2), minus: key(3) },
        ]);
        let sets = vec![
            vec![key(0), key(1), key(2)], // separates pair 2 only
            vec![key(0), key(2)],         // separates both
            vec![key(1), key(0)],         // separates none
        ];
        let family = fam(&sets);
        assert_eq!(marking.separation_counts(&family), vec![1, 2, 0]);
        assert_eq!(marking.max_separation(&family), 2);
    }

    #[test]
    fn roundtrip_mark_detect() {
        let marking = PairMarking::new(vec![
            Pair { plus: key(0), minus: key(1) },
            Pair { plus: key(2), minus: key(3) },
            Pair { plus: key(4), minus: key(5) },
        ]);
        let mut w = Weights::new(1);
        for e in 0..6u32 {
            w.set(&[e], 10 * e as i64);
        }
        let message = [true, false, true];
        let marked = marking.apply(&w, &message);
        // server exposes every weight through one big active set
        let server = HonestServer::new(fam(&[(0..6).map(key).collect::<Vec<_>>()]), marked);
        let obs = ObservedWeights::collect(&server);
        let report = marking.extract(&w, &obs);
        assert_eq!(report.bits, message.to_vec());
        assert_eq!(report.scores, vec![2, -2, 2]);
        assert_eq!(report.missing_pairs, 0);
        assert!((report.clean_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn extract_reports_missing_pairs() {
        let marking = PairMarking::new(vec![Pair { plus: key(8), minus: key(9) }]);
        let w = Weights::new(1);
        let server = HonestServer::new(fam(&[vec![key(0)]]), Weights::new(1));
        let obs = ObservedWeights::collect(&server);
        let report = marking.extract(&w, &obs);
        assert_eq!(report.missing_pairs, 1);
        assert_eq!(report.scores, vec![0]);
    }

    #[test]
    fn bitset_id_partition_matches_content_partition() {
        // Random-ish overlapping sets (deterministic arithmetic pattern);
        // the interned bitset path must reproduce the content-keyed
        // s_partition pair for pair, including group emission order.
        let canonical: Vec<Vec<WeightKey>> = (0..70u32)
            .map(|s| (0..40u32).filter(|e| (e * 7 + s * 3) % (s + 2) == 0).map(key).collect())
            .collect();

        // Interned mirror: one family whose sets are the canonical sets;
        // ids are canonical so id order == content order. Both paths
        // must range over the same universe (elements in some set).
        let family = fam(&canonical);
        let universe = family.active_universe();
        let active: Vec<WeightKey> =
            universe.iter().map(|&id| family.arena().tuple(id).to_vec()).collect();
        let cls = classes(&active, &canonical);
        let content_pairs = s_partition(&active, &cls);
        let canonical_ids: Vec<&[TupleId]> =
            (0..family.len()).map(|i| family.active_ids(i)).collect();
        let sigs = classes_ids(universe, &canonical_ids);
        assert_eq!(sigs.len(), universe.len());
        let id_pairs = s_partition_ids(universe, &sigs);

        let id_pairs_content: Vec<Pair> = id_pairs
            .iter()
            .map(|&(a, b)| Pair {
                plus: family.arena().tuple(a).to_vec(),
                minus: family.arena().tuple(b).to_vec(),
            })
            .collect();
        assert_eq!(id_pairs_content, content_pairs);
    }

    #[test]
    fn classes_matches_bitset_signatures() {
        // Differential pin: the content-keyed postings sweep must agree
        // with the interned bitset signatures on every universe element.
        let canonical: Vec<Vec<WeightKey>> = (0..70u32)
            .map(|s| (0..40u32).filter(|e| (e * 5 + s) % (s + 3) == 0).map(key).collect())
            .collect();
        let family = fam(&canonical);
        let universe = family.active_universe();
        let active: Vec<WeightKey> =
            universe.iter().map(|&id| family.arena().tuple(id).to_vec()).collect();
        let cls = classes(&active, &canonical);
        assert_eq!(cls.len(), active.len());
        let canonical_ids: Vec<&[TupleId]> =
            (0..family.len()).map(|i| family.active_ids(i)).collect();
        let sigs = classes_ids(universe, &canonical_ids);
        for (rank, w) in active.iter().enumerate() {
            let from_bits: BTreeSet<usize> = (0..canonical.len())
                .filter(|&i| sigs[rank][i / 64] >> (i % 64) & 1 == 1)
                .collect();
            assert_eq!(cls[w], from_bits, "element {w:?}");
        }
        // Elements outside every canonical set keep an empty class.
        let stray = key(999);
        let cls2 = classes(std::slice::from_ref(&stray), &canonical);
        assert!(cls2[&stray].is_empty());
    }

    #[test]
    fn pair_distortion_signs() {
        let pair = Pair { plus: key(0), minus: key(1) };
        let set: HashSet<WeightKey> = [key(0)].into_iter().collect();
        assert_eq!(pair.distortion_on(&set, true), 1);
        assert_eq!(pair.distortion_on(&set, false), -1);
        let both: HashSet<WeightKey> = [key(0), key(1)].into_iter().collect();
        assert_eq!(pair.distortion_on(&both, true), 0);
    }
}
