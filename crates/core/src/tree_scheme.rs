//! The Theorem 5 watermarking scheme: automaton-definable queries on
//! trees.
//!
//! Lemma 3's construction, implemented bottom-up:
//!
//! 1. carve the tree into disjoint blocks `U_i` — minimal subtrees
//!    holding at least `2m` unclaimed *active* nodes (at most `≈4m` by
//!    minimality on a binary tree);
//! 2. build the forest `F` of block roots by nearest-ancestor; keep the
//!    blocks with at most one `F`-child (at least half of them);
//! 3. for a childless block, two active nodes `b, b'` are equivalent when
//!    the automaton reaches the same state at the block root with the
//!    output pebble on `b` vs `b'`; for a one-child block, they must
//!    induce the same *state transformation* from every possible entering
//!    state at the child block's root. Pigeonhole over the `m` states
//!    guarantees a pair per childless block; transformation collisions
//!    are found empirically per block (transformation count is tiny for
//!    real automata, though `m^m` in the worst case — reported in stats);
//! 4. each pair carries one message bit by orientation, exactly as in the
//!    local scheme. Every parameter lies in at most one region `V_i`, so
//!    the global distortion of any message is at most 1.

use crate::detect::{AnswerServer, DetectionReport};
use crate::pairing::{Pair, PairMarking};
use crate::scheme::PairSchemeCore;
use qpwm_structures::{AnswerFamily, Element, Weights};
use qpwm_trees::automaton::BottomUpAutomaton;
use qpwm_trees::pebble::{Overlay, PebbledQuery};
use qpwm_trees::tree::{BinaryTree, NodeId};
use std::collections::HashMap;

/// Diagnostics of the Lemma 3 construction.
#[derive(Debug, Clone)]
pub struct TreeSchemeStats {
    /// `|W|`: active nodes.
    pub active_nodes: usize,
    /// Automaton states `m`.
    pub num_states: u32,
    /// Blocks carved (`U_i`).
    pub blocks: usize,
    /// Blocks kept (≤ 1 child in the lca forest).
    pub usable_blocks: usize,
    /// Largest number of distinct state transformations observed in any
    /// one-child block (1 is ideal; `m^m` the theoretical worst case).
    pub max_transformations: usize,
}

/// A constructed Theorem 5 scheme.
#[derive(Debug)]
pub struct TreeScheme {
    /// Shared pair-scheme plumbing: the marking, the answers as an
    /// interned family (`NodeId` = `Element`, built once at
    /// construction), and the d = 1 budget Theorem 5 guarantees.
    core: PairSchemeCore,
    /// Region root of each pair (for maintenance/debugging).
    regions: Vec<NodeId>,
    stats: TreeSchemeStats,
    answers: Vec<(Vec<NodeId>, Vec<NodeId>)>,
}

impl TreeScheme {
    /// Builds the scheme for `query` on `tree`.
    ///
    /// `block_factor` scales the block threshold (`threshold = block_factor
    /// · m`, the paper's choice being 2); raise it when one-child blocks
    /// show many distinct transformations.
    pub fn build<A: BottomUpAutomaton>(
        tree: &BinaryTree,
        query: &PebbledQuery<A>,
        block_factor: u32,
    ) -> Self {
        let domain: Vec<Vec<NodeId>> = if query.k() == 0 {
            vec![Vec::new()]
        } else {
            // full unary domain (k = 1); larger k uses build_over
            (0..tree.len() as NodeId).map(|a| vec![a]).collect()
        };
        Self::build_over(tree, query, block_factor, domain)
    }

    /// Builds the scheme over an explicit parameter domain.
    ///
    /// Restricting the domain is sound: the Lemma 3 pairs cancel for
    /// *every* parameter outside their region `V_i` — whether or not it
    /// is in the domain — so the distortion bound is global, while the
    /// active universe (hence the capacity and the detector's reads) is
    /// computed from the supplied domain only. Use this when most
    /// parameters provably yield empty or duplicate answers (e.g. pattern
    /// queries, where only one text node per distinct value matters);
    /// `all_answer_sets` over the full domain is `O(n² · depth)`.
    pub fn build_over<A: BottomUpAutomaton>(
        tree: &BinaryTree,
        query: &PebbledQuery<A>,
        block_factor: u32,
        domain: Vec<Vec<NodeId>>,
    ) -> Self {
        let m = query.automaton().num_states();
        Self::build_with_threshold(tree, query, (block_factor.max(1) * m).max(2) as usize, domain)
    }

    /// Builds with an explicit block threshold (engineering knob).
    ///
    /// The paper's `2m` threshold guarantees a collision pair per
    /// childless block by pigeonhole over the `m` states; real automata
    /// reach far fewer distinct states/transformations, so much smaller
    /// blocks usually still collide — and a block without a collision
    /// simply contributes no pair (capacity loss, never a soundness
    /// loss: the ≤ 1 distortion bound is per-region and independent of
    /// the threshold). The `tree_sweep` bench ablates this.
    pub fn build_with_threshold<A: BottomUpAutomaton>(
        tree: &BinaryTree,
        query: &PebbledQuery<A>,
        threshold: usize,
        domain: Vec<Vec<NodeId>>,
    ) -> Self {
        let m = query.automaton().num_states();
        let threshold = threshold.max(2);
        let answers: Vec<(Vec<NodeId>, Vec<NodeId>)> = domain
            .into_iter()
            .map(|p| {
                let set = query.answer_set(tree, &p);
                (p, set)
            })
            .collect();
        let mut active = vec![false; tree.len()];
        for (_, set) in &answers {
            for &b in set {
                active[b as usize] = true;
            }
        }
        let active_count = active.iter().filter(|&&a| a).count();

        // 1. Carve blocks bottom-up: postorder accumulation of unclaimed
        // active counts; claim a subtree the moment it holds `threshold`.
        let mut unclaimed = vec![0usize; tree.len()];
        let mut claimed_by: Vec<Option<usize>> = vec![None; tree.len()];
        let mut block_roots: Vec<NodeId> = Vec::new();
        let mut block_members: Vec<Vec<NodeId>> = Vec::new();
        for node in tree.postorder() {
            let mut count = usize::from(active[node as usize]);
            for child in [tree.left(node), tree.right(node)].into_iter().flatten() {
                count += unclaimed[child as usize];
            }
            if count >= threshold {
                // claim all unclaimed active nodes under `node`
                let id = block_roots.len();
                let mut members = Vec::with_capacity(count);
                collect_unclaimed(tree, node, &active, &claimed_by, &unclaimed, &mut members);
                for &b in &members {
                    claimed_by[b as usize] = Some(id);
                }
                block_roots.push(node);
                block_members.push(members);
                unclaimed[node as usize] = 0;
            } else {
                unclaimed[node as usize] = count;
            }
        }

        // 2. lca forest: parent of block i = nearest proper ancestor block
        // root. Count children; keep blocks with ≤ 1.
        let mut block_of_root: HashMap<NodeId, usize> = HashMap::new();
        for (i, &r) in block_roots.iter().enumerate() {
            block_of_root.insert(r, i);
        }
        let mut f_children: Vec<Vec<usize>> = vec![Vec::new(); block_roots.len()];
        for (i, &r) in block_roots.iter().enumerate() {
            let mut cur = tree.parent(r);
            while let Some(p) = cur {
                if let Some(&j) = block_of_root.get(&p) {
                    f_children[j].push(i);
                    break;
                }
                cur = tree.parent(p);
            }
        }

        // 3. Pair selection per usable block.
        let base_states = query.base_run_free(tree);
        let label_of = |n: NodeId| query.free_label(tree, n);
        let mut pairs: Vec<Pair> = Vec::new();
        let mut regions: Vec<NodeId> = Vec::new();
        let mut usable_blocks = 0usize;
        let mut max_transformations = 0usize;
        for (i, members) in block_members.iter().enumerate() {
            match f_children[i].len() {
                0 => {
                    usable_blocks += 1;
                    // Signature: state at the block root with pebble b.
                    // One pair per block — the paper's construction; more
                    // pairs per block would multiply the distortion bound.
                    let mut buckets: HashMap<u32, NodeId> = HashMap::new();
                    for &b in members {
                        let mut ov = Overlay::new(query.automaton(), tree, &base_states, &label_of);
                        ov.set_label(b, query.output_label(tree, b));
                        let sig = ov.state_at(block_roots[i]);
                        if let Some(&partner) = buckets.get(&sig) {
                            pairs.push(Pair { plus: vec![partner], minus: vec![b] });
                            regions.push(block_roots[i]);
                            break;
                        }
                        buckets.insert(sig, b);
                    }
                    max_transformations = max_transformations.max(1);
                }
                1 => {
                    usable_blocks += 1;
                    let child_root = block_roots[f_children[i][0]];
                    // Signature: the vector of states reached at the block
                    // root for every entering state at the child root,
                    // computed via path decomposition (see
                    // `one_child_signature`) in O(m·|path|) preprocessing
                    // plus O(m + branch depth) per member.
                    let ctx = PathContext::new(tree, query, &base_states, child_root, block_roots[i], m);
                    let mut buckets: HashMap<Vec<u32>, NodeId> = HashMap::new();
                    let mut distinct = std::collections::HashSet::new();
                    let mut found = false;
                    for &b in members {
                        // b must lie in V_i = subtree(root_i) \ subtree(child);
                        // members inside the child's subtree were claimed by
                        // deeper blocks already, but guard anyway.
                        if tree.is_ancestor(child_root, b) {
                            continue;
                        }
                        let sig = ctx.signature(tree, query, &base_states, &label_of, b);
                        distinct.insert(sig.clone());
                        if !found {
                            if let Some(&partner) = buckets.get(&sig) {
                                pairs.push(Pair { plus: vec![partner], minus: vec![b] });
                                regions.push(block_roots[i]);
                                found = true;
                            } else {
                                buckets.insert(sig, b);
                            }
                        }
                    }
                    max_transformations = max_transformations.max(distinct.len());
                }
                _ => {}
            }
        }

        let stats = TreeSchemeStats {
            active_nodes: active_count,
            num_states: m,
            blocks: block_roots.len(),
            usable_blocks,
            max_transformations,
        };
        let parameters: Vec<Vec<Element>> = answers.iter().map(|(p, _)| p.clone()).collect();
        let sets: Vec<Vec<Vec<Element>>> = answers
            .iter()
            .map(|(_, set)| set.iter().map(|&b| vec![b]).collect())
            .collect();
        let family = AnswerFamily::from_nested(parameters, &sets);
        let core = PairSchemeCore::new(PairMarking::new(pairs), family, 1);
        TreeScheme { core, regions, stats, answers }
    }

    /// Number of message bits.
    pub fn capacity(&self) -> usize {
        self.core.capacity()
    }

    /// Construction diagnostics.
    pub fn stats(&self) -> &TreeSchemeStats {
        &self.stats
    }

    /// The shared pair-scheme core (marking + interned family + budget).
    pub fn core(&self) -> &PairSchemeCore {
        &self.core
    }

    /// The secret pair marking.
    pub fn marking(&self) -> &PairMarking {
        self.core.marking()
    }

    /// Region root of each pair.
    pub fn regions(&self) -> &[NodeId] {
        &self.regions
    }

    /// Materialized answer sets `(ā, W_ā)` over all parameters.
    pub fn answers(&self) -> &[(Vec<NodeId>, Vec<NodeId>)] {
        &self.answers
    }

    /// The answers as an interned family (singleton node tuples) — pass a
    /// clone to [`HonestServer::new`](crate::detect::HonestServer::new),
    /// it is two `Arc` bumps.
    pub fn family(&self) -> &AnswerFamily {
        self.core.family()
    }

    /// Marker: embeds `message` into node weights.
    pub fn mark(&self, weights: &Weights, message: &[bool]) -> Weights {
        self.core.mark(weights, message)
    }

    /// Detector: recovers the message from a server's answers.
    pub fn detect(&self, original: &Weights, server: &dyn AnswerServer) -> DetectionReport {
        self.core.detect(original, server)
    }

    /// Audits Definition 2 bounds (Theorem 5 guarantees global ≤ 1).
    pub fn audit(&self, original: &Weights, marked: &Weights) -> qpwm_structures::DistortionReport {
        self.core.audit(original, marked)
    }
}

/// Path decomposition for one-child blocks: precomputes, along the path
/// `child_root = path[0], ..., path[last] = block_root`,
///
/// * `prefix[j][q]` — the state at `path[j]` when the child block's root
///   is forced to state `q` and no pebble sits in the region, and
/// * `suffix[j][q]` — the state at the block root when `path[j]` is in
///   state `q`,
///
/// so a member's signature costs `O(m + branch depth)` instead of
/// rerunning the overlay `m` times.
struct PathContext {
    path: Vec<NodeId>,
    on_path: HashMap<NodeId, usize>,
    prefix: Vec<Vec<u32>>,
    suffix: Vec<Vec<u32>>,
}

impl PathContext {
    fn new<A: BottomUpAutomaton>(
        tree: &BinaryTree,
        query: &PebbledQuery<A>,
        base_states: &[u32],
        child_root: NodeId,
        block_root: NodeId,
        m: u32,
    ) -> Self {
        let mut path = vec![child_root];
        let mut cur = child_root;
        while cur != block_root {
            cur = tree.parent(cur).expect("block root is an ancestor");
            path.push(cur);
        }
        let on_path: HashMap<NodeId, usize> =
            path.iter().enumerate().map(|(idx, &n)| (n, idx)).collect();
        // trans[j][q]: state at path[j] given state q at path[j-1].
        let mut trans: Vec<Vec<u32>> = vec![Vec::new()];
        for j in 1..path.len() {
            let node = path[j];
            let prev = path[j - 1];
            let row: Vec<u32> = (0..m)
                .map(|q| {
                    let ql = tree.left(node).map_or(qpwm_trees::automaton::STAR, |l| {
                        if l == prev {
                            q
                        } else {
                            base_states[l as usize]
                        }
                    });
                    let qr = tree.right(node).map_or(qpwm_trees::automaton::STAR, |r| {
                        if r == prev {
                            q
                        } else {
                            base_states[r as usize]
                        }
                    });
                    query.automaton().step(ql, qr, query.free_label(tree, node))
                })
                .collect();
            trans.push(row);
        }
        let mut prefix: Vec<Vec<u32>> = Vec::with_capacity(path.len());
        prefix.push((0..m).collect());
        for j in 1..path.len() {
            let row = (0..m as usize).map(|q| trans[j][prefix[j - 1][q] as usize]).collect();
            prefix.push(row);
        }
        let mut suffix: Vec<Vec<u32>> = vec![Vec::new(); path.len()];
        suffix[path.len() - 1] = (0..m).collect();
        for j in (0..path.len().saturating_sub(1)).rev() {
            suffix[j] = (0..m as usize)
                .map(|q| suffix[j + 1][trans[j + 1][q] as usize])
                .collect();
        }
        PathContext { path, on_path, prefix, suffix }
    }

    /// The signature of member `b`: for each entering state `q` at the
    /// child root, the state reached at the block root with the output
    /// pebble on `b`.
    fn signature<A: BottomUpAutomaton>(
        &self,
        tree: &BinaryTree,
        query: &PebbledQuery<A>,
        base_states: &[u32],
        label_of: &dyn Fn(NodeId) -> u32,
        b: NodeId,
    ) -> Vec<u32> {
        let m = self.prefix[0].len() as u32;
        if let Some(&j) = self.on_path.get(&b) {
            debug_assert!(j >= 1, "member inside the child block");
            // b sits on the path: recompute path[j]'s step with the
            // pebbled label and the q-dependent on-path child state.
            let prev = self.path[j - 1];
            return (0..m as usize)
                .map(|q| {
                    let entering = self.prefix[j - 1][q];
                    let ql = tree.left(b).map_or(qpwm_trees::automaton::STAR, |l| {
                        if l == prev {
                            entering
                        } else {
                            base_states[l as usize]
                        }
                    });
                    let qr = tree.right(b).map_or(qpwm_trees::automaton::STAR, |r| {
                        if r == prev {
                            entering
                        } else {
                            base_states[r as usize]
                        }
                    });
                    let here = query.automaton().step(ql, qr, query.output_label(tree, b));
                    self.suffix[j][here as usize]
                })
                .collect();
        }
        // b hangs off the path: find the attachment point path[j] and the
        // branch child carrying b.
        let mut branch_top = b;
        let mut cur = tree.parent(b).expect("b is below the block root");
        while !self.on_path.contains_key(&cur) {
            branch_top = cur;
            cur = tree.parent(cur).expect("block root is an ancestor");
        }
        let j = self.on_path[&cur];
        debug_assert!(j >= 1, "branch attached at the child root is inside it");
        // branch state with the pebble (independent of the entering state)
        let mut ov = Overlay::new(query.automaton(), tree, base_states, label_of);
        ov.set_label(b, query.output_label(tree, b));
        let branch_state = ov.state_at(branch_top);
        let node = self.path[j];
        let prev = self.path[j - 1];
        (0..m as usize)
            .map(|q| {
                let entering = self.prefix[j - 1][q];
                let pick = |child: NodeId| -> u32 {
                    if child == prev {
                        entering
                    } else if child == branch_top {
                        branch_state
                    } else {
                        base_states[child as usize]
                    }
                };
                let ql = tree.left(node).map_or(qpwm_trees::automaton::STAR, &pick);
                let qr = tree.right(node).map_or(qpwm_trees::automaton::STAR, pick);
                let here = query.automaton().step(ql, qr, query.free_label(tree, node));
                self.suffix[j][here as usize]
            })
            .collect()
    }
}

fn collect_unclaimed(
    tree: &BinaryTree,
    root: NodeId,
    active: &[bool],
    claimed_by: &[Option<usize>],
    unclaimed: &[usize],
    out: &mut Vec<NodeId>,
) {
    // `unclaimed[child]` is, at claim time (postorder), the exact count of
    // unclaimed active nodes in that child's subtree: pruning zero-count
    // branches keeps block collection linear in block size overall.
    let mut stack = vec![root];
    while let Some(n) = stack.pop() {
        if active[n as usize] && claimed_by[n as usize].is_none() {
            out.push(n);
        }
        for child in [tree.left(n), tree.right(n)].into_iter().flatten() {
            if unclaimed[child as usize] > 0 {
                stack.push(child);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::HonestServer;
    use qpwm_trees::automaton::{TreeAutomaton, STAR};
    use qpwm_trees::pebble::pebbled_symbol;
    use qpwm_trees::tree::BinaryTree;

    /// Query: "b is on a node with base label 1" (ignores the parameter).
    /// 2 states.
    fn label_one_query() -> PebbledQuery {
        let mut a = TreeAutomaton::new(2, 0);
        for base in [0u32, 1] {
            for bits in 0..4u32 {
                let sym = pebbled_symbol(base, bits, 2);
                let hit = base == 1 && bits & 0b10 != 0;
                for ql in [STAR, 0, 1] {
                    for qr in [STAR, 0, 1] {
                        let seen = hit || ql == 1 || qr == 1;
                        a.add_transition(ql, qr, sym, u32::from(seen));
                    }
                }
            }
        }
        a.set_accepting(1, true);
        PebbledQuery::new(a, 1)
    }

    /// A left-spine chain of `n` nodes, all labeled 1 (all active).
    fn chain_of_ones(n: u32) -> BinaryTree {
        let triples: Vec<(u32, Option<u32>, Option<u32>)> = (0..n)
            .map(|i| (1, if i + 1 < n { Some(i + 1) } else { None }, None))
            .collect();
        BinaryTree::from_triples(&triples, 0)
    }

    fn uniform_weights(n: u32) -> Weights {
        let mut w = Weights::new(1);
        for i in 0..n {
            w.set(&[i], 50 + i as i64);
        }
        w
    }

    #[test]
    fn builds_blocks_and_pairs_on_chain() {
        let tree = chain_of_ones(40);
        let q = label_one_query();
        let scheme = TreeScheme::build(&tree, &q, 2);
        let stats = scheme.stats();
        assert_eq!(stats.active_nodes, 40);
        assert_eq!(stats.num_states, 2);
        // threshold = 4: ten blocks on a 40-chain.
        assert_eq!(stats.blocks, 10);
        assert!(scheme.capacity() >= 1, "stats: {stats:?}");
    }

    #[test]
    fn theorem5_distortion_bound_holds() {
        let tree = chain_of_ones(40);
        let q = label_one_query();
        let scheme = TreeScheme::build(&tree, &q, 2);
        let w = uniform_weights(40);
        for mask in 0..(1u32 << scheme.capacity().min(6)) {
            let message: Vec<bool> =
                (0..scheme.capacity()).map(|i| mask >> (i % 6) & 1 == 1).collect();
            let marked = scheme.mark(&w, &message);
            let report = scheme.audit(&w, &marked);
            assert!(report.is_c_local(1));
            assert!(report.is_d_global(1), "mask {mask}: global {}", report.max_global);
        }
    }

    #[test]
    fn roundtrip_detection() {
        let tree = chain_of_ones(40);
        let q = label_one_query();
        let scheme = TreeScheme::build(&tree, &q, 2);
        let w = uniform_weights(40);
        let message: Vec<bool> = (0..scheme.capacity()).map(|i| i % 3 == 0).collect();
        let marked = scheme.mark(&w, &message);
        let server = HonestServer::new(scheme.family().clone(), marked);
        let report = scheme.detect(&w, &server);
        assert_eq!(report.bits, message);
        assert_eq!(report.missing_pairs, 0);
    }

    #[test]
    fn capacity_scales_with_tree_size() {
        let q = label_one_query();
        let small = TreeScheme::build(&chain_of_ones(16), &q, 2).capacity();
        let large = TreeScheme::build(&chain_of_ones(128), &q, 2).capacity();
        assert!(large > small, "small={small} large={large}");
        // Lemma 3 predicts ≈ |W|/4m = 128/8 = 16 blocks' worth of pairs.
        assert!(large >= 8, "large={large}");
    }

    #[test]
    fn inactive_trees_give_empty_schemes() {
        // all labels 0: nothing active.
        let triples: Vec<(u32, Option<u32>, Option<u32>)> =
            (0..10).map(|i| (0, if i + 1 < 10 { Some(i + 1) } else { None }, None)).collect();
        let tree = BinaryTree::from_triples(&triples, 0);
        let q = label_one_query();
        let scheme = TreeScheme::build(&tree, &q, 2);
        assert_eq!(scheme.capacity(), 0);
        assert_eq!(scheme.stats().active_nodes, 0);
    }

    #[test]
    fn branching_tree_pairs_are_valid() {
        // complete-ish binary tree of 1-labeled nodes
        let n = 63u32;
        let triples: Vec<(u32, Option<u32>, Option<u32>)> = (0..n)
            .map(|i| {
                let l = 2 * i + 1;
                let r = 2 * i + 2;
                (
                    1,
                    (l < n).then_some(l),
                    (r < n).then_some(r),
                )
            })
            .collect();
        let tree = BinaryTree::from_triples(&triples, 0);
        let q = label_one_query();
        let scheme = TreeScheme::build(&tree, &q, 2);
        assert!(scheme.capacity() >= 4, "capacity {}", scheme.capacity());
        let w = uniform_weights(n);
        let message = vec![true; scheme.capacity()];
        let marked = scheme.mark(&w, &message);
        assert!(scheme.audit(&w, &marked).is_d_global(1));
    }

    /// The path-decomposition signature must agree with the naive
    /// "override the child state, rerun the overlay" computation.
    #[test]
    fn path_context_matches_naive_overlay() {
        // a 3-state automaton with nontrivial state mixing
        let mut a = TreeAutomaton::new(3, 0);
        for base in [0u32, 1, 2] {
            for bits in 0..4u32 {
                let sym = pebbled_symbol(base, bits, 2);
                for ql in [STAR, 0, 1, 2] {
                    for qr in [STAR, 0, 1, 2] {
                        let v = |q: u32| if q == STAR { 0 } else { q };
                        let bump = if bits & 0b10 != 0 { 2 } else { 0 };
                        let target = (v(ql) * 2 + v(qr) + base + bump) % 3;
                        a.add_transition(ql, qr, sym, target);
                    }
                }
            }
        }
        a.set_accepting(2, true);
        let q = PebbledQuery::new(a, 1);
        // a mixed tree: spine with branches
        let tree = BinaryTree::from_triples(
            &[
                (1, Some(1), Some(2)),   // 0 root
                (0, Some(3), Some(4)),   // 1
                (2, None, None),         // 2
                (1, Some(5), None),      // 3
                (2, None, Some(6)),      // 4
                (0, None, None),         // 5
                (1, Some(7), Some(8)),   // 6
                (2, None, None),         // 7
                (0, None, None),         // 8
            ],
            0,
        );
        let base_states = q.base_run_free(&tree);
        let label_of = |n: qpwm_trees::tree::NodeId| q.free_label(&tree, n);
        // child_root = 6, block_root = 0: the path is 6 -> 4 -> 1 -> 0.
        let ctx = PathContext::new(&tree, &q, &base_states, 6, 0, 3);
        for b in [2u32, 3, 4, 5, 1] {
            let fast = ctx.signature(&tree, &q, &base_states, &label_of, b);
            let naive: Vec<u32> = (0..3)
                .map(|entering| {
                    let mut ov = Overlay::new(q.automaton(), &tree, &base_states, &label_of);
                    ov.set_state(6, entering);
                    ov.set_label(b, q.output_label(&tree, b));
                    ov.state_at(0)
                })
                .collect();
            assert_eq!(fast, naive, "member {b}");
        }
    }
}
