//! The detector's view of a suspect server.
//!
//! Per Definition 2, the detector receives only `A^{G*, ψ}` — the answers
//! a suspect server gives to every parameter value. The owner replays the
//! parameter domain, reads the weights attached to answer tuples, and
//! compares them against the original (secret) weights. [`AnswerServer`]
//! abstracts the server; [`HonestServer`] replays a structure verbatim
//! (the non-adversarial model), and the attack simulations in
//! [`crate::adversary`] wrap it. The abstraction is deliberately wide
//! enough for *remote* servers: `qpwm-serve` implements [`AnswerServer`]
//! over HTTP (`RemoteServer`), so the exact same
//! [`ObservedWeights::collect`] → [`PairMarking::extract`] pipeline runs
//! whether the suspect's answers come from an in-process family or from
//! a data server across the network.
//!
//! [`PairMarking::extract`]: crate::pairing::PairMarking::extract

use qpwm_structures::{AnswerFamily, Element, TupleArena, Weights};
use std::fmt;

/// A data server answering the registered parametric query.
///
/// `answer(i)` returns `A_ā` for the i-th parameter of the (publicly
/// known) parameter domain: the output tuples with their weights.
pub trait AnswerServer {
    /// Number of parameters the server accepts (the domain size).
    fn num_parameters(&self) -> usize;

    /// The answer set for parameter `i`: `(b̄, W(b̄))` pairs.
    fn answer(&self, i: usize) -> Vec<(Vec<Element>, i64)>;
}

/// A server that faithfully replays a weighted instance.
///
/// Holds an interned [`AnswerFamily`] — constructing one from a scheme's
/// family is an O(1) clone, not a nested-vector copy.
#[derive(Debug, Clone)]
pub struct HonestServer {
    family: AnswerFamily,
    weights: Weights,
}

impl HonestServer {
    /// Creates a server replaying an interned answer family with weights.
    pub fn new(family: AnswerFamily, weights: Weights) -> Self {
        HonestServer { family, weights }
    }

    /// Compat constructor from materialized nested active sets; the i-th
    /// set gets the synthetic parameter `[i]`.
    pub fn from_sets(active_sets: Vec<Vec<Vec<Element>>>, weights: Weights) -> Self {
        let parameters = (0..active_sets.len()).map(|i| vec![i as Element]).collect();
        HonestServer::new(AnswerFamily::from_nested(parameters, &active_sets), weights)
    }

    /// The family the server replays.
    pub fn family(&self) -> &AnswerFamily {
        &self.family
    }

    /// The weights the server is serving (for tests).
    pub fn weights(&self) -> &Weights {
        &self.weights
    }
}

impl AnswerServer for HonestServer {
    fn num_parameters(&self) -> usize {
        self.family.len()
    }

    fn answer(&self, i: usize) -> Vec<(Vec<Element>, i64)> {
        self.family
            .set_tuples(i)
            .map(|b| (b.to_vec(), self.weights.get(b)))
            .collect()
    }
}

/// One arena of observed tuples of a fixed arity, with weights parallel
/// to the arena's ids.
#[derive(Debug, Clone)]
struct ObservedBucket {
    arena: TupleArena,
    values: Vec<i64>,
}

/// Weights reconstructed from a server's answers.
///
/// Tuples are interned into a [`TupleArena`] per output arity: a tuple
/// answered under many parameters hashes once per observation but is
/// stored once, and repeat observations compare against a dense `i64`
/// slot instead of re-hashing an owned key.
#[derive(Debug, Clone)]
pub struct ObservedWeights {
    /// One bucket per distinct observed arity (almost always exactly one;
    /// merged multi-query observations may mix arities).
    buckets: Vec<ObservedBucket>,
    /// Tuples answered with inconsistent weights across parameters — a
    /// sign of a cheating server.
    pub inconsistencies: Vec<Vec<Element>>,
}

impl ObservedWeights {
    fn empty() -> Self {
        ObservedWeights { buckets: Vec::new(), inconsistencies: Vec::new() }
    }

    /// Records one observation; first-seen weight wins, later conflicting
    /// weights are flagged.
    fn record(&mut self, tuple: &[Element], w: i64) {
        let bucket = match self.buckets.iter_mut().position(|b| b.arena.arity() == tuple.len()) {
            Some(i) => &mut self.buckets[i],
            None => {
                self.buckets.push(ObservedBucket {
                    arena: TupleArena::new(tuple.len()),
                    values: Vec::new(),
                });
                self.buckets.last_mut().expect("just pushed")
            }
        };
        let id = bucket.arena.intern(tuple) as usize;
        if id == bucket.values.len() {
            bucket.values.push(w);
        } else if bucket.values[id] != w {
            self.inconsistencies.push(tuple.to_vec());
        }
    }

    fn finish(&mut self) {
        self.inconsistencies.sort_unstable();
        self.inconsistencies.dedup();
    }

    /// Queries every parameter and collects each active tuple's weight.
    pub fn collect(server: &dyn AnswerServer) -> Self {
        let mut out = ObservedWeights::empty();
        for i in 0..server.num_parameters() {
            for (tuple, w) in server.answer(i) {
                out.record(&tuple, w);
            }
        }
        out.finish();
        out
    }

    /// Queries only the given parameter indices — the *partial access*
    /// scenario where replaying the whole domain is too expensive or too
    /// conspicuous. Pairs whose members never appear in the sampled
    /// answers read as missing; detection degrades gracefully with the
    /// sample size (measured in the `attacks` experiment).
    pub fn collect_sample(server: &dyn AnswerServer, indices: &[usize]) -> Self {
        let mut out = ObservedWeights::empty();
        for &i in indices {
            debug_assert!(i < server.num_parameters());
            for (tuple, w) in server.answer(i) {
                out.record(&tuple, w);
            }
        }
        out.finish();
        out
    }

    /// The observed weight of a tuple, if the server ever returned it.
    pub fn get(&self, tuple: &[Element]) -> Option<i64> {
        let bucket = self.buckets.iter().find(|b| b.arena.arity() == tuple.len())?;
        bucket.arena.lookup(tuple).map(|id| bucket.values[id as usize])
    }

    /// Merges another observation set (e.g. from a second registered
    /// query); conflicting weights are recorded as inconsistencies.
    pub fn merge(&mut self, other: ObservedWeights) {
        for bucket in &other.buckets {
            for (id, tuple) in bucket.arena.iter() {
                self.record(tuple, bucket.values[id as usize]);
            }
        }
        self.inconsistencies.extend(other.inconsistencies);
        self.finish();
    }

    /// Number of distinct tuples observed.
    pub fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.values.len()).sum()
    }

    /// True when nothing was observed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Result of running a detector against a server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectionReport {
    /// The extracted message bits.
    pub bits: Vec<bool>,
    /// Per-bit raw score: positive means the pair leaned toward `1`.
    /// Magnitude 2 is a clean non-adversarial read (both members agree);
    /// 0 means the evidence was erased or contradictory.
    pub scores: Vec<i64>,
    /// Pairs whose members were missing from the server's answers.
    pub missing_pairs: usize,
}

impl DetectionReport {
    /// Fraction of bits read with full confidence (|score| = 2).
    pub fn clean_fraction(&self) -> f64 {
        if self.scores.is_empty() {
            return 1.0;
        }
        let clean = self.scores.iter().filter(|s| s.abs() >= 2).count();
        clean as f64 / self.scores.len() as f64
    }

    /// Hamming distance to an expected message.
    pub fn errors_against(&self, expected: &[bool]) -> usize {
        self.bits
            .iter()
            .zip(expected)
            .filter(|(a, b)| a != b)
            .count()
    }

    /// The probability that an *innocent* server (each bit a fair coin,
    /// the paper's limited-knowledge null hypothesis) matches `expected`
    /// in at least as many positions as this report did — the detector's
    /// false-positive significance. Ownership claims should require this
    /// to be far below the acceptable δ.
    pub fn match_significance(&self, expected: &[bool]) -> f64 {
        let n = self.bits.len().min(expected.len());
        if n == 0 {
            return 1.0;
        }
        let matches = n - self.errors_against(expected);
        binomial_tail(n, matches)
    }

    /// Scores an ownership claim at false-positive threshold `delta`.
    ///
    /// This is the one place the match count, significance, and verdict
    /// are computed together, so every frontend — the offline `detect` /
    /// `detect-db` CLI paths and the `qpwm-serve` `POST /detect`
    /// endpoint — reports identical numbers for identical evidence.
    pub fn claim_check(&self, expected: &[bool], delta: f64) -> ClaimCheck {
        let claimed = expected.len();
        let compared = self.bits.len().min(claimed);
        let matches = compared - self.errors_against(expected);
        let significance = self.match_significance(expected);
        let verdict = if significance < delta {
            Verdict::MarkPresent
        } else {
            Verdict::Inconclusive
        };
        ClaimCheck { matches, claimed, compared, significance, verdict }
    }

    /// Scores an ownership claim over the *effective* sample: only bits
    /// with surviving evidence (`score ≠ 0`).
    ///
    /// This is the missing-read-aware variant for detection over an
    /// unreliable channel. A transport failure erases a read — the
    /// affected pairs score 0 exactly like an adversarial erasure — and
    /// counting those bits as coin flips in the binomial sample would
    /// *dilute* significance with noise the channel, not the server,
    /// introduced. Excluding them keeps the null hypothesis honest: each
    /// remaining bit is still a fair coin for an innocent server, so
    /// `P[Bin(n_eff, ½) ≥ matches]` is a valid (conservative, since
    /// n_eff ≤ n) false-positive bound.
    ///
    /// The verdict can be [`Verdict::Abstain`]: evidence was lost *and*
    /// what remains does not clear `delta`. It can never flip a verdict
    /// relative to complete evidence — with nothing missing it degrades
    /// to the plain [`DetectionReport::claim_check`] decision, and with
    /// missing evidence it either still proves the mark or explicitly
    /// declines to rule.
    pub fn claim_check_effective(&self, expected: &[bool], delta: f64) -> ClaimCheck {
        let claimed = expected.len();
        let full = self.bits.len().min(claimed);
        let mut compared = 0usize;
        let mut matches = 0usize;
        for (i, &want) in expected.iter().enumerate().take(full) {
            if self.scores[i] != 0 {
                compared += 1;
                if self.bits[i] == want {
                    matches += 1;
                }
            }
        }
        let significance = binomial_tail(compared, matches);
        let verdict = if significance < delta {
            Verdict::MarkPresent
        } else if compared < full {
            Verdict::Abstain
        } else {
            Verdict::Inconclusive
        };
        ClaimCheck { matches, claimed, compared, significance, verdict }
    }
}

/// The default false-positive threshold δ for ownership verdicts.
pub const DEFAULT_DELTA: f64 = 1e-6;

/// Outcome of an ownership claim check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Significance below the threshold: the mark is present.
    MarkPresent,
    /// The evidence is consistent with an innocent server.
    Inconclusive,
    /// Evidence was lost in transit (missing reads shrank the effective
    /// sample) and what survived does not clear the threshold. Only
    /// [`DetectionReport::claim_check_effective`] produces this: it is a
    /// refusal to rule, not a ruling — rerun detection over a cleaner
    /// channel.
    Abstain,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::MarkPresent => write!(f, "mark-present"),
            Verdict::Inconclusive => write!(f, "inconclusive"),
            Verdict::Abstain => write!(f, "abstain"),
        }
    }
}

/// A scored ownership claim (see [`DetectionReport::claim_check`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClaimCheck {
    /// Bits of the claim matched by the extraction.
    pub matches: usize,
    /// Length of the claimed message.
    pub claimed: usize,
    /// Bits that entered the binomial sample: the full overlap for
    /// [`DetectionReport::claim_check`], only evidence-bearing bits for
    /// [`DetectionReport::claim_check_effective`].
    pub compared: usize,
    /// `P[innocent server matches at least this well]`.
    pub significance: f64,
    /// The threshold verdict.
    pub verdict: Verdict,
}

/// `P[Bin(n, 1/2) ≥ k]`, computed in log-space for stability.
pub fn binomial_tail(n: usize, k: usize) -> f64 {
    if k == 0 {
        return 1.0;
    }
    if k > n {
        return 0.0;
    }
    // ln C(n, i) incrementally; sum exp(ln C(n,i) - n ln 2).
    let ln2n = n as f64 * std::f64::consts::LN_2;
    let mut ln_c = 0.0f64; // ln C(n, 0)
    let mut total = 0.0f64;
    for i in 0..=n {
        if i >= k {
            total += (ln_c - ln2n).exp();
        }
        if i < n {
            ln_c += ((n - i) as f64).ln() - ((i + 1) as f64).ln();
        }
    }
    total.min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(pairs: &[(u32, i64)]) -> Weights {
        let mut out = Weights::new(1);
        for &(k, v) in pairs {
            out.set(&[k], v);
        }
        out
    }

    #[test]
    fn honest_server_replays_weights() {
        let sets = vec![vec![vec![0u32], vec![1]], vec![vec![1u32]]];
        let server = HonestServer::from_sets(sets, w(&[(0, 5), (1, 7)]));
        assert_eq!(server.num_parameters(), 2);
        assert_eq!(server.answer(0), vec![(vec![0], 5), (vec![1], 7)]);
        assert_eq!(server.answer(1), vec![(vec![1], 7)]);
    }

    #[test]
    fn observed_weights_union_all_answers() {
        let sets = vec![vec![vec![0u32], vec![1]], vec![vec![1u32], vec![2]]];
        let server = HonestServer::from_sets(sets, w(&[(0, 5), (1, 7), (2, -1)]));
        let obs = ObservedWeights::collect(&server);
        assert_eq!(obs.len(), 3);
        assert_eq!(obs.get(&[0]), Some(5));
        assert_eq!(obs.get(&[2]), Some(-1));
        assert_eq!(obs.get(&[9]), None);
        assert!(obs.inconsistencies.is_empty());
    }

    #[test]
    fn inconsistent_servers_are_flagged() {
        struct Liar;
        impl AnswerServer for Liar {
            fn num_parameters(&self) -> usize {
                2
            }
            fn answer(&self, i: usize) -> Vec<(Vec<Element>, i64)> {
                vec![(vec![0], i as i64)] // weight depends on the parameter
            }
        }
        let obs = ObservedWeights::collect(&Liar);
        assert_eq!(obs.inconsistencies, vec![vec![0]]);
    }

    #[test]
    fn merge_mixes_arities_and_flags_conflicts() {
        let a_sets = vec![vec![vec![0u32], vec![1]]];
        let mut a =
            ObservedWeights::collect(&HonestServer::from_sets(a_sets, w(&[(0, 5), (1, 7)])));
        let b_sets = vec![vec![vec![1u32, 1]]];
        let mut bw = Weights::new(2);
        bw.set(&[1, 1], 9);
        let b = ObservedWeights::collect(&HonestServer::from_sets(b_sets, bw));
        a.merge(b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.get(&[1]), Some(7));
        assert_eq!(a.get(&[1, 1]), Some(9));
        // conflicting re-observation of [1] is flagged, first weight kept
        let c_sets = vec![vec![vec![1u32]]];
        a.merge(ObservedWeights::collect(&HonestServer::from_sets(
            c_sets,
            w(&[(1, 8)]),
        )));
        assert_eq!(a.get(&[1]), Some(7));
        assert_eq!(a.inconsistencies, vec![vec![1]]);
    }

    #[test]
    fn report_statistics() {
        let r = DetectionReport {
            bits: vec![true, false, true],
            scores: vec![2, -2, 0],
            missing_pairs: 0,
        };
        assert!((r.clean_fraction() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(r.errors_against(&[true, true, true]), 1);
    }

    #[test]
    fn binomial_tail_basics() {
        assert!((binomial_tail(10, 0) - 1.0).abs() < 1e-12);
        assert_eq!(binomial_tail(10, 11), 0.0);
        // P[Bin(2, 1/2) >= 1] = 3/4; P[Bin(2, 1/2) >= 2] = 1/4.
        assert!((binomial_tail(2, 1) - 0.75).abs() < 1e-12);
        assert!((binomial_tail(2, 2) - 0.25).abs() < 1e-12);
        // monotone in k
        assert!(binomial_tail(100, 80) < binomial_tail(100, 60));
        // a perfect 100-bit match is overwhelming evidence
        assert!(binomial_tail(100, 100) < 1e-29);
    }

    #[test]
    fn claim_check_matches_significance_and_thresholds() {
        let perfect = DetectionReport {
            bits: vec![true; 40],
            scores: vec![2; 40],
            missing_pairs: 0,
        };
        let check = perfect.claim_check(&[true; 40], DEFAULT_DELTA);
        assert_eq!(check.matches, 40);
        assert_eq!(check.claimed, 40);
        assert_eq!(check.significance, perfect.match_significance(&[true; 40]));
        assert_eq!(check.verdict, Verdict::MarkPresent);
        // the same evidence under a stricter threshold can be inconclusive
        let strict = perfect.claim_check(&[true; 40], 1e-30);
        assert_eq!(strict.verdict, Verdict::Inconclusive);
        assert_eq!(format!("{}", check.verdict), "mark-present");
        assert_eq!(format!("{}", strict.verdict), "inconclusive");
    }

    #[test]
    fn effective_check_with_complete_evidence_matches_the_plain_check() {
        let report = DetectionReport {
            bits: vec![true, false, true, true],
            scores: vec![2, -2, 2, 2],
            missing_pairs: 0,
        };
        let expected = [true, true, true, true];
        let plain = report.claim_check(&expected, DEFAULT_DELTA);
        let effective = report.claim_check_effective(&expected, DEFAULT_DELTA);
        assert_eq!(plain, effective);
        assert_eq!(effective.compared, 4);
        assert_eq!(effective.verdict, Verdict::Inconclusive, "4 bits never clear 1e-6");
    }

    #[test]
    fn effective_check_excludes_erased_bits_from_the_sample() {
        // 30 clean matching bits + 10 erased bits whose extracted values
        // are garbage. The plain check dilutes: 30/40 matches. The
        // effective check scores 30/30 over the surviving sample.
        let mut bits = vec![true; 30];
        bits.extend(vec![false; 10]);
        let mut scores = vec![2i64; 30];
        scores.extend(vec![0i64; 10]);
        let report = DetectionReport { bits, scores, missing_pairs: 10 };
        let effective = report.claim_check_effective(&[true; 40], DEFAULT_DELTA);
        assert_eq!(effective.compared, 30);
        assert_eq!(effective.matches, 30);
        assert_eq!(effective.significance, binomial_tail(30, 30));
        assert_eq!(effective.verdict, Verdict::MarkPresent);
    }

    #[test]
    fn effective_check_abstains_when_surviving_evidence_is_thin() {
        // almost everything erased: 4 surviving bits cannot clear 1e-6,
        // and the loss is reported as an abstention, not a ruling
        let mut scores = vec![0i64; 36];
        scores.extend(vec![2i64; 4]);
        let report = DetectionReport {
            bits: vec![true; 40],
            scores,
            missing_pairs: 36,
        };
        let check = report.claim_check_effective(&[true; 40], DEFAULT_DELTA);
        assert_eq!(check.compared, 4);
        assert_eq!(check.verdict, Verdict::Abstain);
        assert_eq!(format!("{}", check.verdict), "abstain");
        // total erasure: nothing observed, certain abstention
        let blank = DetectionReport {
            bits: vec![false; 8],
            scores: vec![0; 8],
            missing_pairs: 8,
        };
        let blank_check = blank.claim_check_effective(&[true; 8], DEFAULT_DELTA);
        assert_eq!(blank_check.compared, 0);
        assert_eq!(blank_check.significance, 1.0);
        assert_eq!(blank_check.verdict, Verdict::Abstain);
    }

    #[test]
    fn significance_of_reports() {
        let perfect = DetectionReport {
            bits: vec![true; 40],
            scores: vec![2; 40],
            missing_pairs: 0,
        };
        assert!(perfect.match_significance(&[true; 40]) < 1e-11);
        let coin_flips = DetectionReport {
            bits: (0..40).map(|i| i % 2 == 0).collect(),
            scores: vec![0; 40],
            missing_pairs: 0,
        };
        assert!(coin_flips.match_significance(&[true; 40]) > 0.4);
    }
}
