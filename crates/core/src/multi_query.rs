//! Preserving several registered queries at once.
//!
//! The paper treats a single query `ψ` "without loss of generality,
//! but extension to several queries ψ₁, ..., ψ_k is straightforward by
//! simple projection techniques". Concretely: classes are computed
//! against the union of every query's canonical active sets (tagging
//! each canonical set with its query), the S-partition pairs elements
//! whose membership agrees across *all* queries' canonical parameters,
//! and the ε-goodness check runs over the union of all answer families.
//! Each query then individually satisfies the d-global bound.
//!
//! All per-query families are materialized through one [`FamilyBuilder`]
//! so they share a single arena: tuple ids are comparable across
//! queries, the combined universe is an id merge, and the selection loop
//! runs on one [`FamilyIndex`] spanning every family.

use crate::detect::{AnswerServer, DetectionReport, ObservedWeights};
use crate::local_scheme::{LocalSchemeConfig, SchemeError, SelectionStrategy};
use crate::pairing::{classes_ids, s_partition_ids, FamilyIndex, Pair, PairMarking};
use qpwm_logic::{ParametricQuery, QueryAnswers};
use qpwm_rng::Rng;
use qpwm_structures::{
    Element, FamilyBuilder, GaifmanGraph, NeighborhoodTypes, TupleId, WeightedStructure, Weights,
};
use std::collections::BTreeSet;

/// A scheme preserving a set of registered parametric queries.
#[derive(Debug)]
pub struct MultiQueryScheme {
    marking: PairMarking,
    /// Per-query interned families, in registration order (one shared
    /// arena).
    answers: Vec<QueryAnswers>,
    /// Worst-case separation across all queries.
    max_separation: usize,
    d: u64,
}

impl MultiQueryScheme {
    /// The distortion budget `d` the scheme was built with.
    pub fn d(&self) -> u64 {
        self.d
    }
}

impl MultiQueryScheme {
    /// Builds a scheme preserving every `(query, domain)` pair. All
    /// registered queries must share one output arity (tuples from
    /// different queries live in one arena).
    ///
    /// # Errors
    /// [`SchemeError::NoPairs`] when no two active elements share classes
    /// across all queries; [`SchemeError::SamplingFailed`] as in the
    /// single-query scheme.
    pub fn build(
        instance: &WeightedStructure,
        queries: &[(&ParametricQuery, Vec<Vec<Element>>)],
        config: &LocalSchemeConfig,
    ) -> Result<Self, SchemeError> {
        assert!(!queries.is_empty(), "need at least one query");
        let arity = queries[0].0.s();
        assert!(
            queries.iter().all(|(q, _)| q.s() == arity),
            "registered queries must share one output arity"
        );
        let structure = instance.structure();
        let gaifman = GaifmanGraph::of(structure);

        // Stream every query's answers through one builder: ids are
        // comparable across the resulting families.
        let mut builder = FamilyBuilder::new(arity);
        for (query, domain) in queries {
            builder.push_source_par(&query.bind(structure), domain.clone());
        }
        let all_answers = builder.finish();

        // Canonical sets per query, as id slices out of each family.
        let mut canonical_sets: Vec<&[TupleId]> = Vec::new();
        for answers in &all_answers {
            let census = NeighborhoodTypes::classify(
                structure,
                &gaifman,
                config.rho,
                answers.parameters().iter().cloned(),
            );
            for t in 0..census.num_types() {
                canonical_sets.push(
                    answers
                        .ids_of(census.representative(t))
                        .expect("representative in domain"),
                );
            }
        }

        // Active universe: id union over all queries (shared arena).
        let active: Vec<TupleId> = {
            let mut set: BTreeSet<TupleId> = BTreeSet::new();
            for answers in &all_answers {
                set.extend(answers.active_universe().iter().copied());
            }
            set.into_iter().collect()
        };
        let cls = classes_ids(&active, &canonical_sets);
        let all_pairs = s_partition_ids(&active, &cls);
        if all_pairs.is_empty() {
            return Err(SchemeError::NoPairs);
        }

        // One postings index spanning every family's sets.
        let family_refs: Vec<&QueryAnswers> = all_answers.iter().collect();
        let index = FamilyIndex::new(&family_refs);

        // Per-pair separating lists, computed once in parallel and
        // shared by both strategies (independent postings merge walks).
        let sep_lists: Vec<Vec<usize>> = qpwm_par::par_map(&all_pairs, |&(a, b)| {
            let mut sep = Vec::new();
            index.for_each_separating_set(a, b, |s| sep.push(s));
            sep
        });

        let mut rng = Rng::seed_from_u64(config.seed);
        let mut counts = vec![0u64; index.num_sets()];
        let selected: Vec<(TupleId, TupleId)> = match config.strategy {
            SelectionStrategy::Greedy => {
                let mut order: Vec<usize> = (0..all_pairs.len()).collect();
                rng.shuffle(&mut order);
                let mut chosen: Vec<(TupleId, TupleId)> = Vec::new();
                for idx in order {
                    let separating = &sep_lists[idx];
                    if separating.iter().all(|&s| counts[s] < config.d) {
                        for &s in separating {
                            counts[s] += 1;
                        }
                        chosen.push(all_pairs[idx]);
                    }
                }
                if chosen.is_empty() {
                    return Err(SchemeError::NoPairs);
                }
                chosen
            }
            SelectionStrategy::Sampling { max_retries } => {
                // the paper's p with N = total distinct queries across all
                // registered formulas
                let n_queries: usize =
                    all_answers.iter().map(QueryAnswers::distinct_queries).sum();
                let r = queries.iter().map(|(q, _)| q.r()).max().unwrap_or(1) as u64;
                let k = gaifman.max_degree() as u64;
                let eta = r.saturating_mul(k.saturating_pow(2 * config.rho + 1)).max(1);
                let epsilon = 1.0 / config.d as f64;
                let p = (1.0
                    / (eta as f64 * (2.0 * n_queries.max(1) as f64).powf(epsilon)))
                .min(1.0);
                let mut attempt = 0;
                loop {
                    attempt += 1;
                    let chosen: Vec<usize> = (0..all_pairs.len())
                        .filter(|_| rng.gen_f64() < p)
                        .collect();
                    if !chosen.is_empty() {
                        counts.iter_mut().for_each(|c| *c = 0);
                        for &idx in &chosen {
                            for &s in &sep_lists[idx] {
                                counts[s] += 1;
                            }
                        }
                        if counts.iter().all(|&c| c <= config.d) {
                            break chosen.iter().map(|&i| all_pairs[i]).collect();
                        }
                    }
                    if attempt >= max_retries {
                        return Err(SchemeError::SamplingFailed { attempts: attempt });
                    }
                }
            }
        };

        // Separation of the final selection, across every family's sets:
        // both strategies leave `counts` reflecting exactly the selected
        // pairs, so the maximum is already on hand.
        let max_separation = counts.iter().copied().max().unwrap_or(0) as usize;

        let arena = all_answers[0].arena();
        let marking = PairMarking::new(
            selected
                .iter()
                .map(|&(a, b)| Pair {
                    plus: arena.tuple(a).to_vec(),
                    minus: arena.tuple(b).to_vec(),
                })
                .collect(),
        );
        Ok(MultiQueryScheme { marking, answers: all_answers, max_separation, d: config.d })
    }

    /// Message capacity.
    pub fn capacity(&self) -> usize {
        self.marking.capacity()
    }

    /// Worst separation across every registered query (≤ d).
    pub fn max_separation(&self) -> usize {
        self.max_separation
    }

    /// The secret marking.
    pub fn marking(&self) -> &PairMarking {
        &self.marking
    }

    /// Answers of the i-th registered query.
    pub fn answers(&self, i: usize) -> &QueryAnswers {
        &self.answers[i]
    }

    /// Number of registered queries.
    pub fn num_queries(&self) -> usize {
        self.answers.len()
    }

    /// Marker.
    pub fn mark(&self, weights: &Weights, message: &[bool]) -> Weights {
        self.marking.apply(weights, message)
    }

    /// Detector reading answers of the i-th query's server. Any single
    /// registered query suffices if its answers expose all pairs; use
    /// [`MultiQueryScheme::detect_combined`] otherwise.
    pub fn detect(&self, original: &Weights, server: &dyn AnswerServer) -> DetectionReport {
        let observed = ObservedWeights::collect(server);
        self.marking.extract(original, &observed)
    }

    /// Detector combining several servers' observations (one per query).
    pub fn detect_combined(
        &self,
        original: &Weights,
        servers: &[&dyn AnswerServer],
    ) -> DetectionReport {
        let mut merged = ObservedWeights::collect(servers[0]);
        for server in &servers[1..] {
            let obs = ObservedWeights::collect(*server);
            merged.merge(obs);
        }
        self.marking.extract(original, &merged)
    }

    /// Audits the d-global bound per query; returns the max distortion of
    /// each registered query.
    pub fn audit(&self, original: &Weights, marked: &Weights) -> Vec<i64> {
        self.answers
            .iter()
            .map(|a| a.max_global_distortion(original, marked))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::HonestServer;
    use qpwm_logic::Formula;
    use qpwm_structures::{Schema, StructureBuilder};
    use std::sync::Arc;

    /// Disjoint 6-cycles with both the edge query and the two-hop query.
    fn setup() -> (WeightedStructure, ParametricQuery, ParametricQuery) {
        let schema = Arc::new(Schema::graph());
        let mut b = StructureBuilder::new(schema, 60);
        for c in 0..10u32 {
            let base = c * 6;
            for i in 0..6 {
                let u = base + i;
                let v = base + (i + 1) % 6;
                b.add(0, &[u, v]);
                b.add(0, &[v, u]);
            }
        }
        let s = b.build();
        let mut w = Weights::new(1);
        for e in s.universe() {
            w.set(&[e], 100 + e as i64);
        }
        let edge = ParametricQuery::new(Formula::atom(0, &[0, 1]), vec![0], vec![1]);
        let two_hop = ParametricQuery::new(
            Formula::exists(2, Formula::atom(0, &[0, 2]).and(Formula::atom(0, &[2, 1]))),
            vec![0],
            vec![1],
        );
        (WeightedStructure::new(s, w), edge, two_hop)
    }

    fn domain(n: u32) -> Vec<Vec<Element>> {
        (0..n).map(|e| vec![e]).collect()
    }

    #[test]
    fn builds_and_bounds_both_queries() {
        let (instance, edge, two_hop) = setup();
        let config = LocalSchemeConfig {
            rho: 2,
            d: 2,
            strategy: SelectionStrategy::Greedy,
            seed: 1,
        };
        let scheme = MultiQueryScheme::build(
            &instance,
            &[(&edge, domain(60)), (&two_hop, domain(60))],
            &config,
        )
        .expect("builds");
        assert!(scheme.capacity() >= 2, "capacity {}", scheme.capacity());
        assert!(scheme.max_separation() <= 2);
        let message: Vec<bool> = (0..scheme.capacity()).map(|i| i % 2 == 0).collect();
        let marked = scheme.mark(instance.weights(), &message);
        let audits = scheme.audit(instance.weights(), &marked);
        assert_eq!(audits.len(), 2);
        for (i, d) in audits.iter().enumerate() {
            assert!(*d <= 2, "query {i}: distortion {d}");
        }
    }

    #[test]
    fn detection_through_either_query() {
        let (instance, edge, two_hop) = setup();
        let config = LocalSchemeConfig {
            rho: 2,
            d: 2,
            strategy: SelectionStrategy::Greedy,
            seed: 5,
        };
        let scheme = MultiQueryScheme::build(
            &instance,
            &[(&edge, domain(60)), (&two_hop, domain(60))],
            &config,
        )
        .expect("builds");
        let message: Vec<bool> = (0..scheme.capacity()).map(|i| i % 3 == 0).collect();
        let marked = scheme.mark(instance.weights(), &message);
        // the edge query alone exposes every element's weight on cycles
        let server = HonestServer::new(scheme.answers(0).clone(), marked);
        let report = scheme.detect(instance.weights(), &server);
        assert_eq!(report.bits, message);
    }

    #[test]
    fn combined_detection_merges_servers() {
        let (instance, edge, two_hop) = setup();
        let config = LocalSchemeConfig {
            rho: 2,
            d: 2,
            strategy: SelectionStrategy::Greedy,
            seed: 2,
        };
        let scheme = MultiQueryScheme::build(
            &instance,
            &[(&edge, domain(60)), (&two_hop, domain(60))],
            &config,
        )
        .expect("builds");
        let message: Vec<bool> = (0..scheme.capacity()).map(|_| true).collect();
        let marked = scheme.mark(instance.weights(), &message);
        let s0 = HonestServer::new(scheme.answers(0).clone(), marked.clone());
        let s1 = HonestServer::new(scheme.answers(1).clone(), marked);
        let report =
            scheme.detect_combined(instance.weights(), &[&s0 as &dyn AnswerServer, &s1]);
        assert_eq!(report.bits, message);
    }

    #[test]
    fn single_query_multi_matches_local_scheme_family() {
        // with one registered query, the multi-scheme behaves like the
        // single-query scheme (same family, same bound)
        let (instance, edge, _) = setup();
        let config = LocalSchemeConfig {
            rho: 1,
            d: 1,
            strategy: SelectionStrategy::Greedy,
            seed: 9,
        };
        let multi = MultiQueryScheme::build(&instance, &[(&edge, domain(60))], &config)
            .expect("builds");
        let single = crate::local_scheme::LocalScheme::build_over(
            &instance,
            &edge,
            domain(60),
            &config,
        )
        .expect("builds");
        assert_eq!(multi.capacity(), single.capacity());
    }
}
