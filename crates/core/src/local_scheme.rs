//! The Theorem 3 watermarking scheme: local queries on bounded-degree
//! structures.
//!
//! Pipeline (paper, section 3):
//!
//! 1. materialize the answers `W_ā` for every parameter;
//! 2. classify parameters into `≈_ρ` neighborhood types; pick canonical
//!    parameters `S` (one per type);
//! 3. compute each active element's class `cl(w̄)` and the S-partition
//!    into balanced pairs (Proposition 1 ⇒ zero distortion on canonical
//!    parameters);
//! 4. select pairs so that no parameter separates more than `d = ⌈1/ε⌉`
//!    of them — Proposition 2 does this by independent sampling with
//!    `p = 1/(η(2N)^ε)`; we also provide a greedy mode that packs more
//!    pairs while maintaining the same invariant (an engineering
//!    extension benchmarked as an ablation);
//! 5. the marker encodes each message bit as the orientation of one pair;
//!    the detector reads orientations back from query answers.
//!
//! Selection runs entirely on interned [`TupleId`]s: canonical sets are
//! borrowed id slices out of the family's CSR storage, pairs are id
//! pairs, and per-parameter separation counts come from a
//! [`FamilyIndex`] postings transpose — no tuple hashing in the loop.
//!
//! Encoding every bit in an orientation (rather than marking a subset of
//! pairs) makes the `d`-global guarantee hold for **all** `2^l` messages
//! deterministically once step 4 succeeds, which is slightly stronger
//! than Definition 2's probability-¾ requirement.

use crate::detect::{AnswerServer, DetectionReport};
use crate::pairing::{classes_ids, s_partition_ids, FamilyIndex, Pair, PairMarking};
use crate::scheme::PairSchemeCore;
use qpwm_logic::{ParametricQuery, QueryAnswers};
use qpwm_rng::Rng;
use qpwm_structures::{GaifmanGraph, NeighborhoodTypes, TupleId, WeightedStructure, Weights};
use std::fmt;

/// How the scheme selects pairs subject to the separation bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionStrategy {
    /// Proposition 2: include each pair independently with probability
    /// `p = 1/(η(2N)^ε)`, retry on failure (the paper's marker).
    Sampling {
        /// Maximum attempts before giving up.
        max_retries: u32,
    },
    /// Greedy packing: shuffle pairs, add one if the worst-case
    /// separation stays within `d`. Deterministically succeeds and packs
    /// at least as many pairs in practice; not part of the paper.
    Greedy,
}

/// Configuration of the Theorem 3 marker.
#[derive(Debug, Clone)]
pub struct LocalSchemeConfig {
    /// Locality radius ρ of the query (from Gaifman's bound or a tighter
    /// per-query argument).
    pub rho: u32,
    /// Distortion budget `d = ⌈1/ε⌉`: no parameter may see more than
    /// this much global distortion.
    pub d: u64,
    /// Pair selection strategy.
    pub strategy: SelectionStrategy,
    /// RNG seed (schemes are deterministic given the seed).
    pub seed: u64,
}

impl Default for LocalSchemeConfig {
    fn default() -> Self {
        LocalSchemeConfig {
            rho: 1,
            d: 2,
            strategy: SelectionStrategy::Sampling { max_retries: 64 },
            seed: 0,
        }
    }
}

/// Failure modes of scheme construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemeError {
    /// No balanced pairs exist (every class group is a singleton).
    NoPairs,
    /// Sampling never produced an ε-good selection within the retry
    /// budget.
    SamplingFailed {
        /// Attempts made.
        attempts: u32,
    },
}

impl fmt::Display for SchemeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemeError::NoPairs => write!(f, "no balanced pairs available"),
            SchemeError::SamplingFailed { attempts } => {
                write!(f, "no ε-good marking found in {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for SchemeError {}

/// Construction diagnostics (reported by experiments).
#[derive(Debug, Clone)]
pub struct SchemeStats {
    /// `|W|`: number of active weighted elements.
    pub active_elements: usize,
    /// `N`: number of distinct queries (distinct active sets).
    pub distinct_queries: usize,
    /// `ntp(ρ, G)`: number of parameter neighborhood types.
    pub num_types: usize,
    /// Pairs available in the S-partition before selection.
    pub candidate_pairs: usize,
    /// The sampling probability `p` used (1.0 for greedy).
    pub sampling_p: f64,
    /// Sampling attempts consumed.
    pub attempts: u32,
    /// Worst-case separation of the selected pairs (≤ d by construction).
    pub max_separation: usize,
}

/// A constructed Theorem 3 scheme: marker + detector sharing the secret
/// pair list.
#[derive(Debug, Clone)]
pub struct LocalScheme {
    core: PairSchemeCore,
    stats: SchemeStats,
}

impl LocalScheme {
    /// Builds a scheme for `query` on `(G, W)`.
    ///
    /// The parameter domain defaults to all of `U^r`; use
    /// [`LocalScheme::build_over`] to restrict it.
    pub fn build(
        instance: &WeightedStructure,
        query: &ParametricQuery,
        config: &LocalSchemeConfig,
    ) -> Result<Self, SchemeError> {
        let answers = query.answers(instance.structure());
        Self::build_with_answers(instance, query, answers, config)
    }

    /// Builds a scheme over an explicit parameter domain.
    pub fn build_over(
        instance: &WeightedStructure,
        query: &ParametricQuery,
        domain: Vec<Vec<qpwm_structures::Element>>,
        config: &LocalSchemeConfig,
    ) -> Result<Self, SchemeError> {
        let answers = query.answers_over(instance.structure(), domain);
        Self::build_with_answers(instance, query, answers, config)
    }

    fn build_with_answers(
        instance: &WeightedStructure,
        query: &ParametricQuery,
        answers: QueryAnswers,
        config: &LocalSchemeConfig,
    ) -> Result<Self, SchemeError> {
        let structure = instance.structure();
        let gaifman = GaifmanGraph::of(structure);
        // Classify the parameter tuples that actually occur.
        let census = NeighborhoodTypes::classify(
            structure,
            &gaifman,
            config.rho,
            answers.parameters().iter().cloned(),
        );
        // Canonical active sets: the representative parameter of each
        // type, as borrowed id slices straight out of the CSR storage.
        let canonical_sets: Vec<&[TupleId]> = (0..census.num_types())
            .map(|t| {
                answers
                    .ids_of(census.representative(t))
                    .expect("representative parameter is in the domain")
            })
            .collect();
        let active = answers.active_universe();
        let cls = classes_ids(active, &canonical_sets);
        let all_pairs = s_partition_ids(active, &cls);
        if all_pairs.is_empty() {
            return Err(SchemeError::NoPairs);
        }
        let index = FamilyIndex::new(&[&answers]);

        // Lemma 1's deviation bound η = r·k^(2ρ+1) (s = 1), used for the
        // sampling probability. Saturating: huge η just means tiny p.
        let r = query.r() as u64;
        let k = gaifman.max_degree() as u64;
        let eta = r.saturating_mul(k.saturating_pow(2 * config.rho + 1)).max(1);
        let n_queries = answers.distinct_queries().max(1) as f64;
        let epsilon = 1.0 / config.d as f64;
        let p = (1.0 / (eta as f64 * (2.0 * n_queries).powf(epsilon))).min(1.0);

        // Separating-set lists are per-pair independent reads of the
        // postings transpose: compute them all once, in parallel, then
        // let both strategies consume the precomputed lists.
        let sep_lists: Vec<Vec<usize>> = qpwm_par::par_map(&all_pairs, |&(a, b)| {
            let mut sep = Vec::new();
            index.for_each_separating_set(a, b, |s| sep.push(s));
            sep
        });

        let mut rng = Rng::seed_from_u64(config.seed);
        let mut counts = vec![0u64; index.num_sets()];
        let (selected, attempts) = match config.strategy {
            SelectionStrategy::Sampling { max_retries } => {
                let mut attempt = 0;
                loop {
                    attempt += 1;
                    let chosen: Vec<usize> = (0..all_pairs.len())
                        .filter(|_| rng.gen_f64() < p)
                        .collect();
                    if !chosen.is_empty() {
                        counts.iter_mut().for_each(|c| *c = 0);
                        for &idx in &chosen {
                            for &s in &sep_lists[idx] {
                                counts[s] += 1;
                            }
                        }
                        if counts.iter().all(|&c| c <= config.d) {
                            break (chosen.iter().map(|&i| all_pairs[i]).collect(), attempt);
                        }
                    }
                    if attempt >= max_retries {
                        return Err(SchemeError::SamplingFailed { attempts: attempt });
                    }
                }
            }
            SelectionStrategy::Greedy => {
                let mut order: Vec<usize> = (0..all_pairs.len()).collect();
                rng.shuffle(&mut order);
                let mut chosen: Vec<(TupleId, TupleId)> = Vec::new();
                for idx in order {
                    let separating = &sep_lists[idx];
                    if separating.iter().all(|&s| counts[s] < config.d) {
                        for &s in separating {
                            counts[s] += 1;
                        }
                        chosen.push(all_pairs[idx]);
                    }
                }
                if chosen.is_empty() {
                    return Err(SchemeError::NoPairs);
                }
                (chosen, 1)
            }
        };

        // Only the final selection leaves id space: the secret pair list
        // stores tuple content so detection works against any server.
        let marking = PairMarking::new(
            selected
                .iter()
                .map(|&(a, b)| Pair {
                    plus: answers.tuple(a).to_vec(),
                    minus: answers.tuple(b).to_vec(),
                })
                .collect(),
        );
        // Both strategies leave `counts[s]` = number of selected pairs
        // separated by set `s`, which is exactly the per-set separation
        // of the final marking — no need to recount from tuple content.
        let max_separation = counts.iter().copied().max().unwrap_or(0) as usize;
        debug_assert_eq!(max_separation, marking.max_separation(&answers));
        debug_assert!(max_separation <= config.d as usize);
        let stats = SchemeStats {
            active_elements: active.len(),
            distinct_queries: answers.distinct_queries(),
            num_types: census.num_types(),
            candidate_pairs: all_pairs.len(),
            sampling_p: if matches!(config.strategy, SelectionStrategy::Greedy) {
                1.0
            } else {
                p
            },
            attempts,
            max_separation,
        };
        Ok(LocalScheme { core: PairSchemeCore::new(marking, answers, config.d), stats })
    }

    /// Number of message bits the scheme hides (`l`).
    pub fn capacity(&self) -> usize {
        self.core.capacity()
    }

    /// The distortion budget `d`.
    pub fn d(&self) -> u64 {
        self.core.d()
    }

    /// Construction diagnostics.
    pub fn stats(&self) -> &SchemeStats {
        &self.stats
    }

    /// The shared pair-scheme core (marking + preserved family + `d`).
    pub fn core(&self) -> &PairSchemeCore {
        &self.core
    }

    /// The secret pair marking (exposed for adversarial wrappers and
    /// incremental maintenance).
    pub fn marking(&self) -> &PairMarking {
        self.core.marking()
    }

    /// The interned answer family (active sets per parameter).
    pub fn answers(&self) -> &QueryAnswers {
        self.core.family()
    }

    /// The marker `M`: embeds `message` into the weights.
    ///
    /// # Panics
    /// Panics if `message` exceeds [`LocalScheme::capacity`].
    pub fn mark(&self, weights: &Weights, message: &[bool]) -> Weights {
        self.core.mark(weights, message)
    }

    /// The detector `D`: recovers the message from a suspect server's
    /// answers, given the original (secret) weights.
    pub fn detect(&self, original: &Weights, server: &dyn AnswerServer) -> DetectionReport {
        self.core.detect(original, server)
    }

    /// Audits a marked instance against Definition 2: 1-local and
    /// d-global over the full parameter domain.
    pub fn audit(&self, original: &Weights, marked: &Weights) -> qpwm_structures::DistortionReport {
        self.core.audit(original, marked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::HonestServer;
    use qpwm_logic::Formula;
    use qpwm_structures::{figure1_instance, Weights};

    fn edge_query() -> ParametricQuery {
        ParametricQuery::new(Formula::atom(0, &[0, 1]), vec![0], vec![1])
    }

    fn figure1_weighted() -> WeightedStructure {
        let s = figure1_instance();
        let mut w = Weights::new(1);
        for e in 0..6u32 {
            w.set(&[e], 100 + e as i64);
        }
        WeightedStructure::new(s, w)
    }

    fn greedy_config() -> LocalSchemeConfig {
        LocalSchemeConfig {
            rho: 1,
            d: 1,
            strategy: SelectionStrategy::Greedy,
            seed: 7,
        }
    }

    #[test]
    fn figure1_scheme_statistics() {
        let ws = figure1_weighted();
        let q = edge_query();
        let scheme = LocalScheme::build(&ws, &q, &greedy_config()).expect("builds");
        let stats = scheme.stats();
        assert_eq!(stats.active_elements, 6);
        assert_eq!(stats.num_types, 3);
        assert_eq!(stats.distinct_queries, 5);
        // Figure 4: the only equal-class pair is (a, b).
        assert_eq!(stats.candidate_pairs, 1);
        assert!(scheme.capacity() >= 1);
        assert!(stats.max_separation <= 1);
    }

    #[test]
    fn definition2_audit_holds_for_all_messages() {
        let ws = figure1_weighted();
        let q = edge_query();
        let scheme = LocalScheme::build(&ws, &q, &greedy_config()).expect("builds");
        let l = scheme.capacity();
        for mask in 0..(1u32 << l.min(8)) {
            let message: Vec<bool> = (0..l).map(|i| mask >> i & 1 == 1).collect();
            let marked = scheme.mark(ws.weights(), &message);
            let report = scheme.audit(ws.weights(), &marked);
            assert!(report.is_c_local(1), "mask {mask}: local {}", report.max_local);
            assert!(report.is_d_global(1), "mask {mask}: global {}", report.max_global);
        }
    }

    #[test]
    fn roundtrip_through_honest_server() {
        let ws = figure1_weighted();
        let q = edge_query();
        let scheme = LocalScheme::build(&ws, &q, &greedy_config()).expect("builds");
        let message: Vec<bool> = (0..scheme.capacity()).map(|i| i % 2 == 0).collect();
        let marked = scheme.mark(ws.weights(), &message);
        let server = HonestServer::new(scheme.answers().clone(), marked);
        let report = scheme.detect(ws.weights(), &server);
        assert_eq!(report.bits, message);
        assert_eq!(report.missing_pairs, 0);
    }

    #[test]
    fn sampling_strategy_also_builds() {
        let ws = figure1_weighted();
        let q = edge_query();
        let config = LocalSchemeConfig {
            rho: 1,
            d: 2,
            strategy: SelectionStrategy::Sampling { max_retries: 2000 },
            seed: 42,
        };
        let scheme = LocalScheme::build(&ws, &q, &config).expect("builds");
        assert!(scheme.capacity() >= 1);
        assert!(scheme.stats().sampling_p <= 1.0);
        let marked = scheme.mark(ws.weights(), &vec![true; scheme.capacity()]);
        assert!(scheme.audit(ws.weights(), &marked).is_d_global(2));
    }

    #[test]
    fn no_pairs_is_reported() {
        // A 2-element instance with asymmetric elements: no equal-class
        // pair exists.
        use qpwm_structures::{Schema, StructureBuilder};
        use std::sync::Arc;
        let schema = Arc::new(Schema::graph());
        let mut b = StructureBuilder::new(schema, 2);
        b.add(0, &[0, 1]);
        let s = b.build();
        let ws = WeightedStructure::new(s, Weights::new(1));
        let q = edge_query();
        match LocalScheme::build(&ws, &q, &greedy_config()) {
            Err(SchemeError::NoPairs) => {}
            other => panic!("expected NoPairs, got {other:?}"),
        }
    }
}
