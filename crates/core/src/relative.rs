//! The paper's "note on relative error".
//!
//! A relative perturbation `1 ± ε` of every weight trivially keeps every
//! aggregate within a `1 ± ε` factor — under *relative* error the
//! watermarking problem disappears. The paper keeps absolute error
//! because (1) small weights get fragile sub-unit marks under relative
//! scaling, and (2) relative error mismodels data where tolerance shrinks
//! as values grow. This module implements the trivial relative scheme so
//! the experiments can demonstrate both failure modes quantitatively.

use qpwm_structures::{AnswerFamily, WeightKey, Weights};

/// The trivial relative-error marking: each bit scales one weight by
/// `(1 + ε)` (bit 1) or `(1 − ε)` (bit 0), with integer rounding.
#[derive(Debug, Clone)]
pub struct RelativeScheme {
    carriers: Vec<WeightKey>,
    /// ε as a rational `num/den` (e.g. 1/100 for 1%).
    num: i64,
    den: i64,
}

impl RelativeScheme {
    /// Creates a scheme marking the given carrier weights with relative
    /// amplitude `num/den`.
    ///
    /// # Panics
    /// Panics unless `0 < num < den`.
    pub fn new(carriers: Vec<WeightKey>, num: i64, den: i64) -> Self {
        assert!(num > 0 && num < den, "need 0 < eps < 1");
        RelativeScheme { carriers, num, den }
    }

    /// Capacity: one bit per carrier.
    pub fn capacity(&self) -> usize {
        self.carriers.len()
    }

    /// Applies the relative marks.
    pub fn mark(&self, weights: &Weights, message: &[bool]) -> Weights {
        assert!(message.len() <= self.carriers.len());
        let mut out = weights.clone();
        for (key, &bit) in self.carriers.iter().zip(message) {
            let w = out.get(key);
            let delta = w * self.num / self.den;
            out.set(key, if bit { w + delta } else { w - delta });
        }
        out
    }

    /// Reads the message back; `None` marks carriers whose perturbation
    /// rounded to zero (the paper's "small and fragile" failure: the bit
    /// was never written).
    pub fn extract(&self, original: &Weights, observed: &Weights) -> Vec<Option<bool>> {
        self.carriers
            .iter()
            .map(|key| {
                let delta = observed.get(key) - original.get(key);
                match delta.cmp(&0) {
                    std::cmp::Ordering::Greater => Some(true),
                    std::cmp::Ordering::Less => Some(false),
                    std::cmp::Ordering::Equal => None,
                }
            })
            .collect()
    }

    /// Worst relative aggregate error over an interned family:
    /// `max |f'(ā) − f(ā)| / f(ā)` (sets with `f = 0` skipped).
    pub fn relative_distortion(
        original: &Weights,
        marked: &Weights,
        answers: &AnswerFamily,
    ) -> f64 {
        let mut worst = 0.0f64;
        for i in 0..answers.len() {
            let before: i64 = answers.set_tuples(i).map(|k| original.get(k)).sum();
            if before == 0 {
                continue;
            }
            let after: i64 = answers.set_tuples(i).map(|k| marked.get(k)).sum();
            worst = worst.max(((after - before).abs() as f64) / before.abs() as f64);
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(e: u32) -> WeightKey {
        vec![e]
    }

    #[test]
    fn relative_bound_holds_trivially() {
        // 1% relative marks keep every aggregate within 1%.
        let carriers: Vec<WeightKey> = (0..10).map(key).collect();
        let scheme = RelativeScheme::new(carriers.clone(), 1, 100);
        let mut w = Weights::new(1);
        for e in 0..10u32 {
            w.set(&[e], 10_000 + e as i64 * 137);
        }
        let message: Vec<bool> = (0..10).map(|i| i % 2 == 0).collect();
        let marked = scheme.mark(&w, &message);
        let sets: Vec<Vec<WeightKey>> = vec![carriers.clone(), carriers[..3].to_vec()];
        let family = AnswerFamily::from_nested(vec![vec![0], vec![1]], &sets);
        let rel = RelativeScheme::relative_distortion(&w, &marked, &family);
        assert!(rel <= 0.011, "relative distortion {rel}");
        // and detection works on large weights
        let bits = scheme.extract(&w, &marked);
        assert!(bits.iter().all(Option::is_some));
    }

    #[test]
    fn small_weights_lose_the_mark() {
        // the paper's objection 1: for weights < 1/ε the perturbation
        // rounds to zero and the bit is unrecoverable.
        let carriers: Vec<WeightKey> = (0..5).map(key).collect();
        let scheme = RelativeScheme::new(carriers, 1, 100);
        let mut w = Weights::new(1);
        for e in 0..5u32 {
            w.set(&[e], 50); // 1% of 50 rounds to 0
        }
        let marked = scheme.mark(&w, &[true, false, true, false, true]);
        let bits = scheme.extract(&w, &marked);
        assert!(bits.iter().all(Option::is_none), "bits {bits:?}");
    }

    #[test]
    fn absolute_error_grows_with_weights() {
        // the paper's objection 2: the induced *absolute* error grows
        // linearly in the weight — intolerable when precision matters
        // more for large values.
        let carriers: Vec<WeightKey> = (0..2).map(key).collect();
        let scheme = RelativeScheme::new(carriers, 1, 100);
        let mut w = Weights::new(1);
        w.set(&[0], 100);
        w.set(&[1], 1_000_000);
        let marked = scheme.mark(&w, &[true, true]);
        assert_eq!(marked.get(&[0]) - w.get(&[0]), 1);
        assert_eq!(marked.get(&[1]) - w.get(&[1]), 10_000);
    }
}
