//! One trait over every watermarking scheme in the repository.
//!
//! The paper's headline claim — query-preserving marking beats key-hash
//! marking on the capacity / distortion / robustness trade-off — is only
//! checkable if every scheme answers the same three questions over the
//! same carrier type: *how many bits fit*, *how far did the data move*,
//! and *does the mark survive this attack*. [`WatermarkScheme`] is that
//! common interface. The carrier is type-erased into the engine types
//! every scheme already speaks: a [`Weights`] assignment over an
//! [`AnswerFamily`]'s active universe, wrapped in a [`MarkedCarrier`]
//! that additionally records set-level tampering (dropped and inserted
//! tuples) so SPSW-style subset / superset attacks are expressible
//! without inventing a new data model per scheme.
//!
//! Implementations live next to their schemes:
//!
//! * [`PairWatermark`] (here) — the Theorem 3 / Theorem 5 pair markings
//!   (`LocalScheme`, `TreeScheme`) through their shared
//!   [`PairSchemeCore`];
//! * [`RobustWatermark`] (here) — the Fact 1 repetition wrapper;
//! * `AkWatermark` / `KzWatermark` (in `qpwm-baselines`) — the
//!   Agrawal–Kiernan and Khanna–Zane baselines.
//!
//! [`PairSchemeCore`] is also where the `marking()/mark()/detect()/
//! audit()` plumbing formerly copy-pasted between `local_scheme.rs` and
//! `tree_scheme.rs` now lives exactly once.

use std::collections::HashSet;

use qpwm_structures::{AnswerFamily, DistortionReport, Element, WeightKey, Weights};

use crate::adversary::RobustScheme;
use crate::detect::{
    AnswerServer, ClaimCheck, DetectionReport, ObservedWeights, Verdict, DEFAULT_DELTA,
};
use crate::pairing::{classes_ids, s_partition_ids, Pair, PairMarking};

/// A marked (or attacked) carrier: the weights a suspect server would
/// serve, the message the owner claims, and any set-level tampering.
///
/// Weight-level attacks mutate `weights`; subset selection records the
/// censored tuples in `dropped` (the detector will not see them in any
/// answer); superset / fake-tuple insertion records the forged tuples in
/// `inserted`. The owner's `message` travels with the carrier because an
/// ownership claim is always checked against the message that was
/// embedded — attacks never change the claim, only the evidence.
#[derive(Debug, Clone)]
pub struct MarkedCarrier {
    /// The weights the suspect serves (marked, then possibly attacked).
    pub weights: Weights,
    /// The embedded message the owner will claim.
    pub message: Vec<bool>,
    /// Tuples censored out of every answer set (subset selection).
    pub dropped: Vec<WeightKey>,
    /// Forged tuples the suspect added, with their served weights
    /// (superset / fake-tuple insertion à la SPSW).
    pub inserted: Vec<(WeightKey, i64)>,
}

impl MarkedCarrier {
    /// A freshly marked, untampered carrier.
    pub fn clean(weights: Weights, message: Vec<bool>) -> Self {
        MarkedCarrier { weights, message, dropped: Vec::new(), inserted: Vec::new() }
    }

    /// The censored tuples as a set, for membership tests during
    /// detection.
    pub fn dropped_set(&self) -> HashSet<&WeightKey> {
        self.dropped.iter().collect()
    }
}

/// A scheme's ruling on a suspect carrier, with the false-positive
/// significance that backs it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchemeVerdict {
    /// Claim bits matched by the evidence-bearing sample.
    pub matches: usize,
    /// Size of the evidence-bearing sample (erased bits excluded).
    pub compared: usize,
    /// Mismatches within the compared sample.
    pub bit_errors: usize,
    /// `P[an innocent server matches at least this well]`.
    pub significance: f64,
    /// The thresholded ruling at the scheme's significance level.
    pub verdict: Verdict,
}

impl SchemeVerdict {
    /// Builds a verdict from a scored ownership claim.
    pub fn from_claim(check: &ClaimCheck) -> Self {
        SchemeVerdict {
            matches: check.matches,
            compared: check.compared,
            bit_errors: check.compared - check.matches,
            significance: check.significance,
            verdict: check.verdict,
        }
    }

    /// A refusal to rule: no evidence-bearing bits survived.
    pub fn abstain() -> Self {
        SchemeVerdict {
            matches: 0,
            compared: 0,
            bit_errors: 0,
            significance: 1.0,
            verdict: Verdict::Abstain,
        }
    }

    /// Did the mark survive — is the ruling [`Verdict::MarkPresent`]?
    pub fn survived(&self) -> bool {
        self.verdict == Verdict::MarkPresent
    }
}

/// The common interface over every watermarking scheme.
///
/// Object-safe by construction: the battleground holds
/// `Box<dyn WatermarkScheme>` and never needs to know whether the marks
/// ride on canonical pairs, PRF-selected bits, or graph edge weights.
pub trait WatermarkScheme: Send + Sync {
    /// Stable scheme identifier (`qp-local`, `qp-tree`, `qp-robust`,
    /// `ak`, `kz`).
    fn name(&self) -> &str;

    /// Human-readable parameter summary for result tables.
    fn params(&self) -> String;

    /// How many message bits this instance can embed.
    fn capacity_hint(&self) -> usize;

    /// The answer family whose aggregates the scheme is judged against
    /// (for query-preserving schemes, the family it preserves; for
    /// baselines, the workload family it is benchmarked on).
    fn family(&self) -> &AnswerFamily;

    /// The unmarked weights of the carrier.
    fn baseline(&self) -> &Weights;

    /// Embeds `message`, returning a clean marked carrier.
    ///
    /// # Panics
    /// Panics if `message` exceeds [`WatermarkScheme::capacity_hint`].
    fn mark(&self, message: &[bool]) -> MarkedCarrier;

    /// Rules on a suspect carrier at the scheme's significance level
    /// ([`DEFAULT_DELTA`] unless a scheme documents otherwise).
    fn detect(&self, suspect: &MarkedCarrier) -> SchemeVerdict;

    /// Audits how far the suspect's weights moved the preserved
    /// aggregates — the (c-local, d-global) distortion against the
    /// baseline.
    fn distortion(&self, suspect: &MarkedCarrier) -> DistortionReport {
        self.family().global_distortion(self.baseline(), &suspect.weights)
    }
}

/// An [`AnswerServer`] view of a [`MarkedCarrier`]: serves the carrier's
/// weights over the family's answer sets, honouring the carrier's
/// censored tuples. Forged tuples never appear — they are not members of
/// any true answer set, which is exactly why insertion attacks cannot
/// starve a pair detector.
struct CarrierServer<'a> {
    family: &'a AnswerFamily,
    carrier: &'a MarkedCarrier,
    dropped: HashSet<WeightKey>,
}

impl<'a> CarrierServer<'a> {
    fn new(family: &'a AnswerFamily, carrier: &'a MarkedCarrier) -> Self {
        let dropped = carrier.dropped.iter().cloned().collect();
        CarrierServer { family, carrier, dropped }
    }
}

impl AnswerServer for CarrierServer<'_> {
    fn num_parameters(&self) -> usize {
        self.family.len()
    }

    fn answer(&self, i: usize) -> Vec<(Vec<Element>, i64)> {
        self.family
            .set_tuples(i)
            .filter(|b| !self.dropped.contains(*b))
            .map(|b| (b.to_vec(), self.carrier.weights.get(b)))
            .collect()
    }
}

/// The shared core of every pair-marking scheme: a [`PairMarking`], the
/// answer family it preserves, and the distortion budget `d` it was
/// built under. `LocalScheme` (Theorem 3) and `TreeScheme` (Theorem 5)
/// both delegate their `capacity / mark / detect / audit` surface here.
#[derive(Debug, Clone)]
pub struct PairSchemeCore {
    marking: PairMarking,
    family: AnswerFamily,
    d: u64,
}

impl PairSchemeCore {
    /// Wraps a marking with the family it preserves under budget `d`.
    pub fn new(marking: PairMarking, family: AnswerFamily, d: u64) -> Self {
        PairSchemeCore { marking, family, d }
    }

    /// Message capacity in bits (one bit per pair).
    pub fn capacity(&self) -> usize {
        self.marking.capacity()
    }

    /// The global distortion budget the marking was built under.
    pub fn d(&self) -> u64 {
        self.d
    }

    /// The underlying pair marking.
    pub fn marking(&self) -> &PairMarking {
        &self.marking
    }

    /// The preserved answer family.
    pub fn family(&self) -> &AnswerFamily {
        &self.family
    }

    /// Marker: applies the pairwise `(+1, −1)` distortions encoding
    /// `message`.
    ///
    /// # Panics
    /// Panics if `message` exceeds [`PairSchemeCore::capacity`].
    pub fn mark(&self, weights: &Weights, message: &[bool]) -> Weights {
        self.marking.apply(weights, message)
    }

    /// Detector: queries `server`, reconstructs the weights it serves,
    /// and extracts the message by pairwise comparison with `original`.
    pub fn detect(&self, original: &Weights, server: &dyn AnswerServer) -> DetectionReport {
        let observed = ObservedWeights::collect(server);
        self.marking.extract(original, &observed)
    }

    /// Detector over a [`MarkedCarrier`]: serves the carrier through an
    /// internal answer server (honouring censored tuples) and extracts
    /// against `original`.
    pub fn detect_carrier(&self, original: &Weights, carrier: &MarkedCarrier) -> DetectionReport {
        let server = CarrierServer::new(&self.family, carrier);
        self.detect(original, &server)
    }

    /// Audits the (c-local, d-global) distortion between two weight
    /// assignments over the preserved family.
    pub fn audit(&self, original: &Weights, marked: &Weights) -> DistortionReport {
        self.family.global_distortion(original, marked)
    }
}

/// The full S-partition pairing of a family: canonical sets are the
/// distinct active-id signatures, elements are classed by which
/// canonical sets contain them, and same-class elements are paired off.
///
/// This is the maximal pair supply a family admits before any
/// distortion-budget selection — the raw material the [`RobustScheme`]
/// repetition wrapper spends on redundancy (it trades the distortion
/// guarantee for capacity, which the battleground's distortion column
/// then reports honestly).
pub fn family_pairs(family: &AnswerFamily) -> Vec<Pair> {
    let universe = family.active_universe();
    let mut seen = HashSet::new();
    let mut canonical: Vec<&[qpwm_structures::TupleId]> = Vec::new();
    for i in 0..family.len() {
        let ids = family.active_ids(i);
        if seen.insert(ids.to_vec()) {
            canonical.push(ids);
        }
    }
    let classes = classes_ids(universe, &canonical);
    s_partition_ids(universe, &classes)
        .into_iter()
        .map(|(a, b)| Pair {
            plus: family.tuple(a).to_vec(),
            minus: family.tuple(b).to_vec(),
        })
        .collect()
}

/// [`WatermarkScheme`] adapter for any pair-marking scheme: a
/// [`PairSchemeCore`] plus the baseline weights it marks.
#[derive(Debug, Clone)]
pub struct PairWatermark {
    name: String,
    params: String,
    core: PairSchemeCore,
    baseline: Weights,
}

impl PairWatermark {
    /// Wraps a pair-scheme core over `baseline` under reporting `name`.
    pub fn new(
        name: impl Into<String>,
        params: impl Into<String>,
        core: PairSchemeCore,
        baseline: Weights,
    ) -> Self {
        PairWatermark { name: name.into(), params: params.into(), core, baseline }
    }

    /// The wrapped core.
    pub fn core(&self) -> &PairSchemeCore {
        &self.core
    }
}

impl WatermarkScheme for PairWatermark {
    fn name(&self) -> &str {
        &self.name
    }

    fn params(&self) -> String {
        self.params.clone()
    }

    fn capacity_hint(&self) -> usize {
        self.core.capacity()
    }

    fn family(&self) -> &AnswerFamily {
        self.core.family()
    }

    fn baseline(&self) -> &Weights {
        &self.baseline
    }

    fn mark(&self, message: &[bool]) -> MarkedCarrier {
        MarkedCarrier::clean(self.core.mark(&self.baseline, message), message.to_vec())
    }

    fn detect(&self, suspect: &MarkedCarrier) -> SchemeVerdict {
        let report = self.core.detect_carrier(&self.baseline, suspect);
        SchemeVerdict::from_claim(&report.claim_check_effective(&suspect.message, DEFAULT_DELTA))
    }
}

/// [`WatermarkScheme`] adapter for the Fact 1 repetition wrapper: an
/// R-fold [`RobustScheme`] over the family's full S-partition pairing.
pub struct RobustWatermark {
    params: String,
    scheme: RobustScheme,
    family: AnswerFamily,
    baseline: Weights,
}

impl RobustWatermark {
    /// Builds the repetition wrapper over `family`'s full S-partition
    /// pair supply ([`family_pairs`]) with repetition factor
    /// `repetition`.
    ///
    /// # Panics
    /// Panics if `repetition` is zero.
    pub fn new(family: AnswerFamily, baseline: Weights, repetition: usize) -> Self {
        let pairs = family_pairs(&family);
        let marking = PairMarking::new(pairs);
        let params = format!("R={repetition}, pairs=S-partition");
        Self::over_marking(marking, params, family, baseline, repetition)
    }

    /// Builds the repetition wrapper over an explicit pair supply —
    /// typically a [`LocalScheme`](crate::LocalScheme)'s marking, whose
    /// bounded-separation pairs exist even on families where every
    /// tuple's answer-set signature is distinct (there [`family_pairs`]
    /// finds nothing to pair).
    ///
    /// # Panics
    /// Panics if `repetition` is zero.
    pub fn over_marking(
        marking: PairMarking,
        params: String,
        family: AnswerFamily,
        baseline: Weights,
        repetition: usize,
    ) -> Self {
        let scheme = RobustScheme::new(marking, repetition);
        RobustWatermark { params, scheme, family, baseline }
    }

    /// The wrapped repetition scheme.
    pub fn scheme(&self) -> &RobustScheme {
        &self.scheme
    }
}

impl WatermarkScheme for RobustWatermark {
    fn name(&self) -> &str {
        "qp-robust"
    }

    fn params(&self) -> String {
        self.params.clone()
    }

    fn capacity_hint(&self) -> usize {
        self.scheme.capacity()
    }

    fn family(&self) -> &AnswerFamily {
        &self.family
    }

    fn baseline(&self) -> &Weights {
        &self.baseline
    }

    fn mark(&self, message: &[bool]) -> MarkedCarrier {
        MarkedCarrier::clean(self.scheme.mark(&self.baseline, message), message.to_vec())
    }

    fn detect(&self, suspect: &MarkedCarrier) -> SchemeVerdict {
        let server = CarrierServer::new(&self.family, suspect);
        let report = self.scheme.detect(&self.baseline, &server);
        SchemeVerdict::from_claim(&report.claim_check_effective(&suspect.message, DEFAULT_DELTA))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpwm_structures::AnswerFamily;

    fn key(e: u32) -> WeightKey {
        vec![e]
    }

    /// Two disjoint answer sets of four elements each: every set yields
    /// two same-class pairs, so the full S-partition has 4 pairs.
    fn family() -> AnswerFamily {
        let sets: Vec<Vec<WeightKey>> = vec![
            (0..4).map(key).collect(),
            (4..8).map(key).collect(),
        ];
        let params = (0..sets.len()).map(|i| vec![100 + i as u32]).collect();
        AnswerFamily::from_nested(params, &sets)
    }

    fn baseline() -> Weights {
        let mut w = Weights::new(1);
        for e in 0..8 {
            w.set(&key(e), 50 + i64::from(e));
        }
        w
    }

    #[test]
    fn family_pairs_partitions_each_class() {
        let pairs = family_pairs(&family());
        assert_eq!(pairs.len(), 4);
        // Pair members never straddle the two sets (they would change
        // both aggregates in the same direction otherwise).
        for p in &pairs {
            assert_eq!(p.plus[0] < 4, p.minus[0] < 4);
        }
    }

    #[test]
    fn pair_core_mark_then_detect_roundtrips() {
        let fam = family();
        let core = PairSchemeCore::new(PairMarking::new(family_pairs(&fam)), fam, 1);
        let message = vec![true, false, true, false];
        let marked = core.mark(&baseline(), &message);
        let carrier = MarkedCarrier::clean(marked, message.clone());
        let report = core.detect_carrier(&baseline(), &carrier);
        assert_eq!(report.bits, message);
        let audit = core.audit(&baseline(), &carrier.weights);
        assert_eq!(audit.max_local, 1);
    }

    #[test]
    fn pair_watermark_abstains_on_unmarked_data() {
        let fam = family();
        let core = PairSchemeCore::new(PairMarking::new(family_pairs(&fam)), fam, 1);
        let scheme = PairWatermark::new("qp-local", "test", core, baseline());
        // Unmarked carrier claiming a message: every score is 0, so the
        // effective sample is empty and the scheme refuses to rule.
        let unmarked = MarkedCarrier::clean(baseline(), vec![true; 4]);
        let verdict = scheme.detect(&unmarked);
        assert_eq!(verdict.verdict, Verdict::Abstain);
        assert_eq!(verdict.compared, 0);
        assert!(!verdict.survived());
    }

    #[test]
    fn carrier_server_honours_dropped_tuples() {
        let fam = family();
        let core = PairSchemeCore::new(PairMarking::new(family_pairs(&fam)), fam, 1);
        let scheme = PairWatermark::new("qp-local", "test", core, baseline());
        let message = vec![true, true, false, false];
        let mut carrier = scheme.mark(&message);
        // Censor one member of the first pair: its partner still carries
        // a ±1 delta, so the bit survives with |score| = 1.
        let first = scheme.core().marking().pairs()[0].plus.clone();
        carrier.dropped.push(first);
        let verdict = scheme.detect(&carrier);
        assert_eq!(verdict.bit_errors, 0);
        assert_eq!(verdict.compared, 4);
    }

    #[test]
    fn robust_watermark_survives_partial_erasure() {
        let fam = family();
        let scheme = RobustWatermark::new(fam, baseline(), 2);
        assert_eq!(scheme.capacity_hint(), 2);
        let message = vec![true, false];
        let carrier = scheme.mark(&message);
        let verdict = scheme.detect(&carrier);
        assert_eq!(verdict.bit_errors, 0);
        assert_eq!(verdict.compared, 2);
        let distortion = scheme.distortion(&carrier);
        // Repetition spends the distortion budget: both pairs of a bit
        // sit in one set, so the aggregate can move by 2.
        assert!(distortion.max_global <= 2);
    }
}
