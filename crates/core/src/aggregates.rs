//! Aggregate functions beyond sum.
//!
//! After Definition 1 the paper notes that "the sum function can be
//! replaced by mean, min or max without modifying the positive results".
//! This module makes that claim checkable: it audits a marking under
//! each aggregate and exposes the (easy) theory behind it —
//!
//! * **sum**: a separated pair contributes ±1, so distortion ≤ the
//!   separation count (the quantity the markers bound by `d`);
//! * **mean**: `|Δmean| = |Δsum| / |W_ā| ≤ Δsum` (answer sets keep their
//!   size: marking never adds or removes tuples);
//! * **min / max**: every weight moves by at most the local bound `c`,
//!   and an extremum of values each moving ≤ c moves ≤ c — so 1-local
//!   markings distort min/max by ≤ 1 *regardless* of the pair structure.

use qpwm_structures::distortion::Aggregate;
use qpwm_structures::{AnswerFamily, Weights};

/// Distortion of one aggregate over a family of active sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggregateAudit {
    /// The aggregate audited.
    pub aggregate: &'static str,
    /// `max |agg(before) − agg(after)|` over the family.
    pub max_distortion: i64,
}

/// Audits a marking under sum, mean, min and max at once, streaming each
/// active set off the interned family.
pub fn audit_all(
    before: &Weights,
    after: &Weights,
    answers: &AnswerFamily,
) -> Vec<AggregateAudit> {
    [
        ("sum", Aggregate::Sum),
        ("mean", Aggregate::Mean),
        ("min", Aggregate::Min),
        ("max", Aggregate::Max),
    ]
    .into_iter()
    .map(|(name, agg)| {
        let max_distortion = (0..answers.len())
            .map(|i| {
                (agg.apply_iter(before, answers.set_tuples(i))
                    - agg.apply_iter(after, answers.set_tuples(i)))
                .abs()
            })
            .max()
            .unwrap_or(0);
        AggregateAudit { aggregate: name, max_distortion }
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local_scheme::{LocalScheme, LocalSchemeConfig, SelectionStrategy};
    use qpwm_logic::{Formula, ParametricQuery};
    use qpwm_structures::{
        AnswerFamily, Element, Schema, StructureBuilder, WeightedStructure, Weights,
    };
    use std::sync::Arc;

    fn cycles_instance() -> WeightedStructure {
        let schema = Arc::new(Schema::graph());
        let mut b = StructureBuilder::new(schema, 36);
        for c in 0..6u32 {
            let base = c * 6;
            for i in 0..6 {
                let u = base + i;
                let v = base + (i + 1) % 6;
                b.add(0, &[u, v]);
                b.add(0, &[v, u]);
            }
        }
        let s = b.build();
        let mut w = Weights::new(1);
        for e in s.universe() {
            w.set(&[e], 100 + (e as i64 * 13) % 40);
        }
        WeightedStructure::new(s, w)
    }

    #[test]
    fn all_aggregates_bounded_for_scheme_markings() {
        let instance = cycles_instance();
        let query = ParametricQuery::new(Formula::atom(0, &[0, 1]), vec![0], vec![1]);
        let scheme = LocalScheme::build(
            &instance,
            &query,
            &LocalSchemeConfig { rho: 1, d: 1, strategy: SelectionStrategy::Greedy, seed: 3 },
        )
        .expect("builds");
        let message: Vec<bool> = (0..scheme.capacity()).map(|i| i % 2 == 0).collect();
        let marked = scheme.mark(instance.weights(), &message);
        let audits = audit_all(instance.weights(), &marked, scheme.answers());
        for audit in &audits {
            // sum bounded by d = 1; mean ≤ sum; min/max ≤ local bound 1.
            assert!(audit.max_distortion <= 1, "{}: {}", audit.aggregate, audit.max_distortion);
        }
    }

    #[test]
    fn min_max_bounded_even_when_sum_is_not() {
        // A deliberately bad (non-scheme) marking: +1 on three weights of
        // one set. Sum moves by 3; min and max still move ≤ 1.
        let mut before = Weights::new(1);
        for e in 0..3u32 {
            before.set(&[e], 10 + e as i64);
        }
        let mut after = before.clone();
        for e in 0..3u32 {
            after.add(&[e], 1);
        }
        let sets = vec![vec![vec![0u32], vec![1], vec![2]]];
        let family = AnswerFamily::from_nested(vec![vec![0 as Element]], &sets);
        let audits = audit_all(&before, &after, &family);
        let get = |name: &str| {
            audits
                .iter()
                .find(|a| a.aggregate == name)
                .expect("audited")
                .max_distortion
        };
        assert_eq!(get("sum"), 3);
        assert_eq!(get("mean"), 1);
        assert_eq!(get("min"), 1);
        assert_eq!(get("max"), 1);
    }

    #[test]
    fn mean_distortion_divides_by_set_size() {
        // one pair separated by a 4-element set: sum moves 1, mean (integer
        // division) moves 0.
        let mut before = Weights::new(1);
        for e in 0..4u32 {
            before.set(&[e], 100);
        }
        let mut after = before.clone();
        after.add(&[0], 1);
        let sets = vec![(0..4u32).map(|e| vec![e]).collect::<Vec<_>>()];
        let family = AnswerFamily::from_nested(vec![vec![0 as Element]], &sets);
        let audits = audit_all(&before, &after, &family);
        assert_eq!(audits[0].max_distortion, 1); // sum
        assert_eq!(audits[1].max_distortion, 0); // mean (401/4 = 100)
    }

    #[test]
    fn empty_family_audits_to_zero() {
        let w = Weights::new(1);
        let family = AnswerFamily::from_nested(Vec::new(), &[]);
        for audit in audit_all(&w, &w, &family) {
            assert_eq!(audit.max_distortion, 0);
        }
    }
}
