//! Query-preserving watermarking schemes — the contribution of
//! Gross-Amblard, PODS 2003.
//!
//! * [`local_scheme`] — Theorem 3: watermarking bounded-degree structures
//!   while preserving local (e.g. first-order) parametric queries, via
//!   canonical parameters and balanced `(+1, −1)` pair markings.
//! * [`tree_scheme`] — Theorem 5: watermarking trees while preserving
//!   queries defined by `m`-state bottom-up tree automata (hence, via
//!   Lemma 2, MSO / XML pattern queries), hiding `≈ |W|/4m` bits with
//!   global distortion 1.
//! * [`capacity`] — Theorem 1: exact `#Mark` counting and its
//!   #P-hardness witness (the PERMANENT reduction).
//! * [`impossibility`] — Theorem 2, Remark 1, Theorem 6: shattered
//!   structures where no scheme exists, and the half-shattered family
//!   that still carries `|W|/4` bits.
//! * [`adversary`] — Fact 1 (Khanna–Zane): turning the non-adversarial
//!   schemes into adversarial ones by redundancy, plus attack simulations.
//! * [`incremental`] — Theorems 7–8: maintaining marks under weights-only
//!   and type-preserving updates.
//! * [`detect`] — the detector side: reconstructing weights from query
//!   answers of a (possibly malicious) server, with binomial
//!   false-positive significance.
//! * [`cliquewidth`] — Theorem 4 executed: k-expressions, parse trees,
//!   the edge-query automaton, tree → 3-expression conversion.
//! * [`scheme`] — the object-safe [`WatermarkScheme`] trait unifying
//!   every scheme (pair markings, the repetition wrapper, and the
//!   baselines in `qpwm-baselines`) behind one mark/detect/distortion
//!   surface, plus the shared [`PairSchemeCore`].
//! * [`multi_query`] — several registered queries preserved at once.
//! * [`owner`] — the 3-tier console: issue per-server copies, refresh
//!   them across weight updates, attribute leaks.
//! * [`keyfile`] — persistence of the scheme secret.
//! * [`aggregates`] / [`relative`] — the paper's notes on alternative
//!   aggregates and relative error, made checkable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod aggregates;
pub mod capacity;
pub mod cliquewidth;
pub mod detect;
pub mod impossibility;
pub mod incremental;
pub mod keyfile;
pub mod local_scheme;
pub mod multi_query;
pub mod owner;
pub mod pairing;
pub mod relative;
pub mod scheme;
pub mod tree_scheme;

pub use detect::{AnswerServer, DetectionReport, HonestServer, ObservedWeights};
pub use local_scheme::{LocalScheme, LocalSchemeConfig, SchemeError};
pub use pairing::{FamilyIndex, Pair, PairMarking};
pub use multi_query::MultiQueryScheme;
pub use scheme::{
    family_pairs, MarkedCarrier, PairSchemeCore, PairWatermark, RobustWatermark, SchemeVerdict,
    WatermarkScheme,
};
pub use tree_scheme::TreeScheme;
