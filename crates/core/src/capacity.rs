//! Exact watermarking-capacity counting and the #P-hardness witness
//! (Theorem 1).
//!
//! `#Mark(≤ d)` counts the assignments `m : W → {−1, 0, +1}` whose global
//! distortion is at most `d` on every active set; `#Mark(= d)` those whose
//! *worst-case* distortion is exactly `d`. Counting is exponential in
//! `|W|` (it must be — Theorem 1 shows `#Mark(= d)` is #P-complete), but
//! branch-and-bound pruning keeps it practical at experiment scale.
//!
//! The hardness reduction maps a bipartite graph's PERMANENT (number of
//! perfect matchings) to a constrained marking count; we verify it
//! against Ryser's inclusion-exclusion permanent.

use qpwm_structures::{AnswerFamily, Element, WeightKey};
use std::collections::HashMap;

/// A marking-capacity counting problem: the active elements and, for each
/// parameter, the indices (into `elements`) of its active set.
#[derive(Debug, Clone)]
pub struct CapacityProblem {
    elements: Vec<WeightKey>,
    /// Per-constraint element index lists.
    sets: Vec<Vec<usize>>,
    /// For each element, the constraints containing it.
    containing: Vec<Vec<usize>>,
}

impl CapacityProblem {
    /// Builds a problem from active sets over weight keys.
    pub fn new(active_sets: &[Vec<Vec<Element>>]) -> Self {
        let mut index: HashMap<&WeightKey, usize> = HashMap::new();
        let mut elements: Vec<WeightKey> = Vec::new();
        for set in active_sets {
            for w in set {
                if !index.contains_key(w) {
                    index.insert(w, elements.len());
                    elements.push(w.clone());
                }
            }
        }
        let sets: Vec<Vec<usize>> = active_sets
            .iter()
            .map(|set| {
                let mut v: Vec<usize> = set.iter().map(|w| index[w]).collect();
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect();
        let mut containing: Vec<Vec<usize>> = vec![Vec::new(); elements.len()];
        for (ci, set) in sets.iter().enumerate() {
            for &e in set {
                containing[e].push(ci);
            }
        }
        CapacityProblem { elements, sets, containing }
    }

    /// Builds a problem straight from an interned family: elements are
    /// the active universe in canonical order and per-set index lists
    /// come from universe ranks — no tuple hashing.
    pub fn from_family(answers: &AnswerFamily) -> Self {
        let elements: Vec<WeightKey> =
            answers.universe_tuples().map(<[Element]>::to_vec).collect();
        let sets: Vec<Vec<usize>> = (0..answers.len())
            .map(|i| {
                answers
                    .active_ids(i)
                    .iter()
                    .map(|&id| answers.universe_rank(id).expect("active id is in the universe"))
                    .collect()
            })
            .collect();
        let mut containing: Vec<Vec<usize>> = vec![Vec::new(); elements.len()];
        for (ci, set) in sets.iter().enumerate() {
            for &e in set {
                containing[e].push(ci);
            }
        }
        CapacityProblem { elements, sets, containing }
    }

    /// Number of active elements `|W|`.
    pub fn num_elements(&self) -> usize {
        self.elements.len()
    }

    /// Counts assignments from `marks` (per-element allowed values) with
    /// every constraint sum in `[lo, hi]`.
    ///
    /// Branch and bound: elements are assigned in index order; a partial
    /// assignment is pruned when some constraint can no longer land in
    /// `[lo, hi]` even with extreme values on its unassigned elements.
    pub fn count_constrained(&self, marks: &[i64], lo: i64, hi: i64) -> u128 {
        assert!(!marks.is_empty(), "need at least one allowed mark value");
        let min_mark = *marks.iter().min().expect("non-empty");
        let max_mark = *marks.iter().max().expect("non-empty");
        // remaining[c] = number of unassigned elements in constraint c.
        let mut remaining: Vec<i64> = self.sets.iter().map(|s| s.len() as i64).collect();
        let mut sums: Vec<i64> = vec![0; self.sets.len()];
        self.count_rec(0, marks, lo, hi, min_mark, max_mark, &mut sums, &mut remaining)
    }

    #[allow(clippy::too_many_arguments)]
    fn count_rec(
        &self,
        idx: usize,
        marks: &[i64],
        lo: i64,
        hi: i64,
        min_mark: i64,
        max_mark: i64,
        sums: &mut Vec<i64>,
        remaining: &mut Vec<i64>,
    ) -> u128 {
        if idx == self.elements.len() {
            return u128::from(sums.iter().zip(self.sets.iter()).all(|(s, set)| {
                let _ = set;
                *s >= lo && *s <= hi
            }));
        }
        let mut total = 0u128;
        for &cs in &self.containing[idx] {
            remaining[cs] -= 1;
        }
        for &m in marks {
            let mut feasible = true;
            for &cs in &self.containing[idx] {
                sums[cs] += m;
                let s = sums[cs];
                let r = remaining[cs];
                if s + r * max_mark < lo || s + r * min_mark > hi {
                    feasible = false;
                }
            }
            if feasible {
                // also check constraints untouched by this element lazily:
                // they were feasible before and unchanged, so still feasible.
                total += self.count_rec(idx + 1, marks, lo, hi, min_mark, max_mark, sums, remaining);
            }
            for &cs in &self.containing[idx] {
                sums[cs] -= m;
            }
        }
        for &cs in &self.containing[idx] {
            remaining[cs] += 1;
        }
        total
    }

    /// `#Mark(≤ d)`: 1-local markings with global distortion at most `d`
    /// on every constraint. Includes the all-zero marking.
    pub fn count_at_most(&self, d: i64) -> u128 {
        self.count_constrained(&[-1, 0, 1], -d, d)
    }

    /// `#Mark(= d)`: markings whose worst constraint distortion is
    /// exactly `d` (computed as `count(≤d) − count(≤d−1)`).
    pub fn count_exactly(&self, d: i64) -> u128 {
        if d == 0 {
            return self.count_at_most(0);
        }
        self.count_at_most(d) - self.count_at_most(d - 1)
    }

    /// Capacity in bits at distortion budget `d`: `log2 #Mark(≤ d)`.
    pub fn bits_at(&self, d: i64) -> f64 {
        let count = self.count_at_most(d);
        if count == 0 {
            return 0.0;
        }
        (count as f64).log2()
    }
}

/// A bipartite graph for the PERMANENT reduction.
#[derive(Debug, Clone)]
pub struct Bipartite {
    /// Number of left/right vertices (square by construction).
    pub n: usize,
    /// Adjacency: `adj[i][j]` = edge between left i and right j.
    pub adj: Vec<Vec<bool>>,
}

impl Bipartite {
    /// Builds from an adjacency matrix.
    pub fn new(adj: Vec<Vec<bool>>) -> Self {
        let n = adj.len();
        for row in &adj {
            assert_eq!(row.len(), n, "adjacency must be square");
        }
        Bipartite { n, adj }
    }

    /// Ryser's formula: the permanent of the adjacency matrix = the
    /// number of perfect matchings. `O(2^n · n²)`.
    pub fn permanent(&self) -> u128 {
        let n = self.n;
        if n == 0 {
            return 1;
        }
        assert!(n <= 30, "Ryser beyond n=30 is unreasonable");
        let mut total: i128 = 0;
        for mask in 1u32..(1 << n) {
            let ones = mask.count_ones() as i128;
            let sign = if (n as i128 - ones) % 2 == 0 { 1 } else { -1 };
            let mut prod: i128 = 1;
            for i in 0..n {
                let mut row = 0i128;
                for j in 0..n {
                    if mask >> j & 1 == 1 && self.adj[i][j] {
                        row += 1;
                    }
                }
                prod *= row;
                if prod == 0 {
                    break;
                }
            }
            total += sign * prod;
        }
        total.max(0) as u128
    }

    /// Theorem 1's reduction: a marking problem whose `{0,1}`-markings
    /// with every constraint sum exactly 1 are the perfect matchings.
    /// Weighted elements are edges; each vertex contributes the
    /// constraint "the marks on my incident edges sum to 1".
    pub fn to_marking_problem(&self) -> CapacityProblem {
        let mut active_sets: Vec<Vec<Vec<Element>>> = Vec::new();
        let edge_key = |i: usize, j: usize| vec![i as Element, (self.n + j) as Element];
        for i in 0..self.n {
            let set: Vec<Vec<Element>> = (0..self.n)
                .filter(|&j| self.adj[i][j])
                .map(|j| edge_key(i, j))
                .collect();
            active_sets.push(set);
        }
        for j in 0..self.n {
            let set: Vec<Vec<Element>> = (0..self.n)
                .filter(|&i| self.adj[i][j])
                .map(|i| edge_key(i, j))
                .collect();
            active_sets.push(set);
        }
        CapacityProblem::new(&active_sets)
    }

    /// Counts perfect matchings through the marking-capacity counter
    /// (must equal [`Bipartite::permanent`]).
    pub fn matchings_via_marking(&self) -> u128 {
        self.to_marking_problem().count_constrained(&[0, 1], 1, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(e: u32) -> WeightKey {
        vec![e]
    }

    #[test]
    fn zero_distortion_single_set() {
        // One constraint over two elements: markings with sum 0 are
        // (0,0), (+1,−1), (−1,+1) = 3.
        let p = CapacityProblem::new(&[vec![key(0), key(1)]]);
        assert_eq!(p.count_at_most(0), 3);
        assert_eq!(p.count_exactly(0), 3);
    }

    #[test]
    fn unconstrained_elements_multiply() {
        // Two disjoint singleton sets, d = 1: each element free in
        // {−1,0,1} -> 9 markings; d = 0 -> only zeros.
        let p = CapacityProblem::new(&[vec![key(0)], vec![key(1)]]);
        assert_eq!(p.count_at_most(1), 9);
        assert_eq!(p.count_at_most(0), 1);
        assert_eq!(p.count_exactly(1), 8);
    }

    #[test]
    fn bits_at_grows_with_budget() {
        let sets: Vec<Vec<WeightKey>> = (0..4).map(|i| vec![key(i)]).collect();
        let p = CapacityProblem::new(&sets);
        assert!(p.bits_at(0) < p.bits_at(1));
        // 3^4 = 81 markings at d=1.
        assert!((p.bits_at(1) - 81f64.log2()).abs() < 1e-9);
    }

    #[test]
    fn shattering_collapses_capacity() {
        // All 2^3 subsets of {0,1,2} as constraints: at d = 0, any nonzero
        // marking breaks the constraint of its positive (or negative)
        // support -> only the zero marking survives.
        let mut sets = Vec::new();
        for mask in 0u32..8 {
            sets.push(
                (0..3)
                    .filter(|b| mask >> b & 1 == 1)
                    .map(key)
                    .collect::<Vec<_>>(),
            );
        }
        let p = CapacityProblem::new(&sets);
        assert_eq!(p.count_at_most(0), 1);
    }

    #[test]
    fn permanent_of_complete_bipartite() {
        // K_{3,3}: permanent = 3! = 6.
        let g = Bipartite::new(vec![vec![true; 3]; 3]);
        assert_eq!(g.permanent(), 6);
        assert_eq!(g.matchings_via_marking(), 6);
    }

    #[test]
    fn permanent_of_identity_and_cycle() {
        let id = Bipartite::new(vec![
            vec![true, false, false],
            vec![false, true, false],
            vec![false, false, true],
        ]);
        assert_eq!(id.permanent(), 1);
        assert_eq!(id.matchings_via_marking(), 1);
        // 4-cycle as bipartite 2x2 all-ones: 2 matchings.
        let c4 = Bipartite::new(vec![vec![true, true], vec![true, true]]);
        assert_eq!(c4.permanent(), 2);
        assert_eq!(c4.matchings_via_marking(), 2);
    }

    #[test]
    fn reduction_matches_on_random_graphs() {
        // Deterministic pseudo-random adjacency (LCG) for reproducibility.
        let mut state = 0x12345678u64;
        let mut rand_bool = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) & 1 == 1
        };
        for n in 2..=5 {
            let adj: Vec<Vec<bool>> =
                (0..n).map(|_| (0..n).map(|_| rand_bool()).collect()).collect();
            let g = Bipartite::new(adj);
            assert_eq!(g.permanent(), g.matchings_via_marking(), "n={n}");
        }
    }

    #[test]
    fn graph_with_no_matching() {
        let g = Bipartite::new(vec![vec![true, true], vec![false, false]]);
        assert_eq!(g.permanent(), 0);
        assert_eq!(g.matchings_via_marking(), 0);
    }
}
