//! Exact watermarking-capacity counting and the #P-hardness witness
//! (Theorem 1).
//!
//! `#Mark(≤ d)` counts the assignments `m : W → {−1, 0, +1}` whose global
//! distortion is at most `d` on every active set; `#Mark(= d)` those whose
//! *worst-case* distortion is exactly `d`. Counting is exponential in
//! `|W|` in the worst case (it must be — Theorem 1 shows `#Mark(= d)` is
//! #P-complete), but real active-set families are far from worst-case,
//! and the v2 engine exploits that structure in four layers:
//!
//! 1. **Component decomposition.** Elements that never share a
//!    constraint are independent, so the element–constraint incidence
//!    graph splits into connected components whose counts multiply
//!    (`=d` needs no per-component profile: it is assembled from two
//!    `≤d` products at the top). Constraint-free elements contribute a
//!    closed-form `|marks|^free` factor. A union of `c` cycles thus
//!    costs `c` times one cycle, not `3^{c·len}`.
//! 2. **Memoization.** Within a component, elements are assigned in a
//!    constraint-BFS order that keeps the *frontier* (constraints with
//!    both assigned and unassigned elements) narrow. The continuation
//!    count depends only on the position and the frontier sums —
//!    clamped to a single `FREE` sentinel once a constraint can no
//!    longer leave `[lo, hi]` — so a bounded, instrumented cache turns
//!    the exponential tree into a path-decomposition DP on structured
//!    instances.
//! 3. **Residual-slack bounds.** Every constraint is checked at the
//!    top: if even the extreme completions cannot land in `[lo, hi]`,
//!    the count is 0 before a single element is branched on. During the
//!    search, the same residual window prunes a subtree the moment any
//!    touched constraint becomes unreachable.
//! 4. **Fork-join parallelism.** Hard components are split near the
//!    root into prefix-assignment subtasks via [`qpwm_par::fork_join`]
//!    (deterministic task tree, in-order reduction); each leaf runs the
//!    memoized DP on its own cache. Counts are exact integers combined
//!    by checked addition, so every thread count produces byte-identical
//!    results.
//!
//! The previous single-threaded branch-and-bound enumerator survives as
//! [`CapacityProblem::count_constrained_v1`]: it is the differential
//! reference the tests and `bench_capacity` pin the engine against.
//!
//! The hardness reduction maps a bipartite graph's PERMANENT (number of
//! perfect matchings) to a constrained marking count; we verify it
//! against Ryser's inclusion-exclusion permanent, itself computed with
//! Gray-code row-sum updates (`O(2^n · n)` — constant work per subset
//! step) and fork-join block parallelism.

use qpwm_par::{Fork, ForkJoinLimits};
use qpwm_structures::{AnswerFamily, Element, WeightKey};
use std::collections::HashMap;

/// Panic message for counts that leave `u128`; the boundary is tested.
const OVERFLOW: &str =
    "#Mark count overflowed u128 — reduce |W|, the mark alphabet, or the distortion budget";

/// Upper bound on memo entries per DP task; past it the cache stops
/// growing (counting stays exact, [`CountStats::memo_capped`] reports it).
const MEMO_CAP: usize = 1 << 20;

/// Components at least this large are considered for fork-join
/// splitting (smaller ones finish faster than a task tree is built).
const PAR_MIN_ELEMENTS: usize = 14;

/// Fork-join expansion limits for one hard component: ≤ 81 prefix
/// tasks, ≤ 4 split levels. Fixed constants (never thread-derived) so
/// the task tree is identical for every worker count.
const COMPONENT_LIMITS: ForkJoinLimits = ForkJoinLimits { max_depth: 4, max_tasks: 81 };

/// A marking-capacity counting problem: the active elements and, for each
/// parameter, the indices (into `elements`) of its active set.
#[derive(Debug, Clone)]
pub struct CapacityProblem {
    elements: Vec<WeightKey>,
    /// Per-constraint element index lists.
    sets: Vec<Vec<usize>>,
    /// For each element, the constraints containing it.
    containing: Vec<Vec<usize>>,
}

/// Instrumentation from one engine run ([`CapacityProblem::count_constrained_stats`]).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CountStats {
    /// Connected components of the element–constraint incidence graph
    /// (constraint-free elements excluded).
    pub components: usize,
    /// Elements in no constraint: they contribute `|marks|^free` directly.
    pub free_elements: usize,
    /// Memoized subproblems reused.
    pub memo_hits: u64,
    /// Subproblems computed (memo misses).
    pub memo_misses: u64,
    /// Cache entries across all DP tasks.
    pub memo_entries: usize,
    /// True when any task's cache hit [`MEMO_CAP`] and stopped growing.
    pub memo_capped: bool,
    /// Fork-join leaf tasks evaluated (1 per component when unsplit).
    pub tasks: usize,
}

impl CountStats {
    fn absorb(&mut self, other: &CountStats) {
        self.memo_hits += other.memo_hits;
        self.memo_misses += other.memo_misses;
        self.memo_entries += other.memo_entries;
        self.memo_capped |= other.memo_capped;
        self.tasks += other.tasks;
    }
}

impl CapacityProblem {
    /// Builds a problem from active sets over weight keys.
    pub fn new(active_sets: &[Vec<Vec<Element>>]) -> Self {
        let mut index: HashMap<&WeightKey, usize> = HashMap::new();
        let mut elements: Vec<WeightKey> = Vec::new();
        for set in active_sets {
            for w in set {
                if let std::collections::hash_map::Entry::Vacant(slot) = index.entry(w) {
                    slot.insert(elements.len());
                    elements.push(w.clone());
                }
            }
        }
        let sets: Vec<Vec<usize>> = active_sets
            .iter()
            .map(|set| {
                let mut v: Vec<usize> = set.iter().map(|w| index[w]).collect();
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect();
        let mut containing: Vec<Vec<usize>> = vec![Vec::new(); elements.len()];
        for (ci, set) in sets.iter().enumerate() {
            for &e in set {
                containing[e].push(ci);
            }
        }
        CapacityProblem { elements, sets, containing }
    }

    /// Builds a problem straight from an interned family: elements are
    /// the active universe in canonical order and per-set index lists
    /// come from universe ranks — no tuple hashing.
    pub fn from_family(answers: &AnswerFamily) -> Self {
        let elements: Vec<WeightKey> =
            answers.universe_tuples().map(<[Element]>::to_vec).collect();
        let sets: Vec<Vec<usize>> = (0..answers.len())
            .map(|i| {
                answers
                    .active_ids(i)
                    .iter()
                    .map(|&id| answers.universe_rank(id).expect("active id is in the universe"))
                    .collect()
            })
            .collect();
        let mut containing: Vec<Vec<usize>> = vec![Vec::new(); elements.len()];
        for (ci, set) in sets.iter().enumerate() {
            for &e in set {
                containing[e].push(ci);
            }
        }
        CapacityProblem { elements, sets, containing }
    }

    /// Number of active elements `|W|`.
    pub fn num_elements(&self) -> usize {
        self.elements.len()
    }

    /// Counts assignments from `marks` (per-element allowed values) with
    /// every constraint sum in `[lo, hi]`, on the ambient
    /// [`qpwm_par::thread_count`].
    pub fn count_constrained(&self, marks: &[i64], lo: i64, hi: i64) -> u128 {
        self.count_constrained_with(qpwm_par::thread_count(), marks, lo, hi)
    }

    /// [`Self::count_constrained`] at an explicit worker count. The
    /// result is byte-identical for every `threads` value.
    pub fn count_constrained_with(&self, threads: usize, marks: &[i64], lo: i64, hi: i64) -> u128 {
        self.count_constrained_stats(threads, marks, lo, hi).0
    }

    /// The instrumented engine entry point: the count plus cache /
    /// decomposition / task statistics for benches and diagnostics.
    pub fn count_constrained_stats(
        &self,
        threads: usize,
        marks: &[i64],
        lo: i64,
        hi: i64,
    ) -> (u128, CountStats) {
        assert!(!marks.is_empty(), "need at least one allowed mark value");
        let min_mark = *marks.iter().min().expect("non-empty");
        let max_mark = *marks.iter().max().expect("non-empty");
        let mut stats = CountStats::default();

        // Top-level residual-slack bounds: a constraint whose extreme
        // completions both miss the window kills the whole count before
        // any branching; an empty constraint has sum 0 forever.
        for set in &self.sets {
            let n = set.len() as i64;
            if n * max_mark < lo || n * min_mark > hi {
                return (0, stats);
            }
        }

        let (components, free) = self.decompose();
        stats.components = components.len();
        stats.free_elements = free;

        let mut total: u128 = 1;
        for comp in &components {
            let (count, comp_stats) =
                count_component(comp, threads, marks, lo, hi, min_mark, max_mark);
            stats.absorb(&comp_stats);
            total = total.checked_mul(count).expect(OVERFLOW);
            if total == 0 {
                return (0, stats);
            }
        }
        for _ in 0..free {
            total = total.checked_mul(marks.len() as u128).expect(OVERFLOW);
        }
        (total, stats)
    }

    /// The v1 exact counter: single-threaded branch-and-bound over the
    /// whole element list in index order. Kept as the differential
    /// reference for the engine (`bench_capacity` measures the v2
    /// speedup against it; the tests pin byte-identical counts).
    pub fn count_constrained_v1(&self, marks: &[i64], lo: i64, hi: i64) -> u128 {
        assert!(!marks.is_empty(), "need at least one allowed mark value");
        let min_mark = *marks.iter().min().expect("non-empty");
        let max_mark = *marks.iter().max().expect("non-empty");
        // remaining[c] = number of unassigned elements in constraint c.
        let mut remaining: Vec<i64> = self.sets.iter().map(|s| s.len() as i64).collect();
        let mut sums: Vec<i64> = vec![0; self.sets.len()];
        self.count_rec_v1(0, marks, lo, hi, min_mark, max_mark, &mut sums, &mut remaining)
    }

    #[allow(clippy::too_many_arguments)]
    fn count_rec_v1(
        &self,
        idx: usize,
        marks: &[i64],
        lo: i64,
        hi: i64,
        min_mark: i64,
        max_mark: i64,
        sums: &mut Vec<i64>,
        remaining: &mut Vec<i64>,
    ) -> u128 {
        if idx == self.elements.len() {
            return u128::from(sums.iter().all(|s| *s >= lo && *s <= hi));
        }
        let mut total = 0u128;
        for &cs in &self.containing[idx] {
            remaining[cs] -= 1;
        }
        for &m in marks {
            let mut feasible = true;
            for &cs in &self.containing[idx] {
                sums[cs] += m;
                let s = sums[cs];
                let r = remaining[cs];
                if s + r * max_mark < lo || s + r * min_mark > hi {
                    feasible = false;
                }
            }
            if feasible {
                // also check constraints untouched by this element lazily:
                // they were feasible before and unchanged, so still feasible.
                total = total
                    .checked_add(self.count_rec_v1(
                        idx + 1,
                        marks,
                        lo,
                        hi,
                        min_mark,
                        max_mark,
                        sums,
                        remaining,
                    ))
                    .expect(OVERFLOW);
            }
            for &cs in &self.containing[idx] {
                sums[cs] -= m;
            }
        }
        for &cs in &self.containing[idx] {
            remaining[cs] += 1;
        }
        total
    }

    /// `#Mark(≤ d)`: 1-local markings with global distortion at most `d`
    /// on every constraint. Includes the all-zero marking.
    pub fn count_at_most(&self, d: i64) -> u128 {
        self.count_constrained(&[-1, 0, 1], -d, d)
    }

    /// [`Self::count_at_most`] at an explicit worker count.
    pub fn count_at_most_with(&self, threads: usize, d: i64) -> u128 {
        self.count_constrained_with(threads, &[-1, 0, 1], -d, d)
    }

    /// `#Mark(= d)`: markings whose worst constraint distortion is
    /// exactly `d` (computed as `count(≤d) − count(≤d−1)`; per-component
    /// counts multiply inside each `≤` product, so no worst-case
    /// profile convolution is needed at the top).
    pub fn count_exactly(&self, d: i64) -> u128 {
        if d == 0 {
            return self.count_at_most(0);
        }
        self.count_at_most(d) - self.count_at_most(d - 1)
    }

    /// Capacity in bits at distortion budget `d`: `log2 #Mark(≤ d)`.
    pub fn bits_at(&self, d: i64) -> f64 {
        let count = self.count_at_most(d);
        if count == 0 {
            return 0.0;
        }
        (count as f64).log2()
    }

    /// Splits the incidence graph into connected components (union-find
    /// over shared constraints) and counts constraint-free elements.
    fn decompose(&self) -> (Vec<Component>, usize) {
        let n = self.elements.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for set in &self.sets {
            for w in set.windows(2) {
                let (a, b) = (find(&mut parent, w[0]), find(&mut parent, w[1]));
                if a != b {
                    parent[a] = b;
                }
            }
        }
        let mut free = 0usize;
        // root element -> component accumulator (sets, discovered later)
        let mut comp_of_root: HashMap<usize, usize> = HashMap::new();
        let mut comp_sets: Vec<Vec<usize>> = Vec::new();
        for (ci, set) in self.sets.iter().enumerate() {
            let Some(&first) = set.first() else { continue };
            let root = find(&mut parent, first);
            let idx = *comp_of_root.entry(root).or_insert_with(|| {
                comp_sets.push(Vec::new());
                comp_sets.len() - 1
            });
            comp_sets[idx].push(ci);
        }
        for e in 0..n {
            if self.containing[e].is_empty() {
                free += 1;
            }
        }
        let components =
            comp_sets.iter().map(|sets| self.build_component(sets)).collect();
        (components, free)
    }

    /// Lays one component out for the DP: a constraint-BFS element
    /// order (neighboring constraints stay adjacent, keeping the open
    /// frontier narrow on path/cycle-like incidence) plus the static
    /// per-position tables the counter walks.
    fn build_component(&self, set_indices: &[usize]) -> Component {
        let num_sets = set_indices.len();
        let mut order: Vec<usize> = Vec::new();
        let mut pos_of: HashMap<usize, u32> = HashMap::new();
        let mut set_seen: HashMap<usize, u32> = HashMap::new(); // global -> local id
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        let seed = *set_indices.iter().min().expect("component has a set");
        set_seen.insert(seed, 0);
        queue.push_back(seed);
        let mut visit_order: Vec<usize> = vec![seed];
        while let Some(si) = queue.pop_front() {
            for &e in &self.sets[si] {
                if let std::collections::hash_map::Entry::Vacant(slot) = pos_of.entry(e) {
                    slot.insert(order.len() as u32);
                    order.push(e);
                    for &cs in &self.containing[e] {
                        if let std::collections::hash_map::Entry::Vacant(slot) =
                            set_seen.entry(cs)
                        {
                            slot.insert(visit_order.len() as u32);
                            visit_order.push(cs);
                            queue.push_back(cs);
                        }
                    }
                }
            }
        }
        debug_assert_eq!(visit_order.len(), num_sets, "component sets are connected");
        let k = order.len();
        // Per-set sorted positions, then the per-position tables.
        let set_positions: Vec<Vec<u32>> = visit_order
            .iter()
            .map(|&si| {
                let mut ps: Vec<u32> = self.sets[si].iter().map(|e| pos_of[e]).collect();
                ps.sort_unstable();
                ps
            })
            .collect();
        let mut sets_at: Vec<Vec<u32>> = vec![Vec::new(); k];
        let mut open_at: Vec<Vec<u32>> = vec![Vec::new(); k];
        for (local, ps) in set_positions.iter().enumerate() {
            for &p in ps {
                sets_at[p as usize].push(local as u32);
            }
            let (start, end) = (ps[0], *ps.last().expect("non-empty set"));
            for p in (start + 1)..=end {
                open_at[p as usize].push(local as u32);
            }
        }
        Component { k, num_sets, sets_at, open_at, set_positions }
    }
}

/// One connected component of the incidence graph, laid out in DP order.
#[derive(Debug)]
struct Component {
    /// Elements in this component (positions `0..k` in BFS order).
    k: usize,
    /// Constraints in this component (local ids `0..num_sets`).
    num_sets: usize,
    /// Per position, the local constraints containing that element.
    sets_at: Vec<Vec<u32>>,
    /// Per boundary position `p`, the constraints with elements on both
    /// sides (`start < p ≤ end`) — the memo frontier.
    open_at: Vec<Vec<u32>>,
    /// Per local constraint, its element positions, ascending.
    set_positions: Vec<Vec<u32>>,
}

impl Component {
    /// Unassigned elements of local set `s` at boundary `p`.
    fn remaining_at(&self, s: usize, p: usize) -> i64 {
        let ps = &self.set_positions[s];
        (ps.len() - ps.partition_point(|&x| (x as usize) < p)) as i64
    }
}

/// A fork-join task: the frontier state after assigning positions `< p`.
#[derive(Debug, Clone)]
struct PrefixState {
    p: usize,
    sums: Vec<i64>,
}

/// Counts one component, splitting near the root into prefix tasks when
/// it is large enough to be worth parallelizing. Each leaf runs the
/// memoized DP on its own cache; leaf counts are exact integers summed
/// in task order, so the result is thread-count independent.
fn count_component(
    comp: &Component,
    threads: usize,
    marks: &[i64],
    lo: i64,
    hi: i64,
    min_mark: i64,
    max_mark: i64,
) -> (u128, CountStats) {
    let root = PrefixState { p: 0, sums: vec![0; comp.num_sets] };
    let limits = if threads > 1 && comp.k >= PAR_MIN_ELEMENTS {
        COMPONENT_LIMITS
    } else {
        // Sequential shape: the root is the only leaf and runs inline,
        // sharing one memo cache across the whole component.
        ForkJoinLimits { max_depth: 0, max_tasks: 1 }
    };
    let split = |state: PrefixState, _depth: usize| -> Fork<PrefixState> {
        // Leave at least the tail of the component to the DP.
        if comp.k - state.p <= comp.k / 2 {
            return Fork::Leaf(state);
        }
        let mut children = Vec::with_capacity(marks.len());
        for &m in marks {
            let mut sums = state.sums.clone();
            let mut feasible = true;
            for &s in &comp.sets_at[state.p] {
                let s = s as usize;
                sums[s] += m;
                let r = comp.remaining_at(s, state.p + 1);
                if sums[s] + r * max_mark < lo || sums[s] + r * min_mark > hi {
                    feasible = false;
                    break;
                }
            }
            if feasible {
                children.push(PrefixState { p: state.p + 1, sums });
            }
        }
        Fork::Split(children)
    };
    let leaf = |state: &PrefixState| -> (u128, CountStats) {
        let mut counter = DpCounter::new(comp, marks, lo, hi, min_mark, max_mark, state);
        let count = counter.count_from(state.p);
        (count, counter.into_stats())
    };
    let join = |children: Vec<(u128, CountStats)>| -> (u128, CountStats) {
        let mut total = 0u128;
        let mut stats = CountStats::default();
        for (count, child) in &children {
            total = total.checked_add(*count).expect(OVERFLOW);
            stats.absorb(child);
        }
        (total, stats)
    };
    qpwm_par::fork_join_with(threads, root, limits, split, leaf, join)
}

/// The sequential memoized counter for one component (or one fork-join
/// leaf's suffix of it).
struct DpCounter<'a> {
    comp: &'a Component,
    marks: &'a [i64],
    lo: i64,
    hi: i64,
    min_mark: i64,
    max_mark: i64,
    sums: Vec<i64>,
    remaining: Vec<i64>,
    memo: HashMap<(u32, Box<[i64]>), u128>,
    hits: u64,
    misses: u64,
    capped: bool,
}

impl<'a> DpCounter<'a> {
    fn new(
        comp: &'a Component,
        marks: &'a [i64],
        lo: i64,
        hi: i64,
        min_mark: i64,
        max_mark: i64,
        state: &PrefixState,
    ) -> Self {
        let remaining: Vec<i64> =
            (0..comp.num_sets).map(|s| comp.remaining_at(s, state.p)).collect();
        DpCounter {
            comp,
            marks,
            lo,
            hi,
            min_mark,
            max_mark,
            sums: state.sums.clone(),
            remaining,
            memo: HashMap::new(),
            hits: 0,
            misses: 0,
            capped: false,
        }
    }

    /// The memo key at boundary `p`: open-constraint partial sums, each
    /// clamped to a `FREE` sentinel once every completion of that
    /// constraint stays inside the window (two states differing only in
    /// a `FREE` sum have identical continuations, and `FREE` persists
    /// downward: shrinking the residual keeps both extremes inside).
    fn state_key(&self, p: usize) -> (u32, Box<[i64]>) {
        let open = &self.comp.open_at[p];
        let mut key = Vec::with_capacity(open.len());
        for &s in open {
            let s = s as usize;
            let (sum, r) = (self.sums[s], self.remaining[s]);
            if sum + r * self.min_mark >= self.lo && sum + r * self.max_mark <= self.hi {
                key.push(i64::MAX);
            } else {
                key.push(sum);
            }
        }
        (p as u32, key.into_boxed_slice())
    }

    fn count_from(&mut self, p: usize) -> u128 {
        if p == self.comp.k {
            return 1;
        }
        let key = self.state_key(p);
        if let Some(&v) = self.memo.get(&key) {
            self.hits += 1;
            return v;
        }
        self.misses += 1;
        let mut total = 0u128;
        for mi in 0..self.marks.len() {
            let m = self.marks[mi];
            let touched = &self.comp.sets_at[p];
            let mut feasible = true;
            for &s in touched {
                let s = s as usize;
                self.sums[s] += m;
                self.remaining[s] -= 1;
                let (sum, r) = (self.sums[s], self.remaining[s]);
                if sum + r * self.max_mark < self.lo || sum + r * self.min_mark > self.hi {
                    feasible = false;
                }
            }
            if feasible {
                total = total.checked_add(self.count_from(p + 1)).expect(OVERFLOW);
            }
            for &s in &self.comp.sets_at[p] {
                let s = s as usize;
                self.sums[s] -= m;
                self.remaining[s] += 1;
            }
        }
        if self.memo.len() < MEMO_CAP {
            self.memo.insert(key, total);
        } else {
            self.capped = true;
        }
        total
    }

    fn into_stats(self) -> CountStats {
        CountStats {
            components: 0,
            free_elements: 0,
            memo_hits: self.hits,
            memo_misses: self.misses,
            memo_entries: self.memo.len(),
            memo_capped: self.capped,
            tasks: 1,
        }
    }
}

/// A bipartite graph for the PERMANENT reduction.
#[derive(Debug, Clone)]
pub struct Bipartite {
    /// Number of left/right vertices (square by construction).
    pub n: usize,
    /// Adjacency: `adj[i][j]` = edge between left i and right j.
    pub adj: Vec<Vec<bool>>,
}

impl Bipartite {
    /// Builds from an adjacency matrix.
    pub fn new(adj: Vec<Vec<bool>>) -> Self {
        let n = adj.len();
        for row in &adj {
            assert_eq!(row.len(), n, "adjacency must be square");
        }
        Bipartite { n, adj }
    }

    /// Ryser's formula on the ambient thread count: see
    /// [`Self::permanent_with`].
    pub fn permanent(&self) -> u128 {
        self.permanent_with(qpwm_par::thread_count())
    }

    /// Ryser's formula: the permanent of the adjacency matrix = the
    /// number of perfect matchings.
    ///
    /// Subsets are enumerated in Gray-code order so each step flips one
    /// column in or out: every row sum updates in `O(1)` and only the
    /// `O(n)` product is recomputed — `O(2^n · n)` total, versus the
    /// naive `O(2^n · n²)` inclusion-exclusion. The `2^n` index range is
    /// split into blocks via [`qpwm_par::fork_join`]; each block seeds
    /// its own row sums from its first Gray code (`O(n²)` once), walks
    /// its range, and the exact signed block sums are added in block
    /// order — byte-identical for every thread count.
    pub fn permanent_with(&self, threads: usize) -> u128 {
        let n = self.n;
        if n == 0 {
            return 1;
        }
        assert!(n <= 30, "Ryser beyond n=30 is unreasonable");
        let rows: Vec<u32> = self
            .adj
            .iter()
            .map(|row| {
                row.iter().enumerate().fold(0u32, |acc, (j, &edge)| {
                    acc | (u32::from(edge) << j)
                })
            })
            .collect();
        let span = 1u64 << n;
        // Blocks of ≥ 2^14 Gray steps: below that, the O(n²) reseed
        // dominates the walk.
        let limits = ForkJoinLimits { max_depth: 16, max_tasks: 256 };
        let total = qpwm_par::fork_join_with(
            threads,
            0u64..span,
            limits,
            |range, _| {
                if range.end - range.start <= (1 << 14) {
                    Fork::Leaf(range)
                } else {
                    let mid = range.start + (range.end - range.start) / 2;
                    Fork::Split(vec![range.start..mid, mid..range.end])
                }
            },
            |range| ryser_block(&rows, n, range.start, range.end),
            |blocks| {
                blocks
                    .into_iter()
                    .fold(0i128, |acc, b| acc.checked_add(b).expect(PERM_OVERFLOW))
            },
        );
        total.max(0) as u128
    }

    /// Theorem 1's reduction: a marking problem whose `{0,1}`-markings
    /// with every constraint sum exactly 1 are the perfect matchings.
    /// Weighted elements are edges; each vertex contributes the
    /// constraint "the marks on my incident edges sum to 1".
    pub fn to_marking_problem(&self) -> CapacityProblem {
        let mut active_sets: Vec<Vec<Vec<Element>>> = Vec::new();
        let edge_key = |i: usize, j: usize| vec![i as Element, (self.n + j) as Element];
        for i in 0..self.n {
            let set: Vec<Vec<Element>> = (0..self.n)
                .filter(|&j| self.adj[i][j])
                .map(|j| edge_key(i, j))
                .collect();
            active_sets.push(set);
        }
        for j in 0..self.n {
            let set: Vec<Vec<Element>> = (0..self.n)
                .filter(|&i| self.adj[i][j])
                .map(|i| edge_key(i, j))
                .collect();
            active_sets.push(set);
        }
        CapacityProblem::new(&active_sets)
    }

    /// Counts perfect matchings through the marking-capacity counter
    /// (must equal [`Bipartite::permanent`]).
    pub fn matchings_via_marking(&self) -> u128 {
        self.to_marking_problem().count_constrained(&[0, 1], 1, 1)
    }
}

/// Panic message for permanents that leave `i128` mid-sum.
const PERM_OVERFLOW: &str =
    "Ryser permanent overflowed i128 — the matrix is too large or too dense";

/// One Gray-code block of Ryser's sum: signed contributions of subset
/// indices `start..end` (the subset for index `k` is `k ^ (k >> 1)`).
fn ryser_block(rows: &[u32], n: usize, start: u64, end: u64) -> i128 {
    let mut gray = (start ^ (start >> 1)) as u32;
    let mut row_sums: Vec<i64> = rows.iter().map(|&r| i64::from((r & gray).count_ones())).collect();
    let mut acc: i128 = 0;
    for k in start..end {
        let ones = gray.count_ones() as i128;
        if ones > 0 {
            let sign: i128 = if (n as i128 - ones) % 2 == 0 { 1 } else { -1 };
            let mut prod: i128 = 1;
            for &rs in &row_sums {
                prod = prod.checked_mul(i128::from(rs)).expect(PERM_OVERFLOW);
                if prod == 0 {
                    break;
                }
            }
            acc = acc.checked_add(sign * prod).expect(PERM_OVERFLOW);
        }
        // advance to the Gray code of k + 1: flip bit tz(k + 1)
        let next = k + 1;
        if next < end {
            let j = next.trailing_zeros();
            gray ^= 1 << j;
            let up = gray >> j & 1 == 1;
            for (i, &row) in rows.iter().enumerate() {
                if row >> j & 1 == 1 {
                    row_sums[i] += if up { 1 } else { -1 };
                }
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(e: u32) -> WeightKey {
        vec![e]
    }

    #[test]
    fn zero_distortion_single_set() {
        // One constraint over two elements: markings with sum 0 are
        // (0,0), (+1,−1), (−1,+1) = 3.
        let p = CapacityProblem::new(&[vec![key(0), key(1)]]);
        assert_eq!(p.count_at_most(0), 3);
        assert_eq!(p.count_exactly(0), 3);
    }

    #[test]
    fn unconstrained_elements_multiply() {
        // Two disjoint singleton sets, d = 1: each element free in
        // {−1,0,1} -> 9 markings; d = 0 -> only zeros.
        let p = CapacityProblem::new(&[vec![key(0)], vec![key(1)]]);
        assert_eq!(p.count_at_most(1), 9);
        assert_eq!(p.count_at_most(0), 1);
        assert_eq!(p.count_exactly(1), 8);
    }

    #[test]
    fn bits_at_grows_with_budget() {
        let sets: Vec<Vec<WeightKey>> = (0..4).map(|i| vec![key(i)]).collect();
        let p = CapacityProblem::new(&sets);
        assert!(p.bits_at(0) < p.bits_at(1));
        // 3^4 = 81 markings at d=1.
        assert!((p.bits_at(1) - 81f64.log2()).abs() < 1e-9);
    }

    #[test]
    fn shattering_collapses_capacity() {
        // All 2^3 subsets of {0,1,2} as constraints: at d = 0, any nonzero
        // marking breaks the constraint of its positive (or negative)
        // support -> only the zero marking survives.
        let mut sets = Vec::new();
        for mask in 0u32..8 {
            sets.push(
                (0..3)
                    .filter(|b| mask >> b & 1 == 1)
                    .map(key)
                    .collect::<Vec<_>>(),
            );
        }
        let p = CapacityProblem::new(&sets);
        assert_eq!(p.count_at_most(0), 1);
    }

    #[test]
    fn empty_constraint_outside_window_kills_count() {
        // An empty active set has sum 0 forever; a window excluding 0
        // makes every marking infeasible — in both engines.
        let sets = vec![Vec::<WeightKey>::new(), vec![key(0)]];
        let p = CapacityProblem::new(&sets);
        assert_eq!(p.count_constrained(&[0, 1], 1, 1), 0);
        assert_eq!(p.count_constrained_v1(&[0, 1], 1, 1), 0);
        // and a window containing 0 leaves the other element free
        assert_eq!(p.count_constrained(&[-1, 0, 1], -1, 1), 3);
        assert_eq!(p.count_constrained_v1(&[-1, 0, 1], -1, 1), 3);
    }

    #[test]
    fn engine_decomposes_cycle_unions() {
        // 4 disjoint 6-cycles (adjacent-edge constraints): 24 elements,
        // the old enumerator's saturation point was 8. Counts multiply
        // across components and match the per-cycle v1 reference.
        let cycles = 4u32;
        let len = 6u32;
        let mut sets: Vec<Vec<WeightKey>> = Vec::new();
        for c in 0..cycles {
            let base = c * len;
            for i in 0..len {
                sets.push(vec![key(base + i), key(base + (i + 1) % len)]);
            }
        }
        let p = CapacityProblem::new(&sets);
        assert_eq!(p.num_elements(), 24);
        let one_cycle: Vec<Vec<WeightKey>> =
            (0..len).map(|i| vec![key(i), key((i + 1) % len)]).collect();
        let single = CapacityProblem::new(&one_cycle);
        for d in 0..=2i64 {
            let expected = single.count_constrained_v1(&[-1, 0, 1], -d, d).pow(cycles);
            assert_eq!(p.count_at_most(d), expected, "d = {d}");
        }
        let (_, stats) = p.count_constrained_stats(1, &[-1, 0, 1], -1, 1);
        assert_eq!(stats.components, 4);
        assert_eq!(stats.free_elements, 0);
        assert!(stats.memo_hits > 0, "cycle DP must reuse frontier states");
    }

    #[test]
    fn engine_matches_v1_and_is_thread_independent() {
        // Deterministic pseudo-random overlapping sets, |W| ≤ 12:
        // byte-identical counts between v1, v2, and every thread count.
        let mut state = 0xfeed5eedu64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        for trial in 0..25 {
            let n = 4 + (next() % 9) as u32; // 4..=12 elements
            let num_sets = 1 + (next() % 6) as usize;
            let sets: Vec<Vec<WeightKey>> = (0..num_sets)
                .map(|_| {
                    let mask = next();
                    (0..n).filter(|i| mask >> i & 1 == 1).map(key).collect()
                })
                .collect();
            let p = CapacityProblem::new(&sets);
            for d in 0..=2i64 {
                let v1 = p.count_constrained_v1(&[-1, 0, 1], -d, d);
                for threads in [1usize, 2, 4] {
                    assert_eq!(
                        p.count_at_most_with(threads, d),
                        v1,
                        "trial {trial}, d = {d}, threads = {threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn fork_join_splitting_engages_and_agrees() {
        // One dense 18-element component forces the fork-join path at
        // threads > 1; counts must match v1 and the 1-thread engine.
        let mut state = 0xabcdef12u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let n = 18u32;
        let sets: Vec<Vec<WeightKey>> = (0..6)
            .map(|_| {
                let mask = next() | 1 | (1 << (n - 1)); // ends overlap -> one component
                (0..n).filter(|i| mask >> i & 1 == 1).map(key).collect()
            })
            .collect();
        let p = CapacityProblem::new(&sets);
        let v1 = p.count_constrained_v1(&[-1, 0, 1], -1, 1);
        let (seq, seq_stats) = p.count_constrained_stats(1, &[-1, 0, 1], -1, 1);
        let (par, par_stats) = p.count_constrained_stats(4, &[-1, 0, 1], -1, 1);
        assert_eq!(seq, v1);
        assert_eq!(par, v1);
        assert_eq!(seq_stats.tasks, seq_stats.components, "1 thread: one task per component");
        assert!(par_stats.tasks > par_stats.components, "4 threads must fork the component");
    }

    #[test]
    fn overflow_boundary_is_checked() {
        // 80 free elements: 3^80 ≈ 1.5e38 still fits u128.
        let sets: Vec<Vec<WeightKey>> = (0..80).map(|i| vec![key(i)]).collect();
        let p = CapacityProblem::new(&sets);
        assert_eq!(p.count_at_most(1), 3u128.pow(80));
    }

    #[test]
    #[should_panic(expected = "overflowed u128")]
    fn overflow_past_boundary_panics() {
        // 81 free elements: 3^81 ≈ 4.4e38 > u128::MAX ≈ 3.4e38.
        let sets: Vec<Vec<WeightKey>> = (0..81).map(|i| vec![key(i)]).collect();
        let p = CapacityProblem::new(&sets);
        let _ = p.count_at_most(1);
    }

    #[test]
    fn permanent_of_complete_bipartite() {
        // K_{3,3}: permanent = 3! = 6.
        let g = Bipartite::new(vec![vec![true; 3]; 3]);
        assert_eq!(g.permanent(), 6);
        assert_eq!(g.matchings_via_marking(), 6);
    }

    #[test]
    fn permanent_of_identity_and_cycle() {
        let id = Bipartite::new(vec![
            vec![true, false, false],
            vec![false, true, false],
            vec![false, false, true],
        ]);
        assert_eq!(id.permanent(), 1);
        assert_eq!(id.matchings_via_marking(), 1);
        // 4-cycle as bipartite 2x2 all-ones: 2 matchings.
        let c4 = Bipartite::new(vec![vec![true, true], vec![true, true]]);
        assert_eq!(c4.permanent(), 2);
        assert_eq!(c4.matchings_via_marking(), 2);
    }

    #[test]
    fn gray_code_permanent_matches_naive_ryser() {
        // The O(2^n · n²) textbook sum, kept here as ground truth.
        fn naive(adj: &[Vec<bool>]) -> u128 {
            let n = adj.len();
            if n == 0 {
                return 1;
            }
            let mut total: i128 = 0;
            for mask in 1u32..(1 << n) {
                let ones = mask.count_ones() as i128;
                let sign = if (n as i128 - ones) % 2 == 0 { 1 } else { -1 };
                let mut prod: i128 = 1;
                for row in adj {
                    let mut rs = 0i128;
                    for (j, &edge) in row.iter().enumerate() {
                        if mask >> j & 1 == 1 && edge {
                            rs += 1;
                        }
                    }
                    prod *= rs;
                    if prod == 0 {
                        break;
                    }
                }
                total += sign * prod;
            }
            total.max(0) as u128
        }
        let mut state = 0x9e3779b9u64;
        let mut rand_bool = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) & 1 == 1
        };
        for n in 1..=7 {
            let adj: Vec<Vec<bool>> =
                (0..n).map(|_| (0..n).map(|_| rand_bool()).collect()).collect();
            let g = Bipartite::new(adj.clone());
            for threads in [1usize, 2, 4] {
                assert_eq!(g.permanent_with(threads), naive(&adj), "n = {n}, threads = {threads}");
            }
        }
    }

    #[test]
    fn reduction_matches_on_random_graphs() {
        // Deterministic pseudo-random adjacency (LCG) for reproducibility.
        let mut state = 0x12345678u64;
        let mut rand_bool = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) & 1 == 1
        };
        for n in 2..=5 {
            let adj: Vec<Vec<bool>> =
                (0..n).map(|_| (0..n).map(|_| rand_bool()).collect()).collect();
            let g = Bipartite::new(adj);
            let perm = g.permanent();
            assert_eq!(perm, g.matchings_via_marking(), "n={n}");
            assert_eq!(
                perm,
                g.to_marking_problem().count_constrained_v1(&[0, 1], 1, 1),
                "n={n} (v1)"
            );
        }
    }

    #[test]
    fn graph_with_no_matching() {
        let g = Bipartite::new(vec![vec![true, true], vec![false, false]]);
        assert_eq!(g.permanent(), 0);
        assert_eq!(g.matchings_via_marking(), 0);
    }
}
