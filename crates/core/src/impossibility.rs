//! Impossibility constructions (Theorem 2, Remark 1, Theorem 6).
//!
//! * [`powerset_structure`] — the paper's witness after Theorem 2: a
//!   class `G_n` with `2^n + n` vertices where `E` links the i-th of the
//!   first `2^n` vertices to the i-th subset of the last `n`. The trivial
//!   query `ψ(u,v) ≡ E(u,v)` shatters all of `W`, so `VC(ψ, G_n) = |W|`
//!   and no watermarking scheme exists; capacity counting shows the
//!   collapse quantitatively.
//! * [`half_shattered_structure`] — Remark 1: only half the active
//!   weights are shattered, and the other half supports a
//!   `(|W|/4, 0, δ)`-scheme with zero distortion
//!   ([`half_shattered_scheme`]).
//! * [`grid_shattered_system`] — Theorem 6's consequence on grids: an
//!   MSO-definable family on the `n×n` grid that shatters its active
//!   set. Full MSO evaluation on grids is out of scope (the paper cites
//!   Grohe–Turán's Example 19 for the formula); we instantiate the
//!   shattered set system combinatorially, which is all Theorem 2's
//!   argument consumes. See DESIGN.md, substitutions.

use crate::capacity::CapacityProblem;
use crate::pairing::{Pair, PairMarking};
use qpwm_structures::{Element, Schema, Structure, StructureBuilder, WeightKey};
use std::sync::Arc;

/// The fully-shattered structure `G_n`: `2^n + n` vertices, `E(i, w_j)`
/// iff bit `j` of `i` is set. Weights live on the last `n` vertices.
///
/// # Panics
/// Panics for `n > 20` (the structure has `2^n` parameter vertices).
pub fn powerset_structure(n: u32) -> Structure {
    assert!(n <= 20, "2^n parameter vertices; keep n small");
    let params = 1u32 << n;
    let schema = Arc::new(Schema::graph());
    let mut b = StructureBuilder::new(schema, params + n);
    for i in 0..params {
        for j in 0..n {
            if i >> j & 1 == 1 {
                b.add(0, &[i, params + j]);
            }
        }
    }
    b.build()
}

/// The active sets of `ψ(u,v) ≡ E(u,v)` on [`powerset_structure`],
/// materialized directly (equivalent to evaluating the formula, but
/// avoids `2^n` FO evaluations).
pub fn powerset_active_sets(n: u32) -> Vec<Vec<WeightKey>> {
    let params = 1u32 << n;
    (0..params)
        .map(|i| {
            (0..n)
                .filter(|j| i >> j & 1 == 1)
                .map(|j| vec![params + j])
                .collect()
        })
        .collect()
}

/// Remark 1's half-shattered structure: `2^(n/2) + 1 + n` vertices.
/// The first `2^(n/2)` vertices each link to a subset of the *last*
/// `n/2` weight vertices; the extra vertex `a` links to **all** `n`
/// weight vertices. `n` must be even.
pub fn half_shattered_structure(n: u32) -> Structure {
    assert!(n.is_multiple_of(2), "n must be even");
    assert!(n / 2 <= 20, "2^(n/2) parameter vertices; keep n small");
    let half = n / 2;
    let params = 1u32 << half;
    let a = params; // the extra vertex
    let weights_base = params + 1;
    let schema = Arc::new(Schema::graph());
    let mut b = StructureBuilder::new(schema, params + 1 + n);
    // subsets shatter the last n/2 weight vertices
    for i in 0..params {
        for j in 0..half {
            if i >> j & 1 == 1 {
                b.add(0, &[i, weights_base + half + j]);
            }
        }
    }
    // vertex a sees all n weights
    for j in 0..n {
        b.add(0, &[a, weights_base + j]);
    }
    b.build()
}

/// Active sets of the edge query on [`half_shattered_structure`].
pub fn half_shattered_active_sets(n: u32) -> Vec<Vec<WeightKey>> {
    let half = n / 2;
    let params = 1u32 << half;
    let weights_base = params + 1;
    let mut sets: Vec<Vec<WeightKey>> = (0..params)
        .map(|i| {
            (0..half)
                .filter(|j| i >> j & 1 == 1)
                .map(|j| vec![weights_base + half + j])
                .collect()
        })
        .collect();
    sets.push((0..n).map(|j| vec![weights_base + j]).collect());
    sets
}

/// Remark 1's explicit zero-distortion scheme: balanced `(+1, −1)` pairs
/// on the first `n/2` weight vertices (the ones only `W_a` contains).
/// Capacity `n/4` bits, global distortion 0.
pub fn half_shattered_scheme(n: u32) -> PairMarking {
    let half = n / 2;
    let params = 1u32 << half;
    let weights_base = params + 1;
    let pairs: Vec<Pair> = (0..half / 2)
        .map(|p| Pair {
            plus: vec![weights_base + 2 * p],
            minus: vec![weights_base + 2 * p + 1],
        })
        .collect();
    PairMarking::new(pairs)
}

/// The `n×n` grid as a structure (horizontal+vertical edges, symmetric).
pub fn grid_structure(n: u32) -> Structure {
    let schema = Arc::new(Schema::graph());
    let mut b = StructureBuilder::new(schema, n * n);
    let id = |x: u32, y: u32| y * n + x;
    for y in 0..n {
        for x in 0..n {
            if x + 1 < n {
                b.add(0, &[id(x, y), id(x + 1, y)]);
                b.add(0, &[id(x + 1, y), id(x, y)]);
            }
            if y + 1 < n {
                b.add(0, &[id(x, y), id(x, y + 1)]);
                b.add(0, &[id(x, y + 1), id(x, y)]);
            }
        }
    }
    b.build()
}

/// Theorem 6's consequence on the `n×n` grid: a set system over the
/// first row (the active weights) whose members shatter it — standing in
/// for `{ψ(ā, G)}` of Grohe–Turán's MSO formula, which selects row
/// subsets via MSO-definable "column patterns" encoded by `ā`. We expose
/// every subset of the first row, the shattering the formula achieves.
pub fn grid_shattered_system(n: u32) -> Vec<Vec<WeightKey>> {
    assert!(n <= 20, "2^n subsets");
    let row: Vec<Element> = (0..n).collect();
    (0..(1u32 << n))
        .map(|mask| {
            row.iter()
                .filter(|&&x| mask >> x & 1 == 1)
                .map(|&x| vec![x])
                .collect()
        })
        .collect()
}

/// Theorem 2, made quantitative: at distortion budget `d`, the number of
/// encodable bits on a fully shattered family of `w` weights. Every
/// assignment must keep *every subset sum* within `d`, which caps any
/// single weight's distortion contribution globally.
pub fn shattered_capacity_bits(active_sets: &[Vec<WeightKey>], d: i64) -> f64 {
    CapacityProblem::new(active_sets).bits_at(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpwm_logic::{vc_of_answers, Formula, ParametricQuery};

    #[test]
    fn powerset_structure_matches_fo_evaluation() {
        let n = 4;
        let s = powerset_structure(n);
        let q = ParametricQuery::new(Formula::atom(0, &[0, 1]), vec![0], vec![1]);
        let answers = q.answers(&s);
        let direct = powerset_active_sets(n);
        // every directly-constructed set appears among the evaluated ones
        for (i, set) in direct.iter().enumerate() {
            let pos = answers.position_of(&[i as u32]).expect("in domain");
            assert_eq!(answers.materialize_set(pos), *set);
        }
    }

    #[test]
    fn powerset_vc_dimension_is_full() {
        // Theorem 2's hypothesis: VC(ψ, G_n) = |W|.
        let n = 4;
        let s = powerset_structure(n);
        let q = ParametricQuery::new(Formula::atom(0, &[0, 1]), vec![0], vec![1]);
        let answers = q.answers(&s);
        assert_eq!(answers.active_universe().len(), n as usize);
        assert_eq!(vc_of_answers(&answers), n as usize);
    }

    #[test]
    fn powerset_capacity_collapses() {
        // Full shattering: at d = 0 only the zero marking; capacity in
        // bits stays far below |W| even at d = 1.
        let n = 4;
        let sets = powerset_active_sets(n);
        let p = CapacityProblem::new(&sets);
        assert_eq!(p.count_at_most(0), 1);
        // At d = 1 a marking may carry at most one +1 and at most one −1
        // (any two like signs form a violating subset): 1 + 4 + 4 + 12 =
        // 21 markings ≈ 4.4 bits, versus log2(3^4) ≈ 6.3 unconstrained —
        // capacity is O(d·log|W|) instead of Ω(|W|).
        let bits1 = p.bits_at(1);
        assert!((bits1 - 21f64.log2()).abs() < 1e-9, "bits at d=1: {bits1}");
        assert!(bits1 < (n as f64) * 3f64.log2());
    }

    #[test]
    fn half_shattered_sets_match_fo_evaluation() {
        let n = 8;
        let s = half_shattered_structure(n);
        let q = ParametricQuery::new(Formula::atom(0, &[0, 1]), vec![0], vec![1]);
        let answers = q.answers(&s);
        let direct = half_shattered_active_sets(n);
        // the direct sets are those of parameters 0..2^(n/2) plus vertex a
        let params = 1u32 << (n / 2);
        for (i, set) in direct.iter().enumerate().take(params as usize) {
            let pos = answers.position_of(&[i as u32]).expect("in domain");
            assert_eq!(answers.materialize_set(pos), *set, "subset parameter {i}");
        }
        let pos_a = answers.position_of(&[params]).expect("vertex a");
        assert_eq!(answers.materialize_set(pos_a), *direct.last().expect("a-set"));
    }

    #[test]
    fn half_shattered_scheme_has_zero_distortion() {
        let n = 8;
        let marking = half_shattered_scheme(n);
        assert_eq!(marking.capacity() as u32, n / 4);
        let sets = half_shattered_active_sets(n);
        let params: Vec<Vec<Element>> = (0..sets.len()).map(|i| vec![i as Element]).collect();
        let family = qpwm_structures::AnswerFamily::from_nested(params, &sets);
        // zero separation anywhere: W_a contains both members of every
        // pair; the subset-parameters contain neither.
        assert_eq!(marking.max_separation(&family), 0);
    }

    #[test]
    fn half_shattered_roundtrip() {
        use crate::detect::{HonestServer, ObservedWeights};
        use qpwm_structures::Weights;
        let n = 8;
        let marking = half_shattered_scheme(n);
        let mut w = Weights::new(1);
        let structure = half_shattered_structure(n);
        for e in 0..structure.universe_size() {
            w.set(&[e], 1000);
        }
        let message = vec![true, false];
        let marked = marking.apply(&w, &message);
        let server = HonestServer::from_sets(half_shattered_active_sets(n), marked);
        let report = marking.extract(&w, &ObservedWeights::collect(&server));
        assert_eq!(report.bits, message);
    }

    #[test]
    fn grid_has_high_degree_interior() {
        let g = grid_structure(4);
        let gaifman = qpwm_structures::GaifmanGraph::of(&g);
        assert_eq!(gaifman.max_degree(), 4);
        assert_eq!(g.universe_size(), 16);
    }

    #[test]
    fn grid_system_shatters_and_collapses() {
        let n = 4;
        let sets = grid_shattered_system(n);
        let system = qpwm_logic::SetSystem::from_family(&sets);
        assert_eq!(qpwm_logic::vc_dimension(&system), n as usize);
        assert_eq!(shattered_capacity_bits(&sets, 0), 0.0);
    }

    #[test]
    fn capacity_contrast_half_vs_full() {
        // The half-shattered family keeps Ω(n) zero-distortion bits while
        // the fully shattered family keeps none.
        let n = 8;
        let half_bits = CapacityProblem::new(&half_shattered_active_sets(n)).bits_at(0);
        let full_bits = CapacityProblem::new(&powerset_active_sets(n / 2)).bits_at(0);
        assert_eq!(full_bits, 0.0);
        assert!(half_bits >= (n / 4) as f64, "half: {half_bits}");
    }
}
