//! The adversarial model: attacks and the Khanna–Zane robustness
//! transform (Fact 1).
//!
//! Under *bounded distortion* (the attacker must keep the data useful:
//! global distortion ≤ d') and *limited knowledge* (the attacker does not
//! know which weights carry the mark), a non-adversarial scheme becomes
//! adversarial by redundancy: [`RobustScheme`] spreads each message bit
//! over `R` pairs and decodes by majority. An attacker flipping random
//! weights within a d'-budget corrupts each pair with probability
//! shrinking in `|W|`, so the majority survives — exactly the paper's
//! "robustness by lack of knowledge, not computational hardness".
//!
//! [`Attack`] implements the attacker strategies the experiments measure:
//! uniform noise, rounding, biased shifts, and the averaging
//! auto-collusion of Section 5.

use crate::detect::{AnswerServer, DetectionReport, HonestServer, ObservedWeights};
use crate::pairing::PairMarking;
use crate::scheme::MarkedCarrier;
use qpwm_rng::Rng;
use qpwm_structures::{AnswerFamily, Element, Weights};

/// Attacker strategies (all operate on the weights the server will
/// serve; the attacker never learns the original weights or the pair
/// positions — the *limited knowledge* assumption).
#[derive(Debug, Clone)]
pub enum Attack {
    /// Add an independent uniform integer in `[-amplitude, amplitude]`
    /// to each active weight with probability `fraction`.
    UniformNoise {
        /// Maximum per-weight shift.
        amplitude: i64,
        /// Fraction of weights touched.
        fraction: f64,
    },
    /// Round every weight to the nearest multiple of `granularity` —
    /// a natural "cleanup" a malicious server might run.
    Rounding {
        /// Rounding step (≥ 1).
        granularity: i64,
    },
    /// Add the same `delta` to every weight (defeated by differential
    /// detection; included as a baseline attack).
    ConstantShift {
        /// The shift.
        delta: i64,
    },
    /// Average several differently-marked copies (auto-collusion,
    /// Section 5): the attacker obtained `copies` versions and serves
    /// the rounded mean.
    Averaging {
        /// The other copies' weights.
        copies: Vec<Weights>,
    },
    /// A colluding coalition serving the per-tuple *median* of its
    /// members' copies (the attacked weights plus `copies`). Where a
    /// majority of the coalition carries the same fingerprint bit the
    /// value survives; where members disagree the median lands between
    /// their stamps — the classic majority-vote collusion against
    /// fingerprinting. Deterministic (no randomness needed).
    MajorityVote {
        /// The other coalition members' weights.
        copies: Vec<Weights>,
    },
    /// A colluding coalition *mixing* its copies: every tuple's weight
    /// is taken from one coalition member (the attacked weights or one
    /// of `copies`), chosen uniformly per tuple by the seeded RNG — so
    /// the served table is a patchwork in which each colluder
    /// contributes ≈ 1/k of the evidence.
    Mixing {
        /// The other coalition members' weights.
        copies: Vec<Weights>,
    },
    /// Serve only a random subset of the data: each active tuple is
    /// censored out of every answer with probability `drop_fraction`
    /// (the classic subset-selection attack; a set-level attack, so it
    /// acts through [`Attack::apply_carrier`] and leaves weights alone).
    SubsetSelection {
        /// Per-tuple censoring probability.
        drop_fraction: f64,
    },
    /// Insert `count` forged tuples with plausible weights (the SPSW
    /// superset / fake-tuple attack). Forged elements are drawn beyond
    /// the active universe, and their weights uniformly from the
    /// empirical weight range stretched by `amplitude`. A set-level
    /// attack: it acts through [`Attack::apply_carrier`].
    FakeInsertion {
        /// Number of forged tuples.
        count: usize,
        /// Extra slack added to the empirical weight range.
        amplitude: i64,
    },
    /// Re-randomize a fraction of the weights: each touched weight is
    /// replaced by a fresh uniform draw from the empirical `[min, max]`
    /// range — destroying any mark it carried while keeping the column
    /// statistically plausible.
    Rerandomize {
        /// Fraction of weights replaced.
        fraction: f64,
    },
}

impl Attack {
    /// Applies the attack to `weights` over the family's active universe
    /// (iterated straight off the interned arena, content order).
    pub fn apply(&self, weights: &Weights, answers: &AnswerFamily, seed: u64) -> Weights {
        let mut rng = Rng::seed_from_u64(seed);
        let mut out = weights.clone();
        match self {
            Attack::UniformNoise { amplitude, fraction } => {
                for key in answers.universe_tuples() {
                    if rng.gen_f64() < *fraction {
                        let delta = rng.gen_range(-*amplitude..=*amplitude);
                        out.add(key, delta);
                    }
                }
            }
            Attack::Rounding { granularity } => {
                let g = (*granularity).max(1);
                for key in answers.universe_tuples() {
                    let w = out.get(key);
                    let rounded = ((w + g / 2).div_euclid(g)) * g;
                    out.set(key, rounded);
                }
            }
            Attack::ConstantShift { delta } => {
                for key in answers.universe_tuples() {
                    out.add(key, *delta);
                }
            }
            Attack::Averaging { copies } => {
                for key in answers.universe_tuples() {
                    let mut sum = out.get(key);
                    for c in copies {
                        sum += c.get(key);
                    }
                    let n = copies.len() as i64 + 1;
                    out.set(key, (sum + n / 2).div_euclid(n));
                }
            }
            Attack::MajorityVote { copies } => {
                let mut values = Vec::with_capacity(copies.len() + 1);
                for key in answers.universe_tuples() {
                    values.clear();
                    values.push(out.get(key));
                    values.extend(copies.iter().map(|c| c.get(key)));
                    values.sort_unstable();
                    let n = values.len();
                    let median = if n % 2 == 1 {
                        values[n / 2]
                    } else {
                        // even coalition: rounded midpoint of the two
                        // middle members
                        let (a, b) = (values[n / 2 - 1], values[n / 2]);
                        (a + b + 1).div_euclid(2)
                    };
                    out.set(key, median);
                }
            }
            Attack::Mixing { copies } => {
                let n = copies.len() as u64 + 1;
                for key in answers.universe_tuples() {
                    let pick = rng.below(n);
                    if pick > 0 {
                        out.set(key, copies[pick as usize - 1].get(key));
                    }
                }
            }
            // Set-level attacks do not move weights; their effect lives
            // on the carrier ([`Attack::apply_carrier`]).
            Attack::SubsetSelection { .. } => {}
            Attack::FakeInsertion { count, amplitude } => {
                let (lo, hi) = empirical_range(weights, answers);
                let base = fresh_element_base(answers);
                let arity = answers.output_arity().max(1);
                for i in 0..*count {
                    let key: Vec<Element> = vec![base + i as Element; arity];
                    out.set(&key, rng.gen_range(lo - amplitude..=hi + amplitude));
                }
            }
            Attack::Rerandomize { fraction } => {
                let (lo, hi) = empirical_range(weights, answers);
                for key in answers.universe_tuples() {
                    if rng.gen_f64() < *fraction {
                        out.set(key, rng.gen_range(lo..=hi));
                    }
                }
            }
        }
        out
    }

    /// Applies the attack to a full [`MarkedCarrier`]: weight-level
    /// attacks rewrite `carrier.weights` exactly like
    /// [`Attack::apply`]; subset selection records censored tuples in
    /// `carrier.dropped`; fake insertion records the forged tuples (and
    /// their served weights) in `carrier.inserted`. The claim
    /// (`carrier.message`) is never touched — attacks destroy evidence,
    /// not the owner's assertion.
    pub fn apply_carrier(&self, carrier: &mut MarkedCarrier, answers: &AnswerFamily, seed: u64) {
        match self {
            Attack::SubsetSelection { drop_fraction } => {
                let mut rng = Rng::seed_from_u64(seed);
                for key in answers.universe_tuples() {
                    if rng.gen_f64() < *drop_fraction {
                        carrier.dropped.push(key.to_vec());
                    }
                }
            }
            Attack::FakeInsertion { count, amplitude } => {
                // Same draws as [`Attack::apply`], but the forged tuples
                // are additionally recorded for detectors (like
                // Agrawal–Kiernan's) that scan the served relation
                // rather than true answer sets.
                let mut rng = Rng::seed_from_u64(seed);
                let (lo, hi) = empirical_range(&carrier.weights, answers);
                let base = fresh_element_base(answers);
                let arity = answers.output_arity().max(1);
                for i in 0..*count {
                    let key: Vec<Element> = vec![base + i as Element; arity];
                    let w = rng.gen_range(lo - amplitude..=hi + amplitude);
                    carrier.weights.set(&key, w);
                    carrier.inserted.push((key, w));
                }
            }
            _ => {
                carrier.weights = self.apply(&carrier.weights, answers, seed);
            }
        }
    }
}

/// The empirical `[min, max]` range of the active weights — the
/// attacker's view of what a plausible value looks like.
fn empirical_range(weights: &Weights, answers: &AnswerFamily) -> (i64, i64) {
    let mut lo = i64::MAX;
    let mut hi = i64::MIN;
    for key in answers.universe_tuples() {
        let w = weights.get(key);
        lo = lo.min(w);
        hi = hi.max(w);
    }
    if lo > hi {
        (0, 0)
    } else {
        (lo, hi)
    }
}

/// First element id strictly beyond every id used by the family's
/// active universe — forged tuples built from here can never collide
/// with a true tuple.
fn fresh_element_base(answers: &AnswerFamily) -> Element {
    let mut max = 0;
    for key in answers.universe_tuples() {
        for &e in key {
            max = max.max(e);
        }
    }
    max + 1
}

/// A server that *censors*: answers every query but drops a fraction of
/// each answer set (hoping to starve the detector of mark carriers).
/// Dropped tuples are chosen pseudo-randomly per tuple, so the same
/// tuple is consistently present or absent across queries.
pub struct CensoringServer<S> {
    inner: S,
    /// Keep a tuple iff `hash(tuple, seed) mod 100 >= drop_percent`.
    drop_percent: u32,
    seed: u64,
}

impl<S: AnswerServer> CensoringServer<S> {
    /// Wraps a server, dropping ≈`drop_percent`% of answer tuples.
    pub fn new(inner: S, drop_percent: u32, seed: u64) -> Self {
        CensoringServer { inner, drop_percent: drop_percent.min(100), seed }
    }

    fn keeps(&self, tuple: &[Element]) -> bool {
        let mut h = self.seed;
        for &e in tuple {
            h ^= u64::from(e).wrapping_add(0x9E37_79B9_7F4A_7C15);
            h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            h ^= h >> 31;
        }
        (h % 100) as u32 >= self.drop_percent
    }
}

impl<S: AnswerServer> AnswerServer for CensoringServer<S> {
    fn num_parameters(&self) -> usize {
        self.inner.num_parameters()
    }

    fn answer(&self, i: usize) -> Vec<(Vec<Element>, i64)> {
        self.inner
            .answer(i)
            .into_iter()
            .filter(|(tuple, _)| self.keeps(tuple))
            .collect()
    }
}

/// A server whose *channel* is unreliable: whole reads are lost.
///
/// This is not an attacker — it models the transport between owner and
/// suspect (a flaky network, a load-shedding proxy, the chaos layer in
/// `qpwm-serve`). A lost read drops the entire answer set of one
/// parameter, pseudo-randomly per parameter so the loss pattern is
/// reproducible. Detection should treat the resulting zero-score pairs
/// as missing evidence (shrinking the effective sample via
/// `claim_check_effective`), never as mark bits.
pub struct FlakyServer<S> {
    inner: S,
    /// Lose the read iff `hash(i, seed) mod 100 < loss_percent`.
    loss_percent: u32,
    seed: u64,
    missed: std::sync::atomic::AtomicUsize,
}

impl<S: AnswerServer> FlakyServer<S> {
    /// Wraps a server, losing ≈`loss_percent`% of whole reads.
    pub fn new(inner: S, loss_percent: u32, seed: u64) -> Self {
        FlakyServer {
            inner,
            loss_percent: loss_percent.min(100),
            seed,
            missed: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    fn loses(&self, i: usize) -> bool {
        let mut h = self.seed ^ (i as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 31;
        ((h % 100) as u32) < self.loss_percent
    }

    /// Reads lost so far (the simulated missing-read budget).
    pub fn missed(&self) -> usize {
        self.missed.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl<S: AnswerServer> AnswerServer for FlakyServer<S> {
    fn num_parameters(&self) -> usize {
        self.inner.num_parameters()
    }

    fn answer(&self, i: usize) -> Vec<(Vec<Element>, i64)> {
        if self.loses(i) {
            self.missed
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return Vec::new();
        }
        self.inner.answer(i)
    }
}

/// A server that *lies inconsistently*: it perturbs each answer's weight
/// depending on the query parameter, so the same tuple gets different
/// weights in different answers. `ObservedWeights` flags exactly this.
pub struct LyingServer<S> {
    inner: S,
}

impl<S: AnswerServer> LyingServer<S> {
    /// Wraps a server with per-parameter lies.
    pub fn new(inner: S) -> Self {
        LyingServer { inner }
    }
}

impl<S: AnswerServer> AnswerServer for LyingServer<S> {
    fn num_parameters(&self) -> usize {
        self.inner.num_parameters()
    }

    fn answer(&self, i: usize) -> Vec<(Vec<Element>, i64)> {
        self.inner
            .answer(i)
            .into_iter()
            .map(|(tuple, w)| (tuple, w + (i as i64 % 3) - 1))
            .collect()
    }
}

/// A robust (adversarial-model) scheme: `R`-fold repetition over a base
/// pair marking with majority decoding.
#[derive(Debug, Clone)]
pub struct RobustScheme {
    marking: PairMarking,
    repetition: usize,
}

impl RobustScheme {
    /// Wraps a base marking; capacity drops to
    /// `⌊pairs / repetition⌋` bits.
    ///
    /// # Panics
    /// Panics if `repetition` is zero.
    pub fn new(marking: PairMarking, repetition: usize) -> Self {
        assert!(repetition > 0, "repetition factor must be positive");
        RobustScheme { marking, repetition }
    }

    /// Message capacity in bits.
    pub fn capacity(&self) -> usize {
        self.marking.capacity() / self.repetition
    }

    /// The repetition factor `R`.
    pub fn repetition(&self) -> usize {
        self.repetition
    }

    /// Expands `message` to the repeated pair-level bit vector.
    fn expand(&self, message: &[bool]) -> Vec<bool> {
        let mut bits = Vec::with_capacity(message.len() * self.repetition);
        for &b in message {
            bits.extend(std::iter::repeat_n(b, self.repetition));
        }
        bits
    }

    /// Marker: embeds `message` with repetition.
    ///
    /// # Panics
    /// Panics if the message exceeds [`RobustScheme::capacity`].
    pub fn mark(&self, weights: &Weights, message: &[bool]) -> Weights {
        assert!(message.len() <= self.capacity(), "message exceeds capacity");
        self.marking.apply(weights, &self.expand(message))
    }

    /// Detector: majority-decodes each message bit from its `R` pairs.
    /// `scores[i]` is the summed pair score (≥ 0 leans 1); the decision
    /// threshold is 0.
    pub fn detect(&self, original: &Weights, server: &dyn AnswerServer) -> DetectionReport {
        let observed = ObservedWeights::collect(server);
        let raw = self.marking.extract(original, &observed);
        let capacity = self.capacity();
        let mut bits = Vec::with_capacity(capacity);
        let mut scores = Vec::with_capacity(capacity);
        for chunk in raw.scores.chunks(self.repetition).take(capacity) {
            let total: i64 = chunk.iter().sum();
            scores.push(total);
            bits.push(total > 0);
        }
        DetectionReport { bits, scores, missing_pairs: raw.missing_pairs }
    }
}

/// Outcome of simulating one attack against a robust scheme.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    /// Bit errors after majority decoding.
    pub bit_errors: usize,
    /// Message length.
    pub message_bits: usize,
    /// The global distortion the attack actually inflicted on query
    /// results (the attacker's d' — Assumption 1 bounds it).
    pub attacker_distortion: i64,
}

/// Runs a full mark → attack → detect experiment.
pub fn simulate_attack(
    scheme: &RobustScheme,
    original: &Weights,
    answers: &AnswerFamily,
    message: &[bool],
    attack: &Attack,
    seed: u64,
) -> AttackOutcome {
    let marked = scheme.mark(original, message);
    let attacked = attack.apply(&marked, answers, seed);
    let attacker_distortion = answers.max_global_distortion(&marked, &attacked);
    let server = HonestServer::new(answers.clone(), attacked);
    let report = scheme.detect(original, &server);
    AttackOutcome {
        bit_errors: report.errors_against(message),
        message_bits: message.len(),
        attacker_distortion,
    }
}

/// False-positive check: run the detector against an *innocent* server
/// whose data was never marked; returns how many bits happened to match
/// `claimed` (≈ half for honest randomness — the paper's Assumption 2
/// scenario of a server using similar data from another source).
pub fn false_positive_matches(
    scheme: &RobustScheme,
    original: &Weights,
    answers: &AnswerFamily,
    innocent: &Weights,
    claimed: &[bool],
) -> usize {
    let server = HonestServer::new(answers.clone(), innocent.clone());
    let report = scheme.detect(original, &server);
    claimed.len() - report.errors_against(claimed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairing::Pair;

    fn key(e: u32) -> Vec<Element> {
        vec![e]
    }

    /// 24 pairs over 48 weights, one big active set exposing everything,
    /// plus singleton sets (so noise shows up as global distortion).
    fn setup() -> (PairMarking, Weights, AnswerFamily) {
        let pairs: Vec<Pair> = (0..24)
            .map(|i| Pair { plus: key(2 * i), minus: key(2 * i + 1) })
            .collect();
        let mut w = Weights::new(1);
        for e in 0..48u32 {
            w.set(&[e], 1_000 + e as i64);
        }
        let mut sets: Vec<Vec<Vec<Element>>> = vec![(0..48).map(key).collect()];
        for e in 0..48 {
            sets.push(vec![key(e)]);
        }
        let params = (0..sets.len()).map(|i| vec![i as Element]).collect();
        (PairMarking::new(pairs), w, AnswerFamily::from_nested(params, &sets))
    }

    #[test]
    fn robust_scheme_capacity() {
        let (marking, _, _) = setup();
        let scheme = RobustScheme::new(marking, 3);
        assert_eq!(scheme.capacity(), 8);
        assert_eq!(scheme.repetition(), 3);
    }

    #[test]
    fn clean_roundtrip_with_repetition() {
        let (marking, w, sets) = setup();
        let scheme = RobustScheme::new(marking, 3);
        let message: Vec<bool> = (0..8).map(|i| i % 2 == 1).collect();
        let marked = scheme.mark(&w, &message);
        let server = HonestServer::new(sets, marked);
        let report = scheme.detect(&w, &server);
        assert_eq!(report.bits, message);
        // scores are ±2 per pair, 3 pairs per bit
        assert!(report.scores.iter().all(|s| s.abs() == 6));
    }

    #[test]
    fn survives_sparse_noise() {
        let (marking, w, sets) = setup();
        let scheme = RobustScheme::new(marking, 3);
        let message: Vec<bool> = (0..8).map(|i| i % 3 == 0).collect();
        let attack = Attack::UniformNoise { amplitude: 1, fraction: 0.2 };
        let outcome = simulate_attack(&scheme, &w, &sets, &message, &attack, 99);
        assert!(
            outcome.bit_errors <= 1,
            "errors {} with distortion {}",
            outcome.bit_errors,
            outcome.attacker_distortion
        );
    }

    #[test]
    fn constant_shift_is_harmless() {
        // Differential detection cancels constant shifts entirely.
        let (marking, w, sets) = setup();
        let scheme = RobustScheme::new(marking, 1);
        let message: Vec<bool> = (0..24).map(|i| i % 2 == 0).collect();
        let attack = Attack::ConstantShift { delta: 7 };
        let outcome = simulate_attack(&scheme, &w, &sets, &message, &attack, 1);
        assert_eq!(outcome.bit_errors, 0);
    }

    #[test]
    fn heavy_rounding_erases_the_mark() {
        // Rounding to multiples of 100 wipes ±1 marks: detection fails,
        // but the attacker's own distortion blows through any sane d' —
        // Assumption 1 is what rules this out.
        let (marking, w, sets) = setup();
        let scheme = RobustScheme::new(marking, 1);
        // Alternating message: rounding collapses pair members into the
        // same bucket, so every bit decodes from the members' *original*
        // offset instead of the mark — the false bits all flip.
        let message: Vec<bool> = (0..24).map(|i| i % 2 == 0).collect();
        let attack = Attack::Rounding { granularity: 100 };
        let outcome = simulate_attack(&scheme, &w, &sets, &message, &attack, 1);
        assert!(outcome.bit_errors >= 6, "errors {}", outcome.bit_errors);
        assert!(outcome.attacker_distortion > 10);
    }

    #[test]
    fn averaging_collusion_degrades_detection() {
        let (marking, w, sets) = setup();
        let scheme = RobustScheme::new(marking.clone(), 1);
        let message: Vec<bool> = (0..24).map(|i| i % 2 == 0).collect();
        let inverse: Vec<bool> = message.iter().map(|b| !b).collect();
        let other_copy = scheme.mark(&w, &inverse);
        let attack = Attack::Averaging { copies: vec![other_copy] };
        let outcome = simulate_attack(&scheme, &w, &sets, &message, &attack, 1);
        // Averaging a copy with the inverse message canels every pair
        // delta; with rounding ties the detector is near chance.
        assert!(outcome.bit_errors >= 8, "errors {}", outcome.bit_errors);
    }

    #[test]
    fn majority_vote_collusion_erases_minority_marks() {
        let (marking, w, sets) = setup();
        let scheme = RobustScheme::new(marking.clone(), 1);
        let message: Vec<bool> = (0..24).map(|i| i % 2 == 0).collect();
        // a 3-member coalition: the attacked copy plus two copies whose
        // bits all agree with each other but not with the victim — the
        // per-tuple median is the majority's value, so the victim's
        // fingerprint vanishes entirely
        let inverse: Vec<bool> = message.iter().map(|b| !b).collect();
        let copies = vec![scheme.mark(&w, &inverse), scheme.mark(&w, &inverse)];
        let attack = Attack::MajorityVote { copies: copies.clone() };
        let marked = scheme.mark(&w, &message);
        let voted = attack.apply(&marked, &sets, 5);
        for key in sets.universe_tuples() {
            assert_eq!(voted.get(key), copies[0].get(key), "median is the majority copy");
        }
        // deterministic: no randomness enters the vote
        let again = attack.apply(&marked, &sets, 999);
        for key in sets.universe_tuples() {
            assert_eq!(voted.get(key), again.get(key));
        }
    }

    #[test]
    fn mixing_collusion_is_seeded_and_draws_from_every_member() {
        let (marking, w, sets) = setup();
        let scheme = RobustScheme::new(marking.clone(), 1);
        let message: Vec<bool> = (0..24).map(|i| i % 2 == 0).collect();
        let inverse: Vec<bool> = message.iter().map(|b| !b).collect();
        let marked = scheme.mark(&w, &message);
        let other = scheme.mark(&w, &inverse);
        let attack = Attack::Mixing { copies: vec![other.clone()] };
        let mixed = attack.apply(&marked, &sets, 42);
        let (mut from_self, mut from_other) = (0, 0);
        for key in sets.universe_tuples() {
            let v = mixed.get(key);
            assert!(
                v == marked.get(key) || v == other.get(key),
                "every mixed weight comes from a coalition member"
            );
            if v == marked.get(key) {
                from_self += 1;
            }
            if v == other.get(key) {
                from_other += 1;
            }
        }
        assert!(from_self > 0 && from_other > 0, "both members contribute");
        // same seed, same patchwork; different seed, different patchwork
        let same = attack.apply(&marked, &sets, 42);
        let diff = attack.apply(&marked, &sets, 43);
        let collect = |x: &Weights| -> Vec<i64> {
            sets.universe_tuples().map(|k| x.get(k)).collect()
        };
        assert_eq!(collect(&mixed), collect(&same));
        assert_ne!(collect(&mixed), collect(&diff));
    }

    #[test]
    fn false_positives_sit_near_half() {
        let (marking, w, sets) = setup();
        let scheme = RobustScheme::new(marking, 1);
        // innocent server: same structure, weights from another "source"
        let mut innocent = Weights::new(1);
        for e in 0..48u32 {
            innocent.set(&[e], 1_000 + e as i64 + ((e * 7919) % 5) as i64 - 2);
        }
        let claimed = vec![true; 24];
        let matches = false_positive_matches(&scheme, &w, &sets, &innocent, &claimed);
        // not a perfect match — an innocent server does not "contain" the
        // full mark
        assert!(matches < 24, "matches {matches}");
    }

    #[test]
    fn censoring_server_starves_pairs_but_detection_survives_partially() {
        let (marking, w, sets) = setup();
        let scheme = RobustScheme::new(marking, 1);
        let message: Vec<bool> = (0..24).map(|i| i % 2 == 0).collect();
        let marked = scheme.mark(&w, &message);
        let honest = HonestServer::new(sets, marked);
        let censoring = CensoringServer::new(honest, 40, 7);
        let report = scheme.detect(&w, &censoring);
        // some pairs disappear entirely, but the surviving clean reads
        // still decode their bits correctly
        assert!(report.missing_pairs > 0, "censoring had no effect");
        let mut correct_clean = 0;
        for ((score, bit), expected) in
            report.scores.iter().zip(&report.bits).zip(&message)
        {
            if score.abs() >= 2 {
                assert_eq!(bit, expected);
                correct_clean += 1;
            }
        }
        assert!(correct_clean >= 4, "clean reads {correct_clean}");
    }

    #[test]
    fn flaky_channel_reads_as_missing_evidence_not_mark_bits() {
        use crate::detect::{Verdict, DEFAULT_DELTA};
        let (marking, w, sets) = setup();
        let scheme = RobustScheme::new(marking, 1);
        let message: Vec<bool> = (0..24).map(|i| i % 2 == 0).collect();
        let marked = scheme.mark(&w, &message);
        let offline = scheme
            .detect(&w, &HonestServer::new(sets.clone(), marked.clone()))
            .claim_check(&message, DEFAULT_DELTA);
        assert_eq!(offline.verdict, Verdict::MarkPresent);

        // a dead channel loses every read: detection must abstain, not rule
        let dead = FlakyServer::new(HonestServer::new(sets.clone(), marked.clone()), 100, 3);
        let report = scheme.detect(&w, &dead);
        assert_eq!(dead.missed(), dead.num_parameters());
        assert!(report.scores.iter().all(|s| *s == 0));
        let check = report.claim_check_effective(&message, DEFAULT_DELTA);
        assert_eq!(check.verdict, Verdict::Abstain);
        assert_eq!(check.compared, 0);

        // a clean channel is transparent
        let clean = FlakyServer::new(HonestServer::new(sets.clone(), marked.clone()), 0, 3);
        let clean_report = scheme.detect(&w, &clean);
        assert_eq!(clean.missed(), 0);
        assert_eq!(
            clean_report.claim_check_effective(&message, DEFAULT_DELTA),
            offline
        );

        // partial loss over many seeds: the verdict matches offline or
        // abstains — it never flips
        for seed in 0..32 {
            let flaky =
                FlakyServer::new(HonestServer::new(sets.clone(), marked.clone()), 50, seed);
            let check = scheme
                .detect(&w, &flaky)
                .claim_check_effective(&message, DEFAULT_DELTA);
            assert!(
                matches!(check.verdict, Verdict::MarkPresent | Verdict::Abstain),
                "seed {seed}: verdict flipped to {:?}",
                check.verdict
            );
        }
    }

    #[test]
    fn lying_servers_are_flagged() {
        use crate::detect::ObservedWeights;
        let (marking, w, sets) = setup();
        let scheme = RobustScheme::new(marking, 1);
        let message: Vec<bool> = (0..24).map(|i| i % 2 == 1).collect();
        let marked = scheme.mark(&w, &message);
        // the big set plus singletons means every tuple appears in ≥ 2
        // answers with different parameter indices -> lies conflict
        let liar = LyingServer::new(HonestServer::new(sets, marked));
        let observed = ObservedWeights::collect(&liar);
        assert!(
            !observed.inconsistencies.is_empty(),
            "inconsistent answers must be flagged"
        );
    }

    #[test]
    #[should_panic(expected = "message exceeds capacity")]
    fn overlong_messages_rejected() {
        let (marking, w, _) = setup();
        let scheme = RobustScheme::new(marking, 24);
        let _ = scheme.mark(&w, &[true, false]);
    }
}
