//! Persisting the owner's watermarking secrets.
//!
//! A real deployment spans years: the owner marks copies today and must
//! detect them long after the process that built the scheme has exited.
//! The secret is small — the ordered pair list (and, for incremental
//! maintenance, the per-copy mark deltas) — and is serialized in a
//! line-oriented text format chosen for auditability: an owner can
//! *read* their key, diff two keys, and keep them in version control.
//!
//! ```text
//! qpwm-key v1
//! d 2
//! pairs 3
//! + 4 - 5
//! + 10 - 11
//! + 12 2 - 13 2        # multi-component weight keys
//! end
//! ```

use crate::pairing::{Pair, PairMarking};
use qpwm_structures::WeightKey;
use std::fmt;

/// Key-file parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyError {
    /// Wrong or missing header line.
    BadHeader,
    /// A malformed line: its 1-based number and verbatim content, so the
    /// owner can find the corruption in a key they may have hand-edited
    /// or merged.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending line, verbatim.
        content: String,
    },
    /// A weight key that appears more than once across the pair list. A
    /// key id must belong to exactly one side of one pair: a repeat
    /// would silently overwrite earlier evidence (last-write-wins) and
    /// corrupt both marking and detection, so it is rejected by name.
    DuplicateKey {
        /// 1-based line number of the *second* occurrence.
        line: usize,
        /// The repeated weight key, space-joined.
        key: String,
    },
    /// Pair count mismatch or missing terminator.
    Truncated,
}

impl KeyError {
    fn bad_line(line: usize, content: &str) -> KeyError {
        KeyError::BadLine { line, content: content.to_owned() }
    }
}

impl fmt::Display for KeyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyError::BadHeader => write!(f, "not a qpwm-key v1 file"),
            KeyError::BadLine { line, content } => {
                write!(f, "malformed key file at line {line}: '{content}'")
            }
            KeyError::DuplicateKey { line, key } => {
                write!(f, "duplicate key id at line {line}: '{key}' already appears in an earlier pair")
            }
            KeyError::Truncated => write!(f, "key file is truncated"),
        }
    }
}

impl std::error::Error for KeyError {}

/// A serializable scheme secret: the pair marking plus its distortion
/// budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemeKey {
    /// The ordered secret pairs.
    pub marking: PairMarking,
    /// The distortion budget `d` the scheme was certified for.
    pub d: u64,
}

impl SchemeKey {
    /// Serializes to the text format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("qpwm-key v1\n");
        out.push_str(&format!("d {}\n", self.d));
        out.push_str(&format!("pairs {}\n", self.marking.capacity()));
        for pair in self.marking.pairs() {
            out.push('+');
            for e in &pair.plus {
                out.push_str(&format!(" {e}"));
            }
            out.push_str(" -");
            for e in &pair.minus {
                out.push_str(&format!(" {e}"));
            }
            out.push('\n');
        }
        out.push_str("end\n");
        out
    }

    /// Parses the text format.
    pub fn from_text(input: &str) -> Result<Self, KeyError> {
        let mut lines = input.lines().enumerate();
        let header = lines.next().map(|(_, l)| l.trim());
        if header != Some("qpwm-key v1") {
            return Err(KeyError::BadHeader);
        }
        let (dn, dline) = lines.next().ok_or(KeyError::Truncated)?;
        let d: u64 = dline
            .trim()
            .strip_prefix("d ")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| KeyError::bad_line(dn + 1, dline))?;
        let (pn, pline) = lines.next().ok_or(KeyError::Truncated)?;
        let count: usize = pline
            .trim()
            .strip_prefix("pairs ")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| KeyError::bad_line(pn + 1, pline))?;
        let mut pairs = Vec::with_capacity(count);
        let mut seen: std::collections::HashSet<WeightKey> =
            std::collections::HashSet::with_capacity(count * 2);
        for _ in 0..count {
            let (n, raw) = lines.next().ok_or(KeyError::Truncated)?;
            let line = raw.trim();
            let rest = line
                .strip_prefix('+')
                .ok_or_else(|| KeyError::bad_line(n + 1, raw))?;
            let (plus_part, minus_part) = rest
                .split_once('-')
                .ok_or_else(|| KeyError::bad_line(n + 1, raw))?;
            let parse_key = |part: &str| -> Result<WeightKey, KeyError> {
                let key: Result<WeightKey, _> =
                    part.split_whitespace().map(str::parse).collect();
                match key {
                    Ok(k) if !k.is_empty() => Ok(k),
                    _ => Err(KeyError::bad_line(n + 1, raw)),
                }
            };
            let pair = Pair { plus: parse_key(plus_part)?, minus: parse_key(minus_part)? };
            for side in [&pair.plus, &pair.minus] {
                if !seen.insert(side.clone()) {
                    let key = side
                        .iter()
                        .map(u32::to_string)
                        .collect::<Vec<_>>()
                        .join(" ");
                    return Err(KeyError::DuplicateKey { line: n + 1, key });
                }
            }
            pairs.push(pair);
        }
        let (_, terminator) = lines.next().ok_or(KeyError::Truncated)?;
        if terminator.trim() != "end" {
            return Err(KeyError::Truncated);
        }
        Ok(SchemeKey { marking: PairMarking::new(pairs), d })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SchemeKey {
        SchemeKey {
            marking: PairMarking::new(vec![
                Pair { plus: vec![4], minus: vec![5] },
                Pair { plus: vec![10], minus: vec![11] },
                Pair { plus: vec![12, 2], minus: vec![13, 2] },
            ]),
            d: 2,
        }
    }

    #[test]
    fn roundtrip() {
        let key = sample();
        let text = key.to_text();
        let back = SchemeKey::from_text(&text).expect("parses");
        assert_eq!(back, key);
    }

    #[test]
    fn format_is_stable_and_readable() {
        let text = sample().to_text();
        assert_eq!(
            text,
            "qpwm-key v1\nd 2\npairs 3\n+ 4 - 5\n+ 10 - 11\n+ 12 2 - 13 2\nend\n"
        );
    }

    #[test]
    fn empty_marking_roundtrips() {
        let key = SchemeKey { marking: PairMarking::new(Vec::new()), d: 1 };
        assert_eq!(SchemeKey::from_text(&key.to_text()).expect("parses"), key);
    }

    #[test]
    fn rejects_corruption() {
        let text = sample().to_text();
        assert_eq!(SchemeKey::from_text("nope"), Err(KeyError::BadHeader));
        // truncate before the end marker
        let cut = text.rsplit_once("end").expect("has end").0;
        assert_eq!(SchemeKey::from_text(cut), Err(KeyError::Truncated));
        // corrupt a pair line
        let bad = text.replace("+ 4 - 5", "+ x - 5");
        assert!(matches!(SchemeKey::from_text(&bad), Err(KeyError::BadLine { .. })));
        // corrupt the count
        let bad = text.replace("pairs 3", "pairs many");
        assert!(matches!(SchemeKey::from_text(&bad), Err(KeyError::BadLine { .. })));
    }

    #[test]
    fn diagnostics_name_the_offending_line() {
        // sample() serializes to: line 1 header, 2 `d`, 3 `pairs`,
        // 4..6 pair lines, 7 `end`. Corrupt each pair line in turn and
        // check the error points at exactly that line, with its content.
        let text = sample().to_text();
        let pair_lines: Vec<&str> =
            text.lines().filter(|l| l.starts_with('+')).collect();
        assert_eq!(pair_lines.len(), 3);
        for (offset, pair_line) in pair_lines.iter().enumerate() {
            let corrupted = pair_line.replace('-', "~");
            let bad = text.replace(pair_line, &corrupted);
            match SchemeKey::from_text(&bad) {
                Err(KeyError::BadLine { line, content }) => {
                    assert_eq!(line, 4 + offset, "line number names the corruption");
                    assert_eq!(content, corrupted, "content is quoted verbatim");
                    let message = KeyError::BadLine { line, content }.to_string();
                    assert!(message.contains(&format!("line {}", 4 + offset)), "{message}");
                    assert!(message.contains(&corrupted), "{message}");
                }
                other => panic!("expected BadLine, got {other:?}"),
            }
        }
        // a corrupted d line names line 2
        let bad = text.replace("d 2", "d two");
        assert!(
            matches!(SchemeKey::from_text(&bad), Err(KeyError::BadLine { line: 2, .. })),
            "d line corruption names line 2"
        );
    }

    #[test]
    fn rejects_duplicate_key_ids_by_name() {
        // the same weight key on two different pair lines
        let text = "qpwm-key v1\nd 1\npairs 2\n+ 4 - 5\n+ 6 - 4\nend\n";
        match SchemeKey::from_text(text) {
            Err(KeyError::DuplicateKey { line, key }) => {
                assert_eq!(line, 5, "the second occurrence is named");
                assert_eq!(key, "4");
                let message = KeyError::DuplicateKey { line, key }.to_string();
                assert!(message.contains("duplicate key id at line 5"), "{message}");
                assert!(message.contains("'4'"), "{message}");
            }
            other => panic!("expected DuplicateKey, got {other:?}"),
        }
        // both sides of one pair naming the same key is also a duplicate
        let text = "qpwm-key v1\nd 1\npairs 1\n+ 7 2 - 7 2\nend\n";
        assert!(
            matches!(
                SchemeKey::from_text(text),
                Err(KeyError::DuplicateKey { line: 4, .. })
            ),
            "plus == minus within a single pair is rejected"
        );
        // multi-component keys compare as whole tuples: `7` and `7 2`
        // are distinct and both legal
        let text = "qpwm-key v1\nd 1\npairs 2\n+ 7 - 8\n+ 7 2 - 8 2\nend\n";
        assert!(SchemeKey::from_text(text).is_ok(), "prefix overlap is not a duplicate");
    }

    /// Random-key round-trip property: write → read → write is the
    /// identity on the text form, and read → write → read the identity
    /// on the value, for keys spanning arities, id ranges, and sizes.
    /// The generator rejection-samples fresh weight keys, since the
    /// parser now refuses duplicate key ids.
    #[test]
    fn random_keys_round_trip() {
        let mut rng = qpwm_rng::Rng::seed_from_u64(0x5eed_4e1f);
        for _ in 0..200 {
            let num_pairs = rng.below(20) as usize;
            let mut used: std::collections::HashSet<WeightKey> = std::collections::HashSet::new();
            let pairs: Vec<Pair> = (0..num_pairs)
                .map(|_| {
                    let arity = 1 + rng.below(3) as usize;
                    let mut side = |rng: &mut qpwm_rng::Rng| -> WeightKey {
                        loop {
                            let key: WeightKey =
                                (0..arity).map(|_| rng.below(1 << 20) as u32).collect();
                            if used.insert(key.clone()) {
                                return key;
                            }
                        }
                    };
                    Pair { plus: side(&mut rng), minus: side(&mut rng) }
                })
                .collect();
            let key = SchemeKey {
                marking: PairMarking::new(pairs),
                d: rng.below(1 << 40),
            };
            let text = key.to_text();
            let back = SchemeKey::from_text(&text).expect("round-trips");
            assert_eq!(back, key, "value round-trip");
            assert_eq!(back.to_text(), text, "text round-trip is the identity");
        }
    }

    #[test]
    fn detector_works_from_reloaded_key() {
        use crate::detect::{HonestServer, ObservedWeights};
        use qpwm_structures::Weights;
        let key = sample();
        let mut w = Weights::new(1);
        for e in [4u32, 5, 10, 11] {
            w.set(&[e], 100);
        }
        // mark only the unary pairs (the binary pair stays untouched and
        // shows up as a missing read)
        let message = vec![true, false];
        let marked = key.marking.apply(&w, &message);
        let reloaded = SchemeKey::from_text(&key.to_text()).expect("parses");
        let sets = vec![vec![vec![4u32], vec![5], vec![10], vec![11]]];
        let server = HonestServer::from_sets(sets, marked);
        let report = reloaded
            .marking
            .extract(&w, &ObservedWeights::collect(&server));
        assert_eq!(&report.bits[..2], &message[..2]);
    }
}
