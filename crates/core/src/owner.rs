//! The data owner's console: issuing per-server copies and tracing
//! leaks.
//!
//! The paper's 3-tier story: an owner distributes `2^l` differently
//! marked copies to data servers; discovering a suspect database (or
//! just a queryable interface to one), the owner recovers the embedded
//! message and identifies the leaking server. This module packages that
//! workflow:
//!
//! * each registered server gets a **codeword** — a pseudo-random
//!   message derived from the owner's secret key and the server's name,
//!   so codewords are spread out in Hamming space without bookkeeping;
//! * [`Owner::identify`] decodes a suspect's answers and attributes the
//!   leak to the nearest codeword, with a binomial significance for the
//!   attribution (nearest-vs-chance);
//! * weight updates are propagated per Theorem 7 without re-marking
//!   (dodging the auto-collusion trap of re-issuing fresh marks).

use crate::detect::{binomial_tail, AnswerServer, ObservedWeights};
use crate::incremental::MarkDeltas;
use crate::pairing::PairMarking;
use qpwm_structures::Weights;
use std::collections::HashMap;

/// Derives server `name`'s codeword of `bits` bits from the owner key.
fn codeword(key: u64, name: &str, bits: usize) -> Vec<bool> {
    let mut h = key;
    for b in name.bytes() {
        h ^= u64::from(b).wrapping_add(0x9E37_79B9_7F4A_7C15);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
    }
    let mut out = Vec::with_capacity(bits);
    let mut state = h;
    for _ in 0..bits {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        out.push(state >> 63 == 1);
    }
    out
}

/// Attribution of a suspect to an issued copy.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribution {
    /// The best-matching server.
    pub server: String,
    /// Bits matching that server's codeword.
    pub matches: usize,
    /// Total message bits.
    pub bits: usize,
    /// `P[an unrelated database matches this well by chance]`.
    pub significance: f64,
    /// Runner-up server and its match count (a close runner-up weakens
    /// the attribution).
    pub runner_up: Option<(String, usize)>,
}

/// The owner's state: the scheme secret, base weights, and issued copies.
#[derive(Debug)]
pub struct Owner {
    marking: PairMarking,
    key: u64,
    base_weights: Weights,
    issued: HashMap<String, Vec<bool>>,
}

impl Owner {
    /// Creates a console from a constructed scheme's marking, the secret
    /// key used to derive codewords, and the original weights.
    pub fn new(marking: PairMarking, key: u64, base_weights: Weights) -> Self {
        Owner { marking, key, base_weights, issued: HashMap::new() }
    }

    /// Message length per copy (the scheme capacity).
    pub fn message_bits(&self) -> usize {
        self.marking.capacity()
    }

    /// Registered servers.
    pub fn servers(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.issued.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// Issues a marked copy for `server`, recording its codeword.
    pub fn issue(&mut self, server: &str) -> Weights {
        let message = codeword(self.key, server, self.marking.capacity());
        let marked = self.marking.apply(&self.base_weights, &message);
        self.issued.insert(server.to_owned(), message);
        marked
    }

    /// Theorem 7: the owner updated the base weights; produce the
    /// refreshed copy for `server` carrying the *same* mark (no
    /// re-marking, no auto-collusion exposure).
    ///
    /// # Panics
    /// Panics if `server` was never issued a copy.
    pub fn refresh(&mut self, server: &str, new_weights: Weights) -> Weights {
        let message = self
            .issued
            .get(server)
            .unwrap_or_else(|| panic!("unknown server {server}"))
            .clone();
        let old_marked = self.marking.apply(&self.base_weights, &message);
        let deltas = MarkDeltas::from_marked(&self.base_weights, &old_marked);
        self.base_weights = new_weights;
        deltas.reapply(&self.base_weights)
    }

    /// Queries a suspect server and attributes the leak.
    ///
    /// Returns `None` when no copy was ever issued.
    pub fn identify(&self, suspect: &dyn AnswerServer) -> Option<Attribution> {
        if self.issued.is_empty() {
            return None;
        }
        let observed = ObservedWeights::collect(suspect);
        let report = self.marking.extract(&self.base_weights, &observed);
        let mut scored: Vec<(&String, usize)> = self
            .issued
            .iter()
            .map(|(name, code)| (name, code.len() - report.errors_against(code)))
            .collect();
        scored.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        let (best, matches) = scored[0];
        let runner_up = scored.get(1).map(|(n, m)| ((*n).clone(), *m));
        Some(Attribution {
            server: best.clone(),
            matches,
            bits: self.marking.capacity(),
            significance: binomial_tail(self.marking.capacity(), matches),
            runner_up,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::HonestServer;
    use crate::pairing::Pair;

    fn setup(pairs: usize) -> (Owner, Vec<Vec<Vec<u32>>>) {
        let marking = PairMarking::new(
            (0..pairs)
                .map(|i| Pair { plus: vec![2 * i as u32], minus: vec![2 * i as u32 + 1] })
                .collect(),
        );
        let mut w = Weights::new(1);
        for e in 0..2 * pairs as u32 {
            w.set(&[e], 700 + e as i64);
        }
        let sets = vec![(0..2 * pairs as u32).map(|e| vec![e]).collect::<Vec<_>>()];
        (Owner::new(marking, 0xDEAD_BEEF, w), sets)
    }

    #[test]
    fn codewords_are_deterministic_and_distinct() {
        let a = codeword(1, "alpha", 64);
        assert_eq!(a, codeword(1, "alpha", 64));
        let b = codeword(1, "beta", 64);
        let distance = a.iter().zip(&b).filter(|(x, y)| x != y).count();
        assert!(distance >= 16, "distance {distance}");
        // different keys give different codewords
        assert_ne!(a, codeword(2, "alpha", 64));
    }

    #[test]
    fn identifies_the_leaking_server() {
        let (mut owner, sets) = setup(48);
        let copies: Vec<(String, Weights)> = ["air-travel.example", "hotels.example", "meteo.example"]
            .iter()
            .map(|s| (s.to_string(), owner.issue(s)))
            .collect();
        for (name, weights) in &copies {
            let server = HonestServer::from_sets(sets.clone(), weights.clone());
            let attribution = owner.identify(&server).expect("copies issued");
            assert_eq!(&attribution.server, name);
            assert_eq!(attribution.matches, 48);
            assert!(attribution.significance < 1e-12);
            let (_, runner_matches) = attribution.runner_up.expect("three servers");
            assert!(runner_matches < 40, "runner-up at {runner_matches}");
        }
    }

    #[test]
    fn refresh_preserves_attribution_across_weight_updates() {
        let (mut owner, sets) = setup(40);
        owner.issue("alpha");
        owner.issue("beta");
        let mut new_w = Weights::new(1);
        for e in 0..80u32 {
            new_w.set(&[e], 12_345 + 3 * e as i64);
        }
        let refreshed_alpha = owner.refresh("alpha", new_w);
        let server = HonestServer::from_sets(sets, refreshed_alpha);
        let attribution = owner.identify(&server).expect("issued");
        assert_eq!(attribution.server, "alpha");
        assert_eq!(attribution.matches, 40);
    }

    #[test]
    fn unissued_owner_identifies_nothing() {
        let (owner, sets) = setup(8);
        let server = HonestServer::from_sets(sets, Weights::new(1));
        assert!(owner.identify(&server).is_none());
    }

    #[test]
    fn innocent_data_attributes_weakly() {
        let (mut owner, sets) = setup(48);
        owner.issue("alpha");
        owner.issue("beta");
        // a server with wholly different weights
        let mut other = Weights::new(1);
        for e in 0..96u32 {
            other.set(&[e], 1_000_000 + ((e as i64 * 37) % 11));
        }
        let server = HonestServer::from_sets(sets, other);
        let attribution = owner.identify(&server).expect("issued");
        // significance nowhere near an ownership claim
        assert!(attribution.significance > 1e-6, "sig {}", attribution.significance);
    }
}
