//! Loading relational instances from CSV files.
//!
//! The CLI's relational mode reads a schema spec plus one CSV per
//! relation; every distinct cell value becomes a universe element
//! (interned in first-appearance order), and a weights CSV attaches
//! durations/prices/readings to elements. The dialect is deliberately
//! simple: comma-separated, optional double quotes (doubled quote
//! escapes), one record per line, no headers.

use qpwm_structures::{Element, Schema, StructureBuilder, WeightedStructure, Weights};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Errors from CSV loading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// The schema spec didn't parse (message inside).
    BadSchema(String),
    /// A relation in `tables` is not in the schema.
    UnknownRelation(String),
    /// Wrong number of fields at `(relation, line)`.
    BadRow(String, usize),
    /// A weights row didn't parse at the given line.
    BadWeight(usize),
    /// A weights row names a value that no relation mentions.
    UnknownElement(String),
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::BadSchema(m) => write!(f, "bad schema spec: {m}"),
            CsvError::UnknownRelation(r) => write!(f, "relation {r} not in schema"),
            CsvError::BadRow(r, l) => write!(f, "bad row in {r} at line {l}"),
            CsvError::BadWeight(l) => write!(f, "bad weights row at line {l}"),
            CsvError::UnknownElement(e) => write!(f, "weighted value {e} appears in no relation"),
        }
    }
}

impl std::error::Error for CsvError {}

/// A loaded relational database with its name dictionary.
#[derive(Debug, Clone)]
pub struct CsvDatabase {
    /// The weighted instance.
    pub instance: WeightedStructure,
    /// Element id → original cell value.
    pub names: Vec<String>,
    /// Cell value → element id.
    pub ids: HashMap<String, Element>,
}

impl CsvDatabase {
    /// The element for a cell value.
    pub fn element(&self, name: &str) -> Option<Element> {
        self.ids.get(name).copied()
    }

    /// The cell value of an element.
    pub fn name(&self, e: Element) -> &str {
        &self.names[e as usize]
    }

    /// Serializes the given weights as a `name,weight` CSV (sorted by
    /// name, explicit entries only).
    pub fn weights_to_csv(&self, weights: &Weights) -> String {
        let mut rows: Vec<(String, i64)> = weights
            .iter_sorted()
            .into_iter()
            .map(|(k, w)| (quote(self.name(k[0])), w))
            .collect();
        rows.sort();
        rows.into_iter()
            .map(|(n, w)| format!("{n},{w}\n"))
            .collect()
    }
}

/// Parses `"Route(travel,transport); Timetable(t,dep,arr,ty)"` into a
/// schema with unary weights.
pub fn parse_schema_spec(spec: &str) -> Result<Schema, CsvError> {
    let mut relations = Vec::new();
    for part in spec.split(';') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let open = part
            .find('(')
            .ok_or_else(|| CsvError::BadSchema(format!("{part}: missing (")))?;
        let name = part[..open].trim();
        let cols = part[open + 1..]
            .strip_suffix(')')
            .ok_or_else(|| CsvError::BadSchema(format!("{part}: missing )")))?;
        let arity = cols.split(',').filter(|c| !c.trim().is_empty()).count();
        if name.is_empty() || arity == 0 {
            return Err(CsvError::BadSchema(part.to_owned()));
        }
        relations.push((name.to_owned(), arity));
    }
    if relations.is_empty() {
        return Err(CsvError::BadSchema("no relations".into()));
    }
    Ok(Schema::new(relations, 1))
}

/// Splits one CSV record, honoring double quotes.
fn split_record(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut current = String::new();
    let mut chars = line.chars().peekable();
    let mut quoted = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if quoted => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    current.push('"');
                } else {
                    quoted = false;
                }
            }
            '"' if current.is_empty() => quoted = true,
            ',' if !quoted => {
                fields.push(std::mem::take(&mut current));
            }
            c => current.push(c),
        }
    }
    fields.push(current);
    fields.into_iter().map(|f| f.trim().to_owned()).collect()
}

fn quote(value: &str) -> String {
    if value.contains(',') || value.contains('"') {
        format!("\"{}\"", value.replace('"', "\"\""))
    } else {
        value.to_owned()
    }
}

/// Loads a database: `tables` pairs relation names with CSV contents;
/// `weights_csv` (optional) holds `name,weight` rows.
pub fn load_csv_database(
    schema_spec: &str,
    tables: &[(&str, &str)],
    weights_csv: Option<&str>,
) -> Result<CsvDatabase, CsvError> {
    let schema = Arc::new(parse_schema_spec(schema_spec)?);
    // first pass: intern all cell values
    let mut names: Vec<String> = Vec::new();
    let mut ids: HashMap<String, Element> = HashMap::new();
    let mut parsed: Vec<(usize, Vec<Vec<Element>>)> = Vec::new();
    for (rel_name, csv) in tables {
        let rel = schema
            .rel_id(rel_name)
            .ok_or_else(|| CsvError::UnknownRelation((*rel_name).to_owned()))?;
        let arity = schema.arity(rel);
        let mut tuples = Vec::new();
        for (lineno, line) in csv.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let fields = split_record(line);
            if fields.len() != arity {
                return Err(CsvError::BadRow((*rel_name).to_owned(), lineno + 1));
            }
            let tuple: Vec<Element> = fields
                .into_iter()
                .map(|value| {
                    *ids.entry(value.clone()).or_insert_with(|| {
                        names.push(value);
                        (names.len() - 1) as Element
                    })
                })
                .collect();
            tuples.push(tuple);
        }
        parsed.push((rel, tuples));
    }
    let mut builder = StructureBuilder::new(Arc::clone(&schema), names.len() as u32);
    for (rel, tuples) in &parsed {
        for t in tuples {
            builder.add(*rel, t);
        }
    }
    let structure = builder.build();
    let mut weights = Weights::new(1);
    if let Some(csv) = weights_csv {
        for (lineno, line) in csv.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let fields = split_record(line);
            let [name, value] = fields.as_slice() else {
                return Err(CsvError::BadWeight(lineno + 1));
            };
            let w: i64 = value.parse().map_err(|_| CsvError::BadWeight(lineno + 1))?;
            let e = ids
                .get(name)
                .copied()
                .ok_or_else(|| CsvError::UnknownElement(name.clone()))?;
            weights.set(&[e], w);
        }
    }
    Ok(CsvDatabase {
        instance: WeightedStructure::new(structure, weights),
        names,
        ids,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCHEMA: &str = "Route(travel,transport); Timetable(transport,dep,arr,ty)";

    fn sample() -> CsvDatabase {
        let route = "India discovery,F21\nIndia discovery,G12\nNepal Trek,F21\n";
        let timetable = "F21,Paris,Delhi,plane\nG12,Delhi,Nawalgarh,bus\n";
        let weights = "F21,635\nG12,380\n";
        load_csv_database(
            SCHEMA,
            &[("Route", route), ("Timetable", timetable)],
            Some(weights),
        )
        .expect("loads")
    }

    #[test]
    fn loads_relations_and_weights() {
        let db = sample();
        let s = db.instance.structure();
        assert_eq!(s.tuples(0).len(), 3);
        assert_eq!(s.tuples(1).len(), 2);
        let f21 = db.element("F21").expect("present");
        assert_eq!(db.instance.weight(&[f21]), 635);
        let india = db.element("India discovery").expect("present");
        assert!(s.contains(0, &[india, f21]));
    }

    #[test]
    fn names_roundtrip() {
        let db = sample();
        for (name, &id) in &db.ids {
            assert_eq!(db.name(id), name);
        }
    }

    #[test]
    fn quoted_fields_and_escapes() {
        let csv = "\"a,b\",plain\n\"say \"\"hi\"\"\",x\n";
        let db = load_csv_database("R(p,q)", &[("R", csv)], None).expect("loads");
        assert!(db.element("a,b").is_some());
        assert!(db.element("say \"hi\"").is_some());
        // and serialization re-quotes
        let mut w = Weights::new(1);
        w.set(&[db.element("a,b").expect("present")], 5);
        let out = db.weights_to_csv(&w);
        assert_eq!(out, "\"a,b\",5\n");
    }

    #[test]
    fn errors_are_specific() {
        assert!(matches!(parse_schema_spec("nope"), Err(CsvError::BadSchema(_))));
        assert!(matches!(
            load_csv_database(SCHEMA, &[("Nope", "a,b\n")], None),
            Err(CsvError::UnknownRelation(_))
        ));
        assert!(matches!(
            load_csv_database(SCHEMA, &[("Route", "only-one-field\n")], None),
            Err(CsvError::BadRow(_, 1))
        ));
        assert!(matches!(
            load_csv_database(SCHEMA, &[("Route", "a,b\n")], Some("a,notanumber\n")),
            Err(CsvError::BadWeight(1))
        ));
        assert!(matches!(
            load_csv_database(SCHEMA, &[("Route", "a,b\n")], Some("ghost,5\n")),
            Err(CsvError::UnknownElement(_))
        ));
    }

    #[test]
    fn rule_runs_against_loaded_db() {
        let db = sample();
        let rule = qpwm_logic::datalog::parse_rule(
            "route($u; t) :- Route($u, t)",
            db.instance.structure().schema(),
        )
        .expect("parses");
        let india = db.element("India discovery").expect("present");
        let answers = rule.query.answer_set(db.instance.structure(), &[india]);
        let names: Vec<&str> = answers.iter().map(|t| db.name(t[0])).collect();
        assert_eq!(names, vec!["F21", "G12"]);
    }
}
