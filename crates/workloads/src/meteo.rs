//! A meteorological-data workload — the paper's other motivating domain
//! ("lodging information systems, meteorological and financial data").
//!
//! Schema: `Station(station, region)` and `Feeds(station, service)` —
//! stations report into regions and are syndicated to weather services;
//! the weight of a station is its latest reading (tenths of a degree).
//! The natural registered queries join the two relations:
//!
//! ```text
//! regional($r; s)  :- Station(s, $r)
//! syndicated($v; s) :- Feeds(s, $v)
//! shared($r; s)    :- Station(s, $r), Feeds(s, v)
//! ```

use qpwm_logic::datalog::{parse_rule, Rule};
use qpwm_rng::Rng;
use qpwm_structures::{Element, Schema, StructureBuilder, WeightedStructure, Weights};
use std::sync::Arc;

/// The meteo schema.
pub fn meteo_schema() -> Arc<Schema> {
    Arc::new(Schema::new(vec![("Station", 2), ("Feeds", 2)], 1))
}

/// A generated meteo instance with its element layout.
#[derive(Debug, Clone)]
pub struct MeteoInstance {
    /// The weighted instance (weights = readings on stations).
    pub instance: WeightedStructure,
    /// Station elements.
    pub stations: Vec<Element>,
    /// Region elements.
    pub regions: Vec<Element>,
    /// Service elements.
    pub services: Vec<Element>,
}

/// Generates `stations` stations spread over `regions` regions, each
/// feeding 1–3 of `services` weather services. Bounded Gaifman degree is
/// controlled by capping stations per region at `per_region`.
pub fn random_meteo(
    stations: u32,
    regions: u32,
    services: u32,
    per_region: u32,
    seed: u64,
) -> MeteoInstance {
    assert!(regions * per_region >= stations, "not enough region capacity");
    let mut rng = Rng::seed_from_u64(seed);
    let schema = meteo_schema();
    let n = stations + regions + services;
    let mut b = StructureBuilder::new(schema, n);
    let region_base = stations;
    let service_base = stations + regions;
    let mut region_load = vec![0u32; regions as usize];
    let mut w = Weights::new(1);
    for s in 0..stations {
        // place into an under-capacity region
        let region = loop {
            let r = rng.gen_range(0..regions);
            if region_load[r as usize] < per_region {
                region_load[r as usize] += 1;
                break r;
            }
        };
        b.add(0, &[s, region_base + region]);
        for _ in 0..rng.gen_range(1..=3u32) {
            let v = rng.gen_range(0..services);
            b.add(1, &[s, service_base + v]);
        }
        // readings: -30.0°C .. 45.0°C in tenths
        w.set(&[s], rng.gen_range(-300i64..450));
    }
    MeteoInstance {
        instance: WeightedStructure::new(b.build(), w),
        stations: (0..stations).collect(),
        regions: (region_base..region_base + regions).collect(),
        services: (service_base..service_base + services).collect(),
    }
}

/// The "readings of region r" rule.
pub fn regional_rule(instance: &MeteoInstance) -> Rule {
    parse_rule(
        "regional($r; s) :- Station(s, $r)",
        instance.instance.structure().schema(),
    )
    .expect("rule is valid")
}

/// The "readings syndicated to service v" rule.
pub fn syndicated_rule(instance: &MeteoInstance) -> Rule {
    parse_rule(
        "syndicated($v; s) :- Feeds(s, $v)",
        instance.instance.structure().schema(),
    )
    .expect("rule is valid")
}

/// Region parameters as 1-tuples.
pub fn region_domain(instance: &MeteoInstance) -> Vec<Vec<Element>> {
    instance.regions.iter().map(|&r| vec![r]).collect()
}

/// Service parameters as 1-tuples.
pub fn service_domain(instance: &MeteoInstance) -> Vec<Vec<Element>> {
    instance.services.iter().map(|&v| vec![v]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_layout() {
        let m = random_meteo(120, 30, 6, 8, 1);
        assert_eq!(m.stations.len(), 120);
        assert_eq!(m.regions.len(), 30);
        assert_eq!(m.services.len(), 6);
        let s = m.instance.structure();
        assert_eq!(s.tuples(0).len(), 120); // one region per station
        assert!(s.tuples(1).len() >= 120);
        // every station has a reading
        for &st in &m.stations {
            let reading = m.instance.weight(&[st]);
            assert!((-300..450).contains(&reading));
        }
    }

    #[test]
    fn rules_answer_station_sets() {
        let m = random_meteo(60, 12, 4, 8, 2);
        let rule = regional_rule(&m);
        let mut covered = 0usize;
        for &r in &m.regions {
            let answers = rule.query.answer_set(m.instance.structure(), &[r]);
            covered += answers.len();
            for a in &answers {
                assert!(m.stations.contains(&a[0]));
            }
        }
        assert_eq!(covered, 60, "regions partition the stations");
    }

    #[test]
    fn generation_is_reproducible() {
        let a = random_meteo(50, 10, 3, 8, 7);
        let b = random_meteo(50, 10, 3, 8, 7);
        assert_eq!(
            a.instance.structure().tuples(1),
            b.instance.structure().tuples(1)
        );
    }
}
