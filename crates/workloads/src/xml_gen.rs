//! Random XML documents and binary trees for the Theorem 5 experiments.

use qpwm_rng::Rng;
use qpwm_structures::Weights;
use qpwm_trees::tree::BinaryTree;
use qpwm_trees::xml::{parse_xml, XmlDocument};

/// Generates a school document with `students` students; firstnames are
/// drawn from `names`, exam scores from `0..=20`. Shapes match Example 4.
pub fn random_school(students: u32, names: &[&str], seed: u64) -> XmlDocument {
    let mut rng = Rng::seed_from_u64(seed);
    let mut xml = String::from("<school>\n");
    for i in 0..students {
        let name = names[rng.gen_range(0..names.len())];
        let exam = rng.gen_range(0..=20);
        xml.push_str(&format!(
            "  <student>\n    <firstname>{name}</firstname>\n    <lastname>L{i}</lastname>\n    <exam>{exam}</exam>\n  </student>\n"
        ));
    }
    xml.push_str("</school>");
    parse_xml(&xml).expect("generated school XML is well-formed")
}

/// Weights for a school document: each exam text node weighs its score;
/// all other nodes weigh 0 (and stay untouched by marking).
pub fn school_weights(doc: &XmlDocument) -> Weights {
    let mut w = Weights::new(1);
    for exam in doc.nodes_with_tag("exam") {
        if let Some(&t) = doc.tree.children(exam).first() {
            if let Some(text) = doc.text(t) {
                if let Ok(v) = text.parse::<i64>() {
                    w.set(&[t], v);
                }
            }
        }
    }
    w
}

/// A random binary tree of `n` nodes: each new node attaches to a random
/// free child slot. Labels are drawn uniformly from `0..alphabet`.
pub fn random_binary_tree(n: u32, alphabet: u32, seed: u64) -> BinaryTree {
    assert!(n >= 1 && alphabet >= 1);
    let mut rng = Rng::seed_from_u64(seed);
    let mut builder = qpwm_trees::tree::TreeBuilder::new();
    let root = builder.add_node(rng.gen_range(0..alphabet));
    // free slots: (parent, is_left)
    let mut slots: Vec<(u32, bool)> = vec![(root, true), (root, false)];
    for _ in 1..n {
        let idx = rng.gen_range(0..slots.len());
        let (parent, is_left) = slots.swap_remove(idx);
        let node = builder.add_node(rng.gen_range(0..alphabet));
        if is_left {
            builder.set_left(parent, node);
        } else {
            builder.set_right(parent, node);
        }
        slots.push((node, true));
        slots.push((node, false));
    }
    builder.build(root)
}

/// Uniform random node weights in `[lo, hi)`.
pub fn random_node_weights(tree: &BinaryTree, lo: i64, hi: i64, seed: u64) -> Weights {
    let mut rng = Rng::seed_from_u64(seed);
    let mut w = Weights::new(1);
    for node in 0..tree.len() as u32 {
        w.set(&[node], rng.gen_range(lo..hi));
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_school_has_requested_students() {
        let doc = random_school(10, &["Ann", "Bob"], 1);
        assert_eq!(doc.nodes_with_tag("student").len(), 10);
        assert_eq!(doc.nodes_with_tag("exam").len(), 10);
    }

    #[test]
    fn school_weights_track_scores() {
        let doc = random_school(5, &["Ann"], 2);
        let w = school_weights(&doc);
        assert_eq!(w.len(), 5);
        for exam in doc.nodes_with_tag("exam") {
            let t = doc.tree.children(exam)[0];
            let score: i64 = doc.text(t).expect("text").parse().expect("numeric");
            assert_eq!(w.get(&[t]), score);
        }
    }

    #[test]
    fn random_tree_shape() {
        let t = random_binary_tree(100, 3, 7);
        assert_eq!(t.len(), 100);
        assert!(t.height() >= 6); // random trees are deeper than log2(n)=6.6 rarely fails
        let t2 = random_binary_tree(100, 3, 7);
        assert_eq!(t, t2);
    }

    #[test]
    fn node_weights_cover_all_nodes() {
        let t = random_binary_tree(20, 2, 1);
        let w = random_node_weights(&t, 5, 10, 1);
        assert_eq!(w.len(), 20);
    }
}
