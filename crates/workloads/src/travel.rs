//! The travel-agency workload (paper, Example 1) — fixed and scalable.
//!
//! Schema: `Route(travel, transport)` and `Timetable(transport,
//! departure, arrival, type)`, with the `duration` weight attached to
//! transports. Elements are travels, transports, cities and vehicle
//! types, all in one universe; durations are minutes.

use qpwm_logic::{Formula, ParametricQuery};
use qpwm_rng::Rng;
use qpwm_structures::{Element, Schema, StructureBuilder, WeightedStructure, Weights};
use std::sync::Arc;

/// The travel schema: `Route/2`, `Timetable/4`, unary weights.
pub fn travel_schema() -> Arc<Schema> {
    Arc::new(Schema::new(vec![("Route", 2), ("Timetable", 4)], 1))
}

/// Element layout of [`example1_instance`].
#[derive(Debug, Clone)]
pub struct TravelInstance {
    /// The weighted structure.
    pub instance: WeightedStructure,
    /// Element ids of travels.
    pub travels: Vec<Element>,
    /// Element ids of transports.
    pub transports: Vec<Element>,
}

/// The exact instance of the paper's Example 1.
///
/// Elements: travels 0–2 (`India discovery`, `Nepal Trek`, `TourNepal`),
/// transports 3–8 (`F21, G12, R5, F2, T33, G13`), cities 9–15, types
/// 16–18. Durations in minutes: `F21=635, G12=380, R5=375, F2=210,
/// T33=170, G13=600`.
pub fn example1_instance() -> TravelInstance {
    let schema = travel_schema();
    let names = vec![
        "India discovery",
        "Nepal Trek",
        "TourNepal",
        "F21",
        "G12",
        "R5",
        "F2",
        "T33",
        "G13",
        "Paris",
        "Delhi",
        "Nawalgarh",
        "Kathmandu",
        "Simikot",
        "Daman",
        "plane",
        "bus",
        "jeep",
    ];
    let mut b = StructureBuilder::new(schema, names.len() as u32).element_names(names);
    // Route(travel, transport)
    for &(t, tr) in &[(0u32, 3u32), (0, 4), (1, 3), (1, 5), (1, 6), (2, 6), (2, 7)] {
        b.add(0, &[t, tr]);
    }
    // Timetable(transport, departure, arrival, type)
    for &(tr, dep, arr, ty) in &[
        (3u32, 9u32, 10u32, 15u32), // F21 Paris->Delhi plane
        (4, 10, 11, 16),            // G12 Delhi->Nawalgarh bus
        (5, 10, 12, 15),            // R5 Delhi->Kathmandu plane
        (6, 12, 13, 15),            // F2 Kathmandu->Simikot plane
        (7, 12, 14, 17),            // T33 Kathmandu->Daman jeep
        (8, 12, 9, 15),             // G13 Kathmandu->Paris plane
    ] {
        b.add(1, &[tr, dep, arr, ty]);
    }
    let structure = b.build();
    let mut w = Weights::new(1);
    for (tr, minutes) in [(3u32, 635i64), (4, 380), (5, 375), (6, 210), (7, 170), (8, 600)] {
        w.set(&[tr], minutes);
    }
    TravelInstance {
        instance: WeightedStructure::new(structure, w),
        travels: vec![0, 1, 2],
        transports: (3..9).collect(),
    }
}

/// The registered query of Example 1: `ψ(u, v) ≡ Route(u, v)` —
/// parameter `u` is the travel, answers are its transports with
/// durations.
pub fn route_query() -> ParametricQuery {
    ParametricQuery::new(Formula::atom(0, &[0, 1]), vec![0], vec![1])
}

/// A scalable travel database: `travels` travels, each using a random
/// selection of ≈`transports_per_travel` transports out of `transports`.
/// Each transport is shared by a bounded number of travels, keeping the
/// Gaifman degree bounded.
pub fn random_travel(
    travels: u32,
    transports: u32,
    transports_per_travel: u32,
    max_share: u32,
    seed: u64,
) -> TravelInstance {
    let mut rng = Rng::seed_from_u64(seed);
    let schema = travel_schema();
    // universe: travels, transports, 8 cities, 3 vehicle types
    let cities = 8u32;
    let vtypes = 3u32;
    let n = travels + transports + cities + vtypes;
    let mut b = StructureBuilder::new(schema, n);
    let transport_base = travels;
    let city_base = travels + transports;
    let type_base = city_base + cities;
    let mut share_count = vec![0u32; transports as usize];
    for t in 0..travels {
        for _ in 0..transports_per_travel {
            // find a transport with remaining share capacity
            for _attempt in 0..16 {
                let tr = rng.gen_range(0..transports);
                if share_count[tr as usize] < max_share {
                    share_count[tr as usize] += 1;
                    b.add(0, &[t, transport_base + tr]);
                    break;
                }
            }
        }
    }
    let mut w = Weights::new(1);
    for tr in 0..transports {
        let dep = city_base + rng.gen_range(0..cities);
        let mut arr = city_base + rng.gen_range(0..cities);
        if arr == dep {
            arr = city_base + (arr - city_base + 1) % cities;
        }
        let ty = type_base + rng.gen_range(0..vtypes);
        b.add(1, &[transport_base + tr, dep, arr, ty]);
        w.set(&[transport_base + tr], rng.gen_range(30i64..900));
    }
    TravelInstance {
        instance: WeightedStructure::new(b.build(), w),
        travels: (0..travels).collect(),
        transports: (transport_base..transport_base + transports).collect(),
    }
}

/// Parameter domain for travel queries: travel elements as 1-tuples.
pub fn travel_domain(t: &TravelInstance) -> Vec<Vec<Element>> {
    t.travels.iter().map(|&x| vec![x]).collect()
}

/// Recomputes Example 2's `f` values (minutes).
pub fn example2_f_values() -> Vec<(String, i64)> {
    let t = example1_instance();
    let q = route_query();
    let answers = q.answers_over(t.instance.structure(), travel_domain(&t));
    t.travels
        .iter()
        .enumerate()
        .map(|(i, &travel)| {
            let name = t
                .instance
                .structure()
                .display_element(travel);
            (name, answers.f(t.instance.weights(), i))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example1_shape() {
        let t = example1_instance();
        let s = t.instance.structure();
        assert_eq!(s.tuples(0).len(), 7);
        assert_eq!(s.tuples(1).len(), 6);
        assert_eq!(t.instance.weight(&[3]), 635);
    }

    #[test]
    fn example1_answer_sets() {
        // A_{India discovery} = {(F21, 635), (G12, 380)}.
        let t = example1_instance();
        let q = route_query();
        let india = q.answer_set(t.instance.structure(), &[0]);
        assert_eq!(india, vec![vec![3], vec![4]]);
    }

    #[test]
    fn example2_f_values_match_paper() {
        // f(India discovery) = 16:55 = 1015, f(Nepal Trek) = 20:20 = 1220,
        // f(TourNepal) = 6:20 = 380.
        let values = example2_f_values();
        assert_eq!(values[0], ("India discovery".to_owned(), 1015));
        assert_eq!(values[1], ("Nepal Trek".to_owned(), 1220));
        assert_eq!(values[2], ("TourNepal".to_owned(), 380));
    }

    #[test]
    fn example1_active_elements() {
        // Active: F21, G12, R5, F2, T33; G13 (element 8) is inactive.
        let t = example1_instance();
        let q = route_query();
        let answers = q.answers_over(t.instance.structure(), travel_domain(&t));
        let active: Vec<Vec<Element>> =
            answers.universe_tuples().map(<[Element]>::to_vec).collect();
        assert_eq!(active, vec![vec![3], vec![4], vec![5], vec![6], vec![7]]);
    }

    #[test]
    fn random_travel_is_reproducible_and_bounded() {
        let a = random_travel(50, 100, 3, 4, 9);
        let b = random_travel(50, 100, 3, 4, 9);
        assert_eq!(a.instance.structure().tuples(0), b.instance.structure().tuples(0));
        let g = qpwm_structures::GaifmanGraph::of(a.instance.structure());
        // transports shared ≤ 4 ways; timetable tuples add ≤ 3 more
        // neighbors per transport.
        for &tr in &a.transports {
            assert!(g.degree(tr) <= 7, "transport degree {}", g.degree(tr));
        }
    }

    #[test]
    fn random_travel_weights_cover_transports() {
        let t = random_travel(10, 30, 2, 3, 4);
        for &tr in &t.transports {
            assert!(t.instance.weight(&[tr]) >= 30);
        }
    }
}
