//! Synthetic workload generators for every experiment in EXPERIMENTS.md.
//!
//! * [`travel`] — the Example 1 travel-agency database, fixed and
//!   scalable variants;
//! * [`graphs`] — random bounded-degree structures for the Theorem 3
//!   sweeps, paths, cycles and bipartite graphs for the PERMANENT
//!   reduction;
//! * [`xml_gen`] — random school-style XML documents and random binary
//!   trees for the Theorem 5 sweeps;
//! * [`csv_db`] — loading relational instances from CSV files (the CLI's
//!   relational mode).
//!
//! All generators take explicit seeds; identical inputs produce identical
//! workloads on every platform.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv_db;
pub mod graphs;
pub mod meteo;
pub mod travel;
pub mod xml_gen;
