//! Random graph-shaped structures for the Theorem 3 sweeps and the
//! capacity experiments.

use qpwm_rng::Rng;
use qpwm_structures::{Element, Schema, Structure, StructureBuilder, WeightedStructure, Weights};
use std::sync::Arc;

/// A random symmetric graph with maximum degree ≤ `max_degree`:
/// edges are sampled by repeatedly joining two under-capacity vertices.
pub fn random_bounded_degree(n: u32, max_degree: u32, edges: u32, seed: u64) -> Structure {
    let mut rng = Rng::seed_from_u64(seed);
    let schema = Arc::new(Schema::graph());
    let mut b = StructureBuilder::new(schema, n);
    let mut degree = vec![0u32; n as usize];
    let mut present = std::collections::HashSet::new();
    let mut added = 0;
    let mut attempts = 0;
    while added < edges && attempts < edges * 50 {
        attempts += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v
            || degree[u as usize] >= max_degree
            || degree[v as usize] >= max_degree
            || present.contains(&(u.min(v), u.max(v)))
        {
            continue;
        }
        present.insert((u.min(v), u.max(v)));
        degree[u as usize] += 1;
        degree[v as usize] += 1;
        b.add(0, &[u, v]);
        b.add(0, &[v, u]);
        added += 1;
    }
    b.build()
}

/// A disjoint union of `count` cycles, each of length `len` — maximally
/// regular, so every element has the same neighborhood type and pairing
/// capacity is high.
pub fn cycle_union(count: u32, len: u32, seed: u64) -> Structure {
    assert!(len >= 3, "cycles need length ≥ 3");
    let _ = seed;
    let n = count * len;
    let schema = Arc::new(Schema::graph());
    let mut b = StructureBuilder::new(schema, n);
    for c in 0..count {
        let base = c * len;
        for i in 0..len {
            let u = base + i;
            let v = base + (i + 1) % len;
            b.add(0, &[u, v]);
            b.add(0, &[v, u]);
        }
    }
    b.build()
}

/// Attaches uniform-random weights in `[lo, hi)` to every element.
pub fn with_random_weights(structure: Structure, lo: i64, hi: i64, seed: u64) -> WeightedStructure {
    let mut rng = Rng::seed_from_u64(seed);
    let mut w = Weights::new(structure.schema().weight_arity());
    for e in structure.universe() {
        w.set(&[e], rng.gen_range(lo..hi));
    }
    WeightedStructure::new(structure, w)
}

/// A random bipartite adjacency matrix with edge probability `p`
/// (for the PERMANENT experiments).
pub fn random_bipartite(n: usize, p: f64, seed: u64) -> Vec<Vec<bool>> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..n).map(|_| rng.gen_f64() < p).collect())
        .collect()
}

/// All elements of a structure as 1-tuples (full unary parameter domain).
pub fn unary_domain(structure: &Structure) -> Vec<Vec<Element>> {
    structure.universe().map(|e| vec![e]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpwm_structures::GaifmanGraph;

    #[test]
    fn degree_bound_is_respected() {
        let s = random_bounded_degree(200, 4, 300, 7);
        let g = GaifmanGraph::of(&s);
        assert!(g.max_degree() <= 4);
        assert!(s.tuples(0).len() >= 200, "got {} tuples", s.tuples(0).len());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = random_bounded_degree(50, 3, 60, 42);
        let b = random_bounded_degree(50, 3, 60, 42);
        assert_eq!(a.tuples(0), b.tuples(0));
    }

    #[test]
    fn cycles_are_regular() {
        let s = cycle_union(4, 5, 0);
        let g = GaifmanGraph::of(&s);
        assert_eq!(s.universe_size(), 20);
        for e in s.universe() {
            assert_eq!(g.degree(e), 2);
        }
    }

    #[test]
    fn random_weights_in_range() {
        let ws = with_random_weights(cycle_union(2, 4, 0), 100, 200, 3);
        for e in ws.structure().universe() {
            let w = ws.weight(&[e]);
            assert!((100..200).contains(&w));
        }
    }

    #[test]
    fn bipartite_probability_extremes() {
        let none = random_bipartite(5, 0.0, 1);
        assert!(none.iter().flatten().all(|&b| !b));
        let all = random_bipartite(5, 1.0, 1);
        assert!(all.iter().flatten().all(|&b| b));
    }
}
