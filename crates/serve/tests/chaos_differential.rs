//! Chaos differential tests: detection through a faulty transport must
//! equal detection over a clean channel, or explicitly abstain — it may
//! never flip a verdict. Each test spins a real server on an ephemeral
//! loopback port with a seeded [`qpwm_serve::FaultPolicy`], runs the
//! owner's remote detection through the retrying client, and compares
//! against direct in-process evaluation of the same marked data.

use qpwm_core::adversary::{CensoringServer, LyingServer};
use qpwm_core::detect::{HonestServer, ObservedWeights, Verdict, DEFAULT_DELTA};
use qpwm_core::local_scheme::{LocalScheme, LocalSchemeConfig, SelectionStrategy};
use qpwm_logic::{Formula, ParametricQuery};
use qpwm_serve::client::{http_get, http_post};
use qpwm_serve::{
    FaultPolicy, RemoteServer, RetryPolicy, ServeData, Server, ServerConfig, Timeouts,
};
use qpwm_structures::Weights;
use qpwm_workloads::graphs::{cycle_union, unary_domain, with_random_weights};
use std::time::Duration;

struct Fixture {
    server: Server,
    addr: String,
    scheme: LocalScheme,
    original: Weights,
    marked: Weights,
    message: Vec<bool>,
}

/// A marked instance large enough that a clean claim check rules
/// MARK PRESENT at the default δ (the never-flip tests need a strong
/// offline verdict to guard): 24 six-cycles carry a 25-bit mark, and
/// 2^-25 clears the 1e-6 threshold with room for a few lost reads.
fn fixture(config: ServerConfig) -> Fixture {
    let query = ParametricQuery::new(Formula::atom(0, &[0, 1]), vec![0], vec![1]);
    let instance = with_random_weights(cycle_union(24, 6, 0), 100, 1_000, 1);
    let domain = unary_domain(instance.structure());
    let scheme = LocalScheme::build_over(
        &instance,
        &query,
        domain,
        &LocalSchemeConfig { rho: 1, d: 1, strategy: SelectionStrategy::Greedy, seed: 7 },
    )
    .expect("regular instances pair");
    let message: Vec<bool> = (0..scheme.capacity()).map(|i| i % 2 == 1).collect();
    let marked = scheme.mark(instance.weights(), &message);
    let data = ServeData::new(
        scheme.answers().clone(),
        marked.clone(),
        Vec::new(),
        None,
        "edge".into(),
    );
    let server = Server::start(data, config).expect("bind ephemeral port");
    let addr = server.addr().to_string();
    Fixture { server, addr, scheme, original: instance.weights().clone(), marked, message }
}

fn chaos_config(spec: &str) -> ServerConfig {
    ServerConfig {
        chaos: Some(FaultPolicy::parse(spec).expect("valid chaos spec")),
        // one reactor shard multiplexes every connection, so control
        // endpoints stay reachable even while keep-alive detection
        // connections are parked; a short idle timeout keeps teardown fast
        shards: 1,
        read_timeout: Duration::from_secs(2),
        write_timeout: Duration::from_secs(2),
        ..Default::default()
    }
}

fn offline_report(fx: &Fixture) -> qpwm_core::detect::DetectionReport {
    let honest = HonestServer::new(fx.scheme.answers().clone(), fx.marked.clone());
    fx.scheme
        .marking()
        .extract(&fx.original, &ObservedWeights::collect(&honest))
}

#[test]
fn zero_rate_chaos_is_byte_transparent() {
    // a configured-but-all-zero policy must not perturb anything: the
    // remote report equals the in-process report bit for bit
    let fx = fixture(chaos_config("seed=99"));
    let remote = RemoteServer::connect(&fx.addr).expect("healthz probe");
    let via_http = fx
        .scheme
        .marking()
        .extract(&fx.original, &ObservedWeights::collect(&remote));
    assert_eq!(via_http, offline_report(&fx), "disabled chaos must be invisible");
    assert_eq!(remote.failed_reads(), 0);
    let stats = remote.transport_stats();
    assert_eq!(stats.retries, 0);
    assert_eq!(stats.failed_requests, 0);
    drop(remote);
    fx.server.shutdown();
}

#[test]
fn transient_faults_retry_to_an_identical_report() {
    // 20% injected 503s: every faulted read succeeds on retry, so the
    // user-visible outcome is byte-identical to the clean channel and
    // the missing-read budget stays empty
    let fx = fixture(chaos_config("error=20%,seed=5"));
    let remote = RemoteServer::connect_with(
        &fx.addr,
        Timeouts::from_millis(2_000),
        RetryPolicy::default(),
    )
    .expect("healthz probe");
    let via_http = fx
        .scheme
        .marking()
        .extract(&fx.original, &ObservedWeights::collect(&remote));
    assert_eq!(via_http, offline_report(&fx), "retries must absorb transient faults");
    assert_eq!(remote.failed_reads(), 0, "no read may fail permanently");
    let stats = remote.transport_stats();
    assert!(stats.retries > 0, "a 20% fault rate must have triggered retries");
    assert_eq!(stats.failed_requests, 0);
    drop(remote); // free the keep-alive worker before the metrics read

    // the injected faults are visible to the operator
    let (status, metrics) = http_get(&fx.addr, "/metrics").expect("metrics");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("qpwm_faults_injected_total{kind=\"error\"}"),
        "{metrics}"
    );
    fx.server.shutdown();
}

#[test]
fn mixed_transient_faults_with_reconnects_still_match_offline() {
    // drops and truncations kill the keep-alive connection; the client
    // must reconnect and end up with the exact offline report
    let fx = fixture(chaos_config("drop=5%,error=5%,delay=5%:1ms,trunc=5%,seed=11"));
    let remote = RemoteServer::connect_with(
        &fx.addr,
        Timeouts::from_millis(2_000),
        RetryPolicy::default(),
    )
    .expect("healthz probe");
    let via_http = fx
        .scheme
        .marking()
        .extract(&fx.original, &ObservedWeights::collect(&remote));
    assert_eq!(via_http, offline_report(&fx));
    assert_eq!(remote.failed_reads(), 0);
    assert!(remote.transport_stats().reconnects > 0, "drops must force reconnects");
    drop(remote);
    fx.server.shutdown();
}

#[test]
fn verdicts_never_flip_under_permanent_faults() {
    // With retries disabled every fault is a permanently lost read. The
    // effective claim check must then either still prove the mark or
    // abstain — across fault rates and chaos seeds it may never flip to
    // a different ruling than the clean channel.
    let offline_verdict = {
        let fx = fixture(ServerConfig::default());
        let verdict = offline_report(&fx)
            .claim_check(&fx.message, DEFAULT_DELTA)
            .verdict;
        fx.server.shutdown();
        verdict
    };
    assert_eq!(offline_verdict, Verdict::MarkPresent, "fixture must carry a provable mark");

    for spec in [
        "drop=4%,error=3%,trunc=3%,seed=1",
        "drop=10%,error=10%,trunc=10%,seed=2",
        "drop=10%,error=10%,trunc=10%,seed=3",
    ] {
        let fx = fixture(chaos_config(spec));
        let remote = RemoteServer::connect_with(
            &fx.addr,
            Timeouts::from_millis(2_000),
            RetryPolicy::none(),
        )
        .expect("healthz probe");
        let report = fx
            .scheme
            .marking()
            .extract(&fx.original, &ObservedWeights::collect(&remote));
        let check = report.claim_check_effective(&fx.message, DEFAULT_DELTA);
        assert!(
            matches!(check.verdict, Verdict::MarkPresent | Verdict::Abstain),
            "{spec}: verdict {:?} with {} failed reads",
            check.verdict,
            remote.failed_reads()
        );
        if remote.failed_reads() == 0 {
            assert_eq!(check.verdict, offline_verdict, "{spec}: clean run must match");
        }
        drop(remote);
        fx.server.shutdown();
    }
}

#[test]
fn semantic_adversaries_compose_with_transport_faults() {
    // A censoring or lying server behind a faulty transport: the owner
    // wraps the remote in the same adversary models used offline. The
    // composed verdict must match the offline composed verdict or
    // abstain — transport faults on top of censorship must not
    // manufacture evidence.
    for (drop_pct, seed) in [(0u32, 1u64), (30, 2), (60, 3)] {
        let fx = fixture(chaos_config("drop=6%,error=6%,trunc=6%,seed=21"));
        let offline_check = {
            let honest = HonestServer::new(fx.scheme.answers().clone(), fx.marked.clone());
            let censored = CensoringServer::new(honest, drop_pct, seed);
            fx.scheme
                .marking()
                .extract(&fx.original, &ObservedWeights::collect(&censored))
                .claim_check_effective(&fx.message, DEFAULT_DELTA)
        };
        let remote = RemoteServer::connect_with(
            &fx.addr,
            Timeouts::from_millis(2_000),
            RetryPolicy::none(),
        )
        .expect("healthz probe");
        let composed = CensoringServer::new(remote, drop_pct, seed);
        let check = fx
            .scheme
            .marking()
            .extract(&fx.original, &ObservedWeights::collect(&composed))
            .claim_check_effective(&fx.message, DEFAULT_DELTA);
        assert!(
            check.verdict == offline_check.verdict || check.verdict == Verdict::Abstain,
            "censor {drop_pct}%/seed {seed}: remote {:?} vs offline {:?}",
            check.verdict,
            offline_check.verdict
        );
        drop(composed);
        fx.server.shutdown();
    }

    // lying servers perturb weights per parameter; observed over a flaky
    // wire, detection must flag the inconsistencies it can still see and
    // never flip the verdict
    let fx = fixture(chaos_config("drop=8%,error=8%,seed=31"));
    let offline_check = {
        let honest = HonestServer::new(fx.scheme.answers().clone(), fx.marked.clone());
        let liar = LyingServer::new(honest);
        fx.scheme
            .marking()
            .extract(&fx.original, &ObservedWeights::collect(&liar))
            .claim_check_effective(&fx.message, DEFAULT_DELTA)
    };
    let remote = RemoteServer::connect_with(
        &fx.addr,
        Timeouts::from_millis(2_000),
        RetryPolicy::none(),
    )
    .expect("healthz probe");
    let composed = LyingServer::new(remote);
    let check = fx
        .scheme
        .marking()
        .extract(&fx.original, &ObservedWeights::collect(&composed))
        .claim_check_effective(&fx.message, DEFAULT_DELTA);
    assert!(
        check.verdict == offline_check.verdict || check.verdict == Verdict::Abstain,
        "lying: remote {:?} vs offline {:?}",
        check.verdict,
        offline_check.verdict
    );
    drop(composed);
    fx.server.shutdown();
}

#[test]
fn control_endpoints_are_exempt_from_chaos() {
    // even with a 100% drop rate on the data plane, the operator can
    // still observe and stop the server
    let fx = fixture(chaos_config("drop=100%,seed=1"));
    let (status, _) = http_get(&fx.addr, "/healthz").expect("healthz is exempt");
    assert_eq!(status, 200);
    let (status, metrics) = http_get(&fx.addr, "/metrics").expect("metrics is exempt");
    assert_eq!(status, 200);
    assert!(metrics.contains("qpwm_requests_total"), "{metrics}");

    // the data plane really is dark
    assert!(
        http_get(&fx.addr, "/answer?i=0").is_err(),
        "a 100% drop policy must kill data-plane reads"
    );
    // ... and visibly so
    let (_, metrics) = http_get(&fx.addr, "/metrics").expect("metrics survives");
    assert!(
        metrics.contains("qpwm_faults_injected_total{kind=\"drop\"}"),
        "{metrics}"
    );

    // POST /shutdown is exempt too: clean teardown under total chaos
    let (status, _) = http_post(&fx.addr, "/shutdown", "").expect("shutdown is exempt");
    assert_eq!(status, 200);
    fx.server.join();
}

#[test]
fn saturated_pool_sheds_but_control_and_cached_answers_survive() {
    // one shard, a one-connection backlog: two idle connections push the
    // shard past its live-connection budget, so further connections land
    // in the degraded lane — which must keep answering control endpoints
    // and already-cached answers while shedding the rest
    let config = ServerConfig {
        shards: 1,
        backlog: 1,
        read_timeout: Duration::from_secs(5),
        write_timeout: Duration::from_secs(5),
        ..Default::default()
    };
    let fx = fixture(config);

    // prime the render cache through the healthy pool
    let (status, primed) = http_get(&fx.addr, "/answer?i=0").expect("prime");
    assert_eq!(status, 200);
    // let the worker notice the closed connection and go idle
    std::thread::sleep(Duration::from_millis(100));

    // saturate: the first idle connection occupies the worker, the
    // second fills the backlog slot
    let idle_a = std::net::TcpStream::connect(&fx.addr).expect("idle connection");
    std::thread::sleep(Duration::from_millis(100));
    let idle_b = std::net::TcpStream::connect(&fx.addr).expect("idle connection");
    std::thread::sleep(Duration::from_millis(100));

    // control endpoints answer from the degraded lane
    let (status, _) = http_get(&fx.addr, "/healthz").expect("healthz while shedding");
    assert_eq!(status, 200);
    let (status, metrics) = http_get(&fx.addr, "/metrics").expect("metrics while shedding");
    assert_eq!(status, 200);
    assert!(metrics.contains("qpwm_degraded_total"), "{metrics}");

    // a cached answer is served stale rather than shed
    let (status, body) = http_get(&fx.addr, "/answer?i=0").expect("cached answer");
    assert_eq!(status, 200, "cached answers must survive saturation: {body}");
    assert_eq!(body, primed, "stale serve must replay the cached bytes");

    // an uncached answer is shed with 503 (no evaluation under overload)
    let (status, body) = http_get(&fx.addr, "/answer?i=1").expect("uncached answer");
    assert_eq!(status, 503, "uncached answers must shed: {body}");

    // the counters saw both outcomes
    let (_, metrics) = http_get(&fx.addr, "/metrics").expect("metrics");
    assert!(metrics.contains("qpwm_stale_serve_total 1"), "{metrics}");
    assert!(!metrics.contains("qpwm_shed_total 0\n"), "{metrics}");

    drop(idle_a);
    drop(idle_b);
    std::thread::sleep(Duration::from_millis(100));
    fx.server.shutdown();
}

#[test]
fn truncated_writes_mid_stream_never_corrupt_detection() {
    // truncation now happens inside the reactor's vectored-write path:
    // the server advertises the full Content-Length, queues half the
    // body, flushes whatever writev accepts, and drops the connection.
    // Combined with outright drops, every partial write must surface as
    // a transport error (never as silently short data), so the retried
    // detection run is byte-identical to the offline report.
    let fx = fixture(chaos_config("trunc=25%,drop=10%,seed=17"));
    // a 35% fault rate needs a deeper retry budget than the default
    // four attempts: 0.35^8 per read keeps permanent losses ≪ 1
    let remote = RemoteServer::connect_with(
        &fx.addr,
        Timeouts::from_millis(2_000),
        RetryPolicy { max_attempts: 8, ..RetryPolicy::default() },
    )
    .expect("healthz probe");
    let via_http = fx
        .scheme
        .marking()
        .extract(&fx.original, &ObservedWeights::collect(&remote));
    assert_eq!(via_http, offline_report(&fx), "partial writes must never alter bytes");
    assert_eq!(remote.failed_reads(), 0);
    let stats = remote.transport_stats();
    assert!(stats.reconnects > 0, "truncated responses must kill the connection");
    drop(remote);
    fx.server.shutdown();
}

#[test]
fn readiness_storm_under_thirty_percent_faults_stays_correct() {
    // several owners hammer one reactor shard at once while ~30% of
    // data-plane responses are dropped, errored, delayed, or truncated.
    // The single event loop interleaves every connection's state machine;
    // each client must still converge to the exact offline report with
    // zero user-visible errors.
    let fx = fixture(chaos_config("drop=7%,error=10%,delay=6%:1ms,trunc=7%,seed=41"));
    let offline = offline_report(&fx);
    let mut clients = Vec::new();
    for _ in 0..4 {
        let addr = fx.addr.clone();
        clients.push(std::thread::spawn(move || {
            let remote = RemoteServer::connect_with(
                &addr,
                Timeouts::from_millis(2_000),
                // 30% faults over four concurrent detection runs: eight
                // attempts keep the expected permanent-loss count ≪ 1
                RetryPolicy { max_attempts: 8, ..RetryPolicy::default() },
            )
            .expect("healthz probe");
            let observed = ObservedWeights::collect(&remote);
            (observed, remote.failed_reads())
        }));
    }
    for handle in clients {
        let (observed, failed_reads) = handle.join().expect("client thread");
        let report = fx.scheme.marking().extract(&fx.original, &observed);
        assert_eq!(report, offline, "storm client must match the clean channel");
        assert_eq!(failed_reads, 0, "retries must absorb every fault");
    }
    // the storm really was stormy
    let (_, metrics) = http_get(&fx.addr, "/metrics").expect("metrics");
    assert!(metrics.contains("qpwm_faults_injected_total{kind=\"drop\"}"), "{metrics}");
    fx.server.shutdown();
}

#[test]
fn degraded_lane_is_chaos_exempt_and_serves_cached_bytes() {
    // overload shedding composes with fault injection: the degraded lane
    // bypasses chaos entirely, so a saturated server under heavy faults
    // still replays cached answers byte-for-byte and sheds the rest with
    // an honest 503 — never an injected one.
    let config = ServerConfig {
        chaos: Some(FaultPolicy::parse("error=50%,seed=13").expect("valid chaos spec")),
        shards: 1,
        backlog: 1,
        read_timeout: Duration::from_secs(5),
        write_timeout: Duration::from_secs(5),
        ..Default::default()
    };
    let fx = fixture(config);

    // prime the cache through the (faulty) normal lane: seeded 50%
    // errors mean a bounded number of one-shot attempts must land a 200
    let mut primed = None;
    for _ in 0..32 {
        let (status, body) = http_get(&fx.addr, "/answer?i=0").expect("prime attempt");
        if status == 200 {
            primed = Some(body);
            break;
        }
        assert_eq!(status, 503, "only injected errors are expected");
    }
    let primed = primed.expect("a 50% error rate cannot fault 32 straight reads");
    std::thread::sleep(Duration::from_millis(100));

    // saturate the shard so new connections land in the degraded lane
    let idle_a = std::net::TcpStream::connect(&fx.addr).expect("idle connection");
    std::thread::sleep(Duration::from_millis(100));

    // the cached answer survives every time: the degraded lane never
    // consults the fault policy
    for round in 0..6 {
        let (status, body) = http_get(&fx.addr, "/answer?i=0").expect("cached answer");
        assert_eq!(status, 200, "round {round}: degraded lane must be chaos-exempt");
        assert_eq!(body, primed, "round {round}: stale serve must replay cached bytes");
    }

    // uncached answers shed with the overload error, not the chaos one
    let (status, body) = http_get(&fx.addr, "/answer?i=1").expect("uncached answer");
    assert_eq!(status, 503);
    assert!(body.contains("overloaded"), "shed must be honest, got: {body}");
    assert!(!body.contains("injected"), "degraded lane must not inject faults: {body}");

    drop(idle_a);
    std::thread::sleep(Duration::from_millis(100));
    fx.server.shutdown();
}
