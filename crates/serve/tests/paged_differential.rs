//! Paged-plane differential tests: a server reading store pages through
//! per-shard buffer pools must emit byte-identical bodies to a resident
//! server over the same family and marked weights — the out-of-core
//! path may change memory behavior, never the wire.

use qpwm_serve::client::{http_get, http_post};
use qpwm_serve::{PagedPlane, ServeData, Server, ServerConfig};
use qpwm_store::{DiskVfs, Store, StoreContent, WalStats};
use qpwm_structures::{AnswerFamily, Weights};

struct Planes {
    resident: Server,
    resident_addr: String,
    paged: Server,
    paged_addr: String,
    dir: std::path::PathBuf,
}

/// A small family with labels and element names, served both ways from
/// the same marked weights.
fn planes(tag: &str) -> Planes {
    let params = vec![vec![10u32], vec![11], vec![12]];
    let sets = vec![
        vec![vec![0u32], vec![1]],
        vec![vec![1u32], vec![2], vec![3]],
        vec![vec![3u32]],
    ];
    let family = AnswerFamily::from_nested(params, &sets);
    let mut base = Weights::new(1);
    let mut marked = Weights::new(1);
    for e in 0..4u32 {
        base.set(&[e], 50 + e as i64);
        marked.set(&[e], 50 + e as i64 + if e % 2 == 0 { 1 } else { -1 });
    }
    let labels: Vec<String> = ["alpha", "beta", "gamma"].map(String::from).to_vec();
    let names: Vec<String> = (0..4).map(|e| format!("n{e}")).collect();

    let dir = std::env::temp_dir().join(format!("qpwm-paged-diff-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("served.qps").to_string_lossy().into_owned();
    let content = StoreContent::from_family(
        &family,
        &base,
        &marked,
        labels.clone(),
        names.clone(),
        "edge".into(),
    )
    .expect("content");
    drop(Store::create(&DiskVfs::new(""), &path, &content).expect("create store"));

    let data = ServeData::new(family, marked, labels, Some(names), "edge".into());
    let resident = Server::start(data, ServerConfig::default()).expect("resident server");
    let resident_addr = resident.addr().to_string();

    let empty = ServeData::new(
        AnswerFamily::from_nested(Vec::new(), &[]),
        Weights::new(1),
        Vec::new(),
        None,
        "edge".into(),
    );
    let plane = PagedPlane {
        path,
        pool_frames: Some(4),
        wal: WalStats { records: 3, fsyncs: 2, group_commits: 1 },
    };
    let paged = Server::start(empty, ServerConfig { paged: Some(plane), ..Default::default() })
        .expect("paged server");
    let paged_addr = paged.addr().to_string();
    Planes { resident, resident_addr, paged, paged_addr, dir }
}

impl Planes {
    fn finish(self) {
        self.resident.shutdown();
        self.paged.shutdown();
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[test]
fn paged_bodies_are_byte_identical_to_resident() {
    let px = planes("bodies");
    for path in
        ["/healthz", "/params", "/answer?i=0", "/answer?i=1", "/answer?i=2", "/aggregate?i=1"]
    {
        let (rs, rb) = http_get(&px.resident_addr, path).expect("resident");
        let (ps, pb) = http_get(&px.paged_addr, path).expect("paged");
        assert_eq!((rs, &rb), (ps, &pb), "{path} diverged between planes");
        assert_eq!(rs, 200, "{path}: {rb}");
    }
    // batch: same NDJSON concatenation, repeats included
    let (rs, rb) = http_post(&px.resident_addr, "/answers", "0 2 0").expect("resident batch");
    let (ps, pb) = http_post(&px.paged_addr, "/answers", "0 2 0").expect("paged batch");
    assert_eq!((rs, &rb), (ps, &pb), "batch diverged");
    assert_eq!(rs, 200, "{rb}");
    // a second round is served from the body cache — still identical
    let (_, again) = http_get(&px.paged_addr, "/answer?i=1").expect("cached");
    let (_, fresh) = http_get(&px.resident_addr, "/answer?i=1").expect("resident");
    assert_eq!(again, fresh, "cache hit changed the body");
    px.finish();
}

#[test]
fn paged_plane_surfaces_its_limits_and_pool_metrics() {
    let px = planes("limits");
    // label resolution is an O(blob) scan — refused, not slow
    let (status, body) = http_get(&px.paged_addr, "/answer?param=alpha").expect("label");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("index only"), "{body}");
    // inline detection would materialize the observed table — refused
    let (status, body) = http_post(&px.paged_addr, "/detect", "anything").expect("detect");
    assert_eq!(status, 501, "{body}");
    assert!(body.contains("store verify"), "{body}");
    // out-of-range index still 400s like the resident plane
    let (status, _) = http_get(&px.paged_addr, "/answer?i=99").expect("range");
    assert_eq!(status, 400);
    // one real answer so the pool has seen traffic
    let (status, _) = http_get(&px.paged_addr, "/answer?i=0").expect("prime");
    assert_eq!(status, 200);

    let (status, metrics) = http_get(&px.paged_addr, "/metrics").expect("metrics");
    assert_eq!(status, 200);
    for series in [
        "qpwm_store_pool_hits ",
        "qpwm_store_pool_misses ",
        "qpwm_store_pool_evictions ",
        "qpwm_store_pool_pinned 0",
        "qpwm_store_wal_records 3",
        "qpwm_store_wal_fsyncs 2",
        "qpwm_store_wal_group_commits 1",
    ] {
        assert!(metrics.contains(series), "missing {series} in:\n{metrics}");
    }
    let (hits, misses, _, pinned) =
        px.paged.store_pool_totals().expect("paged server exports pool totals");
    assert!(misses > 0, "page reads must go through the pool");
    assert_eq!(pinned, 0, "no frames pinned between requests");
    let _ = hits;
    assert_eq!(px.resident.store_pool_totals(), None, "resident plane has no pool");

    // the resident plane keeps serving labels and /detect-shaped errors
    let (status, _) = http_get(&px.resident_addr, "/answer?param=alpha").expect("resident label");
    assert_eq!(status, 200);
    let (status, metrics) = http_get(&px.resident_addr, "/metrics").expect("resident metrics");
    assert_eq!(status, 200);
    assert!(!metrics.contains("qpwm_store_pool_"), "resident /metrics grew store series");
    px.finish();
}
