//! Differential tests: every byte the server emits must decode back to
//! exactly what the in-process engine computes. Each test spins a real
//! server on an ephemeral loopback port, queries it over actual TCP,
//! and compares against direct [`qpwm_core`] evaluation on the same
//! marked data.

use qpwm_core::detect::{AnswerServer, HonestServer, ObservedWeights, DEFAULT_DELTA};
use qpwm_core::keyfile::SchemeKey;
use qpwm_core::local_scheme::{LocalScheme, LocalSchemeConfig, SelectionStrategy};
use qpwm_fingerprint::{Fingerprinter, KeyRegistry, MasterSecret};
use qpwm_logic::{Formula, ParametricQuery};
use qpwm_serve::client::{http_get, http_post, parse_answer_tuples, parse_json_uint};
use qpwm_serve::fingerprint::leak_request_body;
use qpwm_serve::{
    detect_request_body, FingerprintContext, RemoteServer, RetryPolicy, ServeData, Server,
    ServerConfig, Timeouts,
};
use qpwm_structures::Weights;
use qpwm_workloads::graphs::{cycle_union, unary_domain, with_random_weights};

struct Fixture {
    server: Server,
    addr: String,
    scheme: LocalScheme,
    original: Weights,
    marked: Weights,
    message: Vec<bool>,
}

fn fixture() -> Fixture {
    let query = ParametricQuery::new(Formula::atom(0, &[0, 1]), vec![0], vec![1]);
    let instance = with_random_weights(cycle_union(4, 6, 0), 100, 1_000, 1);
    let domain = unary_domain(instance.structure());
    let scheme = LocalScheme::build_over(
        &instance,
        &query,
        domain,
        &LocalSchemeConfig { rho: 1, d: 1, strategy: SelectionStrategy::Greedy, seed: 7 },
    )
    .expect("regular instances pair");
    let message: Vec<bool> = (0..scheme.capacity()).map(|i| i % 2 == 1).collect();
    let marked = scheme.mark(instance.weights(), &message);
    let data = ServeData::new(
        scheme.answers().clone(),
        marked.clone(),
        Vec::new(),
        None,
        "edge".into(),
    );
    let server = Server::start(data, ServerConfig::default()).expect("bind ephemeral port");
    let addr = server.addr().to_string();
    Fixture { server, addr, scheme, original: instance.weights().clone(), marked, message }
}

#[test]
fn answers_decode_to_the_engines_answer_sets() {
    let fx = fixture();
    let honest = HonestServer::new(fx.scheme.answers().clone(), fx.marked.clone());
    for i in 0..fx.scheme.answers().len() {
        let (status, body) = http_get(&fx.addr, &format!("/answer?i={i}")).expect("request");
        assert_eq!(status, 200, "param {i}: {body}");
        let decoded = parse_answer_tuples(&body).expect("parses");
        assert_eq!(decoded, honest.answer(i), "param {i} must match the engine");
    }
    fx.server.shutdown();
}

#[test]
fn answer_by_label_is_byte_identical_to_by_index() {
    let fx = fixture();
    let family = fx.scheme.answers();
    for (i, param) in family.parameters().iter().enumerate() {
        // the server's default label is the parameter ids joined by ","
        let label: Vec<String> = param.iter().map(|e| e.to_string()).collect();
        let by_label =
            http_get(&fx.addr, &format!("/answer?param={}", label.join(","))).expect("request");
        let by_index = http_get(&fx.addr, &format!("/answer?i={i}")).expect("request");
        assert_eq!(by_label, by_index, "param {i}");
    }
    fx.server.shutdown();
}

#[test]
fn aggregates_decode_to_the_engines_f_values() {
    let fx = fixture();
    let family = fx.scheme.answers();
    for i in 0..family.len() {
        let (status, body) =
            http_get(&fx.addr, &format!("/aggregate?i={i}")).expect("request");
        assert_eq!(status, 200, "param {i}: {body}");
        let f = parse_json_uint(&body, "f").expect("f field") as i64;
        assert_eq!(f, family.f(&fx.marked, i), "param {i} aggregate must match f");
    }
    fx.server.shutdown();
}

#[test]
fn detect_over_http_matches_offline_detection() {
    let fx = fixture();
    let honest = HonestServer::new(fx.scheme.answers().clone(), fx.marked.clone());
    let offline = fx.scheme.detect(&fx.original, &honest);
    assert_eq!(offline.bits, fx.message, "offline detection is the reference");
    let offline_check = offline.claim_check(&fx.message, DEFAULT_DELTA);

    let key = SchemeKey { marking: fx.scheme.marking().clone(), d: fx.scheme.d() };
    let body = detect_request_body(&key, &fx.original);
    let claim: String = fx.message.iter().map(|&b| if b { '1' } else { '0' }).collect();
    let (status, response) =
        http_post(&fx.addr, &format!("/detect?claim={claim}"), &body).expect("request");
    assert_eq!(status, 200, "{response}");

    let expected_bits = format!("\"bits\":\"{claim}\"");
    assert!(response.contains(&expected_bits), "{response}");
    let expected_sig = format!("\"significance\":{:e}", offline_check.significance);
    assert!(
        response.contains(&expected_sig),
        "HTTP significance must equal the offline value: {response}"
    );
    assert!(response.contains("\"matches\":"), "{response}");
    fx.server.shutdown();
}

#[test]
fn batched_answers_are_byte_identical_to_individual_answers() {
    // POST /answers streams the same precomputed bodies the single-shot
    // endpoint serves, newline-delimited, in request order
    let fx = fixture();
    let n = fx.scheme.answers().len();
    let indices: Vec<String> = (0..n).map(|i| i.to_string()).collect();
    let (status, batch) =
        http_post(&fx.addr, "/answers", &indices.join(" ")).expect("batch request");
    assert_eq!(status, 200, "{batch}");

    let lines: Vec<&str> = batch.lines().filter(|l| !l.is_empty()).collect();
    assert_eq!(lines.len(), n, "one JSON object per requested index");
    for (i, line) in lines.iter().enumerate() {
        let (_, single) = http_get(&fx.addr, &format!("/answer?i={i}")).expect("request");
        assert_eq!(format!("{line}\n"), single, "batch line {i} must match the single body");
        assert_eq!(parse_json_uint(line, "param"), Some(i as u64));
    }

    // out-of-range and empty bodies are rejected, not truncated
    let (status, body) = http_post(&fx.addr, "/answers", &n.to_string()).expect("request");
    assert_eq!(status, 400, "{body}");
    let (status, body) = http_post(&fx.addr, "/answers", "  ").expect("request");
    assert_eq!(status, 400, "{body}");
    fx.server.shutdown();
}

#[test]
fn batched_remote_detection_equals_in_process_detection() {
    // a batch size that does not divide the parameter count exercises
    // the ragged tail prefetch
    let fx = fixture();
    let remote = RemoteServer::connect_batched(
        &fx.addr,
        Timeouts::from_millis(2_000),
        RetryPolicy::default(),
        7,
    )
    .expect("healthz probe");
    let honest = HonestServer::new(fx.scheme.answers().clone(), fx.marked.clone());
    let via_http = fx
        .scheme
        .marking()
        .extract(&fx.original, &ObservedWeights::collect(&remote));
    let in_process = fx
        .scheme
        .marking()
        .extract(&fx.original, &ObservedWeights::collect(&honest));
    assert_eq!(via_http, in_process, "batched transport must not change the report");
    assert_eq!(remote.failed_reads(), 0);
    fx.server.shutdown();
}

#[test]
fn multi_claim_detect_checks_each_claim_once() {
    let fx = fixture();
    let key = SchemeKey { marking: fx.scheme.marking().clone(), d: fx.scheme.d() };
    let body = detect_request_body(&key, &fx.original);
    let claim: String = fx.message.iter().map(|&b| if b { '1' } else { '0' }).collect();
    let wrong: String = fx.message.iter().map(|&b| if b { '0' } else { '1' }).collect();
    let (status, response) = http_post(
        &fx.addr,
        &format!("/detect?claim={claim}&claim={wrong}"),
        &body,
    )
    .expect("request");
    assert_eq!(status, 200, "{response}");
    assert!(response.contains("\"claims\":["), "{response}");
    assert_eq!(response.matches("\"verdict\"").count(), 2, "{response}");
    fx.server.shutdown();
}

#[test]
fn remote_server_detection_equals_in_process_detection() {
    let fx = fixture();
    let remote = RemoteServer::connect(&fx.addr).expect("healthz probe");
    assert_eq!(remote.num_parameters(), fx.scheme.answers().len());

    let honest = HonestServer::new(fx.scheme.answers().clone(), fx.marked.clone());
    let via_http = fx
        .scheme
        .marking()
        .extract(&fx.original, &ObservedWeights::collect(&remote));
    let in_process = fx
        .scheme
        .marking()
        .extract(&fx.original, &ObservedWeights::collect(&honest));
    assert_eq!(via_http, in_process, "HTTP transport must not change the report");
    assert_eq!(via_http.bits, fx.message);
    fx.server.shutdown();
}

#[test]
fn healthz_and_metrics_report_the_served_domain() {
    let fx = fixture();
    let (status, body) = http_get(&fx.addr, "/healthz").expect("request");
    assert_eq!(status, 200);
    assert_eq!(
        parse_json_uint(&body, "parameters").expect("parameters"),
        fx.scheme.answers().len() as u64
    );

    // the same answer twice: second must be a cache hit
    http_get(&fx.addr, "/answer?i=0").expect("request");
    http_get(&fx.addr, "/answer?i=0").expect("request");
    let (status, metrics) = http_get(&fx.addr, "/metrics").expect("request");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("qpwm_cache_lookup_total{outcome=\"hit\"} 1"),
        "{metrics}"
    );
    assert!(metrics.contains("qpwm_requests_total{endpoint=\"answer\"} 2"), "{metrics}");
    let (hits, misses) = fx.server.cache_stats();
    assert_eq!((hits, misses), (1, 1));
    fx.server.shutdown();
}

#[test]
fn error_paths_use_http_status_codes() {
    let fx = fixture();
    let out_of_range = fx.scheme.answers().len();
    for (target, want) in [
        (format!("/answer?i={out_of_range}"), 400u16),
        ("/answer?i=notanumber".into(), 400),
        ("/answer?param=no-such-label".into(), 400),
        ("/answer".into(), 400),
        ("/no-such-endpoint".into(), 404),
        ("/detect".into(), 405), // GET on a POST-only endpoint
    ] {
        let (status, body) = http_get(&fx.addr, &target).expect("request");
        assert_eq!(status, want, "{target}: {body}");
    }
    let (status, body) = http_post(&fx.addr, "/answer?i=0", "").expect("request");
    assert_eq!(status, 405, "POST on a GET-only endpoint: {body}");
    let (status, body) = http_post(&fx.addr, "/detect", "not a key file").expect("request");
    assert_eq!(status, 400, "malformed detect body: {body}");
    fx.server.shutdown();
}

struct FingerprintFixture {
    server: Server,
    addr: String,
    scheme: LocalScheme,
    original: Weights,
    registry: KeyRegistry,
}

/// A server fingerprinting its answers for three issued recipients.
/// Serves the *original* weights; each recipient's copy is stamped on
/// the fly. Eight 12-cycles give the scheme 21 bits of capacity, enough
/// for an accusation to clear the default significance floor.
fn fingerprint_fixture() -> FingerprintFixture {
    fingerprint_fixture_with(8)
}

fn fingerprint_fixture_with(cycles: u32) -> FingerprintFixture {
    let query = ParametricQuery::new(Formula::atom(0, &[0, 1]), vec![0], vec![1]);
    let instance = with_random_weights(cycle_union(cycles, 12, 0), 100, 1_000, 1);
    let domain = unary_domain(instance.structure());
    let scheme = LocalScheme::build_over(
        &instance,
        &query,
        domain,
        &LocalSchemeConfig { rho: 1, d: 1, strategy: SelectionStrategy::Greedy, seed: 7 },
    )
    .expect("regular instances pair");
    assert!(scheme.capacity() >= 20, "need capacity for default-delta accusations");
    let original = instance.weights().clone();
    let data = ServeData::new(
        scheme.answers().clone(),
        original.clone(),
        Vec::new(),
        None,
        "edge".into(),
    );
    let mut registry = KeyRegistry::new(MasterSecret::from_u64(0xfeed_f00d));
    for (i, name) in ["alice", "bob", "carol"].iter().enumerate() {
        registry.issue(name, i as u64).expect("issue");
    }
    let fingerprinter = Fingerprinter::new(scheme.marking().clone(), original.clone());
    let ctx = FingerprintContext::new(&data, registry.clone(), fingerprinter, None)
        .expect("context over the served data");
    let config = ServerConfig { fingerprint: Some(ctx), ..ServerConfig::default() };
    let server = Server::start(data, config).expect("bind ephemeral port");
    let addr = server.addr().to_string();
    FingerprintFixture { server, addr, scheme, original, registry }
}

/// Raw one-shot GET that keeps the response head, so header assertions
/// can see what the byte-dropping convenience client does not.
fn raw_get(addr: &str, target: &str) -> String {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    write!(stream, "GET {target} HTTP/1.1\r\nHost: qpwm\r\nConnection: close\r\n\r\n")
        .expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    response
}

#[test]
fn stamped_answers_decode_to_each_recipients_offline_stamp() {
    let fx = fingerprint_fixture();
    let fingerprinter = Fingerprinter::new(fx.scheme.marking().clone(), fx.original.clone());
    for name in ["alice", "bob"] {
        let key = fx.registry.key_for(name).expect("issued");
        let stamped = fingerprinter.stamp(key);
        let honest = HonestServer::new(fx.scheme.answers().clone(), stamped);
        for i in 0..fx.scheme.answers().len() {
            let (status, body) =
                http_get(&fx.addr, &format!("/answer?i={i}&recipient={name}")).expect("request");
            assert_eq!(status, 200, "param {i}: {body}");
            let decoded = parse_answer_tuples(&body).expect("parses");
            assert_eq!(decoded, honest.answer(i), "param {i} must carry {name}'s stamp");
        }
    }
    // without a recipient the same server serves the unstamped base
    let base = HonestServer::new(fx.scheme.answers().clone(), fx.original.clone());
    let (_, body) = http_get(&fx.addr, "/answer?i=0").expect("request");
    assert_eq!(parse_answer_tuples(&body).expect("parses"), base.answer(0));
    // unknown recipients are refused, not served someone else's copy
    let (status, body) = http_get(&fx.addr, "/answer?i=0&recipient=mallory").expect("request");
    assert_eq!(status, 403, "{body}");
    fx.server.shutdown();
}

#[test]
fn stamped_responses_name_the_recipient_in_a_header() {
    let fx = fingerprint_fixture();
    let stamped = raw_get(&fx.addr, "/answer?i=0&recipient=carol");
    assert!(
        stamped.contains("X-Fingerprint-Recipient: carol\r\n"),
        "stamped responses must carry the recipient header: {stamped}"
    );
    let plain = raw_get(&fx.addr, "/answer?i=0");
    assert!(
        !plain.contains("X-Fingerprint-Recipient"),
        "unstamped responses must not claim a recipient: {plain}"
    );
    fx.server.shutdown();
}

#[test]
fn accuse_over_http_traces_a_leak_and_metrics_count_plan_cache_hits() {
    let fx = fingerprint_fixture();
    // the leak: bob's full stamped copy, fetched over the public interface
    let mut pairs = Vec::new();
    for i in 0..fx.scheme.answers().len() {
        let (status, body) =
            http_get(&fx.addr, &format!("/answer?i={i}&recipient=bob")).expect("request");
        assert_eq!(status, 200, "{body}");
        pairs.extend(parse_answer_tuples(&body).expect("parses"));
    }
    let (status, verdict) =
        http_post(&fx.addr, "/accuse", &leak_request_body(&pairs)).expect("request");
    assert_eq!(status, 200, "{verdict}");
    assert!(verdict.contains("\"scored\":3"), "{verdict}");
    assert!(
        verdict.contains("\"accused\":{\"recipient\":\"bob\""),
        "the leak must trace back to bob: {verdict}"
    );
    assert!(verdict.contains("\"verdict\":\"mark-present\""), "{verdict}");

    // repeated stamped fetches hit the per-shard plan cache, and the
    // cluster metrics expose the ratio
    let (hits, misses) = fx.server.plan_cache_stats();
    assert!(hits > 0, "repeat fetches for one recipient must hit the plan cache");
    assert!(misses >= 1, "the first fetch builds the plan");
    let (status, metrics) = http_get(&fx.addr, "/metrics").expect("request");
    assert_eq!(status, 200);
    assert!(
        metrics.contains(&format!("qpwm_fingerprint_plan_cache_total{{outcome=\"hit\"}} {hits}")),
        "{metrics}"
    );
    assert!(metrics.contains("qpwm_requests_total{endpoint=\"accuse\"} 1"), "{metrics}");

    // malformed leak bodies are a client error, not a trace
    let (status, body) = http_post(&fx.addr, "/accuse", "not a leak line").expect("request");
    assert_eq!(status, 400, "{body}");
    fx.server.shutdown();
}

#[test]
fn accuse_over_http_scores_partial_leaks_through_the_effective_sample() {
    // 16 cycles ≈ double the capacity of the default fixture, so half
    // the universe still carries enough pair evidence to accuse, while
    // a thin excerpt must drop to abstain — never to a misaccusation.
    let fx = fingerprint_fixture_with(16);
    let mut pairs = Vec::new();
    for i in 0..fx.scheme.answers().len() {
        let (status, body) =
            http_get(&fx.addr, &format!("/answer?i={i}&recipient=bob")).expect("request");
        assert_eq!(status, 200, "{body}");
        pairs.extend(parse_answer_tuples(&body).expect("parses"));
    }

    // 50% leak: keep only even-id tuples (deterministic half of the
    // universe); the accusation scores the subset via the missing-read
    // budget and still names bob
    let half: Vec<(Vec<u32>, i64)> =
        pairs.iter().filter(|(t, _)| t[0] % 2 == 0).cloned().collect();
    assert!(half.len() < pairs.len(), "the subset must actually drop reads");
    let (status, verdict) =
        http_post(&fx.addr, "/accuse", &leak_request_body(&half)).expect("request");
    assert_eq!(status, 200, "{verdict}");
    assert!(
        verdict.contains("\"accused\":{\"recipient\":\"bob\""),
        "a half leak must still trace to bob: {verdict}"
    );

    // 12.5% excerpt: too little evidence for the significance floor —
    // the engine abstains instead of accusing anyone
    let thin: Vec<(Vec<u32>, i64)> =
        pairs.iter().filter(|(t, _)| t[0] % 8 == 0).cloned().collect();
    assert!(!thin.is_empty());
    let (status, verdict) =
        http_post(&fx.addr, "/accuse", &leak_request_body(&thin)).expect("request");
    assert_eq!(status, 200, "{verdict}");
    assert!(
        verdict.contains("\"accused\":null"),
        "a thin excerpt must abstain, not accuse: {verdict}"
    );
    fx.server.shutdown();
}

#[test]
fn accuse_without_fingerprinting_is_not_found() {
    let fx = fixture();
    let (status, body) = http_post(&fx.addr, "/accuse", "leak 0 1\n").expect("request");
    assert_eq!(status, 404, "{body}");
    fx.server.shutdown();
}
