//! An LRU cache of precomputed wire responses — one instance per serve
//! shard.
//!
//! `/answer` and `/aggregate` responses are pure functions of the
//! canonical parameter index, precomputed as full wire bytes at startup
//! (see [`crate::state::WireTable`]). What the cache tracks per shard is
//! *heat*: which responses this shard has recently served. The degraded
//! lane serves only cache-resident answers (stale-while-degraded), so
//! residency doubles as the overload-survival set, and hit/miss counters
//! feed `/metrics`. Internally the map is still hash-sharded so an
//! external reader (`Server::cache_stats`, the `/metrics` renderer)
//! never contends with the owning event loop for more than a sliver;
//! each internal shard evicts its least-recently-used entry when full
//! (exact LRU via an access tick).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

struct Entry {
    value: Arc<[u8]>,
    last_used: u64,
}

struct Shard {
    map: HashMap<u64, Entry>,
    tick: u64,
}

/// Sharded LRU keyed by `u64` (endpoint tag ⊕ canonical parameter id),
/// holding shared wire-response bytes.
pub struct ShardedLru {
    shards: Vec<Mutex<Shard>>,
    per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ShardedLru {
    /// A cache with `capacity` total entries spread over `shards`
    /// shards. Zero capacity disables caching (every `get` misses).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity / shards;
        ShardedLru {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard { map: HashMap::new(), tick: 0 }))
                .collect(),
            per_shard,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        // multiplicative hash so sequential parameter ids spread across
        // shards instead of piling into one
        let h = key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        &self.shards[(h >> 32) as usize % self.shards.len()]
    }

    /// Looks the key up, bumping its recency on hit.
    pub fn get(&self, key: u64) -> Option<Arc<[u8]>> {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        shard.tick += 1;
        let tick = shard.tick;
        match shard.map.get_mut(&key) {
            Some(entry) => {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.value))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) a wire response, evicting the shard's LRU
    /// entry when full.
    pub fn insert(&self, key: u64, value: Arc<[u8]>) {
        if self.per_shard == 0 {
            return;
        }
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        shard.tick += 1;
        let tick = shard.tick;
        if shard.map.len() >= self.per_shard && !shard.map.contains_key(&key) {
            if let Some((&victim, _)) =
                shard.map.iter().min_by_key(|(_, e)| e.last_used)
            {
                shard.map.remove(&victim);
            }
        }
        shard.map.insert(key, Entry { value, last_used: tick });
    }

    /// Total entries currently cached.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bytes(s: &str) -> Arc<[u8]> {
        Arc::from(s.as_bytes())
    }

    #[test]
    fn hit_after_insert() {
        let cache = ShardedLru::new(16, 4);
        assert!(cache.get(7).is_none());
        cache.insert(7, bytes("body"));
        assert_eq!(cache.get(7).as_deref(), Some(&b"body"[..]));
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn evicts_least_recently_used() {
        let cache = ShardedLru::new(2, 1); // 2 entries, single shard
        cache.insert(1, bytes("a"));
        cache.insert(2, bytes("b"));
        assert!(cache.get(1).is_some()); // 1 is now more recent than 2
        cache.insert(3, bytes("c")); // evicts 2
        assert!(cache.get(2).is_none());
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ShardedLru::new(0, 4);
        cache.insert(1, bytes("a"));
        assert!(cache.get(1).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn reinsert_refreshes_in_place() {
        let cache = ShardedLru::new(1, 1);
        cache.insert(5, bytes("old"));
        cache.insert(5, bytes("new"));
        assert_eq!(cache.get(5).as_deref(), Some(&b"new"[..]));
        assert_eq!(cache.len(), 1);
    }
}
