//! # qpwm-serve — the data server of the paper's trust model
//!
//! The watermarking schemes assume a *data server*: final users submit a
//! parameter value `ā` and receive the answer set `{(b̄, W(b̄))}` over the
//! (marked) weights, and the owner later proves ownership by querying
//! that same public interface. This crate is that server, dependency-free
//! by workspace policy:
//!
//! * [`http`] — a bounded HTTP/1.1 wire layer over `std::net`;
//! * [`state`] — the immutable data plane: a pre-materialized
//!   [`qpwm_structures::AnswerFamily`] plus marked weights, rendered to
//!   JSON per endpoint;
//! * [`server`] — `TcpListener` + a scoped worker pool (sized by the
//!   `qpwm-par` thread conventions), a sharded LRU answer [`cache`],
//!   Prometheus [`metrics`], per-connection timeouts, graceful shutdown;
//! * [`chaos`] — a deterministic fault-injection layer
//!   ([`chaos::FaultPolicy`], env `QPWM_CHAOS` / `--chaos`) that drops,
//!   delays, errors, or truncates data-plane responses so resilience is
//!   testable end to end;
//! * [`client`] — the owner's side: a blocking HTTP client, a
//!   retrying transport ([`client::RetryingClient`] with backoff,
//!   deadlines and a circuit breaker), and [`client::RemoteServer`], an
//!   [`qpwm_core::detect::AnswerServer`] over the wire, so detection
//!   replays the public query interface exactly as an ordinary user
//!   would — and survives a flaky one.
//!
//! Endpoints: `GET /answer?param=…|i=…`, `GET /aggregate?…` (the `f(ā)`
//! sums the d-global bound protects), `POST /detect` (owner-side
//! detection: key + original weights in, extracted bits + binomial
//! significance out), `GET /params`, `GET /healthz`, `GET /metrics`,
//! and loopback-only `POST /shutdown` for clean teardown.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod chaos;
pub mod client;
pub mod http;
pub mod metrics;
pub mod server;
pub mod state;

pub use chaos::{Fault, FaultPolicy};
pub use client::{RemoteServer, RetryPolicy, RetryingClient, Timeouts, TransportStats};
pub use server::{Server, ServerConfig};
pub use state::{detect_request_body, ServeData};
