//! # qpwm-serve — the data server of the paper's trust model
//!
//! The watermarking schemes assume a *data server*: final users submit a
//! parameter value `ā` and receive the answer set `{(b̄, W(b̄))}` over the
//! (marked) weights, and the owner later proves ownership by querying
//! that same public interface. This crate is that server, dependency-free
//! by workspace policy:
//!
//! * [`reactor`] — a hand-rolled nonblocking I/O layer: raw `epoll` /
//!   `eventfd` / `SO_REUSEPORT` syscall bindings under safe wrappers
//!   (poller, doorbell, connection slab, vectored write queue);
//! * [`http`] — a bounded, *incremental* HTTP/1.1 wire layer;
//! * [`state`] — the immutable data plane: a pre-materialized
//!   [`qpwm_structures::AnswerFamily`] plus marked weights, rendered to
//!   JSON and precomputed as full wire responses ([`state::WireTable`])
//!   at startup;
//! * [`server`] — shared-nothing per-core shards (one `SO_REUSEPORT`
//!   listener, LRU answer [`cache`] partition, and [`metrics`] block
//!   each), a zero-copy `/answer` hot path, batched `POST /answers`,
//!   degraded-lane overload shedding, graceful shutdown;
//! * [`chaos`] — a deterministic fault-injection layer
//!   ([`chaos::FaultPolicy`], env `QPWM_CHAOS` / `--chaos`) that drops,
//!   delays, errors, or truncates data-plane responses so resilience is
//!   testable end to end;
//! * [`fingerprint`] — multi-tenant stamping: with a
//!   [`fingerprint::FingerprintContext`] attached, `?recipient=<id>`
//!   answers carry that recipient's fingerprint (spliced into the
//!   precomputed templates via a per-shard plan LRU, never
//!   re-materializing the family), and `POST /accuse` traces a leaked
//!   answer set back to the recipient who received it;
//! * [`client`] — the owner's side: a blocking HTTP client, a
//!   retrying transport ([`client::RetryingClient`] with backoff,
//!   deadlines and a circuit breaker), and [`client::RemoteServer`], an
//!   [`qpwm_core::detect::AnswerServer`] over the wire, so detection
//!   replays the public query interface exactly as an ordinary user
//!   would — and survives a flaky one.
//!
//! Endpoints: `GET /answer?param=…|i=…`, `GET /aggregate?…` (the `f(ā)`
//! sums the d-global bound protects), `POST /detect` (owner-side
//! detection: key + original weights in, extracted bits + binomial
//! significance out), `GET /params`, `GET /healthz`, `GET /metrics`,
//! and loopback-only `POST /shutdown` for clean teardown.

// unsafe is denied crate-wide and allowed back in exactly one place:
// the raw syscall bindings in `reactor::sys`
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod chaos;
pub mod client;
pub mod fingerprint;
pub mod http;
pub mod metrics;
pub mod paged;
pub mod reactor;
pub mod server;
pub mod state;

pub use chaos::{Fault, FaultPolicy};
pub use client::{RemoteServer, RetryPolicy, RetryingClient, Timeouts, TransportStats};
pub use fingerprint::FingerprintContext;
pub use paged::PagedPlane;
pub use server::{Server, ServerConfig};
pub use state::{detect_request_body, ServeData};
