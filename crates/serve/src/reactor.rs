//! A dependency-free nonblocking I/O reactor over raw Linux `epoll`.
//!
//! The workspace carries no external crates, so the readiness layer is
//! hand-rolled: a thin [`sys`](self) binding module declares the five
//! syscalls the event loop needs (`epoll_create1`, `epoll_ctl`,
//! `epoll_wait`, `eventfd`, plus the socket-setup calls `socket` /
//! `setsockopt` / `bind` / `listen` that `std` cannot express with
//! `SO_REUSEPORT` set *before* bind), and everything above it is safe
//! Rust over `std::net` types: accepted connections and listeners are
//! ordinary nonblocking [`TcpStream`]/[`TcpListener`] values, so reads
//! and vectored writes go through `std`'s fd-safe wrappers.
//!
//! The pieces, bottom-up:
//!
//! * [`bind_reuseport`] — an IPv4 listener with `SO_REUSEPORT` applied
//!   pre-bind, so every shard of [`crate::server`] owns a private accept
//!   queue on the same port and the kernel load-balances connections by
//!   4-tuple hash;
//! * [`Poller`] — level-triggered `epoll` registration and waiting,
//!   yielding plain [`Event`] values keyed by caller-chosen `u64`
//!   tokens;
//! * [`Wake`] — an `eventfd` doorbell for cross-thread wakeups
//!   (shutdown, shard fan-in) that composes with the same poller;
//! * [`Slab`] — the connection table: stable `usize` tokens, O(1)
//!   insert/remove, free-list reuse;
//! * [`WriteQueue`] — the nonblocking write state machine: a queue of
//!   byte segments, each either *shared* (an [`Arc<[u8]>`] range — the
//!   zero-copy hot path serving precomputed wire responses) or *owned*
//!   (a scratch `Vec<u8>` that is reclaimed for reuse once written),
//!   flushed with a single vectored write per readiness notification
//!   and resumed mid-segment after short writes.

use std::collections::VecDeque;
use std::io::{self, IoSlice, Read, Write};
use std::net::{Ipv4Addr, TcpListener, TcpStream};
use std::os::unix::io::RawFd;
use std::sync::Arc;
use std::time::Duration;

/// Raw syscall bindings. The only unsafe code in the crate lives here;
/// every wrapper returns owned `std` types (or plain results) so the
/// layers above stay safe.
#[allow(unsafe_code)]
mod sys {
    use std::fs::File;
    use std::io;
    use std::net::{Ipv4Addr, TcpListener};
    use std::os::unix::io::{FromRawFd, RawFd};

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;

    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;

    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const SOCK_NONBLOCK: i32 = 0o4000;
    const SOCK_CLOEXEC: i32 = 0o2000000;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;
    const SO_REUSEPORT: i32 = 15;

    /// The kernel's `struct epoll_event`. Packed on x86-64 (the kernel
    /// ABI omits the padding there); naturally aligned elsewhere.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    /// `struct sockaddr_in`: family, then port and address in network
    /// byte order.
    #[repr(C)]
    struct SockAddrIn {
        sin_family: u16,
        sin_port: u16,
        sin_addr: u32,
        sin_zero: [u8; 8],
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, optname: i32, optval: *const i32, optlen: u32) -> i32;
        fn bind(fd: i32, addr: *const SockAddrIn, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    fn check(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    pub fn epoll_create() -> io::Result<RawFd> {
        check(unsafe { epoll_create1(EPOLL_CLOEXEC) })
    }

    fn epoll_op(epfd: RawFd, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data: token };
        check(unsafe { epoll_ctl(epfd, op, fd, &mut ev) }).map(|_| ())
    }

    pub fn epoll_add(epfd: RawFd, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        epoll_op(epfd, EPOLL_CTL_ADD, fd, events, token)
    }

    pub fn epoll_mod(epfd: RawFd, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        epoll_op(epfd, EPOLL_CTL_MOD, fd, events, token)
    }

    pub fn epoll_del(epfd: RawFd, fd: RawFd) {
        // pre-2.6.9 kernels require a non-null event pointer even for DEL
        let _ = epoll_op(epfd, EPOLL_CTL_DEL, fd, 0, 0);
    }

    /// Waits for events, retrying `EINTR`. `timeout_ms < 0` blocks.
    pub fn epoll_wait_into(
        epfd: RawFd,
        buf: &mut [EpollEvent],
        timeout_ms: i32,
    ) -> io::Result<usize> {
        loop {
            let n = unsafe { epoll_wait(epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms) };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    pub fn close_fd(fd: RawFd) {
        let _ = unsafe { close(fd) };
    }

    /// A nonblocking `eventfd`, owned as a `File` (read to drain, write
    /// 8 bytes to signal).
    pub fn new_eventfd() -> io::Result<File> {
        let fd = check(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(unsafe { File::from_raw_fd(fd) })
    }

    /// A nonblocking IPv4 listener with `SO_REUSEPORT` (and
    /// `SO_REUSEADDR`) set *before* bind — the property `std` cannot
    /// provide, and the one that lets N shard listeners share a port.
    pub fn listener_reuseport(ip: Ipv4Addr, port: u16, backlog: i32) -> io::Result<TcpListener> {
        let fd = check(unsafe {
            socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0)
        })?;
        let sock = unsafe { TcpListener::from_raw_fd(fd) }; // closes fd on any early return
        for opt in [SO_REUSEADDR, SO_REUSEPORT] {
            let one: i32 = 1;
            check(unsafe {
                setsockopt(fd, SOL_SOCKET, opt, &one, std::mem::size_of::<i32>() as u32)
            })?;
        }
        let addr = SockAddrIn {
            sin_family: AF_INET as u16,
            sin_port: port.to_be(),
            sin_addr: u32::from(ip).to_be(),
            sin_zero: [0; 8],
        };
        check(unsafe { bind(fd, &addr, std::mem::size_of::<SockAddrIn>() as u32) })?;
        check(unsafe { listen(fd, backlog) })?;
        Ok(sock)
    }
}

/// Binds a nonblocking IPv4 listener on `ip:port` with `SO_REUSEPORT`,
/// so multiple shards can each own an accept queue on the same port
/// (`port` 0 lets the kernel pick; read it back via `local_addr`).
pub fn bind_reuseport(ip: Ipv4Addr, port: u16) -> io::Result<TcpListener> {
    sys::listener_reuseport(ip, port, 1024)
}

/// One readiness notification from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// Readable — includes error/hangup conditions, which surface as a
    /// zero-byte read or an error on the next `read`.
    pub readable: bool,
    /// Writable.
    pub writable: bool,
}

/// Level-triggered `epoll` instance. Registrations always include
/// read-side interest; `writable` toggles `EPOLLOUT` for connections
/// with queued output.
pub struct Poller {
    epfd: RawFd,
    buf: Vec<sys::EpollEvent>,
}

impl Poller {
    /// A fresh epoll instance sized for `capacity` events per wait.
    pub fn new(capacity: usize) -> io::Result<Poller> {
        Ok(Poller {
            epfd: sys::epoll_create()?,
            buf: vec![sys::EpollEvent { events: 0, data: 0 }; capacity.max(16)],
        })
    }

    fn interest(writable: bool) -> u32 {
        let mut events = sys::EPOLLIN | sys::EPOLLRDHUP;
        if writable {
            events |= sys::EPOLLOUT;
        }
        events
    }

    /// Registers `fd` under `token`.
    pub fn add(&self, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
        sys::epoll_add(self.epfd, fd, Self::interest(writable), token)
    }

    /// Changes the write-side interest of an already-registered fd.
    pub fn rearm(&self, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
        sys::epoll_mod(self.epfd, fd, Self::interest(writable), token)
    }

    /// Deregisters `fd` (best-effort; closing the fd drops it anyway).
    pub fn remove(&self, fd: RawFd) {
        sys::epoll_del(self.epfd, fd);
    }

    /// Waits up to `timeout` (`None` blocks) and appends the readiness
    /// events to `out` (cleared first).
    pub fn wait(&mut self, timeout: Option<Duration>, out: &mut Vec<Event>) -> io::Result<()> {
        out.clear();
        let timeout_ms = match timeout {
            None => -1,
            Some(d) => {
                let ms = d.as_millis().min(i32::MAX as u128) as i32;
                // round a sub-millisecond wait up so it is not a busy spin
                if ms == 0 && !d.is_zero() {
                    1
                } else {
                    ms
                }
            }
        };
        let n = sys::epoll_wait_into(self.epfd, &mut self.buf, timeout_ms)?;
        for ev in &self.buf[..n] {
            let events = ev.events; // copy out of the packed struct
            let data = ev.data;
            out.push(Event {
                token: data,
                readable: events & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLERR | sys::EPOLLHUP)
                    != 0,
                writable: events & sys::EPOLLOUT != 0,
            });
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        sys::close_fd(self.epfd);
    }
}

/// An `eventfd` doorbell: any thread can [`Wake::signal`] it, and the
/// owning event loop sees the fd turn readable and [`Wake::drain`]s it.
pub struct Wake {
    file: std::fs::File,
}

impl Wake {
    /// A fresh nonblocking doorbell.
    pub fn new() -> io::Result<Wake> {
        Ok(Wake { file: sys::new_eventfd()? })
    }

    /// The fd to register with a [`Poller`].
    pub fn raw_fd(&self) -> RawFd {
        use std::os::unix::io::AsRawFd;
        self.file.as_raw_fd()
    }

    /// Rings the doorbell (never blocks; a saturated counter still
    /// reads as ready).
    pub fn signal(&self) {
        let _ = (&self.file).write(&1u64.to_ne_bytes());
    }

    /// Clears pending signals so level-triggered polling quiesces.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        while (&self.file).read(&mut buf).is_ok() {}
    }
}

/// The connection table: stable `usize` tokens with free-list reuse, so
/// epoll tokens stay valid across unrelated inserts and removals.
pub struct Slab<T> {
    slots: Vec<Option<T>>,
    free: Vec<usize>,
    live: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Slab<T> {
        Slab { slots: Vec::new(), free: Vec::new(), live: 0 }
    }

    /// Stores `value`, returning its token.
    pub fn insert(&mut self, value: T) -> usize {
        self.live += 1;
        match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(value);
                i
            }
            None => {
                self.slots.push(Some(value));
                self.slots.len() - 1
            }
        }
    }

    /// The value under `token`, if live.
    pub fn get_mut(&mut self, token: usize) -> Option<&mut T> {
        self.slots.get_mut(token).and_then(Option::as_mut)
    }

    /// Removes and returns the value under `token`.
    pub fn remove(&mut self, token: usize) -> Option<T> {
        let value = self.slots.get_mut(token).and_then(Option::take);
        if value.is_some() {
            self.live -= 1;
            self.free.push(token);
        }
        value
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Snapshot of the live tokens (for sweeps that may remove entries
    /// while iterating).
    pub fn tokens(&self) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| i))
            .collect()
    }
}

/// How many segments a single vectored write covers.
const MAX_IOVEC: usize = 16;

enum Bytes {
    Shared(Arc<[u8]>),
    Owned(Vec<u8>),
}

struct Segment {
    bytes: Bytes,
    pos: usize,
    end: usize,
}

impl Segment {
    fn slice(&self) -> &[u8] {
        match &self.bytes {
            Bytes::Shared(b) => &b[self.pos..self.end],
            Bytes::Owned(b) => &b[self.pos..self.end],
        }
    }
}

/// How many written-out scratch buffers a shard keeps for reuse.
const RECLAIM_POOL: usize = 8;

/// The nonblocking write state machine of one connection: an ordered
/// queue of byte segments flushed with vectored writes, resumable
/// mid-segment after a short write.
///
/// Shared segments borrow precomputed wire responses ([`Arc<[u8]>`]
/// ranges) so the hot path queues a response without copying or
/// formatting anything; owned segments carry per-request scratch
/// buffers, which are handed back to a reclaim pool once fully written
/// so steady-state serving allocates nothing.
#[derive(Default)]
pub struct WriteQueue {
    segments: VecDeque<Segment>,
    pending: usize,
}

impl WriteQueue {
    /// An empty queue.
    pub fn new() -> WriteQueue {
        WriteQueue::default()
    }

    /// Queues a whole shared byte buffer.
    pub fn push_shared(&mut self, bytes: Arc<[u8]>) {
        self.push_shared_range(bytes, 0, usize::MAX);
    }

    /// Queues `bytes[start..end]` (end clamps to the buffer length).
    pub fn push_shared_range(&mut self, bytes: Arc<[u8]>, start: usize, end: usize) {
        let end = end.min(bytes.len());
        if start >= end {
            return;
        }
        self.pending += end - start;
        self.segments.push_back(Segment { bytes: Bytes::Shared(bytes), pos: start, end });
    }

    /// Queues an owned buffer (reclaimed after it is written out).
    pub fn push_owned(&mut self, bytes: Vec<u8>) {
        if bytes.is_empty() {
            return;
        }
        self.pending += bytes.len();
        let end = bytes.len();
        self.segments.push_back(Segment { bytes: Bytes::Owned(bytes), pos: 0, end });
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Bytes still to be written.
    pub fn pending_bytes(&self) -> usize {
        self.pending
    }

    /// Writes as much as the socket accepts. Returns `Ok(true)` when
    /// the queue drained, `Ok(false)` when the socket would block
    /// (caller arms `EPOLLOUT`), `Err` on a dead connection. Fully
    /// written owned buffers are cleared and pushed onto `reclaim`.
    pub fn flush(&mut self, stream: &mut TcpStream, reclaim: &mut Vec<Vec<u8>>) -> io::Result<bool> {
        while !self.segments.is_empty() {
            let bufs: [IoSlice<'_>; MAX_IOVEC] = std::array::from_fn(|i| {
                IoSlice::new(self.segments.get(i).map_or(&[][..], Segment::slice))
            });
            let count = self.segments.len().min(MAX_IOVEC);
            let written = match stream.write_vectored(&bufs[..count]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            self.advance(written, reclaim);
        }
        Ok(true)
    }

    fn advance(&mut self, mut written: usize, reclaim: &mut Vec<Vec<u8>>) {
        self.pending -= written.min(self.pending);
        while written > 0 {
            let Some(seg) = self.segments.front_mut() else { return };
            let take = written.min(seg.end - seg.pos);
            seg.pos += take;
            written -= take;
            if seg.pos == seg.end {
                if let Some(Segment { bytes: Bytes::Owned(mut v), .. }) = self.segments.pop_front()
                {
                    if reclaim.len() < RECLAIM_POOL {
                        v.clear();
                        reclaim.push(v);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_reuses_tokens_and_tracks_len() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.len(), 1);
        let c = slab.insert("c");
        assert_eq!(c, a, "freed token is reused");
        assert_eq!(slab.get_mut(b), Some(&mut "b"));
        assert_eq!(slab.remove(99), None);
        assert_eq!(slab.tokens(), vec![a, b]);
    }

    #[test]
    fn write_queue_tracks_pending_and_reclaims() {
        let mut q = WriteQueue::new();
        q.push_shared(Arc::from(&b"hello "[..]));
        q.push_owned(b"world".to_vec());
        assert_eq!(q.pending_bytes(), 11);
        // advance through a simulated short write
        let mut reclaim = Vec::new();
        q.advance(8, &mut reclaim);
        assert_eq!(q.pending_bytes(), 3);
        assert!(reclaim.is_empty(), "owned segment not yet complete");
        q.advance(3, &mut reclaim);
        assert!(q.is_empty());
        assert_eq!(reclaim.len(), 1, "owned buffer reclaimed after full write");
        assert!(reclaim[0].is_empty() && reclaim[0].capacity() >= 5);
    }

    #[test]
    fn write_queue_flushes_over_a_real_socket() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = std::net::TcpStream::connect(addr).expect("connect");
        let (mut server_side, _) = listener.accept().expect("accept");
        let mut q = WriteQueue::new();
        q.push_shared_range(Arc::from(&b"xxabcxx"[..]), 2, 5);
        q.push_owned(b"def".to_vec());
        let mut reclaim = Vec::new();
        assert!(q.flush(&mut server_side, &mut reclaim).expect("flush"));
        server_side.flush().expect("socket flush");
        drop(server_side);
        let mut got = Vec::new();
        let mut client = client;
        client.read_to_end(&mut got).expect("read");
        assert_eq!(got, b"abcdef");
    }

    #[test]
    fn reuseport_listeners_share_a_port() {
        let a = bind_reuseport(Ipv4Addr::LOCALHOST, 0).expect("first bind");
        let port = a.local_addr().expect("addr").port();
        let b = bind_reuseport(Ipv4Addr::LOCALHOST, port).expect("second bind on same port");
        assert_eq!(b.local_addr().expect("addr").port(), port);
    }

    #[test]
    fn poller_sees_wake_signals_and_socket_readability() {
        let mut poller = Poller::new(16).expect("poller");
        let wake = Wake::new().expect("eventfd");
        poller.add(wake.raw_fd(), 7, false).expect("register");
        let mut events = Vec::new();
        poller.wait(Some(Duration::from_millis(10)), &mut events).expect("wait");
        assert!(events.is_empty(), "nothing signaled yet");
        wake.signal();
        poller.wait(Some(Duration::from_millis(1000)), &mut events).expect("wait");
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
        wake.drain();
        poller.wait(Some(Duration::from_millis(10)), &mut events).expect("wait");
        assert!(events.is_empty(), "drained doorbell quiesces level-triggered polling");
    }
}
