//! The server's immutable data plane: a pre-materialized answer family,
//! the (marked) weights it serves, and the JSON renderings of every
//! endpoint.
//!
//! The paper's data server is the *honest* party: final users submit a
//! parameter `ā` and receive `{(b̄, W(b̄))}` verbatim. Everything here is
//! read-only after startup — the family is interned once, parameters are
//! resolved by canonical index or display label, and handlers only
//! render — so request threads share the state without locks.

use crate::http::{json_escape, write_head};
use qpwm_core::detect::{HonestServer, ObservedWeights, DEFAULT_DELTA};
use qpwm_core::keyfile::SchemeKey;
use qpwm_structures::{AnswerFamily, Element, Weights};
use std::collections::HashMap;
use std::sync::Arc;

/// Everything the request handlers read.
pub struct ServeData {
    family: AnswerFamily,
    weights: Weights,
    param_labels: Vec<String>,
    label_index: HashMap<String, usize>,
    element_names: Option<Vec<String>>,
    query_name: String,
}

impl ServeData {
    /// Bundles a family with the weights it serves.
    ///
    /// `param_labels` gives each canonical parameter a display label (an
    /// element name, a filter value, ...); when empty, labels default to
    /// the parameter tuple's ids joined by `,`. `element_names` maps
    /// element ids back to source names for rendering answer tuples.
    pub fn new(
        family: AnswerFamily,
        weights: Weights,
        param_labels: Vec<String>,
        element_names: Option<Vec<String>>,
        query_name: String,
    ) -> Self {
        let param_labels = if param_labels.is_empty() {
            family
                .parameters()
                .iter()
                .map(|a| join_ids(a))
                .collect()
        } else {
            assert_eq!(
                param_labels.len(),
                family.len(),
                "one label per canonical parameter"
            );
            param_labels
        };
        let mut label_index = HashMap::new();
        for (i, label) in param_labels.iter().enumerate() {
            label_index.entry(label.clone()).or_insert(i);
        }
        ServeData {
            family,
            weights,
            param_labels,
            label_index,
            element_names,
            query_name,
        }
    }

    /// The served family.
    pub fn family(&self) -> &AnswerFamily {
        &self.family
    }

    /// The served weights.
    pub fn weights(&self) -> &Weights {
        &self.weights
    }

    /// Number of canonical parameters.
    pub fn num_parameters(&self) -> usize {
        self.family.len()
    }

    /// Resolves a parameter reference: `i=<index>` takes precedence,
    /// then `param=<label>`.
    pub fn resolve_param(&self, index: Option<&str>, label: Option<&str>) -> Result<usize, String> {
        if let Some(raw) = index {
            let i: usize = raw
                .parse()
                .map_err(|_| format!("i must be a parameter index, got '{raw}'"))?;
            if i >= self.family.len() {
                return Err(format!(
                    "parameter index {i} out of range (domain has {})",
                    self.family.len()
                ));
            }
            return Ok(i);
        }
        if let Some(label) = label {
            return self
                .label_index
                .get(label)
                .copied()
                .ok_or_else(|| format!("unknown parameter '{label}'"));
        }
        Err("missing parameter: pass ?param=<label> or ?i=<index>".into())
    }

    fn display_tuple(&self, tuple: &[Element]) -> String {
        match &self.element_names {
            Some(names) => tuple
                .iter()
                .map(|&e| {
                    names
                        .get(e as usize)
                        .cloned()
                        .unwrap_or_else(|| e.to_string())
                })
                .collect::<Vec<_>>()
                .join(","),
            None => join_ids(tuple),
        }
    }

    /// `GET /answer` body: the answer set `{(b̄, W(b̄))}` for parameter `i`.
    ///
    /// `t` carries raw element ids — the canonical tuple encoding remote
    /// detectors parse — and `label` the human rendering.
    pub fn answer_json(&self, i: usize) -> String {
        let ids = self.family.active_ids(i);
        let mut out = String::with_capacity(64 + ids.len() * 32);
        out.push_str(&format!(
            "{{\"param\":{i},\"label\":\"{}\",\"count\":{},\"answers\":[",
            json_escape(&self.param_labels[i]),
            ids.len()
        ));
        for (n, &id) in ids.iter().enumerate() {
            let tuple = self.family.tuple(id);
            if n > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"t\":[{}],\"label\":\"{}\",\"w\":{}}}",
                join_ids(tuple),
                json_escape(&self.display_tuple(tuple)),
                self.weights.get(tuple)
            ));
        }
        out.push_str("]}\n");
        out
    }

    /// `GET /aggregate` body: the protected aggregate `f(ā) = Σ W(b̄)`.
    pub fn aggregate_json(&self, i: usize) -> String {
        self.aggregate_json_with_f(i, self.family.f(&self.weights, i))
    }

    /// [`Self::aggregate_json`] with the aggregate value supplied by the
    /// caller — the fingerprint path serves per-recipient aggregates
    /// without re-summing the family.
    pub fn aggregate_json_with_f(&self, i: usize, f: i64) -> String {
        format!(
            "{{\"param\":{i},\"label\":\"{}\",\"count\":{},\"f\":{f}}}\n",
            json_escape(&self.param_labels[i]),
            self.family.active_ids(i).len(),
        )
    }

    /// The `/answer` body split at its weight slots: interleaving
    /// `chunks` with one rendered weight per slot reproduces
    /// [`Self::answer_json`] exactly. The fingerprint hot path renders a
    /// recipient's copy by splicing `base + delta` into each slot — it
    /// never re-walks the family.
    pub fn answer_template(&self, i: usize) -> AnswerTemplate {
        let ids = self.family.active_ids(i);
        let mut chunks = Vec::with_capacity(ids.len() + 1);
        let mut slots = Vec::with_capacity(ids.len());
        let mut cur = format!(
            "{{\"param\":{i},\"label\":\"{}\",\"count\":{},\"answers\":[",
            json_escape(&self.param_labels[i]),
            ids.len()
        );
        for (n, &id) in ids.iter().enumerate() {
            let tuple = self.family.tuple(id);
            if n > 0 {
                cur.push(',');
            }
            cur.push_str(&format!(
                "{{\"t\":[{}],\"label\":\"{}\",\"w\":",
                join_ids(tuple),
                json_escape(&self.display_tuple(tuple)),
            ));
            chunks.push(std::mem::take(&mut cur));
            slots.push((tuple.to_vec(), self.weights.get(tuple)));
            cur.push('}');
        }
        cur.push_str("]}\n");
        chunks.push(cur);
        AnswerTemplate { chunks, slots }
    }

    /// `GET /params` body: the full canonical parameter domain.
    pub fn params_json(&self) -> String {
        let mut out = String::from("{\"params\":[");
        for (i, label) in self.param_labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"i\":{i},\"label\":\"{}\"}}", json_escape(label)));
        }
        out.push_str(&format!("],\"count\":{}}}\n", self.param_labels.len()));
        out
    }

    /// `GET /healthz` body.
    pub fn healthz_json(&self) -> String {
        format!(
            "{{\"status\":\"ok\",\"query\":\"{}\",\"parameters\":{},\"active_tuples\":{},\"output_arity\":{}}}\n",
            json_escape(&self.query_name),
            self.family.len(),
            self.family.active_universe().len(),
            self.family.output_arity()
        )
    }

    /// `POST /detect`: owner-side detection replayed through the public
    /// query interface.
    ///
    /// The body is a [`SchemeKey`] text (self-terminating at its `end`
    /// line) followed by `orig <e...> <weight>` lines carrying the
    /// owner's secret original weights (see [`detect_request_body`]).
    /// The handler queries the same family + weights `/answer` serves —
    /// the owner acts as an ordinary user — extracts the embedded bits,
    /// and scores an optional `claim` at the standard δ.
    /// `claims` may carry several candidate messages: one claim renders
    /// the classic `"claim":{...}` object, several render a
    /// `"claims":[...]` array in submission order — a remote audit
    /// checks all its candidates against one extraction pass.
    pub fn detect_json(&self, body: &str, claims: &[&str]) -> Result<String, String> {
        let key = SchemeKey::from_text(body).map_err(|e| format!("bad key: {e}"))?;
        let original = parse_original_weights(body, self.weights.arity())?;
        let server = HonestServer::new(self.family.clone(), self.weights.clone());
        let observed = ObservedWeights::collect(&server);
        let report = key.marking.extract(&original, &observed);
        let bits: String = report.bits.iter().map(|&b| if b { '1' } else { '0' }).collect();
        let mut out = format!(
            "{{\"bits\":\"{bits}\",\"clean_fraction\":{:.6},\"missing_pairs\":{},\"inconsistencies\":{}",
            report.clean_fraction(),
            report.missing_pairs,
            observed.inconsistencies.len()
        );
        let mut checks = Vec::with_capacity(claims.len());
        for claim in claims {
            let claimed: Result<Vec<bool>, String> = claim
                .chars()
                .map(|c| match c {
                    '0' => Ok(false),
                    '1' => Ok(true),
                    other => Err(format!("claim must be 0/1 bits, got '{other}'")),
                })
                .collect();
            let check = report.claim_check(&claimed?, DEFAULT_DELTA);
            checks.push(format!(
                "{{\"matches\":{},\"claimed\":{},\"significance\":{:e},\"verdict\":\"{}\"}}",
                check.matches, check.claimed, check.significance, check.verdict
            ));
        }
        match checks.len() {
            0 => {}
            1 => out.push_str(&format!(",\"claim\":{}", checks[0])),
            _ => out.push_str(&format!(",\"claims\":[{}]", checks.join(","))),
        }
        out.push_str("}\n");
        Ok(out)
    }
}

/// One `/answer` body with its weight values factored out (see
/// [`ServeData::answer_template`]).
#[derive(Debug, Clone)]
pub struct AnswerTemplate {
    /// `slots.len() + 1` text pieces around the weight slots.
    pub chunks: Vec<String>,
    /// Per-slot `(answer tuple, base weight)`, in body order.
    pub slots: Vec<(Vec<Element>, i64)>,
}

impl AnswerTemplate {
    /// Renders the body with `deltas[k]` added to slot `k`'s base
    /// weight. All-zero deltas reproduce the precomputed body exactly.
    pub fn render(&self, deltas: &[i64]) -> String {
        debug_assert_eq!(deltas.len(), self.slots.len());
        let mut out = String::with_capacity(64 + self.chunks.iter().map(String::len).sum::<usize>() + self.slots.len() * 8);
        for (k, (_, base)) in self.slots.iter().enumerate() {
            out.push_str(&self.chunks[k]);
            out.push_str(&(base + deltas.get(k).copied().unwrap_or(0)).to_string());
        }
        out.push_str(self.chunks.last().map(String::as_str).unwrap_or(""));
        out
    }
}

/// One precomputed HTTP response: full keep-alive wire bytes (status
/// line, headers, body), with the body's offset so callers can reuse
/// the body range under a different head (`Connection: close`,
/// truncation faults, batch framing).
pub struct WireResponse {
    bytes: Arc<[u8]>,
    body_start: usize,
}

impl WireResponse {
    fn json(body: &str) -> Self {
        let mut out = Vec::with_capacity(96 + body.len());
        write_head(&mut out, 200, "application/json", body.len(), true);
        let body_start = out.len();
        out.extend_from_slice(body.as_bytes());
        WireResponse { bytes: out.into(), body_start }
    }

    /// The full response bytes (status line through body).
    pub fn bytes(&self) -> &Arc<[u8]> {
        &self.bytes
    }

    /// Offset where the body starts inside [`Self::bytes`].
    pub fn body_start(&self) -> usize {
        self.body_start
    }

    /// Body length in bytes.
    pub fn body_len(&self) -> usize {
        self.bytes.len() - self.body_start
    }
}

/// All read-only endpoint responses, precomputed as wire bytes at
/// startup. A hot-path hit is then a single vectored write of shared
/// bytes: no formatting, no allocation, no copying into a connection
/// buffer.
pub struct WireTable {
    answers: Vec<WireResponse>,
    aggregates: Vec<WireResponse>,
    healthz: WireResponse,
    params: WireResponse,
}

impl WireTable {
    /// Renders every `/answer` and `/aggregate` response (plus
    /// `/healthz` and `/params`) from the family.
    pub fn build(data: &ServeData) -> Self {
        let n = data.num_parameters();
        let mut answers = Vec::with_capacity(n);
        let mut aggregates = Vec::with_capacity(n);
        for i in 0..n {
            answers.push(WireResponse::json(&data.answer_json(i)));
            aggregates.push(WireResponse::json(&data.aggregate_json(i)));
        }
        WireTable {
            answers,
            aggregates,
            healthz: WireResponse::json(&data.healthz_json()),
            params: WireResponse::json(&data.params_json()),
        }
    }

    /// The `/answer` response for parameter `i`.
    pub fn answer(&self, i: usize) -> &WireResponse {
        &self.answers[i]
    }

    /// The `/aggregate` response for parameter `i`.
    pub fn aggregate(&self, i: usize) -> &WireResponse {
        &self.aggregates[i]
    }

    /// The `/healthz` response.
    pub fn healthz(&self) -> &WireResponse {
        &self.healthz
    }

    /// The `/params` response.
    pub fn params(&self) -> &WireResponse {
        &self.params
    }
}

/// Largest batch `POST /answers` accepts.
pub const MAX_BATCH: usize = 4096;

/// Parses a `POST /answers` body: whitespace-separated parameter
/// indices, capped at [`MAX_BATCH`] and range-checked against the
/// domain.
pub fn parse_batch_indices(body: &str, num_parameters: usize) -> Result<Vec<usize>, String> {
    let mut out = Vec::new();
    for token in body.split_whitespace() {
        if out.len() >= MAX_BATCH {
            return Err(format!("batch too large (max {MAX_BATCH} indices)"));
        }
        let i: usize = token
            .parse()
            .map_err(|_| format!("batch entries must be parameter indices, got '{token}'"))?;
        if i >= num_parameters {
            return Err(format!(
                "parameter index {i} out of range (domain has {num_parameters})"
            ));
        }
        out.push(i);
    }
    if out.is_empty() {
        return Err("empty batch: body must list parameter indices".into());
    }
    Ok(out)
}

fn join_ids(tuple: &[Element]) -> String {
    tuple
        .iter()
        .map(|e| e.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// Renders the `POST /detect` request body: the key text followed by the
/// owner's original weights, one `orig <e...> <weight>` line per entry.
pub fn detect_request_body(key: &SchemeKey, original: &Weights) -> String {
    let mut out = key.to_text();
    for (k, w) in original.iter_sorted() {
        out.push_str("orig");
        for e in k.iter() {
            out.push_str(&format!(" {e}"));
        }
        out.push_str(&format!(" {w}\n"));
    }
    out
}

/// Parses the `orig` lines that follow the key's `end` terminator.
fn parse_original_weights(body: &str, arity: usize) -> Result<Weights, String> {
    let mut weights = Weights::new(arity);
    let mut past_key = false;
    for (lineno, line) in body.lines().enumerate() {
        let line = line.trim();
        if !past_key {
            past_key = line == "end";
            continue;
        }
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        if tokens.next() != Some("orig") {
            return Err(format!(
                "line {}: expected 'orig <elements...> <weight>', got '{line}'",
                lineno + 1
            ));
        }
        let fields: Vec<&str> = tokens.collect();
        if fields.len() != arity + 1 {
            return Err(format!(
                "line {}: expected {arity} element(s) and a weight, got {} field(s)",
                lineno + 1,
                fields.len()
            ));
        }
        let key: Result<Vec<Element>, _> =
            fields[..arity].iter().map(|t| t.parse::<Element>()).collect();
        let key = key.map_err(|_| format!("line {}: bad element id in '{line}'", lineno + 1))?;
        let w: i64 = fields[arity]
            .parse()
            .map_err(|_| format!("line {}: bad weight in '{line}'", lineno + 1))?;
        weights.set(&key, w);
    }
    if !past_key {
        return Err("body is missing the key's 'end' terminator".into());
    }
    Ok(weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpwm_core::pairing::{Pair, PairMarking};

    fn sample_data() -> ServeData {
        let sets = vec![vec![vec![0u32], vec![1]], vec![vec![1u32], vec![2]]];
        let family = AnswerFamily::from_nested(vec![vec![10], vec![11]], &sets);
        let mut w = Weights::new(1);
        for (e, v) in [(0u32, 5i64), (1, 7), (2, -1)] {
            w.set(&[e], v);
        }
        ServeData::new(
            family,
            w,
            vec!["alpha".into(), "beta".into()],
            Some(vec!["n0".into(), "n1".into(), "n2".into()]),
            "test-query".into(),
        )
    }

    #[test]
    fn param_resolution() {
        let data = sample_data();
        assert_eq!(data.resolve_param(Some("1"), None), Ok(1));
        assert_eq!(data.resolve_param(None, Some("alpha")), Ok(0));
        assert!(data.resolve_param(Some("9"), None).is_err());
        assert!(data.resolve_param(None, Some("gamma")).is_err());
        assert!(data.resolve_param(None, None).is_err());
    }

    #[test]
    fn answer_rendering_carries_ids_names_and_weights() {
        let data = sample_data();
        let json = data.answer_json(0);
        assert!(json.contains("\"label\":\"alpha\""), "{json}");
        assert!(json.contains("{\"t\":[0],\"label\":\"n0\",\"w\":5}"), "{json}");
        assert!(json.contains("{\"t\":[1],\"label\":\"n1\",\"w\":7}"), "{json}");
        assert!(json.contains("\"count\":2"), "{json}");
    }

    #[test]
    fn aggregate_is_the_sum_over_the_active_set() {
        let data = sample_data();
        assert!(data.aggregate_json(0).contains("\"f\":12"));
        assert!(data.aggregate_json(1).contains("\"f\":6"));
    }

    #[test]
    fn detect_round_trips_through_the_public_interface() {
        // mark the served weights, then detect over the endpoint logic
        let marking =
            PairMarking::new(vec![Pair { plus: vec![0], minus: vec![1] }]);
        let mut original = Weights::new(1);
        for (e, v) in [(0u32, 5i64), (1, 5), (2, -1)] {
            original.set(&[e], v);
        }
        let message = vec![true];
        let marked = marking.apply(&original, &message);
        let sets = vec![vec![vec![0u32], vec![1]], vec![vec![1u32], vec![2]]];
        let family = AnswerFamily::from_nested(vec![vec![10], vec![11]], &sets);
        let data = ServeData::new(family, marked, Vec::new(), None, "q".into());

        let key = SchemeKey { marking, d: 1 };
        let body = detect_request_body(&key, &original);
        let json = data.detect_json(&body, &["1"]).expect("detects");
        assert!(json.contains("\"bits\":\"1\""), "{json}");
        assert!(json.contains("\"verdict\":\"inconclusive\""), "{json}"); // 1 bit can't reach 1e-6
        assert!(json.contains("\"matches\":1"), "{json}");
        assert!(json.contains("\"claim\":{"), "{json}");
        assert!(!json.contains("\"claims\":["), "{json}");

        // several claims render an array, in submission order
        let multi = data.detect_json(&body, &["1", "0"]).expect("detects");
        assert!(multi.contains("\"claims\":[{\"matches\":1"), "{multi}");
        assert!(multi.contains("},{\"matches\":0"), "{multi}");
        assert!(!multi.contains("\"claim\":{"), "{multi}");
    }

    #[test]
    fn detect_rejects_malformed_bodies() {
        let data = sample_data();
        assert!(data.detect_json("not a key", &[]).is_err());
        let key = SchemeKey { marking: PairMarking::new(Vec::new()), d: 1 };
        let body = format!("{}orig zero 1\n", key.to_text());
        let err = data.detect_json(&body, &[]).expect_err("bad element id");
        assert!(err.contains("bad element id"), "{err}");
        let body = format!("{}orig 1 2 3\n", key.to_text());
        let err = data.detect_json(&body, &[]).expect_err("arity mismatch");
        assert!(err.contains("expected 1 element(s)"), "{err}");
    }

    #[test]
    fn answer_template_round_trips_the_precomputed_body() {
        let data = sample_data();
        for i in 0..data.num_parameters() {
            let template = data.answer_template(i);
            let zeros = vec![0i64; template.slots.len()];
            assert_eq!(template.render(&zeros), data.answer_json(i), "param {i}");
            // a +1 on every slot moves exactly the weight values
            let ones = vec![1i64; template.slots.len()];
            assert_ne!(template.render(&ones), data.answer_json(i));
        }
        let stamped = data.answer_template(0).render(&[1, 1]);
        assert!(stamped.contains("{\"t\":[0],\"label\":\"n0\",\"w\":6}"), "{stamped}");
        assert!(stamped.contains("{\"t\":[1],\"label\":\"n1\",\"w\":8}"), "{stamped}");
        assert_eq!(
            data.aggregate_json_with_f(0, 12),
            data.aggregate_json(0),
            "explicit f matches the summed aggregate"
        );
    }

    #[test]
    fn wire_table_precomputes_full_responses() {
        let data = sample_data();
        let wire = WireTable::build(&data);
        let resp = wire.answer(0);
        let text = std::str::from_utf8(resp.bytes()).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        let body = &resp.bytes()[resp.body_start()..];
        assert_eq!(body, data.answer_json(0).as_bytes());
        assert_eq!(resp.body_len(), data.answer_json(0).len());
        assert!(text.contains(&format!("Content-Length: {}\r\n", resp.body_len())), "{text}");
        let health = std::str::from_utf8(wire.healthz().bytes()).expect("utf8");
        assert!(health.contains("\"status\":\"ok\""), "{health}");
        let params = std::str::from_utf8(wire.params().bytes()).expect("utf8");
        assert!(params.contains("\"count\":2"), "{params}");
        assert!(std::str::from_utf8(wire.aggregate(0).bytes())
            .expect("utf8")
            .contains("\"f\":12"));
    }

    #[test]
    fn batch_indices_parse_and_validate() {
        assert_eq!(parse_batch_indices("0 1\n1", 2), Ok(vec![0, 1, 1]));
        assert!(parse_batch_indices("", 2).unwrap_err().contains("empty batch"));
        assert!(parse_batch_indices("2", 2).unwrap_err().contains("out of range"));
        assert!(parse_batch_indices("x", 2).unwrap_err().contains("indices"));
        let big = "0 ".repeat(MAX_BATCH + 1);
        assert!(parse_batch_indices(&big, 2).unwrap_err().contains("batch too large"));
    }

    #[test]
    fn default_labels_join_parameter_ids() {
        let sets = vec![vec![vec![0u32]]];
        let family = AnswerFamily::from_nested(vec![vec![4, 2]], &sets);
        let data = ServeData::new(family, Weights::new(1), Vec::new(), None, "q".into());
        assert_eq!(data.resolve_param(None, Some("4,2")), Ok(0));
    }
}
