//! The server's immutable data plane: a pre-materialized answer family,
//! the (marked) weights it serves, and the JSON renderings of every
//! endpoint.
//!
//! The paper's data server is the *honest* party: final users submit a
//! parameter `ā` and receive `{(b̄, W(b̄))}` verbatim. Everything here is
//! read-only after startup — the family is interned once, parameters are
//! resolved by canonical index or display label, and handlers only
//! render — so request threads share the state without locks.

use crate::http::json_escape;
use qpwm_core::detect::{HonestServer, ObservedWeights, DEFAULT_DELTA};
use qpwm_core::keyfile::SchemeKey;
use qpwm_structures::{AnswerFamily, Element, Weights};
use std::collections::HashMap;

/// Everything the request handlers read.
pub struct ServeData {
    family: AnswerFamily,
    weights: Weights,
    param_labels: Vec<String>,
    label_index: HashMap<String, usize>,
    element_names: Option<Vec<String>>,
    query_name: String,
}

impl ServeData {
    /// Bundles a family with the weights it serves.
    ///
    /// `param_labels` gives each canonical parameter a display label (an
    /// element name, a filter value, ...); when empty, labels default to
    /// the parameter tuple's ids joined by `,`. `element_names` maps
    /// element ids back to source names for rendering answer tuples.
    pub fn new(
        family: AnswerFamily,
        weights: Weights,
        param_labels: Vec<String>,
        element_names: Option<Vec<String>>,
        query_name: String,
    ) -> Self {
        let param_labels = if param_labels.is_empty() {
            family
                .parameters()
                .iter()
                .map(|a| join_ids(a))
                .collect()
        } else {
            assert_eq!(
                param_labels.len(),
                family.len(),
                "one label per canonical parameter"
            );
            param_labels
        };
        let mut label_index = HashMap::new();
        for (i, label) in param_labels.iter().enumerate() {
            label_index.entry(label.clone()).or_insert(i);
        }
        ServeData {
            family,
            weights,
            param_labels,
            label_index,
            element_names,
            query_name,
        }
    }

    /// The served family.
    pub fn family(&self) -> &AnswerFamily {
        &self.family
    }

    /// The served weights.
    pub fn weights(&self) -> &Weights {
        &self.weights
    }

    /// Number of canonical parameters.
    pub fn num_parameters(&self) -> usize {
        self.family.len()
    }

    /// Resolves a parameter reference: `i=<index>` takes precedence,
    /// then `param=<label>`.
    pub fn resolve_param(&self, index: Option<&str>, label: Option<&str>) -> Result<usize, String> {
        if let Some(raw) = index {
            let i: usize = raw
                .parse()
                .map_err(|_| format!("i must be a parameter index, got '{raw}'"))?;
            if i >= self.family.len() {
                return Err(format!(
                    "parameter index {i} out of range (domain has {})",
                    self.family.len()
                ));
            }
            return Ok(i);
        }
        if let Some(label) = label {
            return self
                .label_index
                .get(label)
                .copied()
                .ok_or_else(|| format!("unknown parameter '{label}'"));
        }
        Err("missing parameter: pass ?param=<label> or ?i=<index>".into())
    }

    fn display_tuple(&self, tuple: &[Element]) -> String {
        match &self.element_names {
            Some(names) => tuple
                .iter()
                .map(|&e| {
                    names
                        .get(e as usize)
                        .cloned()
                        .unwrap_or_else(|| e.to_string())
                })
                .collect::<Vec<_>>()
                .join(","),
            None => join_ids(tuple),
        }
    }

    /// `GET /answer` body: the answer set `{(b̄, W(b̄))}` for parameter `i`.
    ///
    /// `t` carries raw element ids — the canonical tuple encoding remote
    /// detectors parse — and `label` the human rendering.
    pub fn answer_json(&self, i: usize) -> String {
        let ids = self.family.active_ids(i);
        let mut out = String::with_capacity(64 + ids.len() * 32);
        out.push_str(&format!(
            "{{\"param\":{i},\"label\":\"{}\",\"count\":{},\"answers\":[",
            json_escape(&self.param_labels[i]),
            ids.len()
        ));
        for (n, &id) in ids.iter().enumerate() {
            let tuple = self.family.tuple(id);
            if n > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"t\":[{}],\"label\":\"{}\",\"w\":{}}}",
                join_ids(tuple),
                json_escape(&self.display_tuple(tuple)),
                self.weights.get(tuple)
            ));
        }
        out.push_str("]}\n");
        out
    }

    /// `GET /aggregate` body: the protected aggregate `f(ā) = Σ W(b̄)`.
    pub fn aggregate_json(&self, i: usize) -> String {
        format!(
            "{{\"param\":{i},\"label\":\"{}\",\"count\":{},\"f\":{}}}\n",
            json_escape(&self.param_labels[i]),
            self.family.active_ids(i).len(),
            self.family.f(&self.weights, i)
        )
    }

    /// `GET /params` body: the full canonical parameter domain.
    pub fn params_json(&self) -> String {
        let mut out = String::from("{\"params\":[");
        for (i, label) in self.param_labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"i\":{i},\"label\":\"{}\"}}", json_escape(label)));
        }
        out.push_str(&format!("],\"count\":{}}}\n", self.param_labels.len()));
        out
    }

    /// `GET /healthz` body.
    pub fn healthz_json(&self) -> String {
        format!(
            "{{\"status\":\"ok\",\"query\":\"{}\",\"parameters\":{},\"active_tuples\":{},\"output_arity\":{}}}\n",
            json_escape(&self.query_name),
            self.family.len(),
            self.family.active_universe().len(),
            self.family.output_arity()
        )
    }

    /// `POST /detect`: owner-side detection replayed through the public
    /// query interface.
    ///
    /// The body is a [`SchemeKey`] text (self-terminating at its `end`
    /// line) followed by `orig <e...> <weight>` lines carrying the
    /// owner's secret original weights (see [`detect_request_body`]).
    /// The handler queries the same family + weights `/answer` serves —
    /// the owner acts as an ordinary user — extracts the embedded bits,
    /// and scores an optional `claim` at the standard δ.
    pub fn detect_json(&self, body: &str, claim: Option<&str>) -> Result<String, String> {
        let key = SchemeKey::from_text(body).map_err(|e| format!("bad key: {e}"))?;
        let original = parse_original_weights(body, self.weights.arity())?;
        let server = HonestServer::new(self.family.clone(), self.weights.clone());
        let observed = ObservedWeights::collect(&server);
        let report = key.marking.extract(&original, &observed);
        let bits: String = report.bits.iter().map(|&b| if b { '1' } else { '0' }).collect();
        let mut out = format!(
            "{{\"bits\":\"{bits}\",\"clean_fraction\":{:.6},\"missing_pairs\":{},\"inconsistencies\":{}",
            report.clean_fraction(),
            report.missing_pairs,
            observed.inconsistencies.len()
        );
        if let Some(claim) = claim {
            let claimed: Result<Vec<bool>, String> = claim
                .chars()
                .map(|c| match c {
                    '0' => Ok(false),
                    '1' => Ok(true),
                    other => Err(format!("claim must be 0/1 bits, got '{other}'")),
                })
                .collect();
            let claimed = claimed?;
            let check = report.claim_check(&claimed, DEFAULT_DELTA);
            out.push_str(&format!(
                ",\"claim\":{{\"matches\":{},\"claimed\":{},\"significance\":{:e},\"verdict\":\"{}\"}}",
                check.matches, check.claimed, check.significance, check.verdict
            ));
        }
        out.push_str("}\n");
        Ok(out)
    }
}

fn join_ids(tuple: &[Element]) -> String {
    tuple
        .iter()
        .map(|e| e.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// Renders the `POST /detect` request body: the key text followed by the
/// owner's original weights, one `orig <e...> <weight>` line per entry.
pub fn detect_request_body(key: &SchemeKey, original: &Weights) -> String {
    let mut out = key.to_text();
    for (k, w) in original.iter_sorted() {
        out.push_str("orig");
        for e in k.iter() {
            out.push_str(&format!(" {e}"));
        }
        out.push_str(&format!(" {w}\n"));
    }
    out
}

/// Parses the `orig` lines that follow the key's `end` terminator.
fn parse_original_weights(body: &str, arity: usize) -> Result<Weights, String> {
    let mut weights = Weights::new(arity);
    let mut past_key = false;
    for (lineno, line) in body.lines().enumerate() {
        let line = line.trim();
        if !past_key {
            past_key = line == "end";
            continue;
        }
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        if tokens.next() != Some("orig") {
            return Err(format!(
                "line {}: expected 'orig <elements...> <weight>', got '{line}'",
                lineno + 1
            ));
        }
        let fields: Vec<&str> = tokens.collect();
        if fields.len() != arity + 1 {
            return Err(format!(
                "line {}: expected {arity} element(s) and a weight, got {} field(s)",
                lineno + 1,
                fields.len()
            ));
        }
        let key: Result<Vec<Element>, _> =
            fields[..arity].iter().map(|t| t.parse::<Element>()).collect();
        let key = key.map_err(|_| format!("line {}: bad element id in '{line}'", lineno + 1))?;
        let w: i64 = fields[arity]
            .parse()
            .map_err(|_| format!("line {}: bad weight in '{line}'", lineno + 1))?;
        weights.set(&key, w);
    }
    if !past_key {
        return Err("body is missing the key's 'end' terminator".into());
    }
    Ok(weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpwm_core::pairing::{Pair, PairMarking};

    fn sample_data() -> ServeData {
        let sets = vec![vec![vec![0u32], vec![1]], vec![vec![1u32], vec![2]]];
        let family = AnswerFamily::from_nested(vec![vec![10], vec![11]], &sets);
        let mut w = Weights::new(1);
        for (e, v) in [(0u32, 5i64), (1, 7), (2, -1)] {
            w.set(&[e], v);
        }
        ServeData::new(
            family,
            w,
            vec!["alpha".into(), "beta".into()],
            Some(vec!["n0".into(), "n1".into(), "n2".into()]),
            "test-query".into(),
        )
    }

    #[test]
    fn param_resolution() {
        let data = sample_data();
        assert_eq!(data.resolve_param(Some("1"), None), Ok(1));
        assert_eq!(data.resolve_param(None, Some("alpha")), Ok(0));
        assert!(data.resolve_param(Some("9"), None).is_err());
        assert!(data.resolve_param(None, Some("gamma")).is_err());
        assert!(data.resolve_param(None, None).is_err());
    }

    #[test]
    fn answer_rendering_carries_ids_names_and_weights() {
        let data = sample_data();
        let json = data.answer_json(0);
        assert!(json.contains("\"label\":\"alpha\""), "{json}");
        assert!(json.contains("{\"t\":[0],\"label\":\"n0\",\"w\":5}"), "{json}");
        assert!(json.contains("{\"t\":[1],\"label\":\"n1\",\"w\":7}"), "{json}");
        assert!(json.contains("\"count\":2"), "{json}");
    }

    #[test]
    fn aggregate_is_the_sum_over_the_active_set() {
        let data = sample_data();
        assert!(data.aggregate_json(0).contains("\"f\":12"));
        assert!(data.aggregate_json(1).contains("\"f\":6"));
    }

    #[test]
    fn detect_round_trips_through_the_public_interface() {
        // mark the served weights, then detect over the endpoint logic
        let marking =
            PairMarking::new(vec![Pair { plus: vec![0], minus: vec![1] }]);
        let mut original = Weights::new(1);
        for (e, v) in [(0u32, 5i64), (1, 5), (2, -1)] {
            original.set(&[e], v);
        }
        let message = vec![true];
        let marked = marking.apply(&original, &message);
        let sets = vec![vec![vec![0u32], vec![1]], vec![vec![1u32], vec![2]]];
        let family = AnswerFamily::from_nested(vec![vec![10], vec![11]], &sets);
        let data = ServeData::new(family, marked, Vec::new(), None, "q".into());

        let key = SchemeKey { marking, d: 1 };
        let body = detect_request_body(&key, &original);
        let json = data.detect_json(&body, Some("1")).expect("detects");
        assert!(json.contains("\"bits\":\"1\""), "{json}");
        assert!(json.contains("\"verdict\":\"inconclusive\""), "{json}"); // 1 bit can't reach 1e-6
        assert!(json.contains("\"matches\":1"), "{json}");
    }

    #[test]
    fn detect_rejects_malformed_bodies() {
        let data = sample_data();
        assert!(data.detect_json("not a key", None).is_err());
        let key = SchemeKey { marking: PairMarking::new(Vec::new()), d: 1 };
        let body = format!("{}orig zero 1\n", key.to_text());
        let err = data.detect_json(&body, None).expect_err("bad element id");
        assert!(err.contains("bad element id"), "{err}");
        let body = format!("{}orig 1 2 3\n", key.to_text());
        let err = data.detect_json(&body, None).expect_err("arity mismatch");
        assert!(err.contains("expected 1 element(s)"), "{err}");
    }

    #[test]
    fn default_labels_join_parameter_ids() {
        let sets = vec![vec![vec![0u32]]];
        let family = AnswerFamily::from_nested(vec![vec![4, 2]], &sets);
        let data = ServeData::new(family, Weights::new(1), Vec::new(), None, "q".into());
        assert_eq!(data.resolve_param(None, Some("4,2")), Ok(0));
    }
}
