//! A minimal HTTP/1.1 wire layer over blocking std I/O.
//!
//! The server is dependency-free by workspace policy, so this module
//! implements exactly the slice of HTTP the data server needs: request
//! line + headers + optional `Content-Length` body, percent-decoded
//! query strings, keep-alive, and plain-text/JSON responses. Request
//! size is bounded (8 KiB of head, 1 MiB of body) so a slow or hostile
//! client cannot balloon memory; everything larger is rejected before
//! allocation catches up.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request line + headers.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Upper bound on a request body (`POST /detect` carries a keyfile plus
/// an original-weights listing; 1 MiB is orders of magnitude above any
/// key the schemes produce).
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// Why a request could not be read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// The peer closed the connection before a full request arrived
    /// (normal end of a keep-alive session when no bytes were read).
    Closed,
    /// Head or body exceeded the configured bounds.
    TooLarge,
    /// The bytes did not parse as HTTP/1.x.
    Malformed(&'static str),
}

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Decoded path, without the query string.
    pub path: String,
    /// Decoded `key=value` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// True when the client asked for `Connection: close`.
    pub close: bool,
}

impl Request {
    /// First query value under `name`, if present.
    pub fn query_value(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads one request from a buffered stream. Returns `Closed` when the
/// peer hung up cleanly between requests.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Request, RequestError> {
    let mut head = String::new();
    let mut line = String::new();
    // request line + header lines, each terminated by \r\n, until the
    // blank separator line
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|_| if head.is_empty() { RequestError::Closed } else { RequestError::Malformed("read failed") })?;
        if n == 0 {
            return Err(if head.is_empty() {
                RequestError::Closed
            } else {
                RequestError::Malformed("truncated head")
            });
        }
        if head.len() + line.len() > MAX_HEAD_BYTES {
            return Err(RequestError::TooLarge);
        }
        if line == "\r\n" || line == "\n" {
            if head.is_empty() {
                // tolerate a stray blank line before the request line
                continue;
            }
            break;
        }
        head.push_str(&line);
    }

    let mut lines = head.lines();
    let request_line = lines.next().ok_or(RequestError::Malformed("empty head"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or(RequestError::Malformed("missing method"))?
        .to_ascii_uppercase();
    let target = parts.next().ok_or(RequestError::Malformed("missing target"))?;
    let version = parts.next().ok_or(RequestError::Malformed("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::Malformed("not HTTP/1.x"));
    }

    let mut content_length: usize = 0;
    let mut close = false;
    for header in lines {
        let Some((name, value)) = header.split_once(':') else {
            return Err(RequestError::Malformed("bad header line"));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| RequestError::Malformed("bad content-length"))?;
        } else if name == "connection" && value.eq_ignore_ascii_case("close") {
            close = true;
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(RequestError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader
            .read_exact(&mut body)
            .map_err(|_| RequestError::Malformed("truncated body"))?;
    }

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, parse_query(q)),
        None => (target, Vec::new()),
    };
    Ok(Request {
        method,
        path: percent_decode(path),
        query,
        body,
        close,
    })
}

/// Decodes `%XX` escapes and `+`-as-space.
pub fn percent_decode(input: &str) -> String {
    let bytes = input.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Splits a raw query string into decoded pairs.
pub fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|part| !part.is_empty())
        .map(|part| match part.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(part), String::new()),
        })
        .collect()
}

/// Percent-encodes a string for use inside a query value.
pub fn percent_encode(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for b in input.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            other => out.push_str(&format!("%{other:02X}")),
        }
    }
    out
}

/// Writes one response; returns an error only on I/O failure.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        403 => "Forbidden",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Writes a deliberately truncated response: the head advertises the
/// full `Content-Length`, but only the first half of the body follows
/// before the connection is abandoned. Used by the chaos layer
/// ([`crate::chaos::Fault::Truncate`]) to model a channel that cuts a
/// response short — the client's bounded body read fails fast instead
/// of parsing garbage.
pub fn write_truncated_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} OK\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&body.as_bytes()[..body.len() / 2])?;
    stream.flush()
}

/// Escapes a string for embedding in a JSON literal.
pub fn json_escape(input: &str) -> String {
    let mut out = String::with_capacity(input.len() + 2);
    for c in input.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%2Fpath%3f"), "/path?");
        assert_eq!(percent_decode("plain"), "plain");
    }

    #[test]
    fn query_parsing() {
        let q = parse_query("param=Paris%2C%20TX&i=3&flag");
        assert_eq!(
            q,
            vec![
                ("param".into(), "Paris, TX".into()),
                ("i".into(), "3".into()),
                ("flag".into(), String::new()),
            ]
        );
    }

    #[test]
    fn encode_decode_roundtrip() {
        for s in ["Paris", "a b/c?d&e=f", "100% pure", "naïve"] {
            assert_eq!(percent_decode(&percent_encode(s)), s);
        }
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("plain"), "plain");
    }
}
