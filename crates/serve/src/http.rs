//! A minimal HTTP/1.1 wire layer for the nonblocking server.
//!
//! The server is dependency-free by workspace policy, so this module
//! implements exactly the slice of HTTP the data server needs: request
//! line + headers + optional `Content-Length` body, percent-decoded
//! query strings, and keep-alive. The parser is *incremental* — it is
//! handed whatever bytes have accumulated on a connection and either
//! yields a complete request plus the number of bytes it consumed, or
//! reports that more bytes are needed — which is what a readiness loop
//! requires: a request split across any number of TCP segments parses
//! identically to one that arrived whole. Request size is bounded
//! (8 KiB of head, 1 MiB of body) so a slow or hostile client cannot
//! balloon memory.
//!
//! Responses are not formatted here per request: [`write_head`] appends
//! a response head to a caller-provided scratch buffer (reused across
//! requests by the connection that owns it), and precomputed wire
//! responses bypass formatting entirely (see [`crate::state`]).

/// Upper bound on the request line + headers.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Upper bound on a request body (`POST /detect` carries a keyfile plus
/// an original-weights listing; 1 MiB is orders of magnitude above any
/// key the schemes produce).
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// Why a request could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// Head or body exceeded the configured bounds.
    TooLarge,
    /// The bytes did not parse as HTTP/1.x.
    Malformed(&'static str),
}

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Decoded path, without the query string.
    pub path: String,
    /// Decoded `key=value` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// True when the client asked for `Connection: close`.
    pub close: bool,
}

impl Request {
    /// First query value under `name`, if present.
    pub fn query_value(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// All query values under `name`, in order (e.g. repeated `claim`
    /// parameters on `POST /detect`).
    pub fn query_values(&self, name: &str) -> Vec<&str> {
        self.query
            .iter()
            .filter(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
            .collect()
    }
}

/// Incremental request parse over a connection's accumulated bytes.
///
/// Returns `Ok(Some((request, consumed)))` when `buf` starts with a
/// complete request (`consumed` bytes of it, including any tolerated
/// leading blank lines), `Ok(None)` when more bytes are needed, and
/// `Err` when the prefix can never become a valid request.
pub fn parse_request(buf: &[u8]) -> Result<Option<(Request, usize)>, RequestError> {
    // tolerate stray blank lines between keep-alive requests
    let mut start = 0;
    while start < buf.len() && (buf[start] == b'\r' || buf[start] == b'\n') {
        start += 1;
    }
    let rest = &buf[start..];
    let Some(head_len) = find_head_end(rest) else {
        if rest.len() > MAX_HEAD_BYTES {
            return Err(RequestError::TooLarge);
        }
        return Ok(None);
    };
    if head_len > MAX_HEAD_BYTES {
        return Err(RequestError::TooLarge);
    }
    let head = std::str::from_utf8(&rest[..head_len])
        .map_err(|_| RequestError::Malformed("head is not UTF-8"))?;

    let mut lines = head.lines();
    let request_line = lines.next().ok_or(RequestError::Malformed("empty head"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or(RequestError::Malformed("missing method"))?
        .to_ascii_uppercase();
    let target = parts.next().ok_or(RequestError::Malformed("missing target"))?;
    let version = parts.next().ok_or(RequestError::Malformed("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::Malformed("not HTTP/1.x"));
    }

    let mut content_length: usize = 0;
    let mut close = false;
    for header in lines {
        if header.is_empty() {
            continue;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(RequestError::Malformed("bad header line"));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| RequestError::Malformed("bad content-length"))?;
        } else if name == "connection" && value.eq_ignore_ascii_case("close") {
            close = true;
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(RequestError::TooLarge);
    }
    if rest.len() < head_len + content_length {
        return Ok(None);
    }
    let body = rest[head_len..head_len + content_length].to_vec();

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, parse_query(q)),
        None => (target, Vec::new()),
    };
    Ok(Some((
        Request {
            method,
            path: percent_decode(path),
            query,
            body,
            close,
        },
        start + head_len + content_length,
    )))
}

/// Index one past the blank line terminating the head, accepting both
/// `\r\n\r\n` and bare `\n\n` line endings.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            match buf.get(i + 1) {
                Some(b'\n') => return Some(i + 2),
                Some(b'\r') if buf.get(i + 2) == Some(&b'\n') => return Some(i + 3),
                _ => {}
            }
        }
        i += 1;
    }
    None
}

/// The standard reason phrase for the statuses the server produces.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Appends a response head to `out` — the scratch-buffer replacement
/// for per-request `format!` assembly. The caller owns (and reuses)
/// `out`; the body follows separately, typically as a shared segment of
/// a precomputed wire response.
pub fn write_head(
    out: &mut Vec<u8>,
    status: u16,
    content_type: &str,
    content_length: usize,
    keep_alive: bool,
) {
    out.extend_from_slice(b"HTTP/1.1 ");
    push_uint(out, status as usize);
    out.push(b' ');
    out.extend_from_slice(reason(status).as_bytes());
    out.extend_from_slice(b"\r\nContent-Type: ");
    out.extend_from_slice(content_type.as_bytes());
    out.extend_from_slice(b"\r\nContent-Length: ");
    push_uint(out, content_length);
    if status == 503 {
        out.extend_from_slice(b"\r\nRetry-After: 1");
    }
    out.extend_from_slice(if keep_alive {
        b"\r\nConnection: keep-alive\r\n\r\n"
    } else {
        b"\r\nConnection: close\r\n\r\n"
    });
}

/// [`write_head`] plus one extra response header, inserted between
/// `Content-Length` and `Connection`. Used by the fingerprint path to
/// attach `X-Fingerprint-Recipient` without disturbing the pinned
/// [`write_head`] wire shape.
pub fn write_head_with(
    out: &mut Vec<u8>,
    status: u16,
    content_type: &str,
    content_length: usize,
    keep_alive: bool,
    header: (&str, &str),
) {
    out.extend_from_slice(b"HTTP/1.1 ");
    push_uint(out, status as usize);
    out.push(b' ');
    out.extend_from_slice(reason(status).as_bytes());
    out.extend_from_slice(b"\r\nContent-Type: ");
    out.extend_from_slice(content_type.as_bytes());
    out.extend_from_slice(b"\r\nContent-Length: ");
    push_uint(out, content_length);
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(header.0.as_bytes());
    out.extend_from_slice(b": ");
    out.extend_from_slice(header.1.as_bytes());
    if status == 503 {
        out.extend_from_slice(b"\r\nRetry-After: 1");
    }
    out.extend_from_slice(if keep_alive {
        b"\r\nConnection: keep-alive\r\n\r\n"
    } else {
        b"\r\nConnection: close\r\n\r\n"
    });
}

/// Appends a decimal integer without going through `format!`.
fn push_uint(out: &mut Vec<u8>, mut value: usize) {
    let mut digits = [0u8; 20];
    let mut i = digits.len();
    loop {
        i -= 1;
        digits[i] = b'0' + (value % 10) as u8;
        value /= 10;
        if value == 0 {
            break;
        }
    }
    out.extend_from_slice(&digits[i..]);
}

/// Decodes `%XX` escapes and `+`-as-space.
pub fn percent_decode(input: &str) -> String {
    let bytes = input.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Splits a raw query string into decoded pairs.
pub fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|part| !part.is_empty())
        .map(|part| match part.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(part), String::new()),
        })
        .collect()
}

/// Percent-encodes a string for use inside a query value.
pub fn percent_encode(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for b in input.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            other => out.push_str(&format!("%{other:02X}")),
        }
    }
    out
}

/// Escapes a string for embedding in a JSON literal.
pub fn json_escape(input: &str) -> String {
    let mut out = String::with_capacity(input.len() + 2);
    for c in input.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%2Fpath%3f"), "/path?");
        assert_eq!(percent_decode("plain"), "plain");
    }

    #[test]
    fn query_parsing() {
        let q = parse_query("param=Paris%2C%20TX&i=3&flag");
        assert_eq!(
            q,
            vec![
                ("param".into(), "Paris, TX".into()),
                ("i".into(), "3".into()),
                ("flag".into(), String::new()),
            ]
        );
    }

    #[test]
    fn encode_decode_roundtrip() {
        for s in ["Paris", "a b/c?d&e=f", "100% pure", "naïve"] {
            assert_eq!(percent_decode(&percent_encode(s)), s);
        }
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn parses_a_complete_request_and_reports_consumed() {
        let wire = b"GET /answer?i=3&param=x HTTP/1.1\r\nHost: h\r\n\r\nGET /next";
        let (req, consumed) = parse_request(wire).expect("parses").expect("complete");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/answer");
        assert_eq!(req.query_value("i"), Some("3"));
        assert!(!req.close);
        assert_eq!(&wire[consumed..], b"GET /next", "trailing bytes untouched");
    }

    #[test]
    fn incremental_prefixes_ask_for_more_bytes() {
        let wire = b"POST /detect?claim=1 HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        for cut in 0..wire.len() {
            let parsed = parse_request(&wire[..cut]).expect("no error on any prefix");
            assert!(parsed.is_none(), "cut at {cut} must ask for more bytes");
        }
        assert!(parse_request(wire).expect("parses").is_some());
    }

    #[test]
    fn body_and_repeated_query_values() {
        let wire = b"POST /detect?claim=10&claim=01 HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
        let (req, consumed) = parse_request(wire).expect("parses").expect("complete");
        assert_eq!(req.body, b"body");
        assert_eq!(req.query_values("claim"), vec!["10", "01"]);
        assert_eq!(consumed, wire.len());
    }

    #[test]
    fn tolerates_leading_blank_lines_and_bare_lf() {
        let wire = b"\r\n\nGET /healthz HTTP/1.1\nHost: h\n\n";
        let (req, consumed) = parse_request(wire).expect("parses").expect("complete");
        assert_eq!(req.path, "/healthz");
        assert_eq!(consumed, wire.len());
    }

    #[test]
    fn rejects_oversized_and_malformed_requests() {
        let huge = vec![b'x'; MAX_HEAD_BYTES + 2];
        assert!(matches!(parse_request(&huge), Err(RequestError::TooLarge)));
        let bad = b"GET /x SPDY/3\r\n\r\n";
        assert!(matches!(parse_request(bad), Err(RequestError::Malformed(_))));
        let big_body = b"POST /x HTTP/1.1\r\nContent-Length: 9999999\r\n\r\n";
        assert!(matches!(parse_request(big_body), Err(RequestError::TooLarge)));
    }

    #[test]
    fn connection_close_is_detected() {
        let wire = b"GET /x HTTP/1.1\r\nConnection: close\r\n\r\n";
        let (req, _) = parse_request(wire).expect("parses").expect("complete");
        assert!(req.close);
    }

    #[test]
    fn head_writer_with_extra_header_carries_it_before_connection() {
        let mut out = Vec::new();
        write_head_with(
            &mut out,
            200,
            "application/json",
            7,
            true,
            ("X-Fingerprint-Recipient", "alice"),
        );
        let text = String::from_utf8(out).expect("utf8");
        assert!(
            text.contains("Content-Length: 7\r\nX-Fingerprint-Recipient: alice\r\nConnection: keep-alive\r\n\r\n"),
            "{text}"
        );
        // with the header removed, the shape matches write_head exactly
        let stripped = text.replace("X-Fingerprint-Recipient: alice\r\n", "");
        let mut plain = Vec::new();
        write_head(&mut plain, 200, "application/json", 7, true);
        assert_eq!(stripped.as_bytes(), plain.as_slice());
    }

    #[test]
    fn head_writer_matches_expected_wire_shape() {
        let mut out = Vec::new();
        write_head(&mut out, 200, "application/json", 42, true);
        assert_eq!(
            out,
            b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 42\r\nConnection: keep-alive\r\n\r\n"
        );
        out.clear();
        write_head(&mut out, 503, "application/json", 0, false);
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("Retry-After: 1"), "{text}");
        assert!(text.ends_with("Connection: close\r\n\r\n"), "{text}");
    }
}
