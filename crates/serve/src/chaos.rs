//! Deterministic fault injection ("chaos") for the data server.
//!
//! The paper's detector runs *as an ordinary user over the public
//! interface*, so its robustness story is incomplete without the
//! transport failing underneath the semantic adversaries of
//! `qpwm_core::adversary`. A [`FaultPolicy`] injects the four transport
//! faults a hostile or merely flaky channel produces — dropped
//! connections, injected 5xx errors, response delays, and truncated
//! bodies — at configured rates, decided by a seeded hash of a global
//! request counter. Given the same spec and the same request arrival
//! order the injected fault sequence is identical, so the chaos
//! differential suite and `bench_chaos` sweeps replay bit-for-bit.
//!
//! Control endpoints (`/healthz`, `/metrics`, `POST /shutdown`) are
//! exempted by the server: an operator must always be able to observe
//! and stop a misbehaving instance.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// One injected transport fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Close the connection without writing any response.
    Drop,
    /// Respond `503 Service Unavailable` instead of the real answer.
    Error,
    /// Serve the real answer after an added delay.
    Delay(Duration),
    /// Write the response head with the full `Content-Length` but only
    /// half the body, then close — the client sees a truncated read.
    Truncate,
}

impl Fault {
    /// The metrics label for this fault class.
    pub fn label(self) -> &'static str {
        match self {
            Fault::Drop => "drop",
            Fault::Error => "error",
            Fault::Delay(_) => "delay",
            Fault::Truncate => "truncate",
        }
    }
}

/// A seeded fault-injection policy: per-class percentage rates plus a
/// delay duration for the `delay` class.
///
/// Parsed from a comma-separated spec (`QPWM_CHAOS` env or
/// `qpwm serve --chaos`):
///
/// ```text
/// drop=5%,error=10%,delay=20%:2ms,trunc=3%,seed=42
/// ```
///
/// Every field is optional; rates accept an optional trailing `%` and
/// may be fractional. The class rates are stacked, so their sum is the
/// total fault rate and must stay ≤ 100.
#[derive(Debug)]
pub struct FaultPolicy {
    drop_pct: f64,
    error_pct: f64,
    delay_pct: f64,
    delay: Duration,
    truncate_pct: f64,
    seed: u64,
    requests: AtomicU64,
}

/// SplitMix64 finalizer: decorrelates the request counter into a
/// uniform draw without carrying generator state across threads.
fn mix(seed: u64, n: u64) -> u64 {
    let mut z = seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn parse_pct(field: &str, raw: &str) -> Result<f64, String> {
    let digits = raw.strip_suffix('%').unwrap_or(raw);
    let pct: f64 = digits
        .parse()
        .map_err(|_| format!("{field} needs a percentage, got '{raw}'"))?;
    if !(0.0..=100.0).contains(&pct) {
        return Err(format!("{field} must be in 0..=100%, got '{raw}'"));
    }
    Ok(pct)
}

fn parse_ms(field: &str, raw: &str) -> Result<Duration, String> {
    let digits = raw.strip_suffix("ms").unwrap_or(raw);
    let ms: u64 = digits
        .parse()
        .map_err(|_| format!("{field} needs a duration in ms, got '{raw}'"))?;
    Ok(Duration::from_millis(ms))
}

impl FaultPolicy {
    /// A policy that never injects anything (rates all zero).
    pub fn disabled() -> Self {
        FaultPolicy {
            drop_pct: 0.0,
            error_pct: 0.0,
            delay_pct: 0.0,
            delay: Duration::from_millis(2),
            truncate_pct: 0.0,
            seed: 0,
            requests: AtomicU64::new(0),
        }
    }

    /// Parses a chaos spec (see the type docs for the grammar).
    pub fn parse(spec: &str) -> Result<FaultPolicy, String> {
        let mut policy = FaultPolicy::disabled();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("chaos spec field '{part}' is not key=value"))?;
            match key.trim() {
                "drop" => policy.drop_pct = parse_pct("drop", value)?,
                "error" | "err" => policy.error_pct = parse_pct("error", value)?,
                "delay" => match value.split_once(':') {
                    Some((pct, ms)) => {
                        policy.delay_pct = parse_pct("delay", pct)?;
                        policy.delay = parse_ms("delay", ms)?;
                    }
                    None => policy.delay_pct = parse_pct("delay", value)?,
                },
                "trunc" | "truncate" => policy.truncate_pct = parse_pct("trunc", value)?,
                "seed" => {
                    policy.seed = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("seed needs an integer, got '{value}'"))?;
                }
                other => return Err(format!("unknown chaos field '{other}'")),
            }
        }
        if policy.total_rate() > 100.0 {
            return Err(format!(
                "chaos rates sum to {:.1}% (> 100%)",
                policy.total_rate()
            ));
        }
        Ok(policy)
    }

    /// Reads the `QPWM_CHAOS` environment variable, if set and non-empty.
    pub fn from_env() -> Result<Option<FaultPolicy>, String> {
        match std::env::var("QPWM_CHAOS") {
            Ok(spec) if !spec.trim().is_empty() => {
                FaultPolicy::parse(&spec).map(Some).map_err(|e| format!("QPWM_CHAOS: {e}"))
            }
            _ => Ok(None),
        }
    }

    /// Sum of all class rates, in percent.
    pub fn total_rate(&self) -> f64 {
        self.drop_pct + self.error_pct + self.delay_pct + self.truncate_pct
    }

    /// True when this policy can never inject a fault.
    pub fn is_disabled(&self) -> bool {
        self.total_rate() == 0.0
    }

    /// Human summary for startup logs.
    pub fn describe(&self) -> String {
        format!(
            "drop={}% error={}% delay={}%:{}ms trunc={}% seed={}",
            self.drop_pct,
            self.error_pct,
            self.delay_pct,
            self.delay.as_millis(),
            self.truncate_pct,
            self.seed
        )
    }

    /// Decides the fault (if any) for the next chaos-eligible request.
    ///
    /// The decision hashes a global request counter, so the n-th eligible
    /// request always draws the same fault for a given seed regardless of
    /// which worker thread serves it.
    pub fn next_fault(&self) -> Option<Fault> {
        let n = self.requests.fetch_add(1, Ordering::Relaxed);
        self.fault_for(n)
    }

    /// The fault assigned to eligible request number `n` (zero-based).
    pub fn fault_for(&self, n: u64) -> Option<Fault> {
        if self.is_disabled() {
            return None;
        }
        // 53 uniform bits → percentage in [0, 100)
        let u = (mix(self.seed, n) >> 11) as f64 * (100.0 / (1u64 << 53) as f64);
        let mut bound = self.drop_pct;
        if u < bound {
            return Some(Fault::Drop);
        }
        bound += self.error_pct;
        if u < bound {
            return Some(Fault::Error);
        }
        bound += self.delay_pct;
        if u < bound {
            return Some(Fault::Delay(self.delay));
        }
        bound += self.truncate_pct;
        if u < bound {
            return Some(Fault::Truncate);
        }
        None
    }

    /// Number of chaos-eligible requests seen so far.
    pub fn requests_seen(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar() {
        let p = FaultPolicy::parse("drop=5%,error=10,delay=20%:7ms,trunc=3%,seed=42")
            .expect("parses");
        assert_eq!(p.drop_pct, 5.0);
        assert_eq!(p.error_pct, 10.0);
        assert_eq!(p.delay_pct, 20.0);
        assert_eq!(p.delay, Duration::from_millis(7));
        assert_eq!(p.truncate_pct, 3.0);
        assert_eq!(p.seed, 42);
        assert_eq!(p.total_rate(), 38.0);
        assert!(!p.is_disabled());
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(FaultPolicy::parse("drop").is_err());
        assert!(FaultPolicy::parse("drop=banana").is_err());
        assert!(FaultPolicy::parse("drop=120%").is_err());
        assert!(FaultPolicy::parse("drop=60,error=60").is_err(), "rates must sum <= 100");
        assert!(FaultPolicy::parse("warp=1%").is_err());
        assert!(FaultPolicy::parse("delay=10%:fast").is_err());
    }

    #[test]
    fn empty_spec_is_disabled() {
        let p = FaultPolicy::parse("").expect("parses");
        assert!(p.is_disabled());
        assert_eq!(p.next_fault(), None);
    }

    #[test]
    fn fault_sequence_is_deterministic_in_the_counter() {
        let a = FaultPolicy::parse("drop=10%,error=10%,trunc=10%,seed=9").expect("parses");
        let b = FaultPolicy::parse("drop=10%,error=10%,trunc=10%,seed=9").expect("parses");
        let seq_a: Vec<_> = (0..500).map(|n| a.fault_for(n)).collect();
        let seq_b: Vec<_> = (0..500).map(|n| b.fault_for(n)).collect();
        assert_eq!(seq_a, seq_b);
        // and interleaving-independent: next_fault over the same policy
        // walks the same sequence
        let via_counter: Vec<_> = (0..500).map(|_| a.next_fault()).collect();
        assert_eq!(via_counter, seq_a);
    }

    #[test]
    fn injected_rate_tracks_the_configured_rate() {
        let p = FaultPolicy::parse("drop=10%,error=10%,delay=5%,trunc=5%,seed=3")
            .expect("parses");
        let n = 20_000u64;
        let mut counts = [0u64; 4];
        let mut none = 0u64;
        for i in 0..n {
            match p.fault_for(i) {
                Some(Fault::Drop) => counts[0] += 1,
                Some(Fault::Error) => counts[1] += 1,
                Some(Fault::Delay(_)) => counts[2] += 1,
                Some(Fault::Truncate) => counts[3] += 1,
                None => none += 1,
            }
        }
        let pct = |c: u64| c as f64 / n as f64 * 100.0;
        assert!((pct(counts[0]) - 10.0).abs() < 1.0, "drop {}", pct(counts[0]));
        assert!((pct(counts[1]) - 10.0).abs() < 1.0, "error {}", pct(counts[1]));
        assert!((pct(counts[2]) - 5.0).abs() < 1.0, "delay {}", pct(counts[2]));
        assert!((pct(counts[3]) - 5.0).abs() < 1.0, "trunc {}", pct(counts[3]));
        assert!((pct(none) - 70.0).abs() < 2.0, "none {}", pct(none));
    }

    #[test]
    fn different_seeds_draw_different_sequences() {
        let a = FaultPolicy::parse("drop=50%,seed=1").expect("parses");
        let b = FaultPolicy::parse("drop=50%,seed=2").expect("parses");
        let seq_a: Vec<_> = (0..64).map(|n| a.fault_for(n)).collect();
        let seq_b: Vec<_> = (0..64).map(|n| b.fault_for(n)).collect();
        assert_ne!(seq_a, seq_b);
    }
}
