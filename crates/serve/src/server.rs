//! The HTTP server: shared-nothing per-core shards, each running a
//! nonblocking readiness loop over the [`crate::reactor`] primitives.
//!
//! Architecture: every shard owns a private `SO_REUSEPORT` listener on
//! the shared port (the kernel load-balances incoming connections by
//! 4-tuple hash), an answer-cache partition, and a metrics block — no
//! locks or channels on the request path. Within a shard, one
//! `epoll`-driven event loop multiplexes accept, incremental request
//! parsing ([`crate::http::parse_request`]), routing, and vectored
//! nonblocking writes ([`crate::reactor::WriteQueue`]). The hot
//! `/answer` path is zero-copy: responses are precomputed wire bytes
//! ([`crate::state::WireTable`]) queued as shared segments, so a cache
//! hit does no formatting and no allocation.
//!
//! Overload protection: a shard whose live-connection count reaches the
//! configured backlog routes *new* connections onto a degraded lane —
//! control endpoints (`/healthz`, `/metrics`, `/params`,
//! `POST /shutdown`) answer normally, `/answer`/`/aggregate` are served
//! only when already cache-resident (stale-while-degraded), and
//! everything else is shed with `503` + `Retry-After`. Beyond the
//! degraded headroom, the shard writes a canned `503` straight from the
//! accept loop and closes — it never queues unboundedly and never goes
//! silent.
//!
//! Fault injection: an optional [`FaultPolicy`] (env `QPWM_CHAOS` /
//! `qpwm serve --chaos`) is re-threaded through the readiness loop:
//! drops close without responding, errors enqueue a `503`, delays gate
//! the connection's parse/flush until a deadline (driven by the epoll
//! timeout, not a sleeping thread), truncations advertise the full
//! `Content-Length` but queue half the body. Control endpoints and the
//! degraded lane are exempt. See [`crate::chaos`].
//!
//! Shutdown is cooperative: `POST /shutdown` (loopback-only) flushes
//! its response, flips the shared flag, and rings every shard's
//! [`Wake`] doorbell; each shard deregisters its listener, drains
//! pending writes under a short grace deadline, and exits.

use crate::cache::ShardedLru;
use crate::chaos::{Fault, FaultPolicy};
use crate::fingerprint::FingerprintContext;
use crate::http::{
    json_escape, parse_request, write_head, write_head_with, Request, RequestError,
    MAX_BODY_BYTES, MAX_HEAD_BYTES,
};
use crate::metrics::{render_cluster, Endpoint, Metrics, Observation, ShardView, FAULT_KINDS};
use crate::paged::{render_store_metrics, sum_gauges, PagedPlane, PagedShard, PoolGauges};
use crate::reactor::{bind_reuseport, Event, Poller, Slab, Wake, WriteQueue};
use crate::state::{parse_batch_indices, ServeData, WireTable};
use qpwm_store::WalStats;
use std::io::{self, Read, Write};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Event-loop shards, each with its own listener, cache partition,
    /// and metrics block; 0 resolves via `QPWM_SHARDS` (defaulting
    /// to 1).
    pub shards: usize,
    /// Total answer-cache entries across shards (0 disables caching).
    pub cache_entries: usize,
    /// Idle-connection timeout: a connection with no traffic for this
    /// long is closed by the shard's sweep.
    pub read_timeout: Duration,
    /// Retained for configuration compatibility; the nonblocking writer
    /// never blocks, so slow readers are bounded by `read_timeout`
    /// instead.
    pub write_timeout: Duration,
    /// Allow `POST /shutdown` from loopback peers (used by the CLI and
    /// the smoke test for clean teardown).
    pub shutdown_endpoint: bool,
    /// Live connections per shard before new arrivals land on the
    /// degraded lane; beyond that plus [`DEGRADED_BACKLOG`], they are
    /// shed with a canned 503.
    pub backlog: usize,
    /// Optional fault-injection policy (see [`crate::chaos`]).
    pub chaos: Option<FaultPolicy>,
    /// Optional multi-tenant fingerprinting context: stamped
    /// `?recipient=` answers and the `POST /accuse` forensic endpoint
    /// (see [`crate::fingerprint`]).
    pub fingerprint: Option<FingerprintContext>,
    /// Optional out-of-core data plane: serve answers straight off
    /// store pages through per-shard buffer pools instead of a resident
    /// family (see [`crate::paged`]). Mutually exclusive with
    /// `fingerprint`.
    pub paged: Option<PagedPlane>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            shards: 0,
            cache_entries: 1024,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            shutdown_endpoint: true,
            backlog: 128,
            chaos: None,
            fingerprint: None,
            paged: None,
        }
    }
}

/// Per-shard capacity of the fingerprint stamping-plan LRU (recipients
/// with a hot plan; a plan is rebuilt in `O(pairs)` on a miss).
const PLAN_CACHE_ENTRIES: usize = 256;

/// Degraded-lane headroom per shard (connections above the backlog that
/// still get cache-or-control service instead of a canned 503).
const DEGRADED_BACKLOG: usize = 32;

/// Cache-key endpoint tags (high byte of the key).
const TAG_ANSWER: u64 = 1 << 56;
const TAG_AGGREGATE: u64 = 2 << 56;

/// Epoll token of the shard's listener.
const LISTENER_TOKEN: u64 = u64::MAX;
/// Epoll token of the shard's wake doorbell.
const WAKE_TOKEN: u64 = u64::MAX - 1;

/// Canned response written straight from the accept loop when even the
/// degraded lane is full — the one path that must never allocate or
/// wait.
const SHED_RESPONSE: &[u8] = b"HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\nContent-Length: 23\r\nRetry-After: 1\r\nConnection: close\r\n\r\n{\"error\":\"overloaded\"}\n";

/// How long a draining shard keeps flushing pending responses after
/// shutdown is requested.
const DRAIN_GRACE: Duration = Duration::from_secs(1);

struct Shared {
    data: ServeData,
    wire: WireTable,
    shutdown: AtomicBool,
    shutdown_endpoint: bool,
    chaos: FaultPolicy,
    fingerprint: Option<FingerprintContext>,
    /// WAL counters captured when the store was recovered, exported as
    /// `qpwm_store_wal_*`; `Some` marks the server as paged.
    store_wal: Option<WalStats>,
}

/// Everything one shard's event loop reads: its own cache/metrics plus
/// the sibling views `/metrics` merges and the doorbells shutdown rings.
struct ShardEnv {
    shared: Arc<Shared>,
    cache: Arc<ShardedLru>,
    metrics: Arc<Metrics>,
    /// This shard's fingerprint stamping-plan LRU (derivation index →
    /// flat delta plan).
    plan_cache: Arc<ShardedLru>,
    /// This shard's private read view of the store (paged mode only).
    paged: Option<PagedShard>,
    all_caches: Vec<Arc<ShardedLru>>,
    all_metrics: Vec<Arc<Metrics>>,
    all_plan_caches: Vec<Arc<ShardedLru>>,
    all_pool_gauges: Vec<Arc<PoolGauges>>,
    wakes: Vec<Arc<Wake>>,
    backlog: usize,
    idle_timeout: Duration,
}

/// A running server. Dropping the handle does **not** stop it; call
/// [`Server::shutdown`] (or hit `POST /shutdown`) for a clean stop.
pub struct Server {
    addr: SocketAddr,
    caches: Vec<Arc<ShardedLru>>,
    metrics: Vec<Arc<Metrics>>,
    plan_caches: Vec<Arc<ShardedLru>>,
    pool_gauges: Vec<Arc<PoolGauges>>,
    wakes: Vec<Arc<Wake>>,
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the per-shard listeners, spawns the event loops, and
    /// returns immediately.
    pub fn start(data: ServeData, config: ServerConfig) -> io::Result<Server> {
        let shards = resolve_shards(config.shards)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        if config.paged.is_some() && config.fingerprint.is_some() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "fingerprint stamping requires the resident data plane",
            ));
        }
        // each shard gets its own read view (own file handle, own pool)
        // so the request path stays shared-nothing
        let mut paged_shards: Vec<Option<PagedShard>> = Vec::with_capacity(shards);
        for _ in 0..shards {
            paged_shards.push(match &config.paged {
                Some(plane) => Some(PagedShard::open(plane)?),
                None => None,
            });
        }
        let pool_gauges: Vec<Arc<PoolGauges>> =
            paged_shards.iter().flatten().map(PagedShard::gauges).collect();
        let requested = config
            .addr
            .to_socket_addrs()?
            .find(SocketAddr::is_ipv4)
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidInput, "serve needs an IPv4 bind address")
            })?;
        let IpAddr::V4(ip) = requested.ip() else { unreachable!("filtered to IPv4") };
        let first = bind_reuseport(ip, requested.port())?;
        let addr = first.local_addr()?;
        let mut listeners = vec![first];
        for _ in 1..shards {
            listeners.push(bind_reuseport(ip, addr.port())?);
        }

        let wire = WireTable::build(&data);
        let shared = Arc::new(Shared {
            data,
            wire,
            shutdown: AtomicBool::new(false),
            shutdown_endpoint: config.shutdown_endpoint,
            chaos: config.chaos.unwrap_or_else(FaultPolicy::disabled),
            fingerprint: config.fingerprint,
            store_wal: config.paged.as_ref().map(|p| p.wal),
        });
        let per_shard_cache = config.cache_entries / shards;
        let caches: Vec<Arc<ShardedLru>> = (0..shards)
            .map(|_| Arc::new(ShardedLru::new(per_shard_cache, per_shard_cache.clamp(1, 8))))
            .collect();
        let plan_caches: Vec<Arc<ShardedLru>> = (0..shards)
            .map(|_| Arc::new(ShardedLru::new(PLAN_CACHE_ENTRIES, 4)))
            .collect();
        let metrics: Vec<Arc<Metrics>> = (0..shards).map(|_| Arc::new(Metrics::new())).collect();
        let wakes: Vec<Arc<Wake>> = (0..shards)
            .map(|_| Wake::new().map(Arc::new))
            .collect::<io::Result<_>>()?;

        let mut handles = Vec::with_capacity(shards);
        for ((i, listener), paged) in listeners.into_iter().enumerate().zip(paged_shards) {
            let env = ShardEnv {
                shared: Arc::clone(&shared),
                cache: Arc::clone(&caches[i]),
                metrics: Arc::clone(&metrics[i]),
                plan_cache: Arc::clone(&plan_caches[i]),
                paged,
                all_caches: caches.clone(),
                all_metrics: metrics.clone(),
                all_plan_caches: plan_caches.clone(),
                all_pool_gauges: pool_gauges.clone(),
                wakes: wakes.clone(),
                backlog: config.backlog.max(1),
                idle_timeout: config.read_timeout,
            };
            let wake = Arc::clone(&wakes[i]);
            handles.push(std::thread::spawn(move || shard_loop(env, listener, wake)));
        }
        Ok(Server { addr, caches, metrics, plan_caches, pool_gauges, wakes, shared, handles })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `(hits, misses)` of the answer cache, summed across shards.
    pub fn cache_stats(&self) -> (u64, u64) {
        let mut hits = 0;
        let mut misses = 0;
        for c in &self.caches {
            let (h, m) = c.stats();
            hits += h;
            misses += m;
        }
        (hits, misses)
    }

    /// `(hits, misses)` of the fingerprint stamping-plan cache, summed
    /// across shards. All zero unless the server was started with a
    /// [`FingerprintContext`].
    pub fn plan_cache_stats(&self) -> (u64, u64) {
        let mut hits = 0;
        let mut misses = 0;
        for c in &self.plan_caches {
            let (h, m) = c.stats();
            hits += h;
            misses += m;
        }
        (hits, misses)
    }

    /// `(faults-per-class, shed, stale-serves, degraded)` counters,
    /// summed across shards.
    pub fn resilience_snapshot(&self) -> ([u64; FAULT_KINDS.len()], u64, u64, u64) {
        let mut faults = [0u64; FAULT_KINDS.len()];
        let (mut shed, mut stale, mut degraded) = (0, 0, 0);
        for m in &self.metrics {
            let (f, s, st, d) = m.resilience_snapshot();
            for (total, x) in faults.iter_mut().zip(f) {
                *total += x;
            }
            shed += s;
            stale += st;
            degraded += d;
        }
        (faults, shed, stale, degraded)
    }

    /// Requests handled per shard, for balance reporting.
    pub fn shard_request_totals(&self) -> Vec<u64> {
        self.metrics.iter().map(|m| m.total_requests()).collect()
    }

    /// `(hits, misses, evictions, pinned)` of the store buffer pools,
    /// summed across shard read views. `None` unless the server runs
    /// the paged data plane.
    pub fn store_pool_totals(&self) -> Option<(u64, u64, u64, u64)> {
        self.shared.store_wal.as_ref()?;
        Some(sum_gauges(&self.pool_gauges))
    }

    /// Blocks until the server stops (via [`Server::shutdown`] from
    /// another thread or the `POST /shutdown` endpoint).
    pub fn join(self) {
        for handle in self.handles {
            let _ = handle.join();
        }
    }

    /// Requests a graceful stop and waits for the shards to drain.
    pub fn shutdown(self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for wake in &self.wakes {
            wake.signal();
        }
        self.join();
    }
}

/// `--shards` / `QPWM_SHARDS` resolution: an explicit count wins, the
/// env var is validated like a thread count, and the default is one
/// shard (deterministic for tests and small deployments).
fn resolve_shards(configured: usize) -> Result<usize, String> {
    if configured > 0 {
        return Ok(configured);
    }
    match std::env::var("QPWM_SHARDS") {
        Ok(value) => qpwm_par::parse_thread_arg(&value)
            .map_err(|e| format!("QPWM_SHARDS: {}", e.replace("thread count", "shard count"))),
        Err(_) => Ok(1),
    }
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    /// Unparsed input bytes.
    buf: Vec<u8>,
    /// Pending output segments.
    out: WriteQueue,
    /// Reclaimed scratch buffers for response heads (the per-connection
    /// scratch pool: steady-state serving allocates nothing).
    scratch: Vec<Vec<u8>>,
    /// Whether `EPOLLOUT` is currently armed.
    want_write: bool,
    /// Accepted beyond the backlog: cache-or-control service only.
    degraded: bool,
    peer_loopback: bool,
    /// Close once the write queue drains.
    close_after_flush: bool,
    /// Peer sent FIN; close once parsed requests are answered.
    peer_closed: bool,
    /// Injected chaos delay: parsing and flushing are gated until then.
    delay_until: Option<Instant>,
    /// Initiate server shutdown once the write queue drains.
    trip_shutdown: bool,
    last_activity: Instant,
}

impl Conn {
    fn new(stream: TcpStream, degraded: bool, peer_loopback: bool) -> Conn {
        Conn {
            stream,
            buf: Vec::new(),
            out: WriteQueue::new(),
            scratch: Vec::new(),
            want_write: false,
            degraded,
            peer_loopback,
            close_after_flush: false,
            peer_closed: false,
            delay_until: None,
            trip_shutdown: false,
            last_activity: Instant::now(),
        }
    }

    fn take_scratch(&mut self) -> Vec<u8> {
        self.scratch.pop().unwrap_or_default()
    }
}

/// One shard's event loop: accept, parse, route, flush — all driven by
/// readiness, with the epoll timeout doubling as the timer wheel for
/// chaos delays, idle sweeps, and the drain grace period.
fn shard_loop(env: ShardEnv, listener: TcpListener, wake: Arc<Wake>) {
    let Ok(mut poller) = Poller::new(256) else { return };
    let _ = listener.set_nonblocking(true);
    if poller.add(listener.as_raw_fd(), LISTENER_TOKEN, false).is_err() {
        return;
    }
    if poller.add(wake.raw_fd(), WAKE_TOKEN, false).is_err() {
        return;
    }
    let mut conns: Slab<Conn> = Slab::new();
    let mut events: Vec<Event> = Vec::new();
    // (token, deadline) of connections gated by an injected delay
    let mut delays: Vec<(usize, Instant)> = Vec::new();
    let mut draining = false;
    let mut drain_deadline = Instant::now();
    let mut last_sweep = Instant::now();

    loop {
        let now = Instant::now();
        let mut timeout = Duration::from_secs(1); // idle-sweep cadence
        for (_, until) in &delays {
            timeout = timeout.min(until.saturating_duration_since(now));
        }
        if draining {
            timeout = timeout.min(drain_deadline.saturating_duration_since(now));
        }
        if poller.wait(Some(timeout), &mut events).is_err() {
            return;
        }

        let mut accept_ready = false;
        for &ev in &events {
            match ev.token {
                WAKE_TOKEN => wake.drain(),
                LISTENER_TOKEN => accept_ready = true,
                token => {
                    let token = token as usize;
                    let Some(conn) = conns.get_mut(token) else { continue };
                    let mut dead = ev.readable && read_into(conn);
                    if !dead {
                        dead = pump(&env, conn);
                    }
                    settle(&poller, &mut conns, &mut delays, token, dead);
                }
            }
        }

        // expired chaos delays: ungate the connection and resume
        let now = Instant::now();
        let mut expired: Vec<usize> = Vec::new();
        delays.retain(|&(token, until)| {
            if until <= now {
                expired.push(token);
                false
            } else {
                true
            }
        });
        for token in expired {
            let Some(conn) = conns.get_mut(token) else { continue };
            if conn.delay_until.map(|d| d <= now) != Some(true) {
                continue; // token reused or delay replaced
            }
            conn.delay_until = None;
            let dead = pump(&env, conn);
            settle(&poller, &mut conns, &mut delays, token, dead);
        }

        if !draining && env.shared.shutdown.load(Ordering::SeqCst) {
            draining = true;
            drain_deadline = Instant::now() + DRAIN_GRACE;
            poller.remove(listener.as_raw_fd());
            // idle connections have nothing owed to them; drop them now
            for token in conns.tokens() {
                let idle = conns.get_mut(token).map(|c| c.out.is_empty()).unwrap_or(false);
                if idle {
                    close_conn(&poller, &mut conns, token);
                }
            }
        }
        if draining && (conns.is_empty() || Instant::now() >= drain_deadline) {
            return;
        }

        if accept_ready && !draining {
            accept_burst(&env, &poller, &mut conns, &listener);
        }

        if last_sweep.elapsed() >= Duration::from_secs(1) {
            last_sweep = Instant::now();
            for token in conns.tokens() {
                let stale = conns
                    .get_mut(token)
                    .map(|c| c.last_activity.elapsed() > env.idle_timeout)
                    .unwrap_or(false);
                if stale {
                    close_conn(&poller, &mut conns, token);
                }
            }
        }
    }
}

/// Post-service bookkeeping for one connection: close it, or reconcile
/// its `EPOLLOUT` interest and delay registration.
fn settle(
    poller: &Poller,
    conns: &mut Slab<Conn>,
    delays: &mut Vec<(usize, Instant)>,
    token: usize,
    dead: bool,
) {
    if dead {
        close_conn(poller, conns, token);
        return;
    }
    let Some(conn) = conns.get_mut(token) else { return };
    if let Some(until) = conn.delay_until {
        if !delays.iter().any(|&(t, _)| t == token) {
            delays.push((token, until));
        }
    }
    let want = !conn.out.is_empty() && conn.delay_until.is_none();
    if want != conn.want_write
        && poller.rearm(conn.stream.as_raw_fd(), token as u64, want).is_ok()
    {
        conn.want_write = want;
    }
}

fn close_conn(poller: &Poller, conns: &mut Slab<Conn>, token: usize) {
    if let Some(conn) = conns.remove(token) {
        poller.remove(conn.stream.as_raw_fd());
    }
}

/// Drains the accept queue. Accounting mirrors the thread-pool design:
/// every connection counts as opened; past the backlog it is degraded;
/// past the degraded headroom it gets the canned 503 and the door.
fn accept_burst(env: &ShardEnv, poller: &Poller, conns: &mut Slab<Conn>, listener: &TcpListener) {
    loop {
        match listener.accept() {
            Ok((stream, peer)) => {
                env.metrics.connection_opened();
                let _ = stream.set_nonblocking(true);
                let _ = stream.set_nodelay(true);
                if conns.len() >= env.backlog + DEGRADED_BACKLOG {
                    env.metrics.shed_one();
                    let mut stream = stream;
                    let _ = stream.write(SHED_RESPONSE); // best effort, never waits
                    continue;
                }
                let degraded = conns.len() >= env.backlog;
                let conn = Conn::new(stream, degraded, peer.ip().is_loopback());
                let fd = conn.stream.as_raw_fd();
                let token = conns.insert(conn);
                if poller.add(fd, token as u64, false).is_err() {
                    conns.remove(token);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(_) => return, // transient (EMFILE, aborted handshake): retry on next readiness
        }
    }
}

/// Reads whatever the socket has. Returns true when the connection is
/// dead. A FIN only marks `peer_closed`: pipelined requests already
/// buffered are still answered.
fn read_into(conn: &mut Conn) -> bool {
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.peer_closed = true;
                return false;
            }
            Ok(n) => {
                conn.last_activity = Instant::now();
                conn.buf.extend_from_slice(&chunk[..n]);
                // bound pipelined buildup; the parse loop drains it
                if conn.buf.len() > MAX_HEAD_BYTES + MAX_BODY_BYTES + 1024 {
                    return false;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return false,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
    }
}

/// Parses and routes every complete buffered request, then flushes.
/// Returns true when the connection should be closed.
fn pump(env: &ShardEnv, conn: &mut Conn) -> bool {
    while conn.delay_until.is_none() && !conn.close_after_flush && !conn.trip_shutdown {
        match parse_request(&conn.buf) {
            Ok(Some((request, consumed))) => {
                conn.buf.drain(..consumed);
                handle_request(env, conn, &request);
            }
            Ok(None) => break,
            Err(RequestError::TooLarge) => {
                respond_error(conn, 413, "request too large", false);
                break;
            }
            Err(RequestError::Malformed(what)) => {
                respond_error(conn, 400, &format!("malformed request: {what}"), false);
                break;
            }
        }
    }
    if conn.delay_until.is_some() {
        return false; // gated: the delay expiry resumes the flush
    }
    match conn.out.flush(&mut conn.stream, &mut conn.scratch) {
        Ok(true) => {
            if conn.trip_shutdown {
                env.shared.shutdown.store(true, Ordering::SeqCst);
                for wake in &env.wakes {
                    wake.signal();
                }
                return true;
            }
            conn.close_after_flush || conn.peer_closed
        }
        Ok(false) => false,
        Err(_) => true,
    }
}

/// Routes one parsed request, applying chaos faults first (the degraded
/// lane and control endpoints are exempt, and the fault counter only
/// advances on eligible requests so configured rates hold).
fn handle_request(env: &ShardEnv, conn: &mut Conn, request: &Request) {
    let start = Instant::now();
    conn.last_activity = start;
    let shutdown = env.shared.shutdown.load(Ordering::SeqCst);
    let keep_alive = !request.close && !shutdown && !conn.degraded;
    if conn.degraded {
        env.metrics.degraded_one();
    }
    let fault = if conn.degraded || is_control(&request.path) {
        None
    } else {
        env.shared.chaos.next_fault()
    };
    if let Some(fault) = fault {
        env.metrics.fault_injected(fault.label());
    }
    let mut truncate = false;
    match fault {
        Some(Fault::Drop) => {
            // close without responding (earlier queued responses still
            // flush — they were already owed to the client)
            conn.close_after_flush = true;
            return;
        }
        Some(Fault::Error) => {
            observe(env, endpoint_of(request), 503, false, start);
            respond_error(conn, 503, "injected fault", keep_alive);
            return;
        }
        Some(Fault::Delay(d)) => conn.delay_until = Some(start + d),
        Some(Fault::Truncate) => truncate = true,
        None => {}
    }

    if conn.degraded {
        return route_degraded(env, conn, request, start);
    }
    route(env, conn, request, keep_alive, truncate, start);
}

fn observe(env: &ShardEnv, endpoint: Endpoint, status: u16, cache_hit: bool, start: Instant) {
    env.metrics.observe(Observation { endpoint, status, cache_hit, latency: start.elapsed() });
}

/// Control endpoints are exempt from fault injection and load shedding:
/// operators must be able to observe and stop the server no matter what
/// the chaos policy or the load does.
fn is_control(path: &str) -> bool {
    matches!(path, "/healthz" | "/metrics" | "/shutdown")
}

/// Maps a request path to its metrics endpoint without routing (used
/// when a fault preempts the handler).
fn endpoint_of(request: &Request) -> Endpoint {
    match request.path.as_str() {
        "/answer" => Endpoint::Answer,
        "/aggregate" => Endpoint::Aggregate,
        "/answers" => Endpoint::Batch,
        "/detect" => Endpoint::Detect,
        "/accuse" => Endpoint::Accuse,
        "/params" => Endpoint::Params,
        "/healthz" => Endpoint::Healthz,
        "/metrics" => Endpoint::Metrics,
        _ => Endpoint::Other,
    }
}

fn route(
    env: &ShardEnv,
    conn: &mut Conn,
    request: &Request,
    keep_alive: bool,
    truncate: bool,
    start: Instant,
) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            match &env.paged {
                Some(paged) => {
                    let body = paged.healthz_json();
                    respond_text(conn, 200, "application/json", &body, keep_alive, truncate);
                }
                None => respond_wire(conn, env.shared.wire.healthz(), keep_alive, truncate),
            }
            observe(env, Endpoint::Healthz, 200, false, start);
        }
        ("GET", "/params") => match &env.paged {
            Some(paged) => match paged.params_json() {
                Ok(body) => {
                    respond_text(conn, 200, "application/json", &body, keep_alive, truncate);
                    observe(env, Endpoint::Params, 200, false, start);
                }
                Err(e) => {
                    observe(env, Endpoint::Params, 500, false, start);
                    respond_error(conn, 500, &e, keep_alive);
                }
            },
            None => {
                respond_wire(conn, env.shared.wire.params(), keep_alive, truncate);
                observe(env, Endpoint::Params, 200, false, start);
            }
        },
        ("GET", "/metrics") => {
            let views: Vec<ShardView<'_>> = env
                .all_metrics
                .iter()
                .zip(&env.all_caches)
                .zip(&env.all_plan_caches)
                .map(|((m, c), p)| {
                    let (hits, misses) = c.stats();
                    let (plan_hits, plan_misses) = p.stats();
                    ShardView {
                        metrics: m,
                        cache_entries: c.len(),
                        cache_hits: hits,
                        cache_misses: misses,
                        plan_hits,
                        plan_misses,
                    }
                })
                .collect();
            let mut text = render_cluster(&views);
            if let Some(wal) = &env.shared.store_wal {
                render_store_metrics(&mut text, sum_gauges(&env.all_pool_gauges), wal);
            }
            respond_text(conn, 200, "text/plain; version=0.0.4", &text, keep_alive, truncate);
            observe(env, Endpoint::Metrics, 200, false, start);
        }
        ("GET", "/answer") => {
            if env.paged.is_some() {
                paged_answer_endpoint(env, conn, request, Endpoint::Answer, keep_alive, truncate, start)
            } else {
                routed_answer(env, conn, request, Endpoint::Answer, keep_alive, truncate, start)
            }
        }
        ("GET", "/aggregate") => {
            if env.paged.is_some() {
                paged_answer_endpoint(env, conn, request, Endpoint::Aggregate, keep_alive, truncate, start)
            } else {
                routed_answer(env, conn, request, Endpoint::Aggregate, keep_alive, truncate, start)
            }
        }
        ("POST", "/answers") => {
            let Ok(body) = std::str::from_utf8(&request.body) else {
                observe(env, Endpoint::Batch, 400, false, start);
                return respond_error(conn, 400, "body must be UTF-8", keep_alive);
            };
            let num_parameters = env
                .paged
                .as_ref()
                .map_or_else(|| env.shared.data.num_parameters(), PagedShard::n_params);
            match parse_batch_indices(body, num_parameters) {
                Ok(indices) if env.paged.is_some() => {
                    match respond_batch_paged(env, conn, &indices, keep_alive, truncate) {
                        Ok(()) => observe(env, Endpoint::Batch, 200, false, start),
                        Err(e) => {
                            observe(env, Endpoint::Batch, 500, false, start);
                            respond_error(conn, 500, &e, keep_alive);
                        }
                    }
                }
                Ok(indices) => {
                    respond_batch(env, conn, &indices, keep_alive, truncate);
                    observe(env, Endpoint::Batch, 200, false, start);
                }
                Err(e) => {
                    observe(env, Endpoint::Batch, 400, false, start);
                    respond_error(conn, 400, &e, keep_alive);
                }
            }
        }
        ("POST", "/detect") => {
            if env.paged.is_some() {
                // inline detection collects the full observed-weight
                // table — the O(family) allocation paged mode forbids
                observe(env, Endpoint::Detect, 501, false, start);
                return respond_error(
                    conn,
                    501,
                    "detection is not served on the paged plane; run qpwm store verify --paged against the store",
                    keep_alive,
                );
            }
            let Ok(body) = std::str::from_utf8(&request.body) else {
                observe(env, Endpoint::Detect, 400, false, start);
                return respond_error(conn, 400, "body must be UTF-8", keep_alive);
            };
            match env.shared.data.detect_json(body, &request.query_values("claim")) {
                Ok(json) => {
                    respond_text(conn, 200, "application/json", &json, keep_alive, truncate);
                    observe(env, Endpoint::Detect, 200, false, start);
                }
                Err(e) => {
                    observe(env, Endpoint::Detect, 400, false, start);
                    respond_error(conn, 400, &e, keep_alive);
                }
            }
        }
        ("POST", "/accuse") => {
            let Some(ctx) = &env.shared.fingerprint else {
                observe(env, Endpoint::Accuse, 404, false, start);
                return respond_error(conn, 404, "fingerprinting is not enabled on this server", keep_alive);
            };
            let Ok(body) = std::str::from_utf8(&request.body) else {
                observe(env, Endpoint::Accuse, 400, false, start);
                return respond_error(conn, 400, "body must be UTF-8", keep_alive);
            };
            match ctx.accuse_json(body, qpwm_core::detect::DEFAULT_DELTA) {
                Ok(json) => {
                    respond_text(conn, 200, "application/json", &json, keep_alive, truncate);
                    observe(env, Endpoint::Accuse, 200, false, start);
                }
                Err(e) => {
                    observe(env, Endpoint::Accuse, 400, false, start);
                    respond_error(conn, 400, &e, keep_alive);
                }
            }
        }
        ("POST", "/shutdown") if env.shared.shutdown_endpoint => {
            if !conn.peer_loopback {
                observe(env, Endpoint::Other, 403, false, start);
                return respond_error(conn, 403, "shutdown is loopback-only", keep_alive);
            }
            respond_text(conn, 200, "application/json", "{\"status\":\"shutting down\"}\n", false, false);
            conn.trip_shutdown = true;
            observe(env, Endpoint::Other, 200, false, start);
        }
        (method, "/answer" | "/aggregate" | "/answers" | "/detect" | "/accuse" | "/healthz" | "/params" | "/metrics") => {
            observe(env, Endpoint::Other, 405, false, start);
            respond_error(conn, 405, &format!("method {method} not allowed here"), keep_alive);
        }
        ("GET" | "POST", _) => {
            observe(env, Endpoint::Other, 404, false, start);
            respond_error(conn, 404, "unknown path", keep_alive);
        }
        (method, _) => {
            observe(env, Endpoint::Other, 405, false, start);
            respond_error(conn, 405, &format!("method {method} not supported"), keep_alive);
        }
    }
}

/// Which recipient (if any) a request's answers are stamped for:
/// `Ok(Some((derivation index, recipient id)))` on the fingerprint
/// path, `Ok(None)` for the plain precomputed path.
fn stamp_target(env: &ShardEnv, request: &Request) -> Result<Option<(u64, String)>, String> {
    let Some(ctx) = &env.shared.fingerprint else {
        if request.query_value("recipient").is_some() {
            return Err("fingerprinting is not enabled on this server".into());
        }
        return Ok(None);
    };
    Ok(ctx
        .resolve(request.query_value("recipient"))?
        .map(|r| (r.index, r.recipient.clone())))
}

/// `/answer` & `/aggregate` dispatch: fingerprint-stamped when the
/// request (or the server default) names a recipient, the zero-copy
/// precomputed path otherwise.
fn routed_answer(
    env: &ShardEnv,
    conn: &mut Conn,
    request: &Request,
    endpoint: Endpoint,
    keep_alive: bool,
    truncate: bool,
    start: Instant,
) {
    match stamp_target(env, request) {
        Ok(None) => answer_endpoint(env, conn, request, endpoint, keep_alive, truncate, start),
        Ok(Some((index, recipient))) => stamped_endpoint(
            env, conn, request, index, &recipient, endpoint, keep_alive, truncate, start,
        ),
        Err(e) => {
            observe(env, endpoint, 403, false, start);
            respond_error(conn, 403, &e, keep_alive);
        }
    }
}

/// The fingerprint hot path: fetch (or build) the recipient's stamping
/// plan from the shard's plan LRU, splice its deltas into the
/// precomputed body template, and attach `X-Fingerprint-Recipient`.
/// The observation's `cache_hit` reports the *plan* cache.
#[allow(clippy::too_many_arguments)]
fn stamped_endpoint(
    env: &ShardEnv,
    conn: &mut Conn,
    request: &Request,
    index: u64,
    recipient: &str,
    endpoint: Endpoint,
    keep_alive: bool,
    truncate: bool,
    start: Instant,
) {
    let ctx = env.shared.fingerprint.as_ref().expect("stamped path requires a context");
    let i = match env
        .shared
        .data
        .resolve_param(request.query_value("i"), request.query_value("param"))
    {
        Ok(i) => i,
        Err(e) => {
            observe(env, endpoint, 400, false, start);
            return respond_error(conn, 400, &e, keep_alive);
        }
    };
    let (plan, hit) = ctx.plan(&env.plan_cache, index);
    let body = match endpoint {
        Endpoint::Aggregate => ctx.aggregate_json(&env.shared.data, i, &plan),
        _ => ctx.answer_json(i, &plan),
    };
    respond_text_with_header(
        conn,
        200,
        "application/json",
        &body,
        keep_alive,
        truncate,
        ("X-Fingerprint-Recipient", recipient),
    );
    observe(env, endpoint, 200, hit, start);
}

/// `/answer` & `/aggregate` on the paged plane: resolve `?i=`, then
/// serve the cached body or render one through the shard's buffer pool.
/// The LRU holds rendered bodies (not wire responses), so a hit costs
/// one scratch head and zero page reads.
fn paged_answer_endpoint(
    env: &ShardEnv,
    conn: &mut Conn,
    request: &Request,
    endpoint: Endpoint,
    keep_alive: bool,
    truncate: bool,
    start: Instant,
) {
    let paged = env.paged.as_ref().expect("paged route requires a plane");
    if request.query_value("recipient").is_some() {
        observe(env, endpoint, 403, false, start);
        return respond_error(conn, 403, "fingerprinting is not enabled on this server", keep_alive);
    }
    let i = match paged.resolve_param(request.query_value("i"), request.query_value("param")) {
        Ok(i) => i,
        Err(e) => {
            observe(env, endpoint, 400, false, start);
            return respond_error(conn, 400, &e, keep_alive);
        }
    };
    let tag = match endpoint {
        Endpoint::Aggregate => TAG_AGGREGATE,
        _ => TAG_ANSWER,
    };
    if let Some(body) = env.cache.get(tag | i as u64) {
        respond_shared_body(conn, body, keep_alive, truncate);
        observe(env, endpoint, 200, true, start);
        return;
    }
    let rendered = match endpoint {
        Endpoint::Aggregate => paged.aggregate_json(i),
        _ => paged.answer_json(i),
    };
    match rendered {
        Ok(body) => {
            let body: Arc<[u8]> = body.into_bytes().into();
            env.cache.insert(tag | i as u64, Arc::clone(&body));
            respond_shared_body(conn, body, keep_alive, truncate);
            observe(env, endpoint, 200, false, start);
        }
        Err(e) => {
            observe(env, endpoint, 500, false, start);
            respond_error(conn, 500, &e, keep_alive);
        }
    }
}

/// `/answer` & `/aggregate`: resolve the parameter, track cache heat,
/// and queue the precomputed wire bytes — zero-copy on the hot path.
fn answer_endpoint(
    env: &ShardEnv,
    conn: &mut Conn,
    request: &Request,
    endpoint: Endpoint,
    keep_alive: bool,
    truncate: bool,
    start: Instant,
) {
    let i = match env
        .shared
        .data
        .resolve_param(request.query_value("i"), request.query_value("param"))
    {
        Ok(i) => i,
        Err(e) => {
            observe(env, endpoint, 400, false, start);
            return respond_error(conn, 400, &e, keep_alive);
        }
    };
    let (tag, resp) = match endpoint {
        Endpoint::Aggregate => (TAG_AGGREGATE, env.shared.wire.aggregate(i)),
        _ => (TAG_ANSWER, env.shared.wire.answer(i)),
    };
    let key = tag | i as u64;
    let hit = env.cache.get(key).is_some();
    if !hit {
        env.cache.insert(key, Arc::clone(resp.bytes()));
    }
    respond_wire(conn, resp, keep_alive, truncate);
    observe(env, endpoint, 200, hit, start);
}

/// Degraded-lane routing: control endpoints behave exactly as on the
/// main lane (and are exempt from shedding), `/answer`/`/aggregate` are
/// served *only* when already cache-resident, everything else is shed
/// with 503. Degraded responses always close.
fn route_degraded(env: &ShardEnv, conn: &mut Conn, request: &Request, start: Instant) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz" | "/metrics" | "/params") | ("POST", "/shutdown") => {
            route(env, conn, request, false, false, start)
        }
        ("GET", "/answer" | "/aggregate") => {
            let endpoint = if request.path == "/answer" { Endpoint::Answer } else { Endpoint::Aggregate };
            // stamping renders per request — too expensive for a
            // saturated shard, so fingerprint traffic is shed here
            if !matches!(stamp_target(env, request), Ok(None)) {
                env.metrics.shed_one();
                observe(env, endpoint, 503, false, start);
                return respond_error(conn, 503, "overloaded: stamping unavailable", false);
            }
            if let Some(paged) = &env.paged {
                // page reads are too expensive for a saturated shard:
                // serve only bodies some main-lane request already
                // rendered into the LRU
                let i = match paged
                    .resolve_param(request.query_value("i"), request.query_value("param"))
                {
                    Ok(i) => i,
                    Err(e) => {
                        observe(env, endpoint, 400, false, start);
                        return respond_error(conn, 400, &e, false);
                    }
                };
                let tag = if endpoint == Endpoint::Aggregate { TAG_AGGREGATE } else { TAG_ANSWER };
                return match env.cache.get(tag | i as u64) {
                    Some(body) => {
                        env.metrics.stale_served();
                        respond_shared_body(conn, body, false, false);
                        observe(env, endpoint, 200, true, start);
                    }
                    None => {
                        env.metrics.shed_one();
                        observe(env, endpoint, 503, false, start);
                        respond_error(conn, 503, "overloaded: answer not cached", false);
                    }
                };
            }
            let i = match env
                .shared
                .data
                .resolve_param(request.query_value("i"), request.query_value("param"))
            {
                Ok(i) => i,
                Err(e) => {
                    observe(env, endpoint, 400, false, start);
                    return respond_error(conn, 400, &e, false);
                }
            };
            let (tag, resp) = match endpoint {
                Endpoint::Aggregate => (TAG_AGGREGATE, env.shared.wire.aggregate(i)),
                _ => (TAG_ANSWER, env.shared.wire.answer(i)),
            };
            if env.cache.get(tag | i as u64).is_some() {
                env.metrics.stale_served();
                respond_wire(conn, resp, false, false);
                observe(env, endpoint, 200, true, start);
            } else {
                env.metrics.shed_one();
                observe(env, endpoint, 503, false, start);
                respond_error(conn, 503, "overloaded: answer not cached", false);
            }
        }
        _ => {
            env.metrics.shed_one();
            observe(env, Endpoint::Other, 503, false, start);
            respond_error(conn, 503, "overloaded", false);
        }
    }
}

/// Queues a precomputed wire response. Keep-alive hits queue the shared
/// bytes whole (zero-copy); close and truncate variants reuse a scratch
/// head over the shared body range.
fn respond_wire(conn: &mut Conn, resp: &crate::state::WireResponse, keep_alive: bool, truncate: bool) {
    if keep_alive && !truncate {
        conn.out.push_shared(Arc::clone(resp.bytes()));
        return;
    }
    let mut head = conn.take_scratch();
    write_head(&mut head, 200, "application/json", resp.body_len(), false);
    conn.out.push_owned(head);
    let sent = if truncate { resp.body_len() / 2 } else { resp.body_len() };
    conn.out
        .push_shared_range(Arc::clone(resp.bytes()), resp.body_start(), resp.body_start() + sent);
    conn.close_after_flush = true;
}

/// Queues a cached (shared) JSON body under a fresh scratch head — the
/// paged plane's hit path: one head write, zero body copies.
fn respond_shared_body(conn: &mut Conn, body: Arc<[u8]>, keep_alive: bool, truncate: bool) {
    let keep_alive = keep_alive && !truncate;
    let mut head = conn.take_scratch();
    write_head(&mut head, 200, "application/json", body.len(), keep_alive);
    conn.out.push_owned(head);
    let sent = if truncate { body.len() / 2 } else { body.len() };
    conn.out.push_shared_range(body, 0, sent);
    if !keep_alive {
        conn.close_after_flush = true;
    }
}

/// `POST /answers` on the paged plane: fetch or render each body, then
/// queue the NDJSON concatenation as shared ranges under one head.
/// Errors before anything is queued, so a failed render costs the
/// client a clean 500 rather than a half-written batch.
fn respond_batch_paged(
    env: &ShardEnv,
    conn: &mut Conn,
    indices: &[usize],
    keep_alive: bool,
    truncate: bool,
) -> Result<(), String> {
    let paged = env.paged.as_ref().expect("paged batch requires a plane");
    let mut bodies: Vec<Arc<[u8]>> = Vec::with_capacity(indices.len());
    for &i in indices {
        let key = TAG_ANSWER | i as u64;
        let body = match env.cache.get(key) {
            Some(body) => body,
            None => {
                let body: Arc<[u8]> = paged.answer_json(i)?.into_bytes().into();
                env.cache.insert(key, Arc::clone(&body));
                body
            }
        };
        bodies.push(body);
    }
    let total: usize = bodies.iter().map(|b| b.len()).sum();
    let keep_alive = keep_alive && !truncate;
    let mut head = conn.take_scratch();
    write_head(&mut head, 200, "application/json", total, keep_alive);
    conn.out.push_owned(head);
    let mut remaining = if truncate { total / 2 } else { total };
    for body in bodies {
        if remaining == 0 {
            break;
        }
        let take = body.len().min(remaining);
        conn.out.push_shared_range(body, 0, take);
        remaining -= take;
    }
    if !keep_alive {
        conn.close_after_flush = true;
    }
    Ok(())
}

/// Queues a dynamically rendered response via the connection's scratch
/// pool. A truncation fault advertises the full `Content-Length` but
/// queues half the body, then closes.
fn respond_text(
    conn: &mut Conn,
    status: u16,
    content_type: &str,
    body: &str,
    keep_alive: bool,
    truncate: bool,
) {
    let keep_alive = keep_alive && !truncate;
    let mut buf = conn.take_scratch();
    write_head(&mut buf, status, content_type, body.len(), keep_alive);
    let sent = if truncate { body.len() / 2 } else { body.len() };
    buf.extend_from_slice(&body.as_bytes()[..sent]);
    conn.out.push_owned(buf);
    if !keep_alive {
        conn.close_after_flush = true;
    }
}

/// [`respond_text`] with one extra response header (the fingerprint
/// path's `X-Fingerprint-Recipient`).
#[allow(clippy::too_many_arguments)]
fn respond_text_with_header(
    conn: &mut Conn,
    status: u16,
    content_type: &str,
    body: &str,
    keep_alive: bool,
    truncate: bool,
    header: (&str, &str),
) {
    let keep_alive = keep_alive && !truncate;
    let mut buf = conn.take_scratch();
    write_head_with(&mut buf, status, content_type, body.len(), keep_alive, header);
    let sent = if truncate { body.len() / 2 } else { body.len() };
    buf.extend_from_slice(&body.as_bytes()[..sent]);
    conn.out.push_owned(buf);
    if !keep_alive {
        conn.close_after_flush = true;
    }
}

fn respond_error(conn: &mut Conn, status: u16, message: &str, keep_alive: bool) {
    let body = format!("{{\"error\":\"{}\"}}\n", json_escape(message));
    respond_text(conn, status, "application/json", &body, keep_alive, false);
}

/// `POST /answers`: one response whose body is the concatenation of the
/// requested `/answer` bodies (NDJSON — each precomputed body is a
/// single `\n`-terminated JSON object), queued as shared ranges with a
/// single scratch head. A remote audit amortizes request parsing and
/// syscalls across the whole batch.
fn respond_batch(env: &ShardEnv, conn: &mut Conn, indices: &[usize], keep_alive: bool, truncate: bool) {
    let total: usize = indices.iter().map(|&i| env.shared.wire.answer(i).body_len()).sum();
    let keep_alive = keep_alive && !truncate;
    let mut head = conn.take_scratch();
    write_head(&mut head, 200, "application/json", total, keep_alive);
    conn.out.push_owned(head);
    let mut remaining = if truncate { total / 2 } else { total };
    for &i in indices {
        if remaining == 0 {
            break;
        }
        let resp = env.shared.wire.answer(i);
        let take = resp.body_len().min(remaining);
        conn.out
            .push_shared_range(Arc::clone(resp.bytes()), resp.body_start(), resp.body_start() + take);
        remaining -= take;
    }
    if !keep_alive {
        conn.close_after_flush = true;
    }
}
